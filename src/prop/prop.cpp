#include "prop/prop.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "util/check.hpp"

namespace intertubes::prop {

namespace {

std::optional<std::uint64_t> g_seed_override;
std::optional<std::size_t> g_trials_override;
std::optional<std::size_t> g_trial_override;
std::optional<double> g_scale_override;
std::mutex g_override_mu;

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::strtoull(raw, nullptr, 0);  // base 0: accepts 0x... and decimal
}

std::optional<double> env_f64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::strtod(raw, nullptr);
}

/// FNV-1a over the property name, so distinct properties draw distinct
/// substreams at the same (seed, trial) without any registration step.
std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Config Config::active() {
  Config config;
  if (const auto seed = env_u64("INTERTUBES_PROP_SEED")) config.seed = *seed;
  if (const auto trials = env_u64("INTERTUBES_PROP_TRIALS")) {
    config.trials = static_cast<std::size_t>(*trials);
  }
  if (const auto scale = env_f64("INTERTUBES_PROP_SCALE")) config.scale = *scale;
  std::lock_guard<std::mutex> lock(g_override_mu);
  if (g_seed_override) config.seed = *g_seed_override;
  if (g_trials_override) config.trials = *g_trials_override;
  if (g_trial_override) config.forced_trial = *g_trial_override;
  if (g_scale_override) config.scale = *g_scale_override;
  if (config.scale <= 0.0) config.scale = 1.0;
  return config;
}

void set_global_overrides(std::optional<std::uint64_t> seed, std::optional<std::size_t> trials,
                          std::optional<std::size_t> forced_trial, std::optional<double> scale) {
  std::lock_guard<std::mutex> lock(g_override_mu);
  g_seed_override = seed;
  g_trials_override = trials;
  g_trial_override = forced_trial;
  g_scale_override = scale;
}

std::string CheckResult::report() const {
  if (passed) return {};
  std::ostringstream out;
  out << "property '" << name << "' failed at trial " << failing_trial << " (after "
      << shrink_steps << " shrink steps)\n"
      << "  " << repro << "\n"
      << "  failure: " << failure << "\n"
      << "  shrunk counterexample: " << counterexample;
  return out.str();
}

namespace detail {

std::uint64_t stream_for(const std::string& name, std::uint64_t seed, std::size_t trial) noexcept {
  // Mixing the name keeps sibling properties decorrelated; mixing the seed
  // keeps stream ids themselves seed-dependent (a property cannot pass at
  // every seed by overfitting one stream family).
  return mix64(fnv1a(name) ^ (seed * 0x9e3779b97f4a7c15ull)) + trial;
}

void finalize_failure(CheckResult& result) {
  std::ostringstream repro;
  repro << "repro: --seed=0x" << std::hex << result.seed << std::dec
        << " --prop_trial=" << result.failing_trial;
  result.repro = repro.str();

  const char* dir = std::getenv("INTERTUBES_PROP_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  // One file per property, name sanitized to a portable token.
  std::string token = result.name;
  for (char& c : token) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    if (!keep) c = '_';
  }
  std::ofstream file(std::string(dir) + "/" + token + ".repro.txt");
  if (file) file << result.report() << "\n";
}

}  // namespace detail

Gen<std::int64_t> integers(std::int64_t lo, std::int64_t hi) {
  IT_CHECK(lo <= hi);
  Gen<std::int64_t> gen;
  gen.create = [lo, hi](Rng& rng) { return rng.next_in(lo, hi); };
  gen.shrink = [lo](const std::int64_t& v) {
    std::vector<std::int64_t> candidates;
    if (v == lo) return candidates;
    candidates.push_back(lo);
    const std::int64_t mid = lo + (v - lo) / 2;
    if (mid != lo && mid != v) candidates.push_back(mid);
    candidates.push_back(v - 1);
    return candidates;
  };
  gen.describe = [](const std::int64_t& v) { return std::to_string(v); };
  return gen;
}

Gen<double> dyadic_weights(double lo, double hi, double step) {
  IT_CHECK(step > 0.0 && lo <= hi);
  const std::int64_t buckets = static_cast<std::int64_t>((hi - lo) / step);
  Gen<std::int64_t> ticks = integers(0, buckets);
  Gen<double> gen;
  gen.create = [ticks, lo, step](Rng& rng) {
    return lo + step * static_cast<double>(ticks.create(rng));
  };
  gen.shrink = [ticks, lo, step](const double& v) {
    const std::int64_t tick = static_cast<std::int64_t>((v - lo) / step);
    std::vector<double> candidates;
    for (const std::int64_t t : ticks.shrink(tick)) {
      candidates.push_back(lo + step * static_cast<double>(t));
    }
    return candidates;
  };
  gen.describe = [](const double& v) { return std::to_string(v); };
  return gen;
}

}  // namespace intertubes::prop
