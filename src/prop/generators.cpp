#include "prop/generators.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "geo/polyline.hpp"
#include "util/check.hpp"

namespace intertubes::prop {

namespace {

/// Stretch a generator size cap by the process-wide --scale factor
/// (Config::active().scale), never below `floor_`.  At scale 1 this is
/// the identity, so default-scale case streams stay bit-identical.
std::size_t scaled_cap(std::size_t value, std::size_t floor_) {
  const double s = Config::active().scale;
  const auto stretched =
      static_cast<std::size_t>(std::llround(static_cast<double>(value) * s));
  return std::max(floor_, stretched);
}

/// Append "drop chunks / drop one" candidates for a vector-valued field.
template <typename Whole, typename Elem, typename Setter>
void shrink_vector_field(const Whole& whole, const std::vector<Elem>& field, std::size_t min_size,
                         const Setter& set, std::vector<Whole>& out) {
  if (field.size() <= min_size) return;
  {
    Whole half = whole;
    std::vector<Elem> kept(field.begin(),
                           field.begin() + static_cast<std::ptrdiff_t>(
                                               std::max(min_size, field.size() / 2)));
    set(half, std::move(kept));
    out.push_back(std::move(half));
  }
  for (std::size_t i = 0; i < field.size(); ++i) {
    Whole one = whole;
    std::vector<Elem> kept;
    kept.reserve(field.size() - 1);
    for (std::size_t j = 0; j < field.size(); ++j) {
      if (j != i) kept.push_back(field[j]);
    }
    set(one, std::move(kept));
    out.push_back(std::move(one));
  }
}

}  // namespace

// --- Shared hand-built fixtures ---------------------------------------

transport::Corridor make_corridor(transport::CorridorId id, transport::CityId a,
                                  transport::CityId b, double length_km) {
  transport::Corridor c;
  c.id = id;
  c.a = a;
  c.b = b;
  c.path = geo::Polyline::straight({40.0, -100.0 + 0.01 * id}, {40.0, -99.0 + 0.01 * id});
  c.length_km = length_km;
  return c;
}

core::FiberMap barbell_map() {
  using core::Provenance;
  core::FiberMap map(2);
  const auto c01 = map.ensure_conduit(make_corridor(0, 0, 1), Provenance::GeocodedMap);
  const auto c12 = map.ensure_conduit(make_corridor(1, 1, 2), Provenance::GeocodedMap);
  const auto c23 = map.ensure_conduit(make_corridor(2, 2, 3), Provenance::GeocodedMap);
  const auto c34 = map.ensure_conduit(make_corridor(3, 3, 4), Provenance::GeocodedMap);
  const auto c42 = map.ensure_conduit(make_corridor(4, 4, 2), Provenance::GeocodedMap);
  map.add_link(0, 0, 2, {c01, c12}, true);
  map.add_link(1, 2, 4, {c23, c34}, true);
  map.add_link(1, 4, 2, {c42}, true);
  return map;
}

// --- Routing-engine cases ---------------------------------------------

Gen<GraphCase> graph_cases(const GraphGenParams& base) {
  GraphGenParams params = base;
  params.max_nodes = static_cast<route::NodeId>(
      scaled_cap(params.max_nodes, params.min_nodes));
  IT_CHECK(params.min_nodes >= 2 && params.min_nodes <= params.max_nodes);
  const Gen<double> weight = dyadic_weights();
  Gen<GraphCase> gen;
  gen.create = [params, weight](Rng& rng) {
    GraphCase c;
    c.num_nodes = static_cast<route::NodeId>(rng.next_in(params.min_nodes, params.max_nodes));
    // Random spanning tree: node i attaches to a uniformly random earlier
    // node, so the base graph is connected by construction.
    for (route::NodeId v = 1; v < c.num_nodes; ++v) {
      const auto u = static_cast<route::NodeId>(rng.next_below(v));
      c.edges.push_back({u, v, weight.create(rng)});
    }
    const auto extras =
        static_cast<std::size_t>(params.extra_edge_factor * static_cast<double>(c.num_nodes));
    for (std::size_t i = 0; i < extras; ++i) {
      const auto u = static_cast<route::NodeId>(rng.next_below(c.num_nodes));
      const auto v = static_cast<route::NodeId>(rng.next_below(c.num_nodes));
      if (u == v) continue;  // self-loops are not legal conduits
      c.edges.push_back({u, v, weight.create(rng)});
    }
    c.from = static_cast<route::NodeId>(rng.next_below(c.num_nodes));
    c.to = static_cast<route::NodeId>(rng.next_below(c.num_nodes));
    if (!c.edges.empty() && params.max_mask > 0) {
      const std::size_t masked = rng.next_below(std::min(params.max_mask, c.edges.size()) + 1);
      for (auto id : rng.sample_indices(c.edges.size(), masked)) {
        c.mask.push_back(static_cast<route::EdgeId>(id));
      }
      std::sort(c.mask.begin(), c.mask.end());
    }
    const std::size_t overlays = rng.next_below(params.max_overlay + 1);
    for (std::size_t i = 0; i < overlays; ++i) {
      const auto u = static_cast<route::NodeId>(rng.next_below(c.num_nodes));
      const auto v = static_cast<route::NodeId>(rng.next_below(c.num_nodes));
      if (u == v) continue;
      c.overlay.push_back({u, v, weight.create(rng)});
    }
    return c;
  };
  gen.shrink = [](const GraphCase& c) {
    std::vector<GraphCase> candidates;
    // Perturbations first (cheapest to reason about in a repro)...
    if (!c.overlay.empty()) {
      GraphCase none = c;
      none.overlay.clear();
      candidates.push_back(std::move(none));
      GraphCase fewer = c;
      fewer.overlay.pop_back();
      candidates.push_back(std::move(fewer));
    }
    if (!c.mask.empty()) {
      GraphCase none = c;
      none.mask.clear();
      candidates.push_back(std::move(none));
      GraphCase fewer = c;
      fewer.mask.pop_back();
      candidates.push_back(std::move(fewer));
    }
    // ...then the graph itself.  Only the last edge is removable — edge
    // ids are positional, so removing from the middle would re-key the
    // mask and change the meaning of the case.
    if (!c.edges.empty()) {
      GraphCase smaller = c;
      smaller.edges.pop_back();
      while (!smaller.mask.empty() && smaller.mask.back() >= smaller.edges.size()) {
        smaller.mask.pop_back();
      }
      candidates.push_back(std::move(smaller));
    }
    return candidates;
  };
  gen.describe = [](const GraphCase& c) { return describe(c); };
  return gen;
}

std::string describe(const GraphCase& c) {
  std::ostringstream out;
  out << "GraphCase{nodes=" << c.num_nodes << ", query " << c.from << "->" << c.to
      << ", edges=[";
  for (std::size_t i = 0; i < c.edges.size(); ++i) {
    const auto& e = c.edges[i];
    out << (i ? " " : "") << "e" << i << ":" << e.a << "-" << e.b << "@" << e.weight;
  }
  out << "], mask=[";
  for (std::size_t i = 0; i < c.mask.size(); ++i) out << (i ? "," : "") << c.mask[i];
  out << "], overlay=[";
  for (std::size_t i = 0; i < c.overlay.size(); ++i) {
    const auto& e = c.overlay[i];
    out << (i ? " " : "") << e.a << "-" << e.b << "@" << e.weight;
  }
  out << "]}";
  return out.str();
}

// --- Fiber maps --------------------------------------------------------

core::FiberMap build_fiber_map(const MapSpec& spec, const transport::RightOfWayRegistry* row) {
  core::FiberMap map(spec.num_isps);
  for (std::size_t i = 0; i < spec.conduits.size(); ++i) {
    const ConduitSpec& c = spec.conduits[i];
    const bool anchored = c.corridor != transport::kNoCorridor;
    IT_CHECK(!anchored || row != nullptr);
    const transport::Corridor corridor =
        anchored ? row->corridor(c.corridor)
                 : make_corridor(static_cast<transport::CorridorId>(i), c.a, c.b, c.length_km);
    const auto id = map.ensure_conduit(corridor, core::Provenance::GeocodedMap);
    IT_CHECK(id == static_cast<core::ConduitId>(i));
    for (isp::IspId tenant : c.extra_tenants) map.add_tenant(id, tenant);
    if (c.validated) map.mark_validated(id);
  }
  for (const LinkSpec& link : spec.links) {
    map.add_link(link.isp, link.a, link.b, link.conduits, link.geocoded);
  }
  return map;
}

std::string describe(const MapSpec& spec) {
  std::ostringstream out;
  out << "MapSpec{isps=" << spec.num_isps << ", cities=" << spec.num_cities << ", conduits=[";
  for (std::size_t i = 0; i < spec.conduits.size(); ++i) {
    const auto& c = spec.conduits[i];
    out << (i ? " " : "") << "c" << i << ":" << c.a << "-" << c.b;
    if (c.corridor != transport::kNoCorridor) out << "(row#" << c.corridor << ")";
    if (!c.extra_tenants.empty()) {
      out << "+t{";
      for (std::size_t j = 0; j < c.extra_tenants.size(); ++j) {
        out << (j ? "," : "") << c.extra_tenants[j];
      }
      out << "}";
    }
    if (c.validated) out << "*";
  }
  out << "], links=[";
  for (std::size_t i = 0; i < spec.links.size(); ++i) {
    const auto& l = spec.links[i];
    out << (i ? " " : "") << "isp" << l.isp << ":" << l.a << "->" << l.b << " via{";
    for (std::size_t j = 0; j < l.conduits.size(); ++j) out << (j ? "," : "") << l.conduits[j];
    out << "}";
  }
  out << "]}";
  return out.str();
}

namespace {

/// Shared shrinker for both map generators: drop links, then drop
/// trailing *unreferenced* conduits (conduit ids are positional), then
/// drop extra tenants.
std::vector<MapSpec> shrink_map_spec(const MapSpec& spec) {
  std::vector<MapSpec> candidates;
  shrink_vector_field(spec, spec.links, 0,
                      [](MapSpec& s, std::vector<LinkSpec> v) { s.links = std::move(v); },
                      candidates);
  if (!spec.conduits.empty()) {
    const auto last = static_cast<core::ConduitId>(spec.conduits.size() - 1);
    const bool referenced = std::any_of(
        spec.links.begin(), spec.links.end(), [last](const LinkSpec& l) {
          return std::find(l.conduits.begin(), l.conduits.end(), last) != l.conduits.end();
        });
    if (!referenced) {
      MapSpec smaller = spec;
      smaller.conduits.pop_back();
      candidates.push_back(std::move(smaller));
    }
  }
  for (std::size_t i = 0; i < spec.conduits.size(); ++i) {
    if (spec.conduits[i].extra_tenants.empty()) continue;
    MapSpec fewer = spec;
    fewer.conduits[i].extra_tenants.pop_back();
    candidates.push_back(std::move(fewer));
  }
  return candidates;
}

}  // namespace

Gen<MapSpec> fiber_maps(const MapGenParams& base) {
  MapGenParams params = base;
  params.max_cities = scaled_cap(params.max_cities, params.min_cities);
  params.max_isps = scaled_cap(params.max_isps, params.min_isps);
  params.max_links_per_isp = scaled_cap(params.max_links_per_isp, 1);
  IT_CHECK(params.min_cities >= 2 && params.min_cities <= params.max_cities);
  IT_CHECK(params.min_isps >= 1 && params.min_isps <= params.max_isps);
  Gen<MapSpec> gen;
  gen.create = [params](Rng& rng) {
    MapSpec spec;
    spec.num_cities = static_cast<std::size_t>(
        rng.next_in(static_cast<std::int64_t>(params.min_cities),
                    static_cast<std::int64_t>(params.max_cities)));
    spec.num_isps = static_cast<std::size_t>(
        rng.next_in(static_cast<std::int64_t>(params.min_isps),
                    static_cast<std::int64_t>(params.max_isps)));
    // Connected conduit skeleton: spanning tree + extras (parallel
    // conduits allowed — distinct trenches between the same cities exist
    // in the real registry too).
    for (std::size_t v = 1; v < spec.num_cities; ++v) {
      ConduitSpec c;
      c.a = static_cast<transport::CityId>(rng.next_below(v));
      c.b = static_cast<transport::CityId>(v);
      c.length_km = 50.0 + static_cast<double>(rng.next_below(20)) * 25.0;
      spec.conduits.push_back(std::move(c));
    }
    const auto extras = static_cast<std::size_t>(params.extra_conduit_factor *
                                                 static_cast<double>(spec.num_cities));
    for (std::size_t i = 0; i < extras; ++i) {
      const auto a = static_cast<transport::CityId>(rng.next_below(spec.num_cities));
      const auto b = static_cast<transport::CityId>(rng.next_below(spec.num_cities));
      if (a == b) continue;
      ConduitSpec c;
      c.a = std::min(a, b);
      c.b = std::max(a, b);
      c.length_km = 50.0 + static_cast<double>(rng.next_below(20)) * 25.0;
      spec.conduits.push_back(std::move(c));
    }
    // City -> incident conduit indices, for laying links as walks.
    std::vector<std::vector<core::ConduitId>> at(spec.num_cities);
    for (std::size_t i = 0; i < spec.conduits.size(); ++i) {
      at[spec.conduits[i].a].push_back(static_cast<core::ConduitId>(i));
      at[spec.conduits[i].b].push_back(static_cast<core::ConduitId>(i));
    }
    for (isp::IspId isp = 0; isp < spec.num_isps; ++isp) {
      const std::size_t links = 1 + rng.next_below(params.max_links_per_isp);
      for (std::size_t l = 0; l < links; ++l) {
        LinkSpec link;
        link.isp = isp;
        link.geocoded = rng.chance(0.8);
        auto city = static_cast<transport::CityId>(rng.next_below(spec.num_cities));
        link.a = city;
        const std::size_t walk = 1 + rng.next_below(params.max_walk_len);
        for (std::size_t step = 0; step < walk; ++step) {
          const auto& incident = at[city];
          if (incident.empty()) break;
          const core::ConduitId cid = incident[rng.next_below(incident.size())];
          link.conduits.push_back(cid);
          const auto& c = spec.conduits[cid];
          city = (c.a == city) ? c.b : c.a;
        }
        link.b = city;
        if (!link.conduits.empty()) spec.links.push_back(std::move(link));
      }
    }
    for (auto& conduit : spec.conduits) {
      if (rng.chance(params.extra_tenant_chance)) {
        conduit.extra_tenants.push_back(
            static_cast<isp::IspId>(rng.next_below(spec.num_isps)));
      }
      conduit.validated = rng.chance(0.5);
    }
    return spec;
  };
  gen.shrink = shrink_map_spec;
  gen.describe = [](const MapSpec& spec) { return describe(spec); };
  return gen;
}

Gen<MapSpec> scenario_map_specs(const transport::RightOfWayRegistry& row, std::size_t num_isps,
                                const MapGenParams& base) {
  MapGenParams params = base;
  params.max_links_per_isp = scaled_cap(params.max_links_per_isp, 1);
  params.max_walk_len = scaled_cap(params.max_walk_len, 1);
  IT_CHECK(num_isps >= 1);
  IT_CHECK(row.num_cities() >= 2);
  const transport::RightOfWayRegistry* registry = &row;
  Gen<MapSpec> gen;
  gen.create = [registry, num_isps, params](Rng& rng) {
    MapSpec spec;
    spec.num_cities = registry->num_cities();
    spec.num_isps = num_isps;
    std::unordered_map<transport::CorridorId, core::ConduitId> conduit_of;
    const auto intern = [&](transport::CorridorId corridor) {
      const auto [it, inserted] =
          conduit_of.try_emplace(corridor, static_cast<core::ConduitId>(spec.conduits.size()));
      if (inserted) {
        const auto& c = registry->corridor(corridor);
        ConduitSpec conduit;
        conduit.a = c.a;
        conduit.b = c.b;
        conduit.length_km = c.length_km;
        conduit.corridor = corridor;
        spec.conduits.push_back(std::move(conduit));
      }
      return it->second;
    };
    for (isp::IspId isp = 0; isp < num_isps; ++isp) {
      const std::size_t links = 1 + rng.next_below(params.max_links_per_isp);
      for (std::size_t l = 0; l < links; ++l) {
        LinkSpec link;
        link.isp = isp;
        link.geocoded = true;
        auto city =
            static_cast<transport::CityId>(rng.next_below(registry->num_cities()));
        link.a = city;
        const std::size_t walk = 1 + rng.next_below(params.max_walk_len);
        for (std::size_t step = 0; step < walk; ++step) {
          const auto& incident = registry->corridors_at(city);
          if (incident.empty()) break;
          const transport::CorridorId corridor = incident[rng.next_below(incident.size())];
          link.conduits.push_back(intern(corridor));
          const auto& c = registry->corridor(corridor);
          city = (c.a == city) ? c.b : c.a;
        }
        link.b = city;
        if (!link.conduits.empty()) spec.links.push_back(std::move(link));
      }
    }
    return spec;
  };
  // Dropping links can orphan conduits, but orphaned real corridors still
  // serialize fine (tenancy may become empty — still a legal dataset row),
  // so the generic shrinker applies unchanged.
  gen.shrink = shrink_map_spec;
  gen.describe = [](const MapSpec& spec) { return describe(spec); };
  return gen;
}

// --- Small helpers -----------------------------------------------------

Gen<std::vector<core::ConduitId>> cut_sets(std::size_t num_conduits, std::size_t max_cuts) {
  IT_CHECK(num_conduits > 0);
  Gen<std::int64_t> ids = integers(0, static_cast<std::int64_t>(num_conduits - 1));
  auto raw = vectors(ids, 0, std::min(max_cuts, num_conduits));
  Gen<std::vector<core::ConduitId>> gen;
  gen.create = [raw](Rng& rng) {
    std::vector<core::ConduitId> out;
    for (std::int64_t id : raw.create(rng)) out.push_back(static_cast<core::ConduitId>(id));
    return out;
  };
  gen.shrink = [raw](const std::vector<core::ConduitId>& v) {
    std::vector<std::int64_t> as_ints(v.begin(), v.end());
    std::vector<std::vector<core::ConduitId>> candidates;
    for (const auto& smaller : raw.shrink(as_ints)) {
      candidates.emplace_back(smaller.begin(), smaller.end());
    }
    return candidates;
  };
  gen.describe = [](const std::vector<core::ConduitId>& v) {
    std::string out = "cuts{";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(v[i]);
    }
    return out + "}";
  };
  return gen;
}

Gen<std::vector<std::uint64_t>> probe_corpora(std::size_t num_conduits,
                                              std::uint64_t max_probes) {
  Gen<std::vector<std::uint64_t>> gen;
  gen.create = [num_conduits, max_probes](Rng& rng) {
    std::vector<std::uint64_t> probes(num_conduits, 0);
    for (auto& p : probes) {
      // Heavy-tailed: most conduits see little traffic, a few see a lot.
      const double draw = rng.pareto(1.2, 1.0);
      p = std::min<std::uint64_t>(static_cast<std::uint64_t>(draw), max_probes);
    }
    return probes;
  };
  gen.shrink = [](const std::vector<std::uint64_t>& v) {
    std::vector<std::vector<std::uint64_t>> candidates;
    // Size is fixed (one slot per conduit); shrink values toward zero.
    bool any = false;
    std::vector<std::uint64_t> zeroed = v;
    for (auto& p : zeroed) {
      if (p != 0) any = true;
      p = 0;
    }
    if (any) candidates.push_back(std::move(zeroed));
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == 0) continue;
      std::vector<std::uint64_t> halved = v;
      halved[i] /= 2;
      candidates.push_back(std::move(halved));
    }
    return candidates;
  };
  gen.describe = [](const std::vector<std::uint64_t>& v) {
    std::string out = "probes[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(v[i]);
    }
    return out + "]";
  };
  return gen;
}

}  // namespace intertubes::prop
