// Domain generators: valid-by-construction random worlds at parameterized
// scale, for the prop/ differential oracles and any test that needs "a
// random but structurally legal" input.
//
// Everything here is a plain Gen<T> from prop/prop.hpp, so the runner's
// seeded substreams, integrated shrinking, and --seed= repro line apply
// uniformly.  Two families:
//
//   * synthetic — self-contained corridors fabricated from thin air
//     (graph_cases for the routing engine, fiber_maps for risk/sim).
//     These never touch a Scenario and run at any scale.
//   * scenario-anchored — maps whose conduits are real corridors of a
//     RightOfWayRegistry (scenario_map_specs), which is what the
//     serialization boundary requires: serialize_dataset resolves conduit
//     geometry through the registry, so a map must only reference
//     corridors the registry actually has.
//
// This header is also the single source of truth for the hand-shaped
// fixtures the unit suites share (make_corridor, barbell_map): the ad-hoc
// per-file copies were replaced by these.
//
// Every entry point below respects the process-wide --scale=N knob
// (prop::Config::active().scale, also INTERTUBES_PROP_SCALE): size caps
// (max nodes/cities/ISPs/links) are stretched by the factor before
// generation, so the same property suites exercise N-times-bigger cases
// without per-test plumbing.  Scale 1 is the bit-identical default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fiber_map.hpp"
#include "prop/prop.hpp"
#include "route/path_engine.hpp"
#include "transport/row.hpp"

namespace intertubes::prop {

// --- Shared hand-built fixtures ---------------------------------------

/// A synthetic corridor joining cities a and b (straight-line geometry,
/// deterministic jitter by id so distinct corridors differ).
transport::Corridor make_corridor(transport::CorridorId id, transport::CityId a,
                                  transport::CityId b, double length_km = 100.0);

/// The canonical 5-city fixture shared by the cuts/campaign/route unit
/// suites: path 0-1-2 plus cycle 2-3-4-2; conduits (0,1) and (1,2) are
/// bridges, the cycle edges are not.
core::FiberMap barbell_map();

// --- Routing-engine cases ---------------------------------------------

/// One complete PathEngine query scenario: a connected base graph with
/// exact dyadic weights (so differential cost comparisons are bitwise), a
/// query endpoint pair, plus the three perturbation kinds the engine
/// supports — an edge mask, overlay edges, and (derivable by the caller)
/// weight overrides.
struct GraphCase {
  route::NodeId num_nodes = 2;
  std::vector<route::EdgeSpec> edges;
  route::NodeId from = 0;
  route::NodeId to = 1;
  std::vector<route::EdgeId> mask;      ///< sorted ascending, base ids only
  std::vector<route::EdgeSpec> overlay;
};

struct GraphGenParams {
  route::NodeId min_nodes = 2;
  route::NodeId max_nodes = 24;
  /// Extra non-tree edges as a fraction of the node count.
  double extra_edge_factor = 1.5;
  std::size_t max_mask = 6;
  std::size_t max_overlay = 4;
};

Gen<GraphCase> graph_cases(const GraphGenParams& params = {});

std::string describe(const GraphCase& c);

// --- Fiber maps --------------------------------------------------------

/// Declarative map recipe.  Conduit i of the built FiberMap is exactly
/// conduits[i] (ensure_conduit is called in index order), links are
/// city-chain walks over conduit indices, so every spec builds without
/// tripping a FiberMap invariant check.
struct ConduitSpec {
  transport::CityId a = 0;
  transport::CityId b = 1;
  double length_km = 100.0;
  /// Real corridor id when the spec is scenario-anchored; kNoCorridor
  /// fabricates a synthetic corridor from (index, a, b, length_km).
  transport::CorridorId corridor = transport::kNoCorridor;
  /// Tenants beyond the ones implied by links (overlay/records evidence).
  std::vector<isp::IspId> extra_tenants;
  bool validated = false;
};

struct LinkSpec {
  isp::IspId isp = 0;
  transport::CityId a = 0;
  transport::CityId b = 0;
  std::vector<core::ConduitId> conduits;  ///< indices into MapSpec::conduits
  bool geocoded = true;
};

struct MapSpec {
  std::size_t num_isps = 1;
  std::size_t num_cities = 2;
  std::vector<ConduitSpec> conduits;
  std::vector<LinkSpec> links;
};

/// Materialize the spec.  `row` is required iff any conduit names a real
/// corridor; synthetic conduits ignore it.
core::FiberMap build_fiber_map(const MapSpec& spec,
                               const transport::RightOfWayRegistry* row = nullptr);

std::string describe(const MapSpec& spec);

struct MapGenParams {
  std::size_t min_cities = 4;
  std::size_t max_cities = 20;
  std::size_t min_isps = 1;
  std::size_t max_isps = 6;
  /// Extra non-tree conduits as a fraction of the city count.
  double extra_conduit_factor = 0.8;
  std::size_t max_links_per_isp = 5;
  std::size_t max_walk_len = 4;
  /// Probability that a conduit gains one extra (non-link) tenant.
  double extra_tenant_chance = 0.15;
};

/// Synthetic connected fiber maps: spanning tree + extra conduits over a
/// random city set, per-ISP links laid as random walks.
Gen<MapSpec> fiber_maps(const MapGenParams& params = {});

/// Scenario-anchored maps: links are random walks over the registry's
/// corridor graph, conduits are the distinct corridors those walks touch.
/// Every produced spec serializes cleanly through core::serialize_dataset
/// against the same registry / city database / profiles.
Gen<MapSpec> scenario_map_specs(const transport::RightOfWayRegistry& row, std::size_t num_isps,
                                const MapGenParams& params = {});

// --- Small helpers for campaign / serve oracles ------------------------

/// Random conduit-cut sets for what-if queries (possibly with duplicates —
/// callers under test are expected to canonicalize).
Gen<std::vector<core::ConduitId>> cut_sets(std::size_t num_conduits, std::size_t max_cuts);

/// Synthetic traceroute evidence: per-conduit probe counts (the §4.3
/// tenancy × log2(1+probes) weighting input).  Heavy-tailed like a real
/// corpus.  Size is exactly num_conduits.
Gen<std::vector<std::uint64_t>> probe_corpora(std::size_t num_conduits,
                                              std::uint64_t max_probes = 1u << 16);

}  // namespace intertubes::prop
