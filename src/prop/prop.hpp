// A small, dependency-free property-testing core.
//
// The design follows the repo's determinism doctrine rather than a general
// QuickCheck clone: every trial draws from util::substream_rng(seed,
// stream), so a failing trial is a pure function of (property name, seed,
// trial index) and the printed one-line repro
//
//   repro: --seed=0x1257 --prop_trial=17
//
// (passed back to the test binary with a --gtest_filter= naming the
// failed test) re-creates the exact counterexample on any machine and
// thread count.
// Shrinking is integrated with generation: a Gen<T> carries both the
// create function and a shrink function proposing strictly smaller
// candidates, and check() descends greedily (first failing candidate wins)
// until no candidate fails or the step budget runs out.  The shrunk
// minimal input is printed with the generator's own describe function, and
// optionally written to $INTERTUBES_PROP_ARTIFACT_DIR for CI upload.
//
// check() deliberately returns a CheckResult instead of asserting: the
// gtest glue lives in tests/prop/prop_gtest.hpp, and the mutation-smoke
// harness consumes the same API to prove each oracle can actually fail.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace intertubes::prop {

/// Runtime knobs.  Resolution order: explicit Config argument, process
/// overrides installed by the test main's --seed=/--prop_trials=/--scale=
/// flags, then the INTERTUBES_PROP_SEED / INTERTUBES_PROP_TRIALS /
/// INTERTUBES_PROP_SCALE environment variables, then the built-in
/// defaults.
struct Config {
  std::uint64_t seed = 0x1257;
  std::size_t trials = 64;
  std::size_t max_shrink_steps = 400;
  /// Multiplier on generated-world sizes (see generators.hpp): the
  /// domain generators stretch their size caps by this factor, so the
  /// same properties exercise bigger worlds under --scale=N without any
  /// per-test plumbing.  1 = the historical case sizes, bit-identically.
  double scale = 1.0;
  /// When set, run only this trial index (the --prop_trial= repro knob).
  std::optional<std::size_t> forced_trial;

  /// The process-wide configuration described above.
  static Config active();
};

/// Install overrides parsed from the command line (nullopt = keep the
/// env/default value).  Called once from the test main.
void set_global_overrides(std::optional<std::uint64_t> seed, std::optional<std::size_t> trials,
                          std::optional<std::size_t> forced_trial,
                          std::optional<double> scale = std::nullopt);

/// A generator: create a value from an Rng, propose smaller variants of a
/// failing value, and render a value for the repro report.  Shrink
/// candidates must be strictly "smaller" under some well-founded order or
/// the greedy descent may cycle (the step budget still bounds it).
template <typename T>
struct Gen {
  std::function<T(Rng&)> create;
  std::function<std::vector<T>(const T&)> shrink;
  std::function<std::string(const T&)> describe;
};

/// A property: nullopt = pass, otherwise a human-readable reason why this
/// value violates the invariant.
template <typename T>
using Property = std::function<std::optional<std::string>(const T&)>;

struct CheckResult {
  bool passed = true;
  std::string name;
  std::uint64_t seed = 0;
  std::size_t trials_run = 0;
  /// Valid when !passed.
  std::size_t failing_trial = 0;
  std::size_t shrink_steps = 0;
  std::string failure;         ///< property message on the shrunk value
  std::string counterexample;  ///< describe() of the shrunk value
  std::string repro;           ///< one-line "--seed=... --prop_trial=..." repro

  /// Full failure report (repro line + shrunk counterexample); empty when
  /// passed.
  std::string report() const;
};

namespace detail {

std::uint64_t stream_for(const std::string& name, std::uint64_t seed, std::size_t trial) noexcept;

/// Compose the repro line and write the artifact file (when
/// $INTERTUBES_PROP_ARTIFACT_DIR is set).  Shared by every instantiation
/// of check() so the format lives in one place.
void finalize_failure(CheckResult& result);

}  // namespace detail

/// Run `property` over `config.trials` generated values.  Stops at the
/// first failure, shrinks it, and returns the filled-in CheckResult.
template <typename T>
CheckResult check(const std::string& name, const Gen<T>& gen, const Property<T>& property,
                  const Config& config = Config::active()) {
  CheckResult result;
  result.name = name;
  result.seed = config.seed;
  const std::size_t begin = config.forced_trial.value_or(0);
  const std::size_t end = config.forced_trial ? begin + 1 : config.trials;
  for (std::size_t trial = begin; trial < end; ++trial) {
    Rng rng = substream_rng(config.seed, detail::stream_for(name, config.seed, trial));
    T value = gen.create(rng);
    ++result.trials_run;
    auto verdict = property(value);
    if (!verdict) continue;

    // Greedy integrated shrink: take the first failing candidate, repeat.
    std::size_t steps = 0;
    while (steps < config.max_shrink_steps) {
      bool descended = false;
      for (auto& candidate : gen.shrink(value)) {
        ++steps;
        if (auto v = property(candidate)) {
          value = std::move(candidate);
          verdict = std::move(v);
          descended = true;
          break;
        }
        if (steps >= config.max_shrink_steps) break;
      }
      if (!descended) break;
    }

    result.passed = false;
    result.failing_trial = trial;
    result.shrink_steps = steps;
    result.failure = *verdict;
    result.counterexample = gen.describe ? gen.describe(value) : "<no describe function>";
    detail::finalize_failure(result);
    return result;
  }
  return result;
}

// --- Generic combinators ----------------------------------------------

/// Uniform integer in [lo, hi]; shrinks toward lo (halving the distance,
/// then decrement).
Gen<std::int64_t> integers(std::int64_t lo, std::int64_t hi);

/// Dyadic rational in {lo, lo+step, ..., hi} with step a power of two
/// (default 0.25): sums of generated weights are exact in double, so
/// differential cost comparisons can demand bitwise equality.  Shrinks
/// toward lo.
Gen<double> dyadic_weights(double lo = 0.25, double hi = 64.0, double step = 0.25);

/// Vector of `element` values with size in [min_size, max_size].  Shrinks
/// by dropping chunks, dropping single elements (down to min_size), and
/// shrinking individual elements.
template <typename T>
Gen<std::vector<T>> vectors(Gen<T> element, std::size_t min_size, std::size_t max_size);

}  // namespace intertubes::prop

// --- template implementations -----------------------------------------

namespace intertubes::prop {

template <typename T>
Gen<std::vector<T>> vectors(Gen<T> element, std::size_t min_size, std::size_t max_size) {
  Gen<std::vector<T>> gen;
  gen.create = [element, min_size, max_size](Rng& rng) {
    const std::size_t n =
        static_cast<std::size_t>(rng.next_in(static_cast<std::int64_t>(min_size),
                                             static_cast<std::int64_t>(max_size)));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(element.create(rng));
    return out;
  };
  gen.shrink = [element, min_size](const std::vector<T>& v) {
    std::vector<std::vector<T>> candidates;
    // Halve first (fast descent), then single removals, then per-element.
    if (v.size() > min_size) {
      const std::size_t keep = std::max(min_size, v.size() / 2);
      if (keep < v.size()) candidates.emplace_back(v.begin(), v.begin() + keep);
      for (std::size_t i = 0; i < v.size(); ++i) {
        std::vector<T> smaller;
        smaller.reserve(v.size() - 1);
        for (std::size_t j = 0; j < v.size(); ++j) {
          if (j != i) smaller.push_back(v[j]);
        }
        candidates.push_back(std::move(smaller));
      }
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (auto& smaller_elem : element.shrink(v[i])) {
        std::vector<T> copy = v;
        copy[i] = std::move(smaller_elem);
        candidates.push_back(std::move(copy));
      }
    }
    return candidates;
  };
  gen.describe = [element](const std::vector<T>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ", ";
      out += element.describe ? element.describe(v[i]) : "?";
    }
    out += "]";
    return out;
  };
  return gen;
}

}  // namespace intertubes::prop
