#include "core/pipeline.hpp"

#include <algorithm>
#include <optional>

namespace intertubes::core {

using isp::IspId;
using isp::PublishedMap;
using transport::CityId;
using transport::Corridor;
using transport::CorridorId;

MapBuilder::MapBuilder(const transport::CityDatabase& cities,
                       const transport::RightOfWayRegistry& row,
                       const std::vector<isp::IspProfile>& profiles,
                       const records::Corpus& corpus, PipelineParams params)
    : cities_(cities),
      row_(row),
      profiles_(profiles),
      corpus_(corpus),
      params_(std::move(params)),
      index_(corpus.documents),
      extractor_(cities, profiles),
      inference_(cities, corpus.documents, index_, extractor_, profiles) {}

std::vector<CorridorId> MapBuilder::snap_geometry(CityId a, CityId b,
                                                  const geo::Polyline& geometry) const {
  // Candidate corridors: covered by the published geometry's buffer.
  const geo::BoundingBox geom_box = geometry.bounds().expanded_km(params_.snap_buffer_km);
  std::vector<char> candidate(row_.corridors().size(), 0);
  for (const Corridor& c : row_.corridors()) {
    if (!geom_box.intersects(c.path.bounds())) continue;
    const double covered =
        geo::fraction_within_buffer(c.path, geometry, params_.snap_buffer_km, 15.0);
    if (covered >= params_.snap_coverage) candidate[c.id] = 1;
  }
  // Shortest path from a to b restricted to candidates.
  const auto path = row_.shortest_path(a, b, [&](const Corridor& c) {
    return candidate[c.id] ? c.length_km : std::numeric_limits<double>::infinity();
  });
  return path.corridors;
}

namespace {

/// Validate one published map before anything is ingested, so a bad
/// record never leaves partial state in the fiber map.  Returns nullopt —
/// after reporting and counting the drop — when the whole map must go;
/// otherwise a keep-flag per link, with quarantined links reported under
/// their 1-based record index (the "line number" of an in-memory map).
std::optional<std::vector<char>> validate_published(const PublishedMap& pub,
                                                    const std::string& source,
                                                    bool need_geometry, std::size_t num_cities,
                                                    std::size_t num_isps, StepReport& report,
                                                    DiagnosticSink& sink) {
  if (pub.isp == isp::kNoIsp || pub.isp >= num_isps) {
    sink.report(Severity::Error, source, 0,
                "published map names no known ISP (id " + std::to_string(pub.isp) +
                    "); ISP dropped");
    ++report.isps_dropped;
    return std::nullopt;
  }
  std::vector<char> keep(pub.links.size(), 1);
  for (std::size_t i = 0; i < pub.links.size(); ++i) {
    const auto& link = pub.links[i];
    std::string why;
    if (link.a >= num_cities || link.b >= num_cities) {
      why = "endpoint city out of range";
    } else if (link.a == link.b) {
      why = "endpoints must differ";
    } else if (need_geometry &&
               (!link.geometry.has_value() || link.geometry->points().size() < 2)) {
      why = "geocoded link missing geometry";
    }
    if (!why.empty()) {
      sink.report(Severity::Error, source, i + 1, "link quarantined: " + why);
      keep[i] = 0;
      ++report.records_quarantined;
    }
  }
  return keep;
}

std::string step_source(const char* step, const PublishedMap& pub) {
  return std::string(step) + "/" +
         (pub.isp_name.empty() ? "isp#" + std::to_string(pub.isp) : pub.isp_name);
}

}  // namespace

void MapBuilder::step1_initial_map(FiberMap& map, const std::vector<PublishedMap>& published,
                                   StepReport& report) const {
  DiagnosticSink strict(ParsePolicy::Strict);
  step1_initial_map(map, published, report, strict);
}

void MapBuilder::step1_initial_map(FiberMap& map, const std::vector<PublishedMap>& published,
                                   StepReport& report, DiagnosticSink& sink) const {
  for (const PublishedMap& pub : published) {
    if (!pub.geocoded) continue;
    const std::string source = step_source("step1", pub);
    const auto keep = validate_published(pub, source, /*need_geometry=*/true, cities_.size(),
                                         profiles_.size(), report, sink);
    if (!keep.has_value()) continue;
    try {
      for (std::size_t i = 0; i < pub.links.size(); ++i) {
        if (!(*keep)[i]) continue;
        const auto& link = pub.links[i];
        auto corridors = snap_geometry(link.a, link.b, *link.geometry);
        if (corridors.empty()) {
          // Published geometry too noisy/incomplete: fall back to the ROW
          // shortest path, which is the best guess absent other evidence.
          ++report.snap_fallbacks;
          corridors = row_.shortest_path(link.a, link.b).corridors;
          if (corridors.empty()) continue;
        }
        std::vector<ConduitId> conduit_ids;
        conduit_ids.reserve(corridors.size());
        for (CorridorId cid : corridors) {
          const bool fresh = !map.conduit_for_corridor(cid).has_value();
          const ConduitId conduit =
              map.ensure_conduit(row_.corridor(cid), Provenance::GeocodedMap);
          if (fresh) ++report.conduits_added;
          conduit_ids.push_back(conduit);
        }
        map.add_link(pub.isp, link.a, link.b, conduit_ids, /*geocoded=*/true);
        ++report.links_added;
      }
    } catch (const ParseError&) {
      throw;  // strict-sink fail-fast from a nested boundary
    } catch (const std::exception& e) {
      // Unexpected failure mid-ingest (an IT_CHECK tripping on pathological
      // geometry, say): isolate the fault to this ISP.  Links of this ISP
      // ingested before the throw remain — the residue is harmless map
      // content, not corruption — but the ISP is counted dropped.
      sink.report(Severity::Error, source, 0,
                  std::string("ISP dropped: ingest failed: ") + e.what());
      ++report.isps_dropped;
    }
  }
}

void MapBuilder::step2_check_map(FiberMap& map, StepReport& report) const {
  // For every conduit currently in the map, ask the records what they know
  // about the city pair, seeding the query with a known tenant.
  for (const Conduit& conduit : map.conduits()) {
    const IspId hint = conduit.tenants.empty() ? isp::kNoIsp : conduit.tenants.front();
    const auto mode = row_.corridor(conduit.corridor).mode;
    const auto evidence = inference_.infer(conduit.a, conduit.b, hint, mode, params_.inference);
    const auto accepted = inference_.accepted_tenants(evidence, params_.inference);
    if (evidence.documents_considered > 0) {
      if (!conduit.validated) ++report.conduits_validated;
      map.mark_validated(conduit.id);
    }
    for (IspId isp_id : accepted) {
      if (!std::binary_search(conduit.tenants.begin(), conduit.tenants.end(), isp_id)) {
        map.add_tenant(conduit.id, isp_id);
        ++report.tenants_inferred;
      }
    }
  }
}

void MapBuilder::step3_augment(FiberMap& map, const std::vector<PublishedMap>& published,
                               StepReport& report) const {
  DiagnosticSink strict(ParsePolicy::Strict);
  step3_augment(map, published, report, strict);
}

void MapBuilder::step3_augment(FiberMap& map, const std::vector<PublishedMap>& published,
                               StepReport& report, DiagnosticSink& sink) const {
  for (const PublishedMap& pub : published) {
    if (pub.geocoded) continue;
    const std::string source = step_source("step3", pub);
    const auto keep = validate_published(pub, source, /*need_geometry=*/false, cities_.size(),
                                         profiles_.size(), report, sink);
    if (!keep.has_value()) continue;
    try {
      for (std::size_t i = 0; i < pub.links.size(); ++i) {
        if (!(*keep)[i]) continue;
        const auto& link = pub.links[i];
        // Tentative alignment: shortest ROW path, discounted through
        // corridors already known to hold conduit.  This reads the map as
        // earlier links commit, so ingest stays strictly sequential —
        // validation above is what keeps quarantining from perturbing it.
        const auto path = row_.shortest_path(link.a, link.b, [&](const Corridor& c) {
          const bool known = map.conduit_for_corridor(c.id).has_value();
          return c.length_km * (known ? params_.known_conduit_discount : 1.0);
        });
        if (path.empty()) continue;
        std::vector<ConduitId> conduit_ids;
        for (CorridorId cid : path.corridors) {
          const bool fresh = !map.conduit_for_corridor(cid).has_value();
          const ConduitId conduit =
              map.ensure_conduit(row_.corridor(cid), Provenance::RowAlignment);
          if (fresh) ++report.conduits_added;
          conduit_ids.push_back(conduit);
        }
        map.add_link(pub.isp, link.a, link.b, conduit_ids, /*geocoded=*/false);
        ++report.links_added;
      }
    } catch (const ParseError&) {
      throw;  // strict-sink fail-fast from a nested boundary
    } catch (const std::exception& e) {
      sink.report(Severity::Error, source, 0,
                  std::string("ISP dropped: ingest failed: ") + e.what());
      ++report.isps_dropped;
    }
  }
}

void MapBuilder::step4_validate(FiberMap& map, StepReport& report) const {
  // Examine every non-geocoded link: gather per-conduit evidence for its
  // ISP; if most of its conduits lack support, re-route through corridors
  // where the records *do* place this ISP.
  //
  // Cache evidence per (corridor, isp) — multiple links can share
  // corridors, and evidence is also consulted for *dark* corridors during
  // re-routing (the records may place an ISP on a ROW no map mentioned).
  std::unordered_map<std::uint64_t, bool> supported_cache;

  auto isp_supported_on_corridor = [&](CorridorId corridor_id, IspId isp_id) {
    const std::uint64_t key = (static_cast<std::uint64_t>(corridor_id) << 32) | isp_id;
    const auto it = supported_cache.find(key);
    if (it != supported_cache.end()) return it->second;
    const Corridor& corridor = row_.corridor(corridor_id);
    const auto evidence =
        inference_.infer(corridor.a, corridor.b, isp_id, corridor.mode, params_.inference);
    const auto accepted = inference_.accepted_tenants(evidence, params_.inference);
    const bool ok = std::binary_search(accepted.begin(), accepted.end(), isp_id);
    if (evidence.documents_considered > 0) {
      if (const auto existing = map.conduit_for_corridor(corridor_id)) {
        map.mark_validated(*existing);
      }
    }
    supported_cache.emplace(key, ok);
    return ok;
  };
  auto isp_supported_on = [&](const Conduit& conduit, IspId isp_id) {
    return isp_supported_on_corridor(conduit.corridor, isp_id);
  };

  const auto link_count = map.links().size();
  for (LinkId lid = 0; lid < link_count; ++lid) {
    const Link link = map.link(lid);  // copy: map mutates below
    if (link.geocoded) continue;
    std::size_t supported = 0;
    for (ConduitId cid : link.conduits) {
      if (isp_supported_on(map.conduit(cid), link.isp)) ++supported;
    }
    const double frac =
        static_cast<double>(supported) / static_cast<double>(link.conduits.size());
    if (frac >= params_.correction_threshold) {
      for (ConduitId cid : link.conduits) {
        if (isp_supported_on(map.conduit(cid), link.isp)) {
          if (!map.conduit(cid).validated) ++report.conduits_validated;
          map.mark_validated(cid);
        }
      }
      continue;
    }
    // Correction: re-route preferring corridors with document support for
    // this ISP, then known conduits, then dark corridors.
    const auto better = row_.shortest_path(link.a, link.b, [&](const Corridor& c) {
      double factor = 1.0;
      if (map.conduit_for_corridor(c.id)) factor = params_.known_conduit_discount;
      if (isp_supported_on_corridor(c.id, link.isp)) factor = params_.evidence_discount;
      return c.length_km * factor;
    });
    if (better.empty()) continue;
    std::vector<CorridorId> old_corridors;
    old_corridors.reserve(link.conduits.size());
    for (ConduitId cid : link.conduits) old_corridors.push_back(map.conduit(cid).corridor);
    if (better.corridors == old_corridors) continue;  // correction is a no-op
    // Accept the correction only when the new placement genuinely has
    // better document support than the tentative one; otherwise absence of
    // paper trail alone would be treated as contradiction.
    std::size_t new_supported = 0;
    for (CorridorId cid : better.corridors) {
      if (isp_supported_on_corridor(cid, link.isp)) ++new_supported;
    }
    const double new_frac =
        static_cast<double>(new_supported) / static_cast<double>(better.corridors.size());
    if (new_frac <= frac + 1e-9) continue;
    // Replace the link's conduit sequence in place.  (The superseded
    // tentative tenancy is *not* withdrawn from untouched conduits —
    // matching the paper, which errs on the side of keeping evidence of
    // presence; fidelity metrics penalize any resulting false tenancy.)
    std::vector<ConduitId> conduit_ids;
    for (CorridorId cid : better.corridors) {
      conduit_ids.push_back(map.ensure_conduit(row_.corridor(cid), Provenance::PublicRecords));
    }
    map.replace_link_conduits(lid, conduit_ids);
    ++report.links_rerouted;
  }
}

PipelineResult MapBuilder::build(const std::vector<PublishedMap>& published) {
  DiagnosticSink strict(ParsePolicy::Strict);
  return build(published, strict);
}

PipelineResult MapBuilder::build(const std::vector<PublishedMap>& published,
                                 DiagnosticSink& sink) {
  PipelineResult result{FiberMap(profiles_.size()), {}, {}, {}, {}};
  step1_initial_map(result.map, published, result.step1, sink);
  step2_check_map(result.map, result.step2);
  step3_augment(result.map, published, result.step3, sink);
  step4_validate(result.map, result.step4);
  return result;
}

}  // namespace intertubes::core
