// Dataset serialization — the paper's published artifact.
//
// "The constructed long-haul map along with datasets are openly available
// to the community through the U.S. DHS PREDICT portal."  This module
// writes and reads that deliverable: a three-table TSV dataset (nodes,
// conduits, links) keyed by stable human-readable names, so the map can be
// shared, diffed, and reloaded without the generator.
#pragma once

#include <string>

#include "core/fiber_map.hpp"
#include "transport/row.hpp"
#include "util/diag.hpp"

namespace intertubes::core {

/// Serialize a FiberMap as a TSV dataset.  Three sections in one document:
///   #nodes    city <tab> state <tab> lat <tab> lon <tab> population
///   #conduits id <tab> from <tab> to <tab> mode <tab> length_km
///             <tab> validated <tab> tenants (comma-joined ISP names)
///   #links    isp <tab> from <tab> to <tab> geocoded <tab> conduit ids
std::string serialize_dataset(const FiberMap& map, const transport::CityDatabase& cities,
                              const transport::RightOfWayRegistry& row,
                              const std::vector<isp::IspProfile>& profiles);

/// Parse a dataset back into a FiberMap, reporting every malformed record
/// into `sink` with its 1-based input line number.  Under the lenient
/// policy a malformed record is quarantined (skipped) and parsing
/// continues; records referencing a quarantined record (a link naming a
/// quarantined conduit) are quarantined in turn.  Under the strict policy
/// the first defect throws ParseError naming "source:line".  City and ISP
/// names are resolved against the given database/profiles.  The ROW
/// registry supplies conduit geometry (by the stored corridor city pair
/// and mode); a conduit with no matching corridor gets straight-line
/// geometry.
FiberMap parse_dataset(const std::string& text, const transport::CityDatabase& cities,
                       const transport::RightOfWayRegistry& row,
                       const std::vector<isp::IspProfile>& profiles, DiagnosticSink& sink,
                       const std::string& source = "<dataset>");

/// Strict-policy convenience: throws ParseError on the first defect.
FiberMap parse_dataset(const std::string& text, const transport::CityDatabase& cities,
                       const transport::RightOfWayRegistry& row,
                       const std::vector<isp::IspProfile>& profiles);

/// Convenience wrappers over files.  Open failures throw
/// std::runtime_error with the OS errno context.
void save_dataset(const std::string& path, const FiberMap& map,
                  const transport::CityDatabase& cities,
                  const transport::RightOfWayRegistry& row,
                  const std::vector<isp::IspProfile>& profiles);

FiberMap load_dataset(const std::string& path, const transport::CityDatabase& cities,
                      const transport::RightOfWayRegistry& row,
                      const std::vector<isp::IspProfile>& profiles, DiagnosticSink& sink);

FiberMap load_dataset(const std::string& path, const transport::CityDatabase& cities,
                      const transport::RightOfWayRegistry& row,
                      const std::vector<isp::IspProfile>& profiles);

}  // namespace intertubes::core
