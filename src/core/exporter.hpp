// Map export — the cartographic artifacts of the paper.
//
// Figure 1 is the conduit map of the continental US; Figures 2–3 are the
// National Atlas road/rail layers; §8 lists "annotated versions of our
// map, focusing in particular on traffic and propagation delay" as future
// work.  This module renders all of them as GeoJSON, plus a regional
// summary of the map's "prominent features" (§2.5: dense northeast,
// long-haul hubs, sparse upper plains, parallel deployments, spurs).
#pragma once

#include <cstdint>
#include <string>

#include "core/fiber_map.hpp"
#include "transport/network.hpp"
#include "transport/row.hpp"

namespace intertubes::core {

/// Per-conduit annotations for the future-work "annotated map".
struct MapAnnotations {
  /// Probe frequency per conduit, indexed by ConduitId (e.g. the totals of
  /// a traceroute::OverlayResult); empty disables the annotation.
  std::vector<std::uint64_t> probes_per_conduit;
};

/// GeoJSON of the constructed fiber map: one LineString per conduit with
/// tenancy / validation / length / delay (and, if given, traffic)
/// properties, plus one Point per node city.
std::string export_fiber_map_geojson(const FiberMap& map, const transport::CityDatabase& cities,
                                     const transport::RightOfWayRegistry& row,
                                     const MapAnnotations& annotations = {});

/// GeoJSON of one transport network (Figures 2–3).
std::string export_transport_geojson(const transport::TransportNetwork& network,
                                     const transport::CityDatabase& cities);

/// §2.5's qualitative map features, quantified per region: conduit count,
/// conduit-km, and mean tenancy, ordered West/Mountain/Central/South/East.
struct RegionSummary {
  transport::Region region;
  std::size_t conduits = 0;
  double conduit_km = 0.0;
  double mean_tenants = 0.0;
  std::size_t nodes = 0;
};

std::vector<RegionSummary> summarize_regions(const FiberMap& map,
                                             const transport::CityDatabase& cities,
                                             const transport::RightOfWayRegistry& row);

/// The map's long-haul hub cities: nodes ranked by incident conduit count
/// (the paper calls out Denver and Salt Lake City).
std::vector<std::pair<transport::CityId, std::size_t>> hub_ranking(
    const FiberMap& map, std::size_t top_n = 10);

}  // namespace intertubes::core
