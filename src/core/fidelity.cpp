#include "core/fidelity.hpp"

#include <algorithm>
#include <cmath>

namespace intertubes::core {

using transport::CorridorId;

FidelityReport score_fidelity(const FiberMap& map, const isp::GroundTruth& truth) {
  FidelityReport report;

  const auto& truth_tenants = truth.tenants_by_corridor();
  std::vector<char> truth_lit(truth_tenants.size(), 0);
  for (CorridorId cid = 0; cid < truth_tenants.size(); ++cid) {
    if (!truth_tenants[cid].empty()) {
      truth_lit[cid] = 1;
      ++report.true_conduits;
      report.true_tenancies += truth_tenants[cid].size();
    }
  }

  std::size_t mae_n = 0;
  double mae_sum = 0.0;
  for (const Conduit& conduit : map.conduits()) {
    ++report.mapped_conduits;
    report.mapped_tenancies += conduit.tenants.size();
    const bool real = conduit.corridor < truth_lit.size() && truth_lit[conduit.corridor];
    if (real) {
      ++report.detected_conduits;
      const auto& truth_set = truth_tenants[conduit.corridor];
      for (isp::IspId t : conduit.tenants) {
        if (std::binary_search(truth_set.begin(), truth_set.end(), t)) {
          ++report.correct_tenancies;
        }
      }
      mae_sum += std::abs(static_cast<double>(conduit.tenants.size()) -
                          static_cast<double>(truth_set.size()));
      ++mae_n;
    }
  }

  auto ratio = [](std::size_t num, std::size_t den) {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
  };
  report.conduit_precision = ratio(report.detected_conduits, report.mapped_conduits);
  report.conduit_recall = ratio(report.detected_conduits, report.true_conduits);
  report.tenancy_precision = ratio(report.correct_tenancies, report.mapped_tenancies);
  report.tenancy_recall = ratio(report.correct_tenancies, report.true_tenancies);
  report.tenant_count_mae = mae_n == 0 ? 0.0 : mae_sum / static_cast<double>(mae_n);
  return report;
}

}  // namespace intertubes::core
