// Dataset diffing — tooling for the community-mapping workflow the paper
// proposes in §2.5: "we hope this work will spark a community effort aimed
// at gradually improving the overall fidelity of our basic map by
// contributing to a growing database of information about geocoded
// conduits and their tenants."  Contributions arrive as new dataset
// versions; this module computes what changed.
#pragma once

#include <string>
#include <vector>

#include "core/fiber_map.hpp"

namespace intertubes::core {

/// A conduit identified portably by its endpoints (city ids) — dataset
/// conduit ids are not stable across versions.
struct ConduitKey {
  transport::CityId a = transport::kNoCity;  ///< min endpoint
  transport::CityId b = transport::kNoCity;  ///< max endpoint
  auto operator<=>(const ConduitKey&) const = default;
};

struct TenancyChange {
  ConduitKey conduit;
  std::vector<isp::IspId> added_tenants;
  std::vector<isp::IspId> removed_tenants;
};

struct MapDiff {
  std::vector<ConduitKey> added_conduits;
  std::vector<ConduitKey> removed_conduits;
  std::vector<TenancyChange> tenancy_changes;  ///< conduits present in both
  std::size_t links_before = 0;
  std::size_t links_after = 0;

  bool empty() const noexcept {
    return added_conduits.empty() && removed_conduits.empty() && tenancy_changes.empty();
  }
};

/// Structural diff from `before` to `after`.  Conduits are matched by
/// endpoint pair; parallel conduits between the same cities are merged for
/// diffing purposes (their tenant sets are unioned).
MapDiff diff_maps(const FiberMap& before, const FiberMap& after);

/// Human-readable rendering ("+ Denver, CO -- Cheyenne, WY [Sprint]").
std::string render_diff(const MapDiff& diff, const transport::CityDatabase& cities,
                        const std::vector<isp::IspProfile>& profiles);

}  // namespace intertubes::core
