// One-call construction of the full experimental world: transport
// networks → right-of-way registry → ground-truth deployments → published
// maps → public-records corpus → the four-step mapping pipeline.
//
// Examples, tests and benchmark harnesses all build on this type so that
// "the world at seed S" means exactly the same thing everywhere.
#pragma once

#include "core/pipeline.hpp"
#include "isp/published_maps.hpp"
#include "records/corpus.hpp"
#include "transport/network.hpp"
#include "transport/row.hpp"

namespace intertubes::core {

struct ScenarioParams {
  std::uint64_t seed = 0x1257;
  transport::NetworkGenParams network;
  isp::GroundTruthParams ground_truth;
  isp::PublishParams publish;
  records::CorpusParams corpus;
  PipelineParams pipeline;

  /// Propagate `seed` into every sub-parameter block.
  static ScenarioParams with_seed(std::uint64_t seed) {
    ScenarioParams p;
    p.seed = seed;
    p.network.seed = seed;
    p.ground_truth.seed = seed;
    p.publish.seed = seed;
    p.corpus.seed = seed;
    return p;
  }
};

class Scenario {
 public:
  explicit Scenario(const ScenarioParams& params = ScenarioParams::with_seed(0x1257));

  static const transport::CityDatabase& cities() {
    return transport::CityDatabase::us_default();
  }

  const transport::TransportBundle& bundle() const noexcept { return bundle_; }
  const transport::RightOfWayRegistry& row() const noexcept { return row_; }
  const isp::GroundTruth& truth() const noexcept { return truth_; }
  const std::vector<isp::PublishedMap>& published() const noexcept { return published_; }
  const records::Corpus& corpus() const noexcept { return corpus_; }
  const PipelineResult& pipeline() const noexcept { return pipeline_; }
  const FiberMap& map() const noexcept { return pipeline_.map; }

 private:
  transport::TransportBundle bundle_;
  transport::RightOfWayRegistry row_;
  isp::GroundTruth truth_;
  std::vector<isp::PublishedMap> published_;
  records::Corpus corpus_;
  PipelineResult pipeline_;
};

}  // namespace intertubes::core
