#include "core/fiber_map.hpp"

#include <algorithm>
#include <set>

#include "isp/ground_truth.hpp"
#include "util/check.hpp"

namespace intertubes::core {

using isp::IspId;
using transport::CityId;
using transport::Corridor;
using transport::CorridorId;

const std::vector<ConduitId> FiberMap::kEmpty{};

ConduitId FiberMap::ensure_conduit(const Corridor& corridor, Provenance provenance) {
  const auto it = by_corridor_.find(corridor.id);
  if (it != by_corridor_.end()) return it->second;
  Conduit c;
  c.id = static_cast<ConduitId>(conduits_.size());
  c.corridor = corridor.id;
  c.a = corridor.a;
  c.b = corridor.b;
  c.length_km = corridor.length_km;
  c.provenance = provenance;
  by_corridor_[corridor.id] = c.id;
  if (!adjacency_.empty()) {
    // Keep the lazily built adjacency coherent.
    const std::size_t needed = std::max(c.a, c.b) + 1;
    if (adjacency_.size() < needed) adjacency_.resize(needed);
    adjacency_[c.a].push_back(c.id);
    adjacency_[c.b].push_back(c.id);
  }
  conduits_.push_back(std::move(c));
  return conduits_.back().id;
}

std::optional<ConduitId> FiberMap::conduit_for_corridor(CorridorId corridor) const {
  const auto it = by_corridor_.find(corridor);
  if (it == by_corridor_.end()) return std::nullopt;
  return it->second;
}

void FiberMap::add_tenant(ConduitId conduit, IspId isp) {
  IT_CHECK(conduit < conduits_.size());
  IT_CHECK(isp < num_isps_);
  auto& tenants = conduits_[conduit].tenants;
  const auto pos = std::lower_bound(tenants.begin(), tenants.end(), isp);
  if (pos == tenants.end() || *pos != isp) tenants.insert(pos, isp);
}

void FiberMap::mark_validated(ConduitId conduit) {
  IT_CHECK(conduit < conduits_.size());
  conduits_[conduit].validated = true;
}

LinkId FiberMap::add_link(IspId isp, CityId a, CityId b, const std::vector<ConduitId>& conduits,
                          bool geocoded) {
  IT_CHECK(isp < num_isps_);
  IT_CHECK(!conduits.empty());
  Link link;
  link.id = static_cast<LinkId>(links_.size());
  link.isp = isp;
  link.a = a;
  link.b = b;
  link.conduits = conduits;
  link.geocoded = geocoded;
  for (ConduitId cid : conduits) {
    IT_CHECK(cid < conduits_.size());
    link.length_km += conduits_[cid].length_km;
    add_tenant(cid, isp);
  }
  links_.push_back(std::move(link));
  return links_.back().id;
}

void FiberMap::replace_link_conduits(LinkId id, const std::vector<ConduitId>& conduits) {
  IT_CHECK(id < links_.size());
  IT_CHECK(!conduits.empty());
  Link& link = links_[id];
  link.conduits = conduits;
  link.length_km = 0.0;
  for (ConduitId cid : conduits) {
    IT_CHECK(cid < conduits_.size());
    link.length_km += conduits_[cid].length_km;
    add_tenant(cid, link.isp);
  }
}

const Conduit& FiberMap::conduit(ConduitId id) const {
  IT_CHECK(id < conduits_.size());
  return conduits_[id];
}

const Link& FiberMap::link(LinkId id) const {
  IT_CHECK(id < links_.size());
  return links_[id];
}

const std::vector<ConduitId>& FiberMap::conduits_at(CityId c) const {
  if (adjacency_.empty()) prepare_for_concurrent_reads();
  if (c >= adjacency_.size()) return kEmpty;
  return adjacency_[c];
}

void FiberMap::prepare_for_concurrent_reads() const {
  if (!adjacency_.empty()) return;
  std::size_t max_city = 0;
  for (const auto& conduit : conduits_) {
    max_city = std::max<std::size_t>({max_city, conduit.a, conduit.b});
  }
  adjacency_.resize(max_city + 1);
  for (const auto& conduit : conduits_) {
    adjacency_[conduit.a].push_back(conduit.id);
    adjacency_[conduit.b].push_back(conduit.id);
  }
}

std::vector<CityId> FiberMap::nodes() const {
  std::set<CityId> cities;
  for (const auto& c : conduits_) {
    cities.insert(c.a);
    cities.insert(c.b);
  }
  return {cities.begin(), cities.end()};
}

std::vector<LinkId> FiberMap::links_of(IspId isp) const {
  std::vector<LinkId> out;
  for (const auto& link : links_) {
    if (link.isp == isp) out.push_back(link.id);
  }
  return out;
}

std::vector<CityId> FiberMap::nodes_of(IspId isp) const {
  std::set<CityId> cities;
  for (const auto& link : links_) {
    if (link.isp == isp) {
      cities.insert(link.a);
      cities.insert(link.b);
    }
  }
  return {cities.begin(), cities.end()};
}

std::vector<ConduitId> FiberMap::conduits_of(IspId isp) const {
  std::vector<ConduitId> out;
  for (const auto& c : conduits_) {
    if (std::binary_search(c.tenants.begin(), c.tenants.end(), isp)) out.push_back(c.id);
  }
  return out;
}

FiberMap map_from_ground_truth(const isp::GroundTruth& truth,
                               const transport::RightOfWayRegistry& row) {
  FiberMap map(truth.num_isps());
  for (const auto& link : truth.links()) {
    std::vector<ConduitId> conduits;
    conduits.reserve(link.corridors.size());
    for (CorridorId cid : link.corridors) {
      conduits.push_back(map.ensure_conduit(row.corridor(cid), Provenance::GeocodedMap));
    }
    map.add_link(link.isp, link.a, link.b, conduits, /*geocoded=*/true);
  }
  return map;
}

MapStats compute_stats(const FiberMap& map) {
  MapStats stats;
  stats.nodes = map.nodes().size();
  stats.links = map.links().size();
  stats.conduits = map.conduits().size();
  for (const auto& c : map.conduits()) {
    if (c.validated) ++stats.validated_conduits;
    stats.total_conduit_km += c.length_km;
  }
  stats.nodes_per_isp.resize(map.num_isps(), 0);
  stats.links_per_isp.resize(map.num_isps(), 0);
  for (IspId isp = 0; isp < map.num_isps(); ++isp) {
    stats.nodes_per_isp[isp] = map.nodes_of(isp).size();
    stats.links_per_isp[isp] = map.links_of(isp).size();
  }
  return stats;
}

}  // namespace intertubes::core
