// The long-haul fiber map — the paper's primary artifact.
//
// Terminology follows the paper: a *conduit* is a tube between two
// adjacent cities that houses the fiber of one or more providers; a *link*
// is one provider's long-haul fiber between two of its POPs, realized as a
// sequence of conduits; a *node* is a city touched by the map.  Conduits
// are identified with right-of-way corridors, which is what makes "two
// providers in the same trench" a well-defined geometric statement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isp/profiles.hpp"
#include "transport/row.hpp"

namespace intertubes::core {

using LinkId = std::uint32_t;
using ConduitId = std::uint32_t;
inline constexpr ConduitId kNoConduit = 0xffffffffu;

/// How a conduit's existence / tenancy entered the map.
enum class Provenance : std::uint8_t {
  GeocodedMap,     ///< step 1: explicit geometry in a published map
  PublicRecords,   ///< step 2/4: inferred or validated from documents
  RowAlignment,    ///< step 3: tentative alignment of a POP-only link
};

struct Conduit {
  ConduitId id = 0;
  transport::CorridorId corridor = transport::kNoCorridor;
  transport::CityId a = transport::kNoCity;
  transport::CityId b = transport::kNoCity;
  double length_km = 0.0;
  std::vector<isp::IspId> tenants;  ///< sorted, unique
  /// True once step 2/4 found document support for this conduit.
  bool validated = false;
  Provenance provenance = Provenance::GeocodedMap;
};

struct Link {
  LinkId id = 0;
  isp::IspId isp = isp::kNoIsp;
  transport::CityId a = transport::kNoCity;
  transport::CityId b = transport::kNoCity;
  std::vector<ConduitId> conduits;  ///< in path order a→b
  double length_km = 0.0;
  bool geocoded = false;  ///< came from a geocoded published map
};

/// Mutable map under construction; immutable once handed to analyses.
class FiberMap {
 public:
  explicit FiberMap(std::size_t num_isps) : num_isps_(num_isps) {}

  std::size_t num_isps() const noexcept { return num_isps_; }

  /// Get or create the conduit for a corridor.
  ConduitId ensure_conduit(const transport::Corridor& corridor, Provenance provenance);

  /// Returns the conduit for a corridor if it exists in the map.
  std::optional<ConduitId> conduit_for_corridor(transport::CorridorId corridor) const;

  /// Add a tenant (idempotent).
  void add_tenant(ConduitId conduit, isp::IspId isp);
  void mark_validated(ConduitId conduit);

  /// Record a link; returns its id.
  LinkId add_link(isp::IspId isp, transport::CityId a, transport::CityId b,
                  const std::vector<ConduitId>& conduits, bool geocoded);

  /// Re-route an existing link over a new conduit sequence (step-4
  /// corrections).  Tenancy on the new conduits is added; tenancy on the
  /// old ones is deliberately retained (the evidence of presence stands).
  void replace_link_conduits(LinkId id, const std::vector<ConduitId>& conduits);

  const std::vector<Conduit>& conduits() const noexcept { return conduits_; }
  const std::vector<Link>& links() const noexcept { return links_; }
  const Conduit& conduit(ConduitId id) const;
  const Link& link(LinkId id) const;

  /// Conduits incident to a city (for graph traversals).
  ///
  /// NOT safe for concurrent first use: the adjacency is built lazily on
  /// the first call (and invalidated by ensure_conduit).  Call
  /// prepare_for_concurrent_reads() once after construction to make all
  /// subsequent const queries safe from many threads (the serve/ read
  /// path relies on this).
  const std::vector<ConduitId>& conduits_at(transport::CityId c) const;

  /// Eagerly build the lazy adjacency so later const queries perform no
  /// writes.  Must be called before the map is shared across threads;
  /// mutating the map afterwards (ensure_conduit) requires another call.
  void prepare_for_concurrent_reads() const;

  /// Cities that appear as a conduit endpoint.
  std::vector<transport::CityId> nodes() const;

  /// Link ids of one ISP.
  std::vector<LinkId> links_of(isp::IspId isp) const;

  /// Distinct cities appearing as endpoints of one ISP's links.
  std::vector<transport::CityId> nodes_of(isp::IspId isp) const;

  /// Conduit ids with >= 1 tenant equal to `isp`.
  std::vector<ConduitId> conduits_of(isp::IspId isp) const;

 private:
  std::size_t num_isps_;
  std::vector<Conduit> conduits_;
  std::vector<Link> links_;
  std::unordered_map<transport::CorridorId, ConduitId> by_corridor_;
  mutable std::vector<std::vector<ConduitId>> adjacency_;  // grown lazily
  static const std::vector<ConduitId> kEmpty;
};

/// Headline statistics (the numbers quoted in §2.5: nodes, links,
/// conduits; per-ISP figures for Table 1).
struct MapStats {
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t conduits = 0;
  std::size_t validated_conduits = 0;
  double total_conduit_km = 0.0;
  std::vector<std::size_t> nodes_per_isp;
  std::vector<std::size_t> links_per_isp;
};

MapStats compute_stats(const FiberMap& map);

}  // namespace intertubes::core

// Forward declaration to avoid a core ↔ isp include cycle in this header.
namespace intertubes::isp {
class GroundTruth;
}

namespace intertubes::core {

/// Build a FiberMap directly from ground truth (a "perfect oracle" map).
/// Used by ablations and as the fidelity upper bound — the real pipeline
/// must approach this from published artifacts alone.
FiberMap map_from_ground_truth(const isp::GroundTruth& truth,
                               const transport::RightOfWayRegistry& row);

}  // namespace intertubes::core
