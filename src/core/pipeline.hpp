// The four-step map construction pipeline of §2.
//
//   Step 1 — ingest geocoded published maps: snap each published link's
//            (noisy) geometry onto right-of-way corridors; each snapped
//            corridor becomes a conduit, and geometric co-location of two
//            ISPs' links in one corridor is conduit sharing.
//   Step 2 — check the initial map against the public-records corpus:
//            validate conduit locations and *infer additional tenants*
//            from documents.
//   Step 3 — ingest POP-only published maps: tentatively align each link
//            along the closest right-of-way, preferring corridors already
//            known to hold conduit (the paper's economics assumption).
//   Step 4 — validate/correct the augmented map with another records pass:
//            re-route tentative placements that the paper trail
//            contradicts, and validate those it supports.
#pragma once

#include "core/fiber_map.hpp"
#include "isp/published_maps.hpp"
#include "records/corpus.hpp"
#include "records/inference.hpp"

namespace intertubes::core {

struct PipelineParams {
  /// Buffer (km) within which published geometry must track a corridor to
  /// snap onto it — generous because published maps carry georeferencing
  /// error.
  double snap_buffer_km = 6.5;
  /// Minimum fraction of a corridor's length that must be covered by the
  /// published geometry's buffer for the corridor to be a snap candidate.
  double snap_coverage = 0.8;
  /// Step-3 alignment: cost multiplier for corridors already holding a
  /// known conduit (vs. 1.0 for dark corridors).
  double known_conduit_discount = 0.45;
  /// Step-4 correction: a tentative link is re-routed when fewer than this
  /// fraction of its conduits find document support.
  double correction_threshold = 0.34;
  /// Step-4 re-route: cost multiplier for corridors where the records pass
  /// found this ISP.
  double evidence_discount = 0.25;
  records::InferenceParams inference;
};

/// Per-step accounting, reported alongside the map.
struct StepReport {
  std::size_t links_added = 0;
  std::size_t conduits_added = 0;
  std::size_t conduits_validated = 0;
  std::size_t tenants_inferred = 0;   ///< tenant entries added by records
  std::size_t links_rerouted = 0;     ///< step 4 corrections
  std::size_t snap_fallbacks = 0;     ///< geometry too noisy, used ROW shortest path
  std::size_t isps_dropped = 0;       ///< whole published maps dropped (fault isolation)
  std::size_t records_quarantined = 0;  ///< individual published links quarantined
};

struct PipelineResult {
  FiberMap map;
  StepReport step1;
  StepReport step2;
  StepReport step3;
  StepReport step4;
};

class MapBuilder {
 public:
  MapBuilder(const transport::CityDatabase& cities, const transport::RightOfWayRegistry& row,
             const std::vector<isp::IspProfile>& profiles, const records::Corpus& corpus,
             PipelineParams params = {});

  // inference_ refers to the sibling member index_; moving or copying the
  // builder would dangle it.  Construction in place (guaranteed elision)
  // still works.
  MapBuilder(const MapBuilder&) = delete;
  MapBuilder& operator=(const MapBuilder&) = delete;

  /// Run all four steps over the published maps (order does not matter;
  /// geocoded maps are consumed by step 1, POP-only maps by step 3).
  ///
  /// The sink overload is fault-isolating: each published map is validated
  /// before any of it is ingested, malformed links are quarantined with a
  /// diagnostic (`records_quarantined`), and an ISP whose map is invalid
  /// wholesale — or whose ingest throws — is dropped (`isps_dropped`)
  /// instead of aborting the build.  Under a strict sink the first defect
  /// still fails fast, naming its location.  The sink-less overload runs
  /// with a strict sink.
  PipelineResult build(const std::vector<isp::PublishedMap>& published);
  PipelineResult build(const std::vector<isp::PublishedMap>& published,
                       DiagnosticSink& sink);

  /// Individual steps, exposed for tests and ablations.  Steps must be
  /// applied in order to a fresh FiberMap.  The ingest steps (1 and 3)
  /// take the diagnostics sink; sink-less overloads run strict.
  void step1_initial_map(FiberMap& map, const std::vector<isp::PublishedMap>& published,
                         StepReport& report) const;
  void step1_initial_map(FiberMap& map, const std::vector<isp::PublishedMap>& published,
                         StepReport& report, DiagnosticSink& sink) const;
  void step2_check_map(FiberMap& map, StepReport& report) const;
  void step3_augment(FiberMap& map, const std::vector<isp::PublishedMap>& published,
                     StepReport& report) const;
  void step3_augment(FiberMap& map, const std::vector<isp::PublishedMap>& published,
                     StepReport& report, DiagnosticSink& sink) const;
  void step4_validate(FiberMap& map, StepReport& report) const;

  /// Snap one published geometry onto a corridor path from a to b.
  /// Returns corridor ids in path order; empty if no path through snap
  /// candidates exists (caller falls back to the ROW shortest path).
  std::vector<transport::CorridorId> snap_geometry(transport::CityId a, transport::CityId b,
                                                   const geo::Polyline& geometry) const;

 private:
  const transport::CityDatabase& cities_;
  const transport::RightOfWayRegistry& row_;
  const std::vector<isp::IspProfile>& profiles_;
  const records::Corpus& corpus_;
  PipelineParams params_;
  records::SearchIndex index_;
  records::EntityExtractor extractor_;
  records::SharingInference inference_;
};

}  // namespace intertubes::core
