#include "core/scenario.hpp"

namespace intertubes::core {

Scenario::Scenario(const ScenarioParams& params)
    : bundle_(transport::generate_bundle(cities(), params.network)),
      row_(bundle_),
      truth_(isp::generate_ground_truth(cities(), row_, isp::default_profiles(),
                                        params.ground_truth)),
      published_(isp::render_all_published_maps(truth_, row_, params.publish)),
      corpus_(records::generate_corpus(cities(), row_, truth_, params.corpus)),
      pipeline_(MapBuilder(cities(), row_, truth_.profiles(), corpus_, params.pipeline)
                    .build(published_)) {}

}  // namespace intertubes::core
