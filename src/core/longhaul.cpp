#include "core/longhaul.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace intertubes::core {

using transport::CityDatabase;

LongHaulReason classify_conduit(const Conduit& conduit, const CityDatabase& cities,
                                const LongHaulCriteria& criteria) {
  LongHaulReason reason = LongHaulReason::None;
  if (conduit.length_km >= criteria.min_span_km) reason = reason | LongHaulReason::Span;
  if (cities.city(conduit.a).population >= criteria.min_population &&
      cities.city(conduit.b).population >= criteria.min_population) {
    reason = reason | LongHaulReason::Population;
  }
  if (conduit.tenants.size() >= criteria.min_tenants) reason = reason | LongHaulReason::Shared;
  return reason;
}

LongHaulReason classify_link(const FiberMap& map, const Link& link, const CityDatabase& cities,
                             const LongHaulCriteria& criteria) {
  LongHaulReason reason = LongHaulReason::None;
  if (link.length_km >= criteria.min_span_km) reason = reason | LongHaulReason::Span;
  if (cities.city(link.a).population >= criteria.min_population &&
      cities.city(link.b).population >= criteria.min_population) {
    reason = reason | LongHaulReason::Population;
  }
  for (ConduitId cid : link.conduits) {
    if (map.conduit(cid).tenants.size() >= criteria.min_tenants) {
      reason = reason | LongHaulReason::Shared;
      break;
    }
  }
  return reason;
}

LongHaulCensus long_haul_census(const FiberMap& map, const CityDatabase& cities,
                                const LongHaulCriteria& criteria) {
  LongHaulCensus census;
  for (const Conduit& conduit : map.conduits()) {
    const auto reason = classify_conduit(conduit, cities, criteria);
    if (reason == LongHaulReason::None) {
      ++census.metro_conduits;
      continue;
    }
    ++census.long_haul_conduits;
    if (has_reason(reason, LongHaulReason::Span)) ++census.by_span;
    if (has_reason(reason, LongHaulReason::Population)) ++census.by_population;
    if (has_reason(reason, LongHaulReason::Shared)) ++census.by_sharing;
  }
  for (const Link& link : map.links()) {
    if (classify_link(map, link, cities, criteria) == LongHaulReason::None) {
      ++census.metro_links;
    } else {
      ++census.long_haul_links;
    }
  }
  return census;
}

FiberMap filter_long_haul(const FiberMap& map, const CityDatabase& cities,
                          const LongHaulCriteria& criteria) {
  FiberMap filtered(map.num_isps());
  // Old conduit id → new conduit id, created on first use.
  std::unordered_map<ConduitId, ConduitId> remap;
  for (const Link& link : map.links()) {
    if (classify_link(map, link, cities, criteria) == LongHaulReason::None) continue;
    std::vector<ConduitId> conduits;
    conduits.reserve(link.conduits.size());
    for (ConduitId old_id : link.conduits) {
      const auto it = remap.find(old_id);
      if (it != remap.end()) {
        conduits.push_back(it->second);
        continue;
      }
      const Conduit& old_conduit = map.conduit(old_id);
      // Rebuild a corridor record from the old conduit (geometry lives in
      // the ROW registry; the filtered map only needs topology + length).
      transport::Corridor corridor;
      corridor.id = old_conduit.corridor;
      corridor.a = old_conduit.a;
      corridor.b = old_conduit.b;
      corridor.length_km = old_conduit.length_km;
      corridor.path = geo::Polyline::straight(cities.city(old_conduit.a).location,
                                              cities.city(old_conduit.b).location);
      const ConduitId new_id = filtered.ensure_conduit(corridor, old_conduit.provenance);
      if (old_conduit.validated) filtered.mark_validated(new_id);
      remap.emplace(old_id, new_id);
      conduits.push_back(new_id);
    }
    filtered.add_link(link.isp, link.a, link.b, conduits, link.geocoded);
  }
  return filtered;
}

}  // namespace intertubes::core
