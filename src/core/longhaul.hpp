// The paper's concrete long-haul definition (§2):
//
//   "We define a long-haul link as one that spans at least 30 miles, or
//    that connects population centers of at least 100,000 people, or that
//    is shared by at least 2 providers."
//
// This module implements that predicate over links and conduits and can
// filter a FiberMap down to its long-haul core — the operation the paper
// applies when deciding what belongs in the map at all.
#pragma once

#include "core/fiber_map.hpp"

namespace intertubes::core {

struct LongHaulCriteria {
  double min_span_km = 48.28;            ///< 30 miles
  std::uint32_t min_population = 100000; ///< both endpoints at least this
  std::size_t min_tenants = 2;           ///< sharing alone qualifies
};

/// Why a link/conduit qualifies (bitwise-or of reasons; 0 = not long-haul).
enum class LongHaulReason : std::uint8_t {
  None = 0,
  Span = 1,        ///< spans >= 30 miles
  Population = 2,  ///< joins two >= 100k population centers
  Shared = 4,      ///< shared by >= 2 providers
};

constexpr LongHaulReason operator|(LongHaulReason a, LongHaulReason b) noexcept {
  return static_cast<LongHaulReason>(static_cast<std::uint8_t>(a) |
                                     static_cast<std::uint8_t>(b));
}
constexpr bool has_reason(LongHaulReason value, LongHaulReason flag) noexcept {
  return (static_cast<std::uint8_t>(value) & static_cast<std::uint8_t>(flag)) != 0;
}

/// Classify one conduit.
LongHaulReason classify_conduit(const Conduit& conduit, const transport::CityDatabase& cities,
                                const LongHaulCriteria& criteria = {});

/// Classify one link (span = total route length; population = endpoints;
/// shared = any of its conduits shared).
LongHaulReason classify_link(const FiberMap& map, const Link& link,
                             const transport::CityDatabase& cities,
                             const LongHaulCriteria& criteria = {});

/// Census of the map under the definition.
struct LongHaulCensus {
  std::size_t long_haul_conduits = 0;
  std::size_t metro_conduits = 0;  ///< conduits failing every criterion
  std::size_t by_span = 0;         ///< qualifying via the span rule
  std::size_t by_population = 0;
  std::size_t by_sharing = 0;
  std::size_t long_haul_links = 0;
  std::size_t metro_links = 0;
};

LongHaulCensus long_haul_census(const FiberMap& map, const transport::CityDatabase& cities,
                                const LongHaulCriteria& criteria = {});

/// A copy of the map containing only long-haul links (and the conduits
/// they ride).  Conduit ids are reassigned; tenancy is recomputed from the
/// surviving links.
FiberMap filter_long_haul(const FiberMap& map, const transport::CityDatabase& cities,
                          const LongHaulCriteria& criteria = {});

}  // namespace intertubes::core
