// Map fidelity scoring — a capability the paper could not have: because
// the world here is generated, the constructed map can be graded against
// ground truth.  Used by integration tests and the EXPERIMENTS.md report
// to show the pipeline genuinely recovers the infrastructure rather than
// copying it.
#pragma once

#include "core/fiber_map.hpp"
#include "isp/ground_truth.hpp"

namespace intertubes::core {

struct FidelityReport {
  /// Conduit detection: a corridor counts as detected when the map holds a
  /// conduit on it.
  std::size_t true_conduits = 0;       ///< lit corridors in ground truth
  std::size_t mapped_conduits = 0;     ///< conduits in constructed map
  std::size_t detected_conduits = 0;   ///< intersection
  double conduit_precision = 0.0;
  double conduit_recall = 0.0;

  /// Tenancy: (corridor, ISP) pairs.
  std::size_t true_tenancies = 0;
  std::size_t mapped_tenancies = 0;
  std::size_t correct_tenancies = 0;
  double tenancy_precision = 0.0;
  double tenancy_recall = 0.0;

  /// Mean absolute error of per-conduit tenant counts, over corridors
  /// present in both map and truth (the quantity risk metrics consume).
  double tenant_count_mae = 0.0;
};

FidelityReport score_fidelity(const FiberMap& map, const isp::GroundTruth& truth);

}  // namespace intertubes::core
