// A non-owning (but lifetime-pinning) view of "a world": the four
// artifacts every downstream analysis needs — the city database, the
// right-of-way registry, the ground-truth deployments, and the constructed
// FiberMap — decoupled from which generator produced them.
//
// The paper world comes from core::Scenario (the US map at a seed);
// synthetic planet-scale worlds come from worldgen::World.  Consumers that
// take a WorldView (serve::Snapshot and everything behind it) run on
// either unchanged.  `owner` type-erases the backing object so the view
// can be copied into long-lived snapshots without dangling.
#pragma once

#include <memory>

#include "core/fiber_map.hpp"
#include "core/scenario.hpp"

namespace intertubes::core {

struct WorldView {
  /// Keeps the backing world (Scenario, worldgen::World, ...) alive for as
  /// long as any copy of the view exists.
  std::shared_ptr<const void> owner;
  const transport::CityDatabase* cities = nullptr;
  const transport::RightOfWayRegistry* row = nullptr;
  const isp::GroundTruth* truth = nullptr;
  const FiberMap* map = nullptr;

  bool valid() const noexcept {
    return cities != nullptr && row != nullptr && truth != nullptr && map != nullptr;
  }

  /// View of the paper world.  The scenario is pinned by `owner`.
  static WorldView of(std::shared_ptr<const Scenario> scenario) {
    WorldView view;
    view.cities = &Scenario::cities();
    view.row = &scenario->row();
    view.truth = &scenario->truth();
    view.map = &scenario->map();
    view.owner = std::move(scenario);
    return view;
  }
};

}  // namespace intertubes::core
