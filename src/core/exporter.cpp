#include "core/exporter.hpp"

#include <algorithm>
#include <map>

#include "geo/geojson.hpp"
#include "geo/latency.hpp"
#include "util/check.hpp"

namespace intertubes::core {

using transport::CityDatabase;
using transport::CityId;
using transport::Region;

std::string export_fiber_map_geojson(const FiberMap& map, const CityDatabase& cities,
                                     const transport::RightOfWayRegistry& row,
                                     const MapAnnotations& annotations) {
  geo::GeoJsonWriter writer;
  for (const Conduit& conduit : map.conduits()) {
    const auto& corridor = row.corridor(conduit.corridor);
    std::vector<geo::GeoProperty> props{
        geo::GeoProperty::str("kind", "conduit"),
        geo::GeoProperty::str("from", cities.city(conduit.a).display_name()),
        geo::GeoProperty::str("to", cities.city(conduit.b).display_name()),
        geo::GeoProperty::str("row_mode", std::string(transport::mode_name(corridor.mode))),
        geo::GeoProperty::num("tenants", static_cast<double>(conduit.tenants.size())),
        geo::GeoProperty::num("validated", conduit.validated ? 1.0 : 0.0),
        geo::GeoProperty::num("length_km", conduit.length_km),
        geo::GeoProperty::num("delay_ms", geo::fiber_delay_ms(conduit.length_km)),
    };
    if (conduit.id < annotations.probes_per_conduit.size()) {
      props.push_back(geo::GeoProperty::num(
          "probes", static_cast<double>(annotations.probes_per_conduit[conduit.id])));
    }
    writer.add_linestring(corridor.path, props);
  }
  for (CityId node : map.nodes()) {
    const auto& city = cities.city(node);
    writer.add_point(city.location,
                     {geo::GeoProperty::str("kind", "node"),
                      geo::GeoProperty::str("name", city.display_name()),
                      geo::GeoProperty::num("population", static_cast<double>(city.population)),
                      geo::GeoProperty::num("degree",
                                            static_cast<double>(map.conduits_at(node).size()))});
  }
  return writer.to_string();
}

std::string export_transport_geojson(const transport::TransportNetwork& network,
                                     const CityDatabase& cities) {
  geo::GeoJsonWriter writer;
  for (const auto& edge : network.edges()) {
    writer.add_linestring(
        edge.path, {geo::GeoProperty::str("kind", std::string(transport::mode_name(edge.mode))),
                    geo::GeoProperty::str("from", cities.city(edge.a).display_name()),
                    geo::GeoProperty::str("to", cities.city(edge.b).display_name()),
                    geo::GeoProperty::num("length_km", edge.length_km)});
  }
  return writer.to_string();
}

std::vector<RegionSummary> summarize_regions(const FiberMap& map, const CityDatabase& cities,
                                             const transport::RightOfWayRegistry& row) {
  (void)row;
  std::vector<RegionSummary> out;
  for (int r = 0; r < 5; ++r) {
    RegionSummary summary;
    summary.region = static_cast<Region>(r);
    out.push_back(summary);
  }
  // A conduit contributes to the region of each endpoint (half weight each
  // for km, so national totals add up).
  for (const Conduit& conduit : map.conduits()) {
    for (CityId end : {conduit.a, conduit.b}) {
      auto& summary = out[static_cast<std::size_t>(cities.city(end).region)];
      summary.conduit_km += conduit.length_km / 2.0;
      ++summary.conduits;  // endpoint-weighted count
      summary.mean_tenants += static_cast<double>(conduit.tenants.size());
    }
  }
  for (auto& summary : out) {
    if (summary.conduits > 0) summary.mean_tenants /= static_cast<double>(summary.conduits);
  }
  for (CityId node : map.nodes()) {
    ++out[static_cast<std::size_t>(cities.city(node).region)].nodes;
  }
  return out;
}

std::vector<std::pair<CityId, std::size_t>> hub_ranking(const FiberMap& map, std::size_t top_n) {
  std::map<CityId, std::size_t> degree;
  for (const Conduit& conduit : map.conduits()) {
    ++degree[conduit.a];
    ++degree[conduit.b];
  }
  std::vector<std::pair<CityId, std::size_t>> ranked(degree.begin(), degree.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (ranked.size() > top_n) ranked.resize(top_n);
  return ranked;
}

}  // namespace intertubes::core
