#include "core/dataset_diff.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace intertubes::core {

namespace {

using TenantsByKey = std::map<ConduitKey, std::set<isp::IspId>>;

TenantsByKey collect(const FiberMap& map) {
  TenantsByKey out;
  for (const auto& conduit : map.conduits()) {
    const ConduitKey key{std::min(conduit.a, conduit.b), std::max(conduit.a, conduit.b)};
    out[key].insert(conduit.tenants.begin(), conduit.tenants.end());
  }
  return out;
}

}  // namespace

MapDiff diff_maps(const FiberMap& before, const FiberMap& after) {
  MapDiff diff;
  diff.links_before = before.links().size();
  diff.links_after = after.links().size();

  const auto old_tenants = collect(before);
  const auto new_tenants = collect(after);

  for (const auto& [key, tenants] : new_tenants) {
    if (!old_tenants.count(key)) diff.added_conduits.push_back(key);
  }
  for (const auto& [key, tenants] : old_tenants) {
    if (!new_tenants.count(key)) diff.removed_conduits.push_back(key);
  }
  for (const auto& [key, old_set] : old_tenants) {
    const auto it = new_tenants.find(key);
    if (it == new_tenants.end()) continue;
    const auto& new_set = it->second;
    TenancyChange change;
    change.conduit = key;
    std::set_difference(new_set.begin(), new_set.end(), old_set.begin(), old_set.end(),
                        std::back_inserter(change.added_tenants));
    std::set_difference(old_set.begin(), old_set.end(), new_set.begin(), new_set.end(),
                        std::back_inserter(change.removed_tenants));
    if (!change.added_tenants.empty() || !change.removed_tenants.empty()) {
      diff.tenancy_changes.push_back(std::move(change));
    }
  }
  return diff;
}

std::string render_diff(const MapDiff& diff, const transport::CityDatabase& cities,
                        const std::vector<isp::IspProfile>& profiles) {
  std::ostringstream out;
  auto pair_name = [&cities](const ConduitKey& key) {
    return cities.city(key.a).display_name() + " -- " + cities.city(key.b).display_name();
  };
  auto isp_list = [&profiles](const std::vector<isp::IspId>& isps) {
    std::string names;
    for (std::size_t i = 0; i < isps.size(); ++i) {
      if (i) names += ", ";
      names += profiles[isps[i]].name;
    }
    return names;
  };
  for (const auto& key : diff.added_conduits) {
    out << "+ conduit " << pair_name(key) << "\n";
  }
  for (const auto& key : diff.removed_conduits) {
    out << "- conduit " << pair_name(key) << "\n";
  }
  for (const auto& change : diff.tenancy_changes) {
    out << "~ " << pair_name(change.conduit);
    if (!change.added_tenants.empty()) out << "  +[" << isp_list(change.added_tenants) << "]";
    if (!change.removed_tenants.empty()) out << "  -[" << isp_list(change.removed_tenants) << "]";
    out << "\n";
  }
  out << "links: " << diff.links_before << " -> " << diff.links_after << "\n";
  return out.str();
}

}  // namespace intertubes::core
