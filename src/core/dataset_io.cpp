#include "core/dataset_io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace intertubes::core {

using transport::CityDatabase;
using transport::CityId;

namespace {

std::string tenants_field(const Conduit& conduit, const std::vector<isp::IspProfile>& profiles) {
  std::vector<std::string> names;
  names.reserve(conduit.tenants.size());
  for (isp::IspId t : conduit.tenants) names.push_back(profiles[t].name);
  return join(names, ",");
}

std::string conduit_ids_field(const Link& link) {
  std::vector<std::string> ids;
  ids.reserve(link.conduits.size());
  for (ConduitId cid : link.conduits) ids.push_back(std::to_string(cid));
  return join(ids, ",");
}

CityId resolve_city(const CityDatabase& cities, const std::string& name) {
  const auto id = cities.find(name);
  IT_CHECK_MSG(id.has_value(), "unknown city in dataset: " + name);
  return *id;
}

isp::IspId resolve_isp(const std::vector<isp::IspProfile>& profiles, const std::string& name) {
  const auto id = isp::find_profile(profiles, name);
  IT_CHECK_MSG(id != isp::kNoIsp, "unknown ISP in dataset: " + name);
  return id;
}

transport::TransportMode parse_mode(const std::string& name) {
  if (name == "road") return transport::TransportMode::Road;
  if (name == "rail") return transport::TransportMode::Rail;
  if (name == "pipeline") return transport::TransportMode::Pipeline;
  IT_CHECK_MSG(false, "unknown ROW mode in dataset: " + name);
  return transport::TransportMode::Road;
}

}  // namespace

std::string serialize_dataset(const FiberMap& map, const CityDatabase& cities,
                              const transport::RightOfWayRegistry& row,
                              const std::vector<isp::IspProfile>& profiles) {
  std::ostringstream out;
  out << "# InterTubes long-haul fiber dataset\n";

  out << "#nodes\tcity\tstate\tlat\tlon\tpopulation\n";
  for (CityId node : map.nodes()) {
    const auto& city = cities.city(node);
    out << "node\t" << city.name << "\t" << city.state << "\t" << format_double(city.location.lat_deg, 4)
        << "\t" << format_double(city.location.lon_deg, 4) << "\t" << city.population << "\n";
  }

  out << "#conduits\tid\tfrom\tto\tmode\tlength_km\tvalidated\ttenants\n";
  for (const Conduit& conduit : map.conduits()) {
    out << "conduit\t" << conduit.id << "\t" << cities.city(conduit.a).display_name() << "\t"
        << cities.city(conduit.b).display_name() << "\t"
        << transport::mode_name(row.corridor(conduit.corridor).mode) << "\t"
        << format_double(conduit.length_km, 3) << "\t" << (conduit.validated ? 1 : 0) << "\t"
        << tenants_field(conduit, profiles) << "\n";
  }

  out << "#links\tisp\tfrom\tto\tgeocoded\tconduits\n";
  for (const Link& link : map.links()) {
    out << "link\t" << profiles[link.isp].name << "\t" << cities.city(link.a).display_name()
        << "\t" << cities.city(link.b).display_name() << "\t" << (link.geocoded ? 1 : 0) << "\t"
        << conduit_ids_field(link) << "\n";
  }
  return out.str();
}

FiberMap parse_dataset(const std::string& text, const CityDatabase& cities,
                       const transport::RightOfWayRegistry& row,
                       const std::vector<isp::IspProfile>& profiles) {
  FiberMap map(profiles.size());
  // Dataset conduit id → map conduit id.
  std::unordered_map<ConduitId, ConduitId> remap;
  // Tenancy as serialized, to restore tenants with no surviving link
  // (records-only tenants).
  std::vector<std::pair<ConduitId, isp::IspId>> tenancy;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, "\t");
    IT_CHECK_MSG(!fields.empty(), "malformed dataset line");
    if (fields[0] == "node") {
      IT_CHECK_MSG(fields.size() == 6, "malformed node line: " + line);
      resolve_city(cities, fields[1] + ", " + fields[2]);  // existence check
    } else if (fields[0] == "conduit") {
      IT_CHECK_MSG(fields.size() == 8, "malformed conduit line: " + line);
      const auto dataset_id = static_cast<ConduitId>(std::stoul(fields[1]));
      const CityId a = resolve_city(cities, fields[2]);
      const CityId b = resolve_city(cities, fields[3]);
      const auto mode = parse_mode(fields[4]);
      const double length_km = std::stod(fields[5]);
      transport::Corridor corridor;
      const auto direct = row.direct(a, b, mode);
      if (direct) {
        corridor = row.corridor(*direct);
      } else {
        corridor.id = 0x40000000u + dataset_id;  // synthetic corridor id
        corridor.a = a;
        corridor.b = b;
        corridor.mode = mode;
        corridor.path =
            geo::Polyline::straight(cities.city(a).location, cities.city(b).location);
        corridor.length_km = length_km;
      }
      const ConduitId cid = map.ensure_conduit(corridor, Provenance::GeocodedMap);
      if (fields[6] == "1") map.mark_validated(cid);
      IT_CHECK_MSG(!remap.count(dataset_id), "duplicate conduit id in dataset");
      remap[dataset_id] = cid;
      for (const auto& name : split(fields[7], ",")) {
        tenancy.emplace_back(cid, resolve_isp(profiles, name));
      }
    } else if (fields[0] == "link") {
      IT_CHECK_MSG(fields.size() == 6, "malformed link line: " + line);
      const isp::IspId isp_id = resolve_isp(profiles, fields[1]);
      const CityId a = resolve_city(cities, fields[2]);
      const CityId b = resolve_city(cities, fields[3]);
      std::vector<ConduitId> conduits;
      for (const auto& id_text : split(fields[5], ",")) {
        const auto dataset_id = static_cast<ConduitId>(std::stoul(id_text));
        const auto it = remap.find(dataset_id);
        IT_CHECK_MSG(it != remap.end(), "link references unknown conduit " + id_text);
        conduits.push_back(it->second);
      }
      map.add_link(isp_id, a, b, conduits, fields[4] == "1");
    } else {
      IT_CHECK_MSG(false, "unknown dataset record type: " + fields[0]);
    }
  }

  for (const auto& [cid, isp_id] : tenancy) map.add_tenant(cid, isp_id);
  return map;
}

void save_dataset(const std::string& path, const FiberMap& map, const CityDatabase& cities,
                  const transport::RightOfWayRegistry& row,
                  const std::vector<isp::IspProfile>& profiles) {
  write_file(path, serialize_dataset(map, cities, row, profiles));
}

FiberMap load_dataset(const std::string& path, const CityDatabase& cities,
                      const transport::RightOfWayRegistry& row,
                      const std::vector<isp::IspProfile>& profiles) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open dataset: " + path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return parse_dataset(text, cities, row, profiles);
}

}  // namespace intertubes::core
