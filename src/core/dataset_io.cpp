#include "core/dataset_io.hpp"

#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace intertubes::core {

using transport::CityDatabase;
using transport::CityId;

namespace {

std::string tenants_field(const Conduit& conduit, const std::vector<isp::IspProfile>& profiles) {
  std::vector<std::string> names;
  names.reserve(conduit.tenants.size());
  for (isp::IspId t : conduit.tenants) names.push_back(profiles[t].name);
  return join(names, ",");
}

std::string conduit_ids_field(const Link& link) {
  std::vector<std::string> ids;
  ids.reserve(link.conduits.size());
  for (ConduitId cid : link.conduits) ids.push_back(std::to_string(cid));
  return join(ids, ",");
}

/// Per-record parsing context: one Error diagnostic per quarantined
/// record, carrying the record's 1-based input line number.
struct RecordParser {
  const CityDatabase& cities;
  const transport::RightOfWayRegistry& row;
  const std::vector<isp::IspProfile>& profiles;
  DiagnosticSink& sink;
  const std::string& source;
  std::size_t line_no = 0;

  // Dataset conduit id → map conduit id.
  std::unordered_map<ConduitId, ConduitId> remap;
  // Tenancy as serialized, to restore tenants with no surviving link
  // (records-only tenants).
  std::vector<std::pair<ConduitId, isp::IspId>> tenancy;

  bool fail(const std::string& message) {
    sink.report(Severity::Error, source, line_no, message);
    return false;
  }

  std::optional<CityId> resolve_city(const std::string& name) {
    return cities.find(name);
  }

  std::optional<bool> parse_flag(const std::string& field) {
    if (field == "0") return false;
    if (field == "1") return true;
    return std::nullopt;
  }

  std::optional<transport::TransportMode> parse_mode(const std::string& name) {
    if (name == "road") return transport::TransportMode::Road;
    if (name == "rail") return transport::TransportMode::Rail;
    if (name == "pipeline") return transport::TransportMode::Pipeline;
    if (name == "submarine") return transport::TransportMode::Submarine;
    return std::nullopt;
  }

  bool parse_node(const std::vector<std::string>& fields) {
    if (fields.size() != 6) return fail("malformed node line: expected 6 fields, got " +
                                        std::to_string(fields.size()));
    const std::string name = fields[1] + ", " + fields[2];
    if (!resolve_city(name)) return fail("unknown city in dataset: " + name);
    return true;
  }

  bool parse_conduit(const std::vector<std::string>& fields, FiberMap& map) {
    if (fields.size() != 8) return fail("malformed conduit line: expected 8 fields, got " +
                                        std::to_string(fields.size()));
    const auto dataset_id = parse_uint(fields[1]);
    if (!dataset_id) return fail("malformed conduit id: " + fields[1]);
    if (remap.count(static_cast<ConduitId>(*dataset_id))) {
      return fail("duplicate conduit id in dataset: " + fields[1]);
    }
    const auto a = resolve_city(fields[2]);
    if (!a) return fail("unknown city in dataset: " + fields[2]);
    const auto b = resolve_city(fields[3]);
    if (!b) return fail("unknown city in dataset: " + fields[3]);
    if (*a == *b) return fail("conduit endpoints are the same city: " + fields[2]);
    const auto mode = parse_mode(fields[4]);
    if (!mode) return fail("unknown ROW mode in dataset: " + fields[4]);
    const auto length_km = parse_double(fields[5]);
    if (!length_km || *length_km <= 0.0) return fail("malformed conduit length: " + fields[5]);
    const auto validated = parse_flag(fields[6]);
    if (!validated) return fail("malformed validated flag: " + fields[6]);
    // Resolve tenants before mutating the map so a bad tenant name
    // quarantines the whole record, not half of it.
    std::vector<isp::IspId> tenants;
    for (const auto& name : split(fields[7], ",")) {
      const auto isp_id = isp::find_profile(profiles, name);
      if (isp_id == isp::kNoIsp) return fail("unknown ISP in dataset: " + name);
      tenants.push_back(isp_id);
    }

    transport::Corridor corridor;
    const auto direct = row.direct(*a, *b, *mode);
    if (direct) {
      corridor = row.corridor(*direct);
    } else {
      corridor.id = 0x40000000u + static_cast<ConduitId>(*dataset_id);  // synthetic corridor id
      corridor.a = *a;
      corridor.b = *b;
      corridor.mode = *mode;
      corridor.path =
          geo::Polyline::straight(cities.city(*a).location, cities.city(*b).location);
      corridor.length_km = *length_km;
    }
    const ConduitId cid = map.ensure_conduit(corridor, Provenance::GeocodedMap);
    if (*validated) map.mark_validated(cid);
    remap[static_cast<ConduitId>(*dataset_id)] = cid;
    for (isp::IspId t : tenants) tenancy.emplace_back(cid, t);
    return true;
  }

  bool parse_link(const std::vector<std::string>& fields, FiberMap& map) {
    if (fields.size() != 6) return fail("malformed link line: expected 6 fields, got " +
                                        std::to_string(fields.size()));
    const auto isp_id = isp::find_profile(profiles, fields[1]);
    if (isp_id == isp::kNoIsp) return fail("unknown ISP in dataset: " + fields[1]);
    const auto a = resolve_city(fields[2]);
    if (!a) return fail("unknown city in dataset: " + fields[2]);
    const auto b = resolve_city(fields[3]);
    if (!b) return fail("unknown city in dataset: " + fields[3]);
    const auto geocoded = parse_flag(fields[4]);
    if (!geocoded) return fail("malformed geocoded flag: " + fields[4]);
    std::vector<ConduitId> conduits;
    for (const auto& id_text : split(fields[5], ",")) {
      const auto dataset_id = parse_uint(id_text);
      if (!dataset_id) return fail("malformed conduit reference: " + id_text);
      const auto it = remap.find(static_cast<ConduitId>(*dataset_id));
      // Also reached when the referenced conduit was itself quarantined:
      // the corruption cascades, and the link is quarantined with it.
      if (it == remap.end()) return fail("link references unknown conduit " + id_text);
      conduits.push_back(it->second);
    }
    if (conduits.empty()) return fail("link has no conduits");
    map.add_link(isp_id, *a, *b, conduits, *geocoded);
    return true;
  }
};

}  // namespace

std::string serialize_dataset(const FiberMap& map, const CityDatabase& cities,
                              const transport::RightOfWayRegistry& row,
                              const std::vector<isp::IspProfile>& profiles) {
  std::ostringstream out;
  out << "# InterTubes long-haul fiber dataset\n";

  out << "#nodes\tcity\tstate\tlat\tlon\tpopulation\n";
  for (CityId node : map.nodes()) {
    const auto& city = cities.city(node);
    out << "node\t" << city.name << "\t" << city.state << "\t" << format_double(city.location.lat_deg, 4)
        << "\t" << format_double(city.location.lon_deg, 4) << "\t" << city.population << "\n";
  }

  out << "#conduits\tid\tfrom\tto\tmode\tlength_km\tvalidated\ttenants\n";
  for (const Conduit& conduit : map.conduits()) {
    out << "conduit\t" << conduit.id << "\t" << cities.city(conduit.a).display_name() << "\t"
        << cities.city(conduit.b).display_name() << "\t"
        << transport::mode_name(row.corridor(conduit.corridor).mode) << "\t"
        << format_double(conduit.length_km, 3) << "\t" << (conduit.validated ? 1 : 0) << "\t"
        << tenants_field(conduit, profiles) << "\n";
  }

  out << "#links\tisp\tfrom\tto\tgeocoded\tconduits\n";
  for (const Link& link : map.links()) {
    out << "link\t" << profiles[link.isp].name << "\t" << cities.city(link.a).display_name()
        << "\t" << cities.city(link.b).display_name() << "\t" << (link.geocoded ? 1 : 0) << "\t"
        << conduit_ids_field(link) << "\n";
  }
  return out.str();
}

FiberMap parse_dataset(const std::string& text, const CityDatabase& cities,
                       const transport::RightOfWayRegistry& row,
                       const std::vector<isp::IspProfile>& profiles, DiagnosticSink& sink,
                       const std::string& source) {
  FiberMap map(profiles.size());
  RecordParser parser{cities, row, profiles, sink, source, 0, {}, {}};

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // tolerate CRLF
    if (line.empty() || line[0] == '#') continue;
    parser.line_no = line_no;
    const auto fields = split_fields(line, '\t');
    if (fields[0] == "node") {
      parser.parse_node(fields);
    } else if (fields[0] == "conduit") {
      parser.parse_conduit(fields, map);
    } else if (fields[0] == "link") {
      parser.parse_link(fields, map);
    } else {
      parser.fail("unknown dataset record type: " + fields[0]);
    }
  }

  for (const auto& [cid, isp_id] : parser.tenancy) map.add_tenant(cid, isp_id);
  return map;
}

FiberMap parse_dataset(const std::string& text, const CityDatabase& cities,
                       const transport::RightOfWayRegistry& row,
                       const std::vector<isp::IspProfile>& profiles) {
  DiagnosticSink strict(ParsePolicy::Strict);
  return parse_dataset(text, cities, row, profiles, strict);
}

void save_dataset(const std::string& path, const FiberMap& map, const CityDatabase& cities,
                  const transport::RightOfWayRegistry& row,
                  const std::vector<isp::IspProfile>& profiles) {
  write_file(path, serialize_dataset(map, cities, row, profiles));
}

FiberMap load_dataset(const std::string& path, const CityDatabase& cities,
                      const transport::RightOfWayRegistry& row,
                      const std::vector<isp::IspProfile>& profiles, DiagnosticSink& sink) {
  return parse_dataset(read_file(path), cities, row, profiles, sink, path);
}

FiberMap load_dataset(const std::string& path, const CityDatabase& cities,
                      const transport::RightOfWayRegistry& row,
                      const std::vector<isp::IspProfile>& profiles) {
  DiagnosticSink strict(ParsePolicy::Strict);
  return load_dataset(path, cities, row, profiles, strict);
}

}  // namespace intertubes::core
