// Propagation-delay study (§5.3, Figure 12): for every city pair that has
// existing fiber between it, compare
//   * the best existing physical path,
//   * the average over all existing physical paths,
//   * the best possible right-of-way path (new conduit along existing
//     roads/rails/pipelines), and
//   * the line-of-sight lower bound,
// all expressed as one-way propagation delay through fiber.
#pragma once

#include <vector>

#include "core/fiber_map.hpp"
#include "transport/row.hpp"

namespace intertubes::optimize {

struct PairDelay {
  transport::CityId a = transport::kNoCity;
  transport::CityId b = transport::kNoCity;
  double best_ms = 0.0;  ///< best existing physical path
  double avg_ms = 0.0;   ///< mean over existing physical paths
  double row_ms = 0.0;   ///< best right-of-way path (+inf when !row_reachable)
  double los_ms = 0.0;   ///< line-of-sight lower bound
  std::size_t path_count = 0;  ///< existing physical paths between the pair
  /// False when the ROW graph offers no path between the pair at all.
  /// row_ms is then +inf — such pairs say nothing about best-vs-ROW, so
  /// consumers must exclude them from ROW CDFs and gap statistics (the
  /// old best_ms fallback silently contaminated Figure 12's ROW series
  /// with copies of the best series) and they are excluded from
  /// fraction_best_is_row.
  bool row_reachable = true;
};

struct LatencyStudy {
  std::vector<PairDelay> pairs;
  /// Fraction of ROW-reachable pairs whose best existing path already is
  /// the best ROW path (within tolerance_ms) — the paper reports ≈65 %.
  /// Pairs with no ROW path are excluded from both numerator and
  /// denominator (counting them as "best is ROW", as an earlier revision
  /// did, inflates the fraction with pairs where no comparison exists).
  double fraction_best_is_row = 0.0;
  /// City pairs the ROW graph cannot connect at all.
  std::size_t row_unreachable = 0;
};

/// Existing physical paths between a city pair are the mapped links whose
/// endpoints are that pair (across all ISPs).  `tolerance_ms` controls the
/// best-equals-ROW bookkeeping.
LatencyStudy latency_study(const core::FiberMap& map, const transport::CityDatabase& cities,
                           const transport::RightOfWayRegistry& row, double tolerance_ms = 0.05);

}  // namespace intertubes::optimize
