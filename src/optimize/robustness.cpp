#include "optimize/robustness.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace intertubes::optimize {

using core::ConduitId;
using core::FiberMap;
using isp::IspId;
using transport::CityId;

namespace {

/// Min-shared-risk Dijkstra between two cities over the conduit graph,
/// excluding one conduit.  Weight: tenant count, with a tiny length term
/// so equally-risky paths prefer shorter fiber.
std::vector<ConduitId> min_risk_path(const FiberMap& map, const risk::RiskMatrix& matrix,
                                     CityId from, CityId to, ConduitId excluded) {
  std::unordered_map<CityId, double> dist;
  std::unordered_map<CityId, ConduitId> via;
  using Entry = std::pair<double, CityId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  bool reached = false;
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == to) {
      reached = true;
      break;
    }
    for (ConduitId cid : map.conduits_at(u)) {
      if (cid == excluded) continue;
      const auto& c = map.conduit(cid);
      const CityId v = (c.a == u) ? c.b : c.a;
      const double w =
          static_cast<double>(matrix.sharing_count(cid)) + 1e-4 * c.length_km;
      const double nd = d + w;
      const auto dv = dist.find(v);
      if (dv == dist.end() || nd < dv->second) {
        dist[v] = nd;
        via[v] = cid;
        queue.push({nd, v});
      }
    }
  }
  if (!reached) return {};
  std::vector<ConduitId> path;
  CityId cur = to;
  while (cur != from) {
    const ConduitId cid = via.at(cur);
    path.push_back(cid);
    const auto& c = map.conduit(cid);
    cur = (c.a == cur) ? c.b : c.a;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RerouteSuggestion suggest_reroute(const FiberMap& map, const risk::RiskMatrix& matrix,
                                  ConduitId target, IspId isp) {
  const auto& conduit = map.conduit(target);
  RerouteSuggestion suggestion;
  suggestion.target = target;
  suggestion.isp = isp;
  suggestion.optimized_path = min_risk_path(map, matrix, conduit.a, conduit.b, target);
  if (suggestion.optimized_path.empty()) return suggestion;
  suggestion.path_inflation = static_cast<int>(suggestion.optimized_path.size()) - 1;
  std::size_t worst = 0;
  for (ConduitId cid : suggestion.optimized_path) {
    worst = std::max(worst, matrix.sharing_count(cid));
  }
  suggestion.shared_risk_reduction =
      static_cast<int>(matrix.sharing_count(target)) - static_cast<int>(worst);
  return suggestion;
}

std::vector<IspRobustnessSummary> summarize_robustness(const FiberMap& map,
                                                       const risk::RiskMatrix& matrix,
                                                       const std::vector<ConduitId>& targets) {
  std::vector<IspRobustnessSummary> out;
  for (IspId isp = 0; isp < map.num_isps(); ++isp) {
    RunningStats pi;
    RunningStats srr;
    std::size_t used = 0;
    for (ConduitId target : targets) {
      if (!matrix.uses(isp, target)) continue;
      ++used;
      const auto suggestion = suggest_reroute(map, matrix, target, isp);
      if (suggestion.optimized_path.empty()) continue;
      pi.add(static_cast<double>(suggestion.path_inflation));
      srr.add(static_cast<double>(suggestion.shared_risk_reduction));
    }
    IspRobustnessSummary summary;
    summary.isp = isp;
    summary.targets_using = used;
    if (pi.count() > 0) {
      summary.pi_min = pi.min();
      summary.pi_max = pi.max();
      summary.pi_avg = pi.mean();
      summary.srr_min = srr.min();
      summary.srr_max = srr.max();
      summary.srr_avg = srr.mean();
    }
    out.push_back(summary);
  }
  return out;
}

std::vector<PeeringSuggestion> suggest_peering(const FiberMap& map,
                                               const risk::RiskMatrix& matrix,
                                               const std::vector<ConduitId>& targets,
                                               std::size_t count) {
  std::vector<PeeringSuggestion> out;
  for (IspId isp = 0; isp < map.num_isps(); ++isp) {
    // Score candidate peers by how much low-risk capacity they would lend
    // across all optimized paths for this ISP's shared targets.
    std::vector<double> score(map.num_isps(), 0.0);
    for (ConduitId target : targets) {
      if (!matrix.uses(isp, target)) continue;
      const auto suggestion = suggest_reroute(map, matrix, target, isp);
      for (ConduitId cid : suggestion.optimized_path) {
        if (matrix.uses(isp, cid)) continue;  // already on net
        const auto& tenants = map.conduit(cid).tenants;
        if (tenants.empty()) continue;
        // Credit each tenant, weighting sparsely-shared conduits higher
        // (a peer that owns a quiet path is a better peer).
        const double credit = 1.0 / static_cast<double>(tenants.size());
        for (IspId t : tenants) {
          if (t != isp) score[t] += credit;
        }
      }
    }
    PeeringSuggestion suggestion;
    suggestion.isp = isp;
    std::vector<IspId> order;
    for (IspId t = 0; t < map.num_isps(); ++t) {
      if (score[t] > 0.0) order.push_back(t);
    }
    std::sort(order.begin(), order.end(), [&score](IspId x, IspId y) {
      if (score[x] != score[y]) return score[x] > score[y];
      return x < y;
    });
    if (order.size() > count) order.resize(count);
    suggestion.suggested = std::move(order);
    out.push_back(std::move(suggestion));
  }
  return out;
}

NetworkWideGain network_wide_gain(const FiberMap& map, const risk::RiskMatrix& matrix,
                                  std::size_t top_count) {
  NetworkWideGain gain;
  const auto top = matrix.most_shared_conduits(top_count);
  std::vector<char> is_top(map.conduits().size(), 0);
  for (ConduitId cid : top) is_top[cid] = 1;

  RunningStats top_stats;
  RunningStats rest_stats;
  for (const auto& conduit : map.conduits()) {
    if (conduit.tenants.empty()) continue;
    ++gain.conduits_evaluated;
    const auto suggestion = suggest_reroute(map, matrix, conduit.id, conduit.tenants.front());
    const double srr =
        suggestion.optimized_path.empty()
            ? 0.0
            : std::max(0, suggestion.shared_risk_reduction);
    if (srr <= 0.0) ++gain.already_optimal;
    if (is_top[conduit.id]) {
      top_stats.add(srr);
    } else {
      rest_stats.add(srr);
    }
  }
  gain.avg_srr_top = top_stats.mean();
  gain.avg_srr_rest = rest_stats.mean();
  return gain;
}

}  // namespace intertubes::optimize
