#include "optimize/robustness.hpp"

#include <algorithm>

#include "sim/executor.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace intertubes::optimize {

using core::ConduitId;
using core::FiberMap;
using isp::IspId;

namespace {

/// Compile the conduit graph: node = city, edge id = conduit id, weight =
/// tenant count with a tiny length term so equally-risky paths prefer
/// shorter fiber (same metric the old per-call Dijkstra used).
route::PathEngine build_conduit_engine(const FiberMap& map, const risk::RiskMatrix& matrix) {
  route::NodeId num_nodes = 0;
  std::vector<route::EdgeSpec> edges;
  edges.reserve(map.conduits().size());
  for (const auto& c : map.conduits()) {
    num_nodes = std::max(num_nodes, std::max(c.a, c.b) + 1);
    edges.push_back({c.a, c.b,
                     static_cast<double>(matrix.sharing_count(c.id)) + 1e-4 * c.length_km});
  }
  return route::PathEngine(num_nodes, std::move(edges));
}

}  // namespace

RobustnessPlanner::RobustnessPlanner(const FiberMap& map, const risk::RiskMatrix& matrix)
    : map_(map), matrix_(matrix), engine_(build_conduit_engine(map, matrix)) {}

void RobustnessPlanner::ensure_forest(sim::Executor* executor) const {
  std::call_once(forest_once_, [&] {
    std::vector<route::NodeId> sources;
    sources.reserve(map_.conduits().size());
    for (const auto& conduit : map_.conduits()) sources.push_back(conduit.a);
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

    const route::RouteForest forest = engine_.route_forest(sources, {}, executor);
    around_.resize(map_.conduits().size());
    for (const auto& conduit : map_.conduits()) {
      const auto it = std::lower_bound(sources.begin(), sources.end(), conduit.a);
      const auto row = static_cast<std::size_t>(it - sources.begin());
      route::Path path = forest.path_to(row, conduit.b);
      if (path.reachable && path.edges.size() == 1 && path.edges[0] == conduit.id) {
        // The unmasked optimum IS the target conduit — only here does the
        // mask change the answer, so only here do we pay a point query.
        continue;
      }
      around_[conduit.id] = std::make_shared<const route::Path>(std::move(path));
    }
    forest_built_.store(true, std::memory_order_release);
  });
}

std::shared_ptr<const route::Path> RobustnessPlanner::route_around(ConduitId target) const {
  if (forest_built_.load(std::memory_order_acquire)) {
    if (const auto& cached = around_[target]) return cached;
  }
  const auto& conduit = map_.conduit(target);
  const std::vector<route::EdgeId> mask{target};
  return router_.route(engine_, conduit.a, conduit.b, mask);
}

RerouteSuggestion RobustnessPlanner::build_suggestion(ConduitId target, IspId isp) const {
  RerouteSuggestion suggestion;
  suggestion.target = target;
  suggestion.isp = isp;
  const auto path = route_around(target);
  if (!path->reachable) return suggestion;
  suggestion.optimized_path.assign(path->edges.begin(), path->edges.end());
  suggestion.path_inflation = static_cast<int>(suggestion.optimized_path.size()) - 1;
  std::size_t worst = 0;
  for (ConduitId cid : suggestion.optimized_path) {
    worst = std::max(worst, matrix_.sharing_count(cid));
  }
  suggestion.shared_risk_reduction =
      static_cast<int>(matrix_.sharing_count(target)) - static_cast<int>(worst);
  return suggestion;
}

RerouteSuggestion RobustnessPlanner::suggest_reroute(ConduitId target, IspId isp) const {
  return build_suggestion(target, isp);
}

namespace {

IspRobustnessSummary summarize_one(const RobustnessPlanner& planner,
                                   const risk::RiskMatrix& matrix, IspId isp,
                                   const std::vector<ConduitId>& targets) {
  RunningStats pi;
  RunningStats srr;
  std::size_t used = 0;
  for (ConduitId target : targets) {
    if (!matrix.uses(isp, target)) continue;
    ++used;
    const auto suggestion = planner.suggest_reroute(target, isp);
    if (suggestion.optimized_path.empty()) continue;
    pi.add(static_cast<double>(suggestion.path_inflation));
    srr.add(static_cast<double>(suggestion.shared_risk_reduction));
  }
  IspRobustnessSummary summary;
  summary.isp = isp;
  summary.targets_using = used;
  if (pi.count() > 0) {
    summary.pi_min = pi.min();
    summary.pi_max = pi.max();
    summary.pi_avg = pi.mean();
    summary.srr_min = srr.min();
    summary.srr_max = srr.max();
    summary.srr_avg = srr.mean();
  }
  return summary;
}

}  // namespace

std::vector<IspRobustnessSummary> RobustnessPlanner::summarize_robustness(
    const std::vector<ConduitId>& targets) const {
  ensure_forest(nullptr);
  std::vector<IspRobustnessSummary> out;
  out.reserve(map_.num_isps());
  for (IspId isp = 0; isp < map_.num_isps(); ++isp) {
    out.push_back(summarize_one(*this, matrix_, isp, targets));
  }
  return out;
}

std::vector<IspRobustnessSummary> RobustnessPlanner::summarize_robustness(
    const std::vector<ConduitId>& targets, sim::Executor& executor) const {
  ensure_forest(&executor);
  // Slot i holds ISP i's summary: each summary is a pure function of the
  // (memoized) per-target suggestions, which are themselves deterministic,
  // so this is bit-identical to the serial overload for any thread count.
  return executor.parallel_map<IspRobustnessSummary>(
      map_.num_isps(),
      [&](std::size_t isp) {
        return summarize_one(*this, matrix_, static_cast<IspId>(isp), targets);
      });
}

std::vector<PeeringSuggestion> RobustnessPlanner::suggest_peering(
    const std::vector<ConduitId>& targets, std::size_t count) const {
  ensure_forest(nullptr);
  std::vector<PeeringSuggestion> out;
  for (IspId isp = 0; isp < map_.num_isps(); ++isp) {
    // Score candidate peers by how much low-risk capacity they would lend
    // across all optimized paths for this ISP's shared targets.
    std::vector<double> score(map_.num_isps(), 0.0);
    for (ConduitId target : targets) {
      if (!matrix_.uses(isp, target)) continue;
      const auto suggestion = suggest_reroute(target, isp);
      for (ConduitId cid : suggestion.optimized_path) {
        if (matrix_.uses(isp, cid)) continue;  // already on net
        const auto& tenants = map_.conduit(cid).tenants;
        if (tenants.empty()) continue;
        // Credit each tenant, weighting sparsely-shared conduits higher
        // (a peer that owns a quiet path is a better peer).
        const double credit = 1.0 / static_cast<double>(tenants.size());
        for (IspId t : tenants) {
          if (t != isp) score[t] += credit;
        }
      }
    }
    PeeringSuggestion suggestion;
    suggestion.isp = isp;
    std::vector<IspId> order;
    for (IspId t = 0; t < map_.num_isps(); ++t) {
      if (score[t] > 0.0) order.push_back(t);
    }
    std::sort(order.begin(), order.end(), [&score](IspId x, IspId y) {
      if (score[x] != score[y]) return score[x] > score[y];
      return x < y;
    });
    if (order.size() > count) order.resize(count);
    suggestion.suggested = std::move(order);
    out.push_back(std::move(suggestion));
  }
  return out;
}

namespace {

/// Per-conduit observation for the network-wide sweep; folded in conduit
/// order so parallel and serial accumulation are bit-identical.
struct GainObservation {
  bool evaluated = false;
  bool unreachable = false;
  bool already_optimal = false;
  double srr = 0.0;
};

GainObservation observe_conduit(const RobustnessPlanner& planner, const core::Conduit& conduit) {
  GainObservation obs;
  if (conduit.tenants.empty()) return obs;
  obs.evaluated = true;
  const auto suggestion = planner.suggest_reroute(conduit.id, conduit.tenants.front());
  if (suggestion.optimized_path.empty()) {
    // No alternate route exists (a bridge conduit): "cannot reroute" is
    // not "optimal".  It still contributes 0 to the SRR averages, matching
    // the attainable gain.
    obs.unreachable = true;
    return obs;
  }
  obs.srr = std::max(0, suggestion.shared_risk_reduction);
  obs.already_optimal = obs.srr <= 0.0;
  return obs;
}

NetworkWideGain fold_gain(const FiberMap& map, const risk::RiskMatrix& matrix,
                          std::size_t top_count, const std::vector<GainObservation>& obs) {
  NetworkWideGain gain;
  const auto top = matrix.most_shared_conduits(top_count);
  std::vector<char> is_top(map.conduits().size(), 0);
  for (ConduitId cid : top) is_top[cid] = 1;

  RunningStats top_stats;
  RunningStats rest_stats;
  for (ConduitId cid = 0; cid < obs.size(); ++cid) {
    if (!obs[cid].evaluated) continue;
    ++gain.conduits_evaluated;
    if (obs[cid].unreachable) ++gain.unreachable;
    if (obs[cid].already_optimal) ++gain.already_optimal;
    if (is_top[cid]) {
      top_stats.add(obs[cid].srr);
    } else {
      rest_stats.add(obs[cid].srr);
    }
  }
  gain.avg_srr_top = top_stats.mean();
  gain.avg_srr_rest = rest_stats.mean();
  return gain;
}

}  // namespace

NetworkWideGain RobustnessPlanner::network_wide_gain(std::size_t top_count) const {
  ensure_forest(nullptr);
  std::vector<GainObservation> obs;
  obs.reserve(map_.conduits().size());
  for (const auto& conduit : map_.conduits()) {
    obs.push_back(observe_conduit(*this, conduit));
  }
  return fold_gain(map_, matrix_, top_count, obs);
}

NetworkWideGain RobustnessPlanner::network_wide_gain(std::size_t top_count,
                                                     sim::Executor& executor) const {
  ensure_forest(&executor);
  const auto obs = executor.parallel_map<GainObservation>(
      map_.conduits().size(),
      [&](std::size_t cid) { return observe_conduit(*this, map_.conduits()[cid]); });
  return fold_gain(map_, matrix_, top_count, obs);
}

RerouteSuggestion suggest_reroute(const FiberMap& map, const risk::RiskMatrix& matrix,
                                  ConduitId target, IspId isp) {
  return RobustnessPlanner(map, matrix).suggest_reroute(target, isp);
}

std::vector<IspRobustnessSummary> summarize_robustness(const FiberMap& map,
                                                       const risk::RiskMatrix& matrix,
                                                       const std::vector<ConduitId>& targets) {
  return RobustnessPlanner(map, matrix).summarize_robustness(targets);
}

std::vector<PeeringSuggestion> suggest_peering(const FiberMap& map,
                                               const risk::RiskMatrix& matrix,
                                               const std::vector<ConduitId>& targets,
                                               std::size_t count) {
  return RobustnessPlanner(map, matrix).suggest_peering(targets, count);
}

NetworkWideGain network_wide_gain(const FiberMap& map, const risk::RiskMatrix& matrix,
                                  std::size_t top_count) {
  return RobustnessPlanner(map, matrix).network_wide_gain(top_count);
}

}  // namespace intertubes::optimize
