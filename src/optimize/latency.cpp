#include "optimize/latency.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "geo/latency.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace intertubes::optimize {

using core::FiberMap;
using transport::CityId;

LatencyStudy latency_study(const FiberMap& map, const transport::CityDatabase& cities,
                           const transport::RightOfWayRegistry& row, double tolerance_ms) {
  // Collect existing physical paths per (unordered) city pair.
  std::map<std::pair<CityId, CityId>, std::vector<double>> lengths_km;
  for (const auto& link : map.links()) {
    const auto key = std::make_pair(std::min(link.a, link.b), std::max(link.a, link.b));
    lengths_km[key].push_back(link.length_km);
  }

  LatencyStudy study;
  std::size_t best_is_row = 0;
  for (const auto& [key, lengths] : lengths_km) {
    PairDelay pair;
    pair.a = key.first;
    pair.b = key.second;
    pair.path_count = lengths.size();

    double best = lengths.front();
    RunningStats avg;
    for (double km : lengths) {
      best = std::min(best, km);
      avg.add(km);
    }
    pair.best_ms = geo::fiber_delay_ms(best);
    pair.avg_ms = geo::fiber_delay_ms(avg.mean());

    const auto row_path = row.shortest_path(pair.a, pair.b);
    pair.row_reachable = !row_path.empty();
    pair.row_ms = pair.row_reachable ? geo::fiber_delay_ms(row_path.length_km)
                                     : std::numeric_limits<double>::infinity();

    pair.los_ms = geo::los_delay_ms(
        geo::distance_km(cities.city(pair.a).location, cities.city(pair.b).location));

    if (!pair.row_reachable) {
      ++study.row_unreachable;
    } else if (pair.best_ms <= pair.row_ms + tolerance_ms) {
      ++best_is_row;
    }
    study.pairs.push_back(pair);
  }
  const std::size_t comparable = study.pairs.size() - study.row_unreachable;
  study.fraction_best_is_row =
      comparable == 0 ? 0.0 : static_cast<double>(best_is_row) / static_cast<double>(comparable);
  return study;
}

}  // namespace intertubes::optimize
