#include "optimize/expansion.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "route/path_engine.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace intertubes::optimize {

using core::ConduitId;
using core::FiberMap;
using isp::IspId;
using transport::CityId;
using transport::CorridorId;

namespace {

/// The routing substrate for one expansion sweep: a PathEngine over the
/// existing conduits plus any committed new edges.  Tentative candidates
/// are never added here — they ride as overlay edges on individual
/// queries, so trying a candidate costs one Dijkstra, not a graph copy.
struct ExpansionGraph {
  route::NodeId num_nodes = 0;
  std::vector<route::EdgeSpec> edges;  ///< weight = sharing + 1e-4·length
  std::vector<double> sharing;         ///< risk term per edge, index = edge id
  std::unique_ptr<route::PathEngine> engine;
  std::uint64_t epoch = 0;

  void add_edge(CityId a, CityId b, double length_km, double shr) {
    edges.push_back({a, b, shr + 1e-4 * length_km});
    sharing.push_back(shr);
  }

  /// Recompile after committing edges; bumps the epoch so any memoized
  /// results keyed on the previous build go stale.
  void rebuild() {
    engine = std::make_unique<route::PathEngine>(num_nodes, edges, ++epoch);
  }
};

/// Sharing (risk) of one new-conduit overlay edge: a private conduit has
/// exactly its owner as tenant.
constexpr double kNewConduitSharing = 1.0;

struct RiskEval {
  double avg = 0.0;
  std::size_t unreachable = 0;            ///< demands with no route
  std::set<route::EdgeId> used;           ///< edge ids on any demand's route
};

/// ISP's average shared risk after min-risk re-routing of all its links,
/// optionally with one tentative overlay edge.  Demands with no route are
/// counted, not silently dropped.  Routed on the batched route_forest
/// layer — one Dijkstra per distinct demand source instead of one per
/// demand; every extracted tree path is bit-identical to the point query
/// it replaces, so the greedy's choices (and the artifacts) are unchanged.
RiskEval evaluate_avg_risk(const ExpansionGraph& graph,
                           const std::vector<route::EdgeSpec>* overlay,
                           const std::vector<std::pair<CityId, CityId>>& endpoints) {
  route::Query query;
  query.overlay = overlay;
  RiskEval eval;
  std::vector<route::NodeId> sources;
  sources.reserve(endpoints.size());
  for (const auto& [a, b] : endpoints) sources.push_back(a);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  const route::RouteForest forest = graph.engine->route_forest(sources, query);
  for (const auto& [a, b] : endpoints) {
    const auto it = std::lower_bound(sources.begin(), sources.end(), a);
    const auto row = static_cast<std::size_t>(it - sources.begin());
    if (!forest.reachable(row, b)) {
      ++eval.unreachable;
      continue;
    }
    forest.for_each_path_edge(row, b, [&](route::EdgeId eid) { eval.used.insert(eid); });
  }
  if (eval.used.empty()) return eval;
  RunningStats stats;
  for (route::EdgeId eid : eval.used) {
    stats.add(eid < graph.sharing.size() ? graph.sharing[eid] : kNewConduitSharing);
  }
  eval.avg = stats.mean();
  return eval;
}

}  // namespace

ExpansionResult optimize_expansion(const FiberMap& map, const transport::RightOfWayRegistry& row,
                                   IspId isp, std::size_t max_k, const ExpansionParams& params) {
  ExpansionResult result;
  result.isp = isp;

  // The ISP's link demands.
  std::vector<std::pair<CityId, CityId>> endpoints;
  for (const auto& link : map.links()) {
    if (link.isp == isp) endpoints.emplace_back(link.a, link.b);
  }
  if (endpoints.empty()) return result;

  // Base graph from the constructed map.  Size the node space to cover
  // link endpoints too: a demand whose endpoint touches no conduit is a
  // legal (unroutable) query, not an out-of-range one.
  ExpansionGraph graph;
  for (const auto& conduit : map.conduits()) {
    graph.num_nodes = std::max(graph.num_nodes, std::max(conduit.a, conduit.b) + 1);
  }
  for (const auto& [a, b] : endpoints) {
    graph.num_nodes = std::max(graph.num_nodes, std::max(a, b) + 1);
  }
  for (const auto& conduit : map.conduits()) {
    graph.add_edge(conduit.a, conduit.b, conduit.length_km,
                   static_cast<double>(conduit.tenants.size()));
  }
  graph.rebuild();

  {
    const RiskEval baseline = evaluate_avg_risk(graph, nullptr, endpoints);
    result.baseline_avg_shared_risk = baseline.avg;
    result.unreachable_demands = baseline.unreachable;
  }

  // Footprint cities: endpoints of the ISP's conduits, expanded by
  // candidate_hops over the conduit graph.
  std::set<CityId> footprint;
  for (ConduitId cid : map.conduits_of(isp)) {
    footprint.insert(map.conduit(cid).a);
    footprint.insert(map.conduit(cid).b);
  }
  for (std::size_t hop = 0; hop < params.candidate_hops; ++hop) {
    std::set<CityId> next = footprint;
    for (CityId c : footprint) {
      for (ConduitId cid : map.conduits_at(c)) {
        next.insert(map.conduit(cid).a);
        next.insert(map.conduit(cid).b);
      }
    }
    footprint.swap(next);
  }

  // Candidate corridors: unlit (no conduit in the map), both endpoints in
  // the footprint.
  std::vector<const transport::Corridor*> candidates;
  for (const auto& corridor : row.corridors()) {
    if (map.conduit_for_corridor(corridor.id).has_value()) continue;
    if (footprint.count(corridor.a) && footprint.count(corridor.b)) {
      candidates.push_back(&corridor);
    }
  }

  std::vector<char> taken(candidates.size(), 0);
  double previous_avg = result.baseline_avg_shared_risk;
  std::size_t previous_unreachable = result.unreachable_demands;
  for (std::size_t k = 0; k < max_k; ++k) {
    // Per-city shared-risk pressure: sum of (sharing − 1) over the edges
    // the ISP's *current* min-risk routing actually uses at that city —
    // the cheap surrogate that ranks candidates.  Recomputed each step so
    // the greedy chases the remaining pain, not the original map's.
    std::unordered_map<CityId, double> pressure;
    {
      const RiskEval current = evaluate_avg_risk(graph, nullptr, endpoints);
      for (route::EdgeId eid : current.used) {
        const auto& e = graph.edges[eid];
        const double excess = std::max(0.0, graph.sharing[eid] - 1.0);
        pressure[e.a] += excess;
        pressure[e.b] += excess;
      }
    }
    // Rank remaining candidates by surrogate score.
    struct Scored {
      double score;
      std::size_t index;
    };
    std::vector<Scored> scored;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      const auto* corridor = candidates[i];
      const double gain = pressure[corridor->a] + pressure[corridor->b];
      const double cost = 1.0 + params.cost_weight * corridor->length_km / 1000.0;
      if (gain <= 0.0) continue;
      scored.push_back({gain / cost, i});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& x, const Scored& y) { return x.score > y.score; });
    const std::size_t shortlist = std::min<std::size_t>(scored.size(), 8);

    // Exact evaluation of the shortlist: one overlay-edge Dijkstra per
    // candidate, no graph copies.  A candidate that leaves more demands
    // unreachable than the current graph is skipped outright (adding an
    // edge can never disconnect, so this guards the evaluation itself);
    // one that *re-connects* demands wins over any pure risk improvement.
    double best_avg = previous_avg;
    std::size_t best_unreachable = previous_unreachable;
    std::size_t best_index = candidates.size();
    for (std::size_t s = 0; s < shortlist; ++s) {
      const auto* corridor = candidates[scored[s].index];
      const std::vector<route::EdgeSpec> overlay{
          {corridor->a, corridor->b, kNewConduitSharing + 1e-4 * corridor->length_km}};
      const RiskEval trial = evaluate_avg_risk(graph, &overlay, endpoints);
      if (trial.unreachable > previous_unreachable) continue;
      const bool reconnects = trial.unreachable < best_unreachable;
      const bool lowers_risk =
          trial.unreachable == best_unreachable && trial.avg < best_avg - 1e-9;
      if (reconnects || lowers_risk) {
        best_avg = trial.avg;
        best_unreachable = trial.unreachable;
        best_index = scored[s].index;
      }
    }
    ExpansionStep step;
    if (best_index < candidates.size()) {
      const auto* corridor = candidates[best_index];
      taken[best_index] = 1;
      graph.add_edge(corridor->a, corridor->b, corridor->length_km, kNewConduitSharing);
      graph.rebuild();
      step.added = corridor->id;
      step.avg_shared_risk = best_avg;
      step.unreachable_demands = best_unreachable;
      previous_avg = best_avg;
      previous_unreachable = best_unreachable;
    } else {
      // No candidate helps: the curve flattens (Suddenlink's case in the
      // paper).
      step.added = transport::kNoCorridor;
      step.avg_shared_risk = previous_avg;
      step.unreachable_demands = previous_unreachable;
    }
    step.improvement_ratio =
        result.baseline_avg_shared_risk <= 0.0
            ? 0.0
            : 1.0 - step.avg_shared_risk / result.baseline_avg_shared_risk;
    result.steps.push_back(step);
  }
  return result;
}

}  // namespace intertubes::optimize
