#include "optimize/expansion.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace intertubes::optimize {

using core::ConduitId;
using core::FiberMap;
using isp::IspId;
using transport::CityId;
using transport::CorridorId;

namespace {

/// Unified routing graph: existing conduits plus hypothetical new ones.
struct GraphEdge {
  CityId a = transport::kNoCity;
  CityId b = transport::kNoCity;
  double length_km = 0.0;
  double sharing = 0.0;  ///< tenancy used as routing risk
};

struct RoutingGraph {
  std::vector<GraphEdge> edges;
  std::unordered_map<CityId, std::vector<std::uint32_t>> adjacency;

  void add_edge(CityId a, CityId b, double length_km, double sharing) {
    const auto id = static_cast<std::uint32_t>(edges.size());
    edges.push_back({a, b, length_km, sharing});
    adjacency[a].push_back(id);
    adjacency[b].push_back(id);
  }

  /// Min-shared-risk route; returns edge ids, empty if unreachable.
  std::vector<std::uint32_t> route(CityId from, CityId to) const {
    std::unordered_map<CityId, double> dist;
    std::unordered_map<CityId, std::uint32_t> via;
    using Entry = std::pair<double, CityId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    dist[from] = 0.0;
    queue.push({0.0, from});
    bool reached = false;
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[u]) continue;
      if (u == to) {
        reached = true;
        break;
      }
      const auto it = adjacency.find(u);
      if (it == adjacency.end()) continue;
      for (std::uint32_t eid : it->second) {
        const auto& e = edges[eid];
        const CityId v = (e.a == u) ? e.b : e.a;
        const double nd = d + e.sharing + 1e-4 * e.length_km;
        const auto dv = dist.find(v);
        if (dv == dist.end() || nd < dv->second) {
          dist[v] = nd;
          via[v] = eid;
          queue.push({nd, v});
        }
      }
    }
    if (!reached) return {};
    std::vector<std::uint32_t> path;
    CityId cur = to;
    while (cur != from) {
      const std::uint32_t eid = via.at(cur);
      path.push_back(eid);
      const auto& e = edges[eid];
      cur = (e.a == cur) ? e.b : e.a;
    }
    std::reverse(path.begin(), path.end());
    return path;
  }
};

/// ISP's average shared risk after min-risk re-routing of all its links.
double evaluate_avg_risk(const RoutingGraph& graph,
                         const std::vector<std::pair<CityId, CityId>>& endpoints) {
  std::set<std::uint32_t> used;
  for (const auto& [a, b] : endpoints) {
    const auto path = graph.route(a, b);
    used.insert(path.begin(), path.end());
  }
  if (used.empty()) return 0.0;
  RunningStats stats;
  for (std::uint32_t eid : used) stats.add(graph.edges[eid].sharing);
  return stats.mean();
}

}  // namespace

ExpansionResult optimize_expansion(const FiberMap& map, const transport::RightOfWayRegistry& row,
                                   IspId isp, std::size_t max_k, const ExpansionParams& params) {
  ExpansionResult result;
  result.isp = isp;

  // Base graph from the constructed map.
  RoutingGraph graph;
  for (const auto& conduit : map.conduits()) {
    graph.add_edge(conduit.a, conduit.b, conduit.length_km,
                   static_cast<double>(conduit.tenants.size()));
  }

  // The ISP's link demands.
  std::vector<std::pair<CityId, CityId>> endpoints;
  for (const auto& link : map.links()) {
    if (link.isp == isp) endpoints.emplace_back(link.a, link.b);
  }
  if (endpoints.empty()) return result;

  result.baseline_avg_shared_risk = evaluate_avg_risk(graph, endpoints);

  // Footprint cities: endpoints of the ISP's conduits, expanded by
  // candidate_hops over the conduit graph.
  std::set<CityId> footprint;
  for (ConduitId cid : map.conduits_of(isp)) {
    footprint.insert(map.conduit(cid).a);
    footprint.insert(map.conduit(cid).b);
  }
  for (std::size_t hop = 0; hop < params.candidate_hops; ++hop) {
    std::set<CityId> next = footprint;
    for (CityId c : footprint) {
      for (ConduitId cid : map.conduits_at(c)) {
        next.insert(map.conduit(cid).a);
        next.insert(map.conduit(cid).b);
      }
    }
    footprint.swap(next);
  }

  // Candidate corridors: unlit (no conduit in the map), both endpoints in
  // the footprint.
  std::vector<const transport::Corridor*> candidates;
  for (const auto& corridor : row.corridors()) {
    if (map.conduit_for_corridor(corridor.id).has_value()) continue;
    if (footprint.count(corridor.a) && footprint.count(corridor.b)) {
      candidates.push_back(&corridor);
    }
  }

  std::vector<char> taken(candidates.size(), 0);
  double previous_avg = result.baseline_avg_shared_risk;
  for (std::size_t k = 0; k < max_k; ++k) {
    // Per-city shared-risk pressure: sum of (sharing − 1) over the edges
    // the ISP's *current* min-risk routing actually uses at that city —
    // the cheap surrogate that ranks candidates.  Recomputed each step so
    // the greedy chases the remaining pain, not the original map's.
    std::unordered_map<CityId, double> pressure;
    {
      std::set<std::uint32_t> used;
      for (const auto& [a, b] : endpoints) {
        const auto path = graph.route(a, b);
        used.insert(path.begin(), path.end());
      }
      for (std::uint32_t eid : used) {
        const auto& e = graph.edges[eid];
        const double excess = std::max(0.0, e.sharing - 1.0);
        pressure[e.a] += excess;
        pressure[e.b] += excess;
      }
    }
    // Rank remaining candidates by surrogate score.
    struct Scored {
      double score;
      std::size_t index;
    };
    std::vector<Scored> scored;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      const auto* corridor = candidates[i];
      const double gain = pressure[corridor->a] + pressure[corridor->b];
      const double cost = 1.0 + params.cost_weight * corridor->length_km / 1000.0;
      if (gain <= 0.0) continue;
      scored.push_back({gain / cost, i});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& x, const Scored& y) { return x.score > y.score; });
    const std::size_t shortlist = std::min<std::size_t>(scored.size(), 8);

    // Exact evaluation of the shortlist: tentatively add, re-route, score.
    double best_avg = previous_avg;
    std::size_t best_index = candidates.size();
    for (std::size_t s = 0; s < shortlist; ++s) {
      const auto* corridor = candidates[scored[s].index];
      RoutingGraph trial = graph;
      trial.add_edge(corridor->a, corridor->b, corridor->length_km, 1.0);
      const double avg = evaluate_avg_risk(trial, endpoints);
      if (avg < best_avg - 1e-9) {
        best_avg = avg;
        best_index = scored[s].index;
      }
    }
    ExpansionStep step;
    if (best_index < candidates.size()) {
      const auto* corridor = candidates[best_index];
      taken[best_index] = 1;
      graph.add_edge(corridor->a, corridor->b, corridor->length_km, 1.0);
      step.added = corridor->id;
      step.avg_shared_risk = best_avg;
      previous_avg = best_avg;
    } else {
      // No candidate helps: the curve flattens (Suddenlink's case in the
      // paper).
      step.added = transport::kNoCorridor;
      step.avg_shared_risk = previous_avg;
    }
    step.improvement_ratio =
        result.baseline_avg_shared_risk <= 0.0
            ? 0.0
            : 1.0 - step.avg_shared_risk / result.baseline_avg_shared_risk;
    result.steps.push_back(step);
  }
  return result;
}

}  // namespace intertubes::optimize
