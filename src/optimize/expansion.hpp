// Network expansion (§5.2): add up to k new city-to-city conduits along
// previously unused rights-of-way so that shared risk falls the most at
// the least deployment cost (equation 2).
//
// For one ISP at a time: candidate conduits are unlit ROW corridors
// touching the ISP's footprint; a greedy sweep picks the candidate with
// the best (shared-risk reduction − cost) surrogate, adds it as a private
// conduit, re-routes the ISP's links with min-shared-risk routing, and
// measures the improvement ratio of the ISP's average shared risk.
#pragma once

#include <vector>

#include "core/fiber_map.hpp"
#include "risk/risk_matrix.hpp"
#include "transport/row.hpp"

namespace intertubes::optimize {

struct ExpansionParams {
  /// Weight of deployment cost (per 1000 km of new trench) against one
  /// unit of summed shared-risk reduction in the greedy score.
  double cost_weight = 0.35;
  /// Candidate corridors are limited to those with an endpoint within
  /// this many conduit-graph hops of the ISP's used conduits (0 = only
  /// corridors between cities the ISP already touches).
  std::size_t candidate_hops = 1;
};

struct ExpansionStep {
  transport::CorridorId added = transport::kNoCorridor;
  double avg_shared_risk = 0.0;  ///< ISP's mean tenancy after this step
  double improvement_ratio = 0.0;  ///< 1 − after/before(baseline)
  std::size_t unreachable_demands = 0;  ///< link demands still unroutable after this step
};

struct ExpansionResult {
  isp::IspId isp = isp::kNoIsp;
  double baseline_avg_shared_risk = 0.0;
  /// Link demands with no route at all over the existing conduit graph.
  /// These are excluded from the shared-risk averages (they route
  /// nothing), so they must be reported — a sweep that drops them
  /// silently would let a disconnected network look risk-free.
  std::size_t unreachable_demands = 0;
  std::vector<ExpansionStep> steps;  ///< one per k = 1..max_k
};

/// Greedy k-link expansion for one ISP.  The map is not mutated; the
/// hypothetical conduits live only inside the computation.
ExpansionResult optimize_expansion(const core::FiberMap& map,
                                   const transport::RightOfWayRegistry& row, isp::IspId isp,
                                   std::size_t max_k, const ExpansionParams& params = {});

}  // namespace intertubes::optimize
