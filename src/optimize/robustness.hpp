// The robustness-suggestion framework of §5.1.
//
// For a heavily shared conduit and an ISP that rides it, find the
// alternative path between the conduit's endpoints over the existing
// conduit infrastructure (equation 1: the path minimizing shared risk),
// and measure
//   * path inflation (PI): extra hops of the optimized path, and
//   * shared-risk reduction (SRR): tenancy of the original conduit minus
//     the worst tenancy along the optimized path.
// The conduits on the optimized path that the ISP does not already use
// imply peering/acquisition opportunities — aggregated, they give the
// paper's Table 5 "best peer" suggestions.
//
// All path queries run on a shared route::PathEngine (the conduit graph
// compiled once; weight = tenant count + 1e-4·length so equally-risky
// paths prefer shorter fiber) with reroute memoization: the optimized
// path around a conduit does not depend on which ISP asks, so one cached
// Dijkstra serves every tenant of a target and every analysis that
// touches it.  Construct a RobustnessPlanner once and reuse it across
// summarize/peering/network-wide calls to share the cache; the free
// functions below are single-shot wrappers that build a private planner.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "core/fiber_map.hpp"
#include "risk/risk_matrix.hpp"
#include "route/cache.hpp"
#include "route/path_engine.hpp"

namespace intertubes::sim {
class Executor;
}  // namespace intertubes::sim

namespace intertubes::optimize {

struct RerouteSuggestion {
  core::ConduitId target = core::kNoConduit;
  isp::IspId isp = isp::kNoIsp;
  std::vector<core::ConduitId> optimized_path;  ///< empty if no alternative
  int path_inflation = 0;        ///< hops(optimized) − 1
  int shared_risk_reduction = 0; ///< tenants(target) − max tenants(optimized)
};

/// Aggregates of PI / SRR per ISP over a set of target conduits (Fig 10).
struct IspRobustnessSummary {
  isp::IspId isp = isp::kNoIsp;
  std::size_t targets_using = 0;  ///< how many targets this ISP rides
  double pi_min = 0.0, pi_max = 0.0, pi_avg = 0.0;
  double srr_min = 0.0, srr_max = 0.0, srr_avg = 0.0;
};

/// Table 5: for each ISP, the top-`count` other ISPs whose conduits its
/// optimized paths lean on (candidate peers/suppliers).
struct PeeringSuggestion {
  isp::IspId isp = isp::kNoIsp;
  std::vector<isp::IspId> suggested;  ///< descending by usefulness
};

/// §5.1's network-wide check: "we also considered... all 542 conduits...
/// many of the existing paths used by ISPs were already the best paths,
/// and the potential gains were minimal compared to the gains obtained
/// when just considering the 12 conduits."  Evaluates the attainable SRR
/// for every conduit (via its first tenant) and contrasts the top targets
/// with the rest.
struct NetworkWideGain {
  std::size_t conduits_evaluated = 0;
  /// Conduits whose existing placement is genuinely optimal: an alternate
  /// path exists but lowers nothing (SRR ≤ 0).
  std::size_t already_optimal = 0;
  /// Conduits with no alternate path at all (bridges).  These used to be
  /// folded into already_optimal, conflating "cannot reroute" with
  /// "optimal"; they still contribute an SRR of 0 to the averages below.
  std::size_t unreachable = 0;
  double avg_srr_top = 0.0;   ///< mean positive SRR over the top targets
  double avg_srr_rest = 0.0;  ///< mean positive SRR over everything else
};

/// Shared state for a batch of robustness analyses: the compiled conduit
/// graph plus the memoized reroute cache.  Thread-safe after construction
/// — the parallel overloads fan work out over a sim::Executor and reduce
/// in index order, so their output is bit-identical to the serial
/// overloads for any thread count.
class RobustnessPlanner {
 public:
  RobustnessPlanner(const core::FiberMap& map, const risk::RiskMatrix& matrix);

  /// Equation 1 for one (conduit, ISP): minimize the summed shared-risk
  /// of the path between the conduit's endpoints, excluding the target
  /// conduit itself.  Memoized per target (the path is ISP-independent).
  RerouteSuggestion suggest_reroute(core::ConduitId target, isp::IspId isp) const;

  std::vector<IspRobustnessSummary> summarize_robustness(
      const std::vector<core::ConduitId>& targets) const;
  std::vector<IspRobustnessSummary> summarize_robustness(
      const std::vector<core::ConduitId>& targets, sim::Executor& executor) const;

  std::vector<PeeringSuggestion> suggest_peering(const std::vector<core::ConduitId>& targets,
                                                 std::size_t count = 3) const;

  NetworkWideGain network_wide_gain(std::size_t top_count = 12) const;
  NetworkWideGain network_wide_gain(std::size_t top_count, sim::Executor& executor) const;

  const route::PathEngine& engine() const noexcept { return engine_; }
  route::PathCacheStats cache_stats() const { return router_.stats(); }

 private:
  /// The memoized min-risk path between target's endpoints avoiding it.
  std::shared_ptr<const route::Path> route_around(core::ConduitId target) const;
  RerouteSuggestion build_suggestion(core::ConduitId target, isp::IspId isp) const;

  /// Build the batched reroute table once: one unmasked route_forest row
  /// per distinct conduit endpoint answers route_around for every target
  /// whose unmasked shortest path does not ride the target itself (the
  /// canonical tie-breaks freeze those paths, so masking the unused edge
  /// changes nothing).  Targets whose endpoints' best path IS the direct
  /// edge keep the memoized masked point query.  Bit-identical to the
  /// query-per-target path; batch entry points call this, the single-shot
  /// suggest_reroute stays lazy-free.
  void ensure_forest(sim::Executor* executor) const;

  const core::FiberMap& map_;
  const risk::RiskMatrix& matrix_;
  route::PathEngine engine_;
  mutable route::MemoizedRouter router_;

  mutable std::once_flag forest_once_;
  mutable std::atomic<bool> forest_built_{false};
  /// [target] → precomputed reroute path; null when the target must fall
  /// back to the masked point query (direct-edge case).
  mutable std::vector<std::shared_ptr<const route::Path>> around_;
};

/// Single-shot wrappers (each builds a private RobustnessPlanner; batch
/// callers should construct one planner and reuse it).
RerouteSuggestion suggest_reroute(const core::FiberMap& map, const risk::RiskMatrix& matrix,
                                  core::ConduitId target, isp::IspId isp);

std::vector<IspRobustnessSummary> summarize_robustness(
    const core::FiberMap& map, const risk::RiskMatrix& matrix,
    const std::vector<core::ConduitId>& targets);

std::vector<PeeringSuggestion> suggest_peering(const core::FiberMap& map,
                                               const risk::RiskMatrix& matrix,
                                               const std::vector<core::ConduitId>& targets,
                                               std::size_t count = 3);

NetworkWideGain network_wide_gain(const core::FiberMap& map, const risk::RiskMatrix& matrix,
                                  std::size_t top_count = 12);

}  // namespace intertubes::optimize
