// The robustness-suggestion framework of §5.1.
//
// For a heavily shared conduit and an ISP that rides it, find the
// alternative path between the conduit's endpoints over the existing
// conduit infrastructure (equation 1: the path minimizing shared risk),
// and measure
//   * path inflation (PI): extra hops of the optimized path, and
//   * shared-risk reduction (SRR): tenancy of the original conduit minus
//     the worst tenancy along the optimized path.
// The conduits on the optimized path that the ISP does not already use
// imply peering/acquisition opportunities — aggregated, they give the
// paper's Table 5 "best peer" suggestions.
#pragma once

#include <vector>

#include "core/fiber_map.hpp"
#include "risk/risk_matrix.hpp"

namespace intertubes::optimize {

struct RerouteSuggestion {
  core::ConduitId target = core::kNoConduit;
  isp::IspId isp = isp::kNoIsp;
  std::vector<core::ConduitId> optimized_path;  ///< empty if no alternative
  int path_inflation = 0;        ///< hops(optimized) − 1
  int shared_risk_reduction = 0; ///< tenants(target) − max tenants(optimized)
};

/// Equation 1 for one (conduit, ISP): minimize the summed shared-risk of
/// the path between the conduit's endpoints, excluding the target conduit
/// itself.  Path weight per conduit is its tenant count (ties broken by
/// length).
RerouteSuggestion suggest_reroute(const core::FiberMap& map, const risk::RiskMatrix& matrix,
                                  core::ConduitId target, isp::IspId isp);

/// Aggregates of PI / SRR per ISP over a set of target conduits (Fig 10).
struct IspRobustnessSummary {
  isp::IspId isp = isp::kNoIsp;
  std::size_t targets_using = 0;  ///< how many targets this ISP rides
  double pi_min = 0.0, pi_max = 0.0, pi_avg = 0.0;
  double srr_min = 0.0, srr_max = 0.0, srr_avg = 0.0;
};

std::vector<IspRobustnessSummary> summarize_robustness(
    const core::FiberMap& map, const risk::RiskMatrix& matrix,
    const std::vector<core::ConduitId>& targets);

/// Table 5: for each ISP, the top-`count` other ISPs whose conduits its
/// optimized paths lean on (candidate peers/suppliers).
struct PeeringSuggestion {
  isp::IspId isp = isp::kNoIsp;
  std::vector<isp::IspId> suggested;  ///< descending by usefulness
};

std::vector<PeeringSuggestion> suggest_peering(const core::FiberMap& map,
                                               const risk::RiskMatrix& matrix,
                                               const std::vector<core::ConduitId>& targets,
                                               std::size_t count = 3);

/// §5.1's network-wide check: "we also considered... all 542 conduits...
/// many of the existing paths used by ISPs were already the best paths,
/// and the potential gains were minimal compared to the gains obtained
/// when just considering the 12 conduits."  Evaluates the attainable SRR
/// for every conduit (via its first tenant) and contrasts the top targets
/// with the rest.
struct NetworkWideGain {
  std::size_t conduits_evaluated = 0;
  /// Conduits where no alternative path lowers the worst tenancy.
  std::size_t already_optimal = 0;
  double avg_srr_top = 0.0;   ///< mean positive SRR over the top targets
  double avg_srr_rest = 0.0;  ///< mean positive SRR over everything else
};

NetworkWideGain network_wide_gain(const core::FiberMap& map, const risk::RiskMatrix& matrix,
                                  std::size_t top_count = 12);

}  // namespace intertubes::optimize
