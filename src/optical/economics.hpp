// Deployment economics — the force behind the paper's central finding.
//
// §1: infrastructure sharing "is dictated by simple economics —
// substantial cost savings as compared to deploying fiber in newly
// constructed conduits."  This module prices a deployment three ways —
// new trench, pulling fiber through existing conduit, and leasing dark
// fiber (IRU) — and can audit a whole map: what did the world's builds
// cost given sharing, and what would the same connectivity have cost if
// every provider trenched alone?  The difference is the savings the paper
// invokes, and the quantity that dig-once policy debates (§6.2) trade
// against resilience.
#pragma once

#include "core/fiber_map.hpp"
#include "optical/plant.hpp"

namespace intertubes::optical {

/// Unit costs, order-of-magnitude realistic for the paper's era (USD).
struct CostModel {
  double trench_per_km = 50000.0;       ///< new conduit construction
  double pull_per_km = 4000.0;          ///< blowing fiber through existing conduit
  double iru_per_km = 2500.0;           ///< 20-year dark-fiber IRU
  double amplifier_site = 150000.0;     ///< ILA hut, powered and equipped
  double regeneration_site = 400000.0;  ///< OEO terminal
  PlantParams plant;
};

enum class BuildMethod : std::uint8_t { NewTrench, ExistingConduit, DarkFiberIru };

/// Cost of provisioning `length_km` of route by one method (per-km cost
/// plus the amplifier sites the span implies; trenchers also pay huts,
/// pullers share existing huts, IRU riders pay nothing site-wise).
double route_cost(double length_km, BuildMethod method, const CostModel& model = {});

/// Per-ISP audit of the constructed map under builder-pays rules: the
/// tenant with the largest total network (the facilities-richest carrier,
/// the likeliest original trencher) is deemed each conduit's builder and
/// pays trench + huts; every other tenant pays the pull rate.
struct IspCapex {
  isp::IspId isp = isp::kNoIsp;
  double actual_cost = 0.0;      ///< with sharing, by the rule above
  double standalone_cost = 0.0;  ///< if the ISP had trenched everything alone
  double savings_fraction = 0.0; ///< 1 − actual/standalone
};

struct EconomicsAudit {
  std::vector<IspCapex> per_isp;     ///< in profile order
  double total_actual = 0.0;
  double total_standalone = 0.0;
  double total_savings_fraction = 0.0;
};

EconomicsAudit audit_map_economics(const core::FiberMap& map, const CostModel& model = {});

}  // namespace intertubes::optical
