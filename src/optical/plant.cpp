#include "optical/plant.hpp"

#include <cmath>

#include "geo/latency.hpp"
#include "util/check.hpp"

namespace intertubes::optical {

SpanPlan plan_span(double length_km, const PlantParams& params) {
  IT_CHECK(length_km >= 0.0);
  IT_CHECK(params.amplifier_spacing_km > 0.0);
  SpanPlan plan;
  plan.length_km = length_km;
  if (length_km > params.amplifier_spacing_km) {
    // Huts at every spacing interval, excluding the endpoints (terminal
    // sites have their own equipment).
    plan.amplifiers =
        static_cast<std::size_t>(std::ceil(length_km / params.amplifier_spacing_km)) - 1;
  }
  return plan;
}

RoutePlan plan_route(const std::vector<double>& conduit_lengths_km, const PlantParams& params) {
  IT_CHECK(params.transparent_reach_km > 0.0);
  RoutePlan plan;
  double since_regen = 0.0;
  for (double length : conduit_lengths_km) {
    IT_CHECK(length >= 0.0);
    plan.length_km += length;
    plan.amplifiers += plan_span(length, params).amplifiers;
    since_regen += length;
    while (since_regen > params.transparent_reach_km) {
      ++plan.regenerations;
      since_regen -= params.transparent_reach_km;
    }
  }
  plan.equipment_delay_ms =
      (static_cast<double>(plan.amplifiers) * params.amplifier_delay_us +
       static_cast<double>(plan.regenerations) * params.regeneration_delay_us) /
      1000.0;
  plan.total_delay_ms = geo::fiber_delay_ms(plan.length_km) + plan.equipment_delay_ms;
  return plan;
}

RoutePlan plan_link(const core::FiberMap& map, const core::Link& link,
                    const PlantParams& params) {
  std::vector<double> lengths;
  lengths.reserve(link.conduits.size());
  for (core::ConduitId cid : link.conduits) {
    lengths.push_back(map.conduit(cid).length_km);
  }
  return plan_route(lengths, params);
}

PlantInventory plant_inventory(const core::FiberMap& map, const PlantParams& params) {
  PlantInventory inventory;
  for (const auto& conduit : map.conduits()) {
    inventory.conduit_amplifier_sites += plan_span(conduit.length_km, params).amplifiers;
  }
  double delay_sum = 0.0;
  for (const auto& link : map.links()) {
    const auto plan = plan_link(map, link, params);
    inventory.link_regenerations += plan.regenerations;
    delay_sum += plan.total_delay_ms;
  }
  inventory.mean_link_delay_ms =
      map.links().empty() ? 0.0 : delay_sum / static_cast<double>(map.links().size());
  return inventory;
}

}  // namespace intertubes::optical
