// The optical plant of a long-haul route.
//
// §1 distinguishes long-haul routes by their ability to run between major
// city pairs with "minimal use of repeaters".  This module models the
// physical-layer consequences of route length: inline amplifier (ILA)
// huts every ~90 km, OEO regeneration when accumulated amplified spans
// exceed the transparent reach (~1500 km for 10G-era long-haul, the
// paper's vintage), and the latency those sites add.
#pragma once

#include <cstddef>
#include <vector>

#include "core/fiber_map.hpp"

namespace intertubes::optical {

struct PlantParams {
  double amplifier_spacing_km = 90.0;   ///< EDFA hut spacing
  double transparent_reach_km = 1500.0; ///< distance before OEO regeneration
  double amplifier_delay_us = 0.1;      ///< per-ILA group delay (negligible but real)
  double regeneration_delay_us = 50.0;  ///< per-OEO latency
};

/// Amplifier plan for one conduit-length span.
struct SpanPlan {
  double length_km = 0.0;
  std::size_t amplifiers = 0;  ///< inline amplifier huts along the span
};

/// Amplifiers needed along `length_km` of fiber (one every spacing, none
/// for spans that fit in a single hop).
SpanPlan plan_span(double length_km, const PlantParams& params = {});

/// End-to-end plan for a multi-conduit route.
struct RoutePlan {
  double length_km = 0.0;
  std::size_t amplifiers = 0;
  std::size_t regenerations = 0;  ///< OEO sites where reach is exhausted
  double equipment_delay_ms = 0.0;
  double total_delay_ms = 0.0;    ///< propagation + equipment
};

/// Plan a route given its conduit lengths in path order.
RoutePlan plan_route(const std::vector<double>& conduit_lengths_km,
                     const PlantParams& params = {});

/// Plan one mapped link.
RoutePlan plan_link(const core::FiberMap& map, const core::Link& link,
                    const PlantParams& params = {});

/// Whole-map inventory: total amplifier and regeneration sites implied by
/// the mapped links (sites on shared conduits are shared too — counted
/// once per conduit, plus per-link regenerations).
struct PlantInventory {
  std::size_t conduit_amplifier_sites = 0;  ///< one set of huts per conduit
  std::size_t link_regenerations = 0;       ///< OEO sites across all links
  double mean_link_delay_ms = 0.0;          ///< propagation + equipment
};

PlantInventory plant_inventory(const core::FiberMap& map, const PlantParams& params = {});

}  // namespace intertubes::optical
