#include "optical/economics.hpp"

#include "util/check.hpp"

namespace intertubes::optical {

double route_cost(double length_km, BuildMethod method, const CostModel& model) {
  IT_CHECK(length_km >= 0.0);
  const auto sites = static_cast<double>(plan_span(length_km, model.plant).amplifiers);
  switch (method) {
    case BuildMethod::NewTrench:
      return length_km * (model.trench_per_km + model.pull_per_km) +
             sites * model.amplifier_site;
    case BuildMethod::ExistingConduit:
      // Pull through someone's conduit; amplifier huts already exist and
      // are shared at a fraction of build cost.
      return length_km * model.pull_per_km + sites * model.amplifier_site * 0.15;
    case BuildMethod::DarkFiberIru:
      return length_km * model.iru_per_km;
  }
  IT_CHECK_MSG(false, "unreachable");
  return 0.0;
}

EconomicsAudit audit_map_economics(const core::FiberMap& map, const CostModel& model) {
  EconomicsAudit audit;
  audit.per_isp.resize(map.num_isps());
  for (isp::IspId i = 0; i < map.num_isps(); ++i) audit.per_isp[i].isp = i;

  // Facilities proxy: total mapped link length per ISP.
  std::vector<double> network_km(map.num_isps(), 0.0);
  for (const auto& link : map.links()) network_km[link.isp] += link.length_km;

  for (const auto& conduit : map.conduits()) {
    if (conduit.tenants.empty()) continue;
    // Builder-pays: the facilities-richest tenant trenches; the rest pull.
    isp::IspId builder = conduit.tenants.front();
    for (isp::IspId tenant : conduit.tenants) {
      if (network_km[tenant] > network_km[builder]) builder = tenant;
    }
    for (isp::IspId tenant : conduit.tenants) {
      const auto method =
          tenant == builder ? BuildMethod::NewTrench : BuildMethod::ExistingConduit;
      audit.per_isp[tenant].actual_cost += route_cost(conduit.length_km, method, model);
      audit.per_isp[tenant].standalone_cost +=
          route_cost(conduit.length_km, BuildMethod::NewTrench, model);
    }
  }

  for (auto& row : audit.per_isp) {
    audit.total_actual += row.actual_cost;
    audit.total_standalone += row.standalone_cost;
    row.savings_fraction =
        row.standalone_cost > 0.0 ? 1.0 - row.actual_cost / row.standalone_cost : 0.0;
  }
  audit.total_savings_fraction =
      audit.total_standalone > 0.0 ? 1.0 - audit.total_actual / audit.total_standalone : 0.0;
  return audit;
}

}  // namespace intertubes::optical
