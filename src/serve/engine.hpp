// The concurrent query engine: a typed request/response API over the
// current Snapshot, dispatched onto the sim/ executor thread pool.
//
// Request lifecycle:
//   submit() — admission control: if (queued + executing) requests have
//     reached EngineOptions::max_pending, the request is *shed* with an
//     immediate Overloaded response instead of queueing unboundedly;
//     otherwise it is posted to the executor and a future returned.
//   worker — loads the current snapshot (one wait-free atomic read, held
//     for the whole request so a concurrent publish cannot pull artifacts
//     out from under it), consults the memoization cache keyed by
//     (snapshot epoch, canonical request), computes on miss, records
//     latency (queue wait included) into the metrics registry.
//
// Every response carries the epoch it was computed against, so callers
// can detect cross-epoch reads in a stream of requests.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "dissect/dissector.hpp"
#include "serve/cache.hpp"
#include "serve/fastpath.hpp"
#include "serve/metrics.hpp"
#include "serve/snapshot.hpp"
#include "sim/executor.hpp"
#include "util/alloc.hpp"

namespace intertubes::serve {

// --- Requests ---------------------------------------------------------

/// Per-ISP shared-risk row (the Fig. 6 ranking entry for one ISP).
struct SharedRiskQuery {
  std::string isp;
};

/// The k most-shared conduits with tenancy and endpoints (Tables 2/3 shape).
/// Degenerate k is well-defined: k == 0 answers an empty table, k larger
/// than the conduit count answers the whole ranking — both Ok, both
/// deterministic.
struct TopConduitsQuery {
  std::size_t k = 10;
};

/// What-if: sever these conduits of the current map and report the blast
/// radius (service impact + connectivity delta).
struct WhatIfCutQuery {
  std::vector<core::ConduitId> cuts;
};

/// Shortest conduit path between two cities with fiber propagation delay.
struct CityPathQuery {
  std::string from;
  std::string to;
};

/// The k ISPs with the most similar risk profile (smallest Hamming
/// distance between risk-matrix usage rows, Fig. 8).  Same degenerate-k
/// contract as TopConduitsQuery: k == 0 → empty, k > |ISPs| - 1 → all.
struct HammingNeighborsQuery {
  std::string isp;
  std::size_t k = 5;
};

/// Speed-of-light decomposition for one city pair: how far its best fiber
/// path sits above c-latency, split into refraction / ROW inflation /
/// fiber-detour components (dissect::LatencyDissector on the snapshot's
/// conduit graph).
struct LatencyDissectionQuery {
  std::string from;
  std::string to;
};

/// The all-pairs speed-of-light audit: stretch aggregates plus the top-k
/// pairs by achievable improvement.  The full sweep runs once per
/// snapshot epoch and is memoized; repeats are cache hits.
struct CLatencyAuditQuery {
  std::size_t top_k = 10;
  double target_factor = 2.0;
};

/// What-if with dynamics: sever these conduits and run the capacity-aware
/// overload cascade (cascade::CascadeEngine on the snapshot's shared
/// conduit graph) to its fixed point, reporting cross-layer damage.
struct WhatIfCascadeQuery {
  std::vector<core::ConduitId> cuts;
  double capacity_margin = 0.25;
  std::size_t max_rounds = 8;
};

/// Occupy a serve slot for `ms` milliseconds.  A load-testing aid (and the
/// lever the admission-control tests use); never cached.
struct SleepQuery {
  double ms = 1.0;
};

/// Alternative order must match serve::RequestType.
using Request = std::variant<SharedRiskQuery, TopConduitsQuery, WhatIfCutQuery, CityPathQuery,
                             HammingNeighborsQuery, LatencyDissectionQuery, CLatencyAuditQuery,
                             WhatIfCascadeQuery, SleepQuery>;

RequestType request_type(const Request& request) noexcept;

/// Canonical cache-key form: identical semantics ⇒ identical string
/// (what-if cut lists are sorted and deduplicated, etc.).
std::string canonical_key(const Request& request);

// --- Responses --------------------------------------------------------

struct SharedRiskResult {
  std::string isp;
  std::size_t conduits_used = 0;
  double mean_sharing = 0.0;
  double standard_error = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

struct TopConduitRow {
  core::ConduitId conduit = core::kNoConduit;
  std::string a;
  std::string b;
  std::size_t tenants = 0;
  bool validated = false;
};

struct TopConduitsResult {
  std::vector<TopConduitRow> rows;
};

struct WhatIfCutResult {
  std::size_t conduits_cut = 0;
  std::size_t links_severed = 0;  ///< links traversing >= 1 cut conduit
  std::size_t isps_hit = 0;       ///< distinct ISPs with >= 1 severed link
  double connected_fraction_before = 0.0;  ///< node pairs connected, uncut map
  double connected_fraction_after = 0.0;
  std::size_t components_after = 0;
};

struct PathHop {
  std::string a;
  std::string b;
  double km = 0.0;
};

struct CityPathResult {
  bool reachable = false;
  std::vector<PathHop> hops;
  double km = 0.0;
  double delay_ms = 0.0;  ///< one-way fiber propagation
};

struct HammingNeighbor {
  std::string isp;
  std::size_t distance = 0;
};

struct HammingNeighborsResult {
  std::string isp;
  std::vector<HammingNeighbor> neighbors;
};

struct LatencyDissectionResult {
  std::string from;
  std::string to;
  dissect::PairDissection dissection;
};

/// One audit table row, already resolved to display names.
struct AuditPairRow {
  std::string a;
  std::string b;
  double clat_ms = 0.0;
  double achievable_ms = 0.0;
  double stretch = 0.0;
};

struct CLatencyAuditResult {
  std::size_t cities = 0;
  std::size_t pairs = 0;
  std::size_t fiber_unreachable = 0;
  double median_stretch = 0.0;
  double p95_stretch = 0.0;
  std::size_t within_target = 0;
  double total_achievable_ms = 0.0;
  std::vector<AuditPairRow> top;  ///< ranked by achievable improvement
};

/// The cascade's fixed point, summarized.  `rounds` counts overload waves
/// after the initial cut (0 = the cut alone never overloaded anything).
struct WhatIfCascadeResult {
  std::size_t conduits_cut = 0;
  std::size_t rounds = 0;
  bool converged = true;  ///< false if stopped at max_rounds still overloading
  std::vector<core::ConduitId> overload_failures;  ///< failed by load, ascending
  std::size_t conduits_dead = 0;  ///< cut + overload-failed at the fixed point
  double giant_component = 1.0;
  double l3_edges_dead = 0.0;
  double l3_reachability = 1.0;
  double demand_delivered = 1.0;
  double mean_stretch = 1.0;  ///< +inf when nothing is deliverable
  std::size_t links_undeliverable = 0;
  std::size_t isps_hit = 0;  ///< distinct ISPs with >= 1 undeliverable link
};

struct SleepResult {};

using ResponseBody = std::variant<SharedRiskResult, TopConduitsResult, WhatIfCutResult,
                                  CityPathResult, HammingNeighborsResult, LatencyDissectionResult,
                                  CLatencyAuditResult, WhatIfCascadeResult, SleepResult>;

enum class Status : std::uint8_t {
  Ok,
  Overloaded,  ///< shed at admission; request was never executed
  NotFound,    ///< unknown ISP / city name
  BadRequest,  ///< malformed parameters (conduit id out of range, empty cut set)
  NoSnapshot,  ///< nothing published yet
  Error,       ///< unexpected exception during execution
};

const char* status_name(Status status) noexcept;

struct Response {
  Status status = Status::Ok;
  std::string error;          ///< populated for non-Ok statuses
  std::uint64_t epoch = 0;    ///< snapshot the response was computed against
  bool cache_hit = false;
  double latency_us = 0.0;    ///< submit → completion, queue wait included
  ResponseBody body;
};

// --- Engine -----------------------------------------------------------

struct EngineOptions {
  /// Admission bound: requests queued or executing before shedding.
  std::size_t max_pending = 256;
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;
};

class Engine {
 public:
  /// The store and executor must outlive the engine.  A serial executor
  /// (no workers) degrades gracefully: requests execute inline in
  /// submit() and the future is ready on return.
  Engine(SnapshotStore& store, sim::Executor& executor, EngineOptions options = {});
  ~Engine();  ///< blocks until every in-flight request completed

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  std::future<Response> submit(Request request);

  /// Synchronous convenience: submit and wait.
  Response serve(Request request) { return submit(std::move(request)).get(); }

  /// Requests admitted but not yet completed.
  std::size_t pending() const noexcept { return pending_.load(std::memory_order_relaxed); }

  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t cache_size() const { return cache_.size(); }
  void clear_cache() { cache_.clear(); }
  /// Drop cache entries from epochs other than the current one.
  std::size_t purge_stale_cache() { return cache_.purge_stale(store_.epoch()); }

  /// Operator report: latency table + cache summary.
  std::string render_metrics() const { return metrics_.render(cache_.stats()); }

  /// Scratch-pool observability (capped-growth regression tests).
  std::size_t scratch_pool_idle() const { return scratch_pool_.idle(); }
  std::size_t scratch_pool_cap() const noexcept { return scratch_pool_.cap(); }
  std::size_t scratch_created() const noexcept { return scratch_pool_.created(); }
  std::size_t scratch_dropped() const noexcept { return scratch_pool_.dropped(); }

 private:
  void execute(const Snapshot& snapshot, const Request& request, Response& response) const;
  Response run(Request request, std::chrono::steady_clock::time_point admitted);
  void finish();

  SnapshotStore& store_;
  sim::Executor& executor_;
  EngineOptions options_;
  ShardedLruCache<std::shared_ptr<const Response>> cache_;
  /// Reusable per-request kernel scratch (fastpath::RequestScratch),
  /// leased per request by execute().  Capped: a concurrency burst can
  /// never pin more than cap() idle scratch objects.
  util::LeasePool<fastpath::RequestScratch> scratch_pool_;
  MetricsRegistry metrics_;
  std::atomic<std::size_t> pending_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

}  // namespace intertubes::serve
