// Live-map ingest deltas: incremental mutations, keyed by corridor
// identity, that build the next-epoch Snapshot off the serve hot path.
//
// Conduit ids are reassigned on every map rebuild, so a delta cannot name
// a conduit by id across epochs; transport::CorridorId is the stable
// cross-epoch key (the same identity with_conduits_cut uses to carry
// tenancy over).  A LiveMap holds the pristine base snapshot plus the
// *cumulative* mutation state (cut corridors, added conduits, extra
// tenants) and rebuilds the mutated map from that state on every apply —
// one deterministic code path, so applying batches one at a time or all
// merged into one yields byte-identical snapshots (the delta-equivalence
// test pins this against a from-scratch rebuild of the mutated world).
//
// apply() is not itself thread-safe: the sharded front-end serializes it
// under its publish lock, and the build runs in the churn thread — never
// on a query worker — before the RCU swap makes it visible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "serve/snapshot.hpp"

namespace intertubes::serve {

/// Introduce a conduit on a corridor that holds none (a newly trenched or
/// newly discovered route).  Tenants are deduplicated; validated marks
/// document support.
struct NewConduitDelta {
  transport::CorridorId corridor = transport::kNoCorridor;
  std::vector<isp::IspId> tenants;
  bool validated = false;
};

/// Add one tenant to the live conduit on a corridor (a lease observed in
/// new records).
struct TenantDelta {
  transport::CorridorId corridor = transport::kNoCorridor;
  isp::IspId tenant = isp::kNoIsp;
};

/// One ingest batch.  Lists apply in field order — cuts, then repairs,
/// then new conduits, then tenant changes — each against the state the
/// previous list left, so a merged batch equals the same deltas applied
/// one at a time.
struct DeltaBatch {
  /// Sever the live conduit on each corridor (links riding it drop).
  std::vector<transport::CorridorId> cut;
  /// Restore a previously cut corridor: its conduit, tenancy, and every
  /// base-map link that rode it come back.
  std::vector<transport::CorridorId> repair;
  std::vector<NewConduitDelta> add;
  std::vector<TenantDelta> tenant_adds;
  /// Provenance note for the snapshot label ("repair I-90 cut", ...).
  std::string label;

  bool empty() const noexcept {
    return cut.empty() && repair.empty() && add.empty() && tenant_adds.empty();
  }
};

/// The delta applier: pristine base snapshot + cumulative mutation state.
/// Validation is strict — unknown corridors, double cuts, repairs of
/// uncut corridors, adds onto occupied corridors, and out-of-range
/// tenants all throw std::invalid_argument *before* any state changes,
/// so a rejected batch is a no-op.
class LiveMap {
 public:
  explicit LiveMap(std::shared_ptr<const Snapshot> base);

  /// Fold `batch` into the cumulative state and derive the next
  /// snapshot (unstamped — the caller publishes it).  An empty batch is
  /// legal and rebuilds the current state.
  std::shared_ptr<Snapshot> apply(const DeltaBatch& batch);

  const Snapshot& base() const noexcept { return *base_; }
  std::size_t batches_applied() const noexcept { return batches_; }
  std::size_t cut_corridors() const noexcept { return cut_.size(); }
  std::size_t added_conduits() const noexcept { return added_.size(); }

 private:
  bool in_base(transport::CorridorId corridor) const;
  std::shared_ptr<Snapshot> rebuild(const std::string& note) const;

  std::shared_ptr<const Snapshot> base_;
  std::set<transport::CorridorId> cut_;
  std::vector<NewConduitDelta> added_;  ///< insertion order; unique corridors
  std::map<transport::CorridorId, std::set<isp::IspId>> extra_tenants_;
  std::size_t batches_ = 0;
};

}  // namespace intertubes::serve
