// Sharded LRU memoization cache for derived query artifacts.
//
// Keys are (snapshot epoch, canonical request string): a snapshot swap
// bumps the epoch, so every entry computed against the old world misses
// naturally — no locking or coordination with readers is needed to
// invalidate, and purge_stale() reclaims the dead entries' memory when
// convenient.  The key space is split across independently locked shards
// so concurrent serve threads rarely contend on the same mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace intertubes::serve {

struct CacheKey {
  std::uint64_t epoch = 0;
  std::string request;  ///< canonical form, see serve::canonical_key

  bool operator==(const CacheKey& other) const noexcept {
    return epoch == other.epoch && request == other.request;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    // splitmix-style scramble of the epoch folded into the string hash.
    std::uint64_t h = key.epoch + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return std::hash<std::string>{}(key.request) ^ static_cast<std::size_t>(h ^ (h >> 31));
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;    ///< capacity evictions (LRU tail drops)
  std::uint64_t invalidations = 0;  ///< stale-epoch entries purged

  double hit_ratio() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` entries total, split evenly across `shards` independently
  /// locked shards (each rounds up, so the effective total can exceed
  /// `capacity` by up to shards-1).
  explicit ShardedLruCache(std::size_t capacity = 4096, std::size_t num_shards = 8)
      : per_shard_capacity_(checked_per_shard(capacity, num_shards)), shards_(num_shards) {}

  /// Look up and touch (move to most-recently-used).  Counts a hit/miss.
  std::optional<V> get(const CacheKey& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// Insert or refresh; evicts the shard's LRU tail when over capacity.
  void put(const CacheKey& key, V value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drop every entry whose epoch differs from `current_epoch` (wholesale
  /// invalidation after a snapshot swap).  Returns entries dropped.
  std::size_t purge_stale(std::uint64_t current_epoch) {
    std::size_t dropped = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (it->first.epoch != current_epoch) {
          shard.index.erase(it->first);
          it = shard.lru.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
  }

  /// Drop everything (bench cold-start phases).  Not counted as
  /// invalidations.
  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t shard_capacity() const noexcept { return per_shard_capacity_; }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<CacheKey, V>> lru;  // front = most recent
    std::unordered_map<CacheKey, typename std::list<std::pair<CacheKey, V>>::iterator,
                       CacheKeyHash>
        index;
  };

  static std::size_t checked_per_shard(std::size_t capacity, std::size_t num_shards) {
    IT_CHECK(capacity > 0);
    IT_CHECK(num_shards > 0);
    return (capacity + num_shards - 1) / num_shards;
  }

  Shard& shard_for(const CacheKey& key) {
    return shards_[CacheKeyHash{}(key) % shards_.size()];
  }

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace intertubes::serve
