#include "serve/engine.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "geo/latency.hpp"
#include "isp/profiles.hpp"
#include "serve/fastpath.hpp"

namespace intertubes::serve {

namespace {

using Clock = std::chrono::steady_clock;

void fail(Response& response, Status status, std::string message) {
  response.status = status;
  response.error = std::move(message);
}

void execute_shared_risk(const Snapshot& snap, const SharedRiskQuery& query,
                         Response& response) {
  const auto& profiles = snap.truth().profiles();
  const isp::IspId id = isp::find_profile(profiles, query.isp);
  if (id == isp::kNoIsp) {
    fail(response, Status::NotFound, "unknown ISP: " + query.isp);
    return;
  }
  SharedRiskResult result;
  result.isp = profiles[id].name;
  const auto& row = fastpath::fast_shared_risk(snap.soa(), id);
  result.conduits_used = row.conduits_used;
  result.mean_sharing = row.mean_sharing;
  result.standard_error = row.standard_error;
  result.p25 = row.p25;
  result.p75 = row.p75;
  response.body = std::move(result);
}

void execute_top_conduits(const Snapshot& snap, const TopConduitsQuery& query,
                          Response& response) {
  const auto& soa = snap.soa();
  const auto& cities = snap.cities();
  const std::size_t count = fastpath::fast_top_conduits(soa, query.k);
  TopConduitsResult result;
  result.rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const core::ConduitId id = soa.conduits_by_tenancy[i];
    TopConduitRow row;
    row.conduit = id;
    row.a = cities.city(soa.conduit_a[id]).display_name();
    row.b = cities.city(soa.conduit_b[id]).display_name();
    row.tenants = soa.conduit_tenants[id];
    row.validated = soa.conduit_validated[id] != 0;
    result.rows.push_back(std::move(row));
  }
  response.body = std::move(result);
}

void execute_what_if_cut(const Snapshot& snap, const WhatIfCutQuery& query,
                         fastpath::RequestScratch& scratch, Response& response) {
  if (query.cuts.empty()) {
    fail(response, Status::BadRequest, "what-if-cut needs at least one conduit");
    return;
  }
  fastpath::CutImpact impact;
  if (!fastpath::fast_what_if_cut(snap.soa(), query.cuts, scratch, impact)) {
    fail(response, Status::BadRequest,
         "conduit id " + std::to_string(scratch.cut_ids.back()) + " out of range");
    return;
  }
  WhatIfCutResult result;
  result.conduits_cut = impact.conduits_cut;
  result.links_severed = impact.links_severed;
  result.isps_hit = impact.isps_hit;
  result.connected_fraction_before = impact.connected_fraction_before;
  result.connected_fraction_after = impact.connected_fraction_after;
  result.components_after = impact.components_after;
  response.body = std::move(result);
}

void execute_city_path(const Snapshot& snap, const CityPathQuery& query,
                       fastpath::RequestScratch& scratch, Response& response) {
  const auto& cities = snap.cities();
  const auto from = cities.find(query.from);
  const auto to = cities.find(query.to);
  if (!from || !to) {
    fail(response, Status::NotFound,
         "unknown city: " + (from ? query.to : query.from));
    return;
  }
  CityPathResult result;
  if (*from == *to) {
    result.reachable = true;
    response.body = std::move(result);
    return;
  }
  // Min-length route over the snapshot's compiled conduit graph, into
  // scratch-owned workspace and path buffers.
  fastpath::fast_city_path(snap, *from, *to, scratch);
  const auto& path = scratch.path;
  if (!path.reachable) {
    response.body = std::move(result);  // reachable = false is the answer
    return;
  }
  const auto& soa = snap.soa();
  result.reachable = true;
  result.hops.reserve(path.edges.size());
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    PathHop hop;
    hop.a = cities.city(path.nodes[i]).display_name();
    hop.b = cities.city(path.nodes[i + 1]).display_name();
    hop.km = soa.conduit_km[path.edges[i]];
    result.hops.push_back(std::move(hop));
  }
  result.km = path.cost;
  result.delay_ms = geo::fiber_delay_ms(result.km);
  response.body = std::move(result);
}

void execute_hamming_neighbors(const Snapshot& snap, const HammingNeighborsQuery& query,
                               fastpath::RequestScratch& scratch, Response& response) {
  const auto& profiles = snap.truth().profiles();
  const isp::IspId id = isp::find_profile(profiles, query.isp);
  if (id == isp::kNoIsp) {
    fail(response, Status::NotFound, "unknown ISP: " + query.isp);
    return;
  }
  HammingNeighborsResult result;
  result.isp = profiles[id].name;
  const std::size_t count =
      fastpath::fast_hamming_neighbors(snap.soa(), id, query.k, scratch);
  result.neighbors.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    result.neighbors.push_back({profiles[scratch.hamming[i].second].name,
                                static_cast<std::size_t>(scratch.hamming[i].first)});
  }
  response.body = std::move(result);
}

dissect::LatencyDissector make_dissector(const Snapshot& snap) {
  // Alias the snapshot's compiled conduit graph instead of building a
  // duplicate; the snapshot shared_ptr held by the request pins it.
  return dissect::LatencyDissector(snap.shared_path_engine(), snap.map().nodes(),
                                   snap.cities(), snap.row());
}

void execute_latency_dissection(const Snapshot& snap, const LatencyDissectionQuery& query,
                                Response& response) {
  const auto& cities = snap.cities();
  const auto from = cities.find(query.from);
  const auto to = cities.find(query.to);
  if (!from || !to) {
    fail(response, Status::NotFound, "unknown city: " + (from ? query.to : query.from));
    return;
  }
  if (*from == *to) {
    fail(response, Status::BadRequest, "latency dissection needs two distinct cities");
    return;
  }
  LatencyDissectionResult result;
  result.from = cities.city(*from).display_name();
  result.to = cities.city(*to).display_name();
  result.dissection = make_dissector(snap).dissect_pair(*from, *to);
  response.body = std::move(result);
}

void execute_clatency_audit(const Snapshot& snap, const CLatencyAuditQuery& query,
                            Response& response) {
  // top_k == 0 is a valid query: aggregates only, empty pair table.
  if (query.target_factor < 1.0) {
    fail(response, Status::BadRequest, "audit target factor must be >= 1");
    return;
  }
  const auto& cities = snap.cities();
  // The sweep runs serially inside this worker (no nested parallelism);
  // the epoch-keyed cache makes repeats on the same snapshot free.
  dissect::DissectOptions options;
  options.target_factor = query.target_factor;
  const auto study = make_dissector(snap).dissect(nullptr, options);

  CLatencyAuditResult result;
  result.cities = study.nodes.size();
  result.pairs = study.pairs.size();
  result.fiber_unreachable = study.fiber_unreachable;
  result.median_stretch = study.median_stretch;
  result.p95_stretch = study.p95_stretch;
  result.within_target = study.within_target;
  result.total_achievable_ms = study.total_achievable_ms;

  std::vector<const dissect::PairDissection*> ranked;
  ranked.reserve(study.pairs.size());
  for (const auto& p : study.pairs) {
    if (p.fiber_reachable && p.row_reachable) ranked.push_back(&p);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const dissect::PairDissection* a, const dissect::PairDissection* b) {
                     return a->achievable_ms > b->achievable_ms;
                   });
  if (ranked.size() > query.top_k) ranked.resize(query.top_k);
  for (const auto* p : ranked) {
    result.top.push_back({cities.city(p->a).display_name(), cities.city(p->b).display_name(),
                          p->clat_ms, p->achievable_ms, p->stretch});
  }
  response.body = std::move(result);
}

void execute_what_if_cascade(const Snapshot& snap, const WhatIfCascadeQuery& query,
                             Response& response) {
  if (query.cuts.empty()) {
    fail(response, Status::BadRequest, "what-if-cascade needs at least one conduit");
    return;
  }
  if (query.capacity_margin < 0.0) {
    fail(response, Status::BadRequest, "capacity margin must be non-negative");
    return;
  }
  if (query.max_rounds == 0 || query.max_rounds > 64) {
    fail(response, Status::BadRequest, "max_rounds must be in [1, 64]");
    return;
  }
  const auto& map = snap.map();
  std::vector<core::ConduitId> cuts = query.cuts;
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (cuts.back() >= map.conduits().size()) {
    fail(response, Status::BadRequest,
         "conduit id " + std::to_string(cuts.back()) + " out of range");
    return;
  }
  cascade::CascadeParams params;
  params.capacity_margin = query.capacity_margin;
  params.max_rounds = query.max_rounds;
  const auto outcome = snap.cascade_engine().run_cascade(cuts, params);
  const auto& fixed = outcome.rounds.back();

  WhatIfCascadeResult result;
  result.conduits_cut = cuts.size();
  result.rounds = outcome.fixed_point_round;
  result.converged = outcome.converged;
  result.overload_failures = outcome.overload_failures;
  result.conduits_dead = fixed.conduits_dead;
  result.giant_component = fixed.giant_component;
  result.l3_edges_dead = fixed.l3_edges_dead;
  result.l3_reachability = fixed.l3_reachability;
  result.demand_delivered = fixed.demand_delivered;
  result.mean_stretch = fixed.mean_stretch;
  for (std::uint32_t lost : outcome.isp_links_lost) {
    result.links_undeliverable += lost;
    if (lost > 0) ++result.isps_hit;
  }
  response.body = std::move(result);
}

void execute_sleep(const SleepQuery& query, Response& response) {
  if (query.ms < 0.0) {
    fail(response, Status::BadRequest, "sleep duration must be non-negative");
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(query.ms));
  response.body = SleepResult{};
}

}  // namespace

RequestType request_type(const Request& request) noexcept {
  return static_cast<RequestType>(request.index());
}

std::string canonical_key(const Request& request) {
  std::ostringstream key;
  std::visit(
      [&key](const auto& query) {
        using T = std::decay_t<decltype(query)>;
        if constexpr (std::is_same_v<T, SharedRiskQuery>) {
          key << "risk:" << query.isp;
        } else if constexpr (std::is_same_v<T, TopConduitsQuery>) {
          key << "top:" << query.k;
        } else if constexpr (std::is_same_v<T, WhatIfCutQuery>) {
          auto cuts = query.cuts;
          std::sort(cuts.begin(), cuts.end());
          cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
          key << "cut:";
          for (std::size_t i = 0; i < cuts.size(); ++i) key << (i ? "," : "") << cuts[i];
        } else if constexpr (std::is_same_v<T, CityPathQuery>) {
          key << "path:" << query.from << "|" << query.to;
        } else if constexpr (std::is_same_v<T, HammingNeighborsQuery>) {
          key << "hamming:" << query.isp << ":" << query.k;
        } else if constexpr (std::is_same_v<T, LatencyDissectionQuery>) {
          key << "dissect:" << query.from << "|" << query.to;
        } else if constexpr (std::is_same_v<T, CLatencyAuditQuery>) {
          key << "claudit:" << query.top_k << ":" << query.target_factor;
        } else if constexpr (std::is_same_v<T, WhatIfCascadeQuery>) {
          auto cuts = query.cuts;
          std::sort(cuts.begin(), cuts.end());
          cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
          key << "cascade:";
          for (std::size_t i = 0; i < cuts.size(); ++i) key << (i ? "," : "") << cuts[i];
          key << ";m=" << query.capacity_margin << ";r=" << query.max_rounds;
        } else if constexpr (std::is_same_v<T, SleepQuery>) {
          key << "sleep:" << query.ms;
        }
      },
      request);
  return key.str();
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::Overloaded: return "overloaded";
    case Status::NotFound: return "not-found";
    case Status::BadRequest: return "bad-request";
    case Status::NoSnapshot: return "no-snapshot";
    case Status::Error: return "error";
  }
  return "unknown";
}

Engine::Engine(SnapshotStore& store, sim::Executor& executor, EngineOptions options)
    : store_(store),
      executor_(executor),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  IT_CHECK(options.max_pending > 0);
}

Engine::~Engine() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void Engine::execute(const Snapshot& snapshot, const Request& request,
                     Response& response) const {
  std::visit(
      [&](const auto& query) {
        using T = std::decay_t<decltype(query)>;
        if constexpr (std::is_same_v<T, SharedRiskQuery>) {
          execute_shared_risk(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, TopConduitsQuery>) {
          execute_top_conduits(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, WhatIfCutQuery>) {
          const auto scratch = scratch_pool_.acquire();
          execute_what_if_cut(snapshot, query, *scratch, response);
        } else if constexpr (std::is_same_v<T, CityPathQuery>) {
          const auto scratch = scratch_pool_.acquire();
          execute_city_path(snapshot, query, *scratch, response);
        } else if constexpr (std::is_same_v<T, HammingNeighborsQuery>) {
          const auto scratch = scratch_pool_.acquire();
          execute_hamming_neighbors(snapshot, query, *scratch, response);
        } else if constexpr (std::is_same_v<T, LatencyDissectionQuery>) {
          execute_latency_dissection(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, CLatencyAuditQuery>) {
          execute_clatency_audit(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, WhatIfCascadeQuery>) {
          execute_what_if_cascade(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, SleepQuery>) {
          execute_sleep(query, response);
        }
      },
      request);
}

Response Engine::run(Request request, Clock::time_point admitted) {
  const RequestType type = request_type(request);
  Response response;
  try {
    // One wait-free load; holding the shared_ptr pins every artifact for
    // the rest of the request even if a new snapshot is published now.
    const auto snapshot = store_.current();
    if (!snapshot) {
      fail(response, Status::NoSnapshot, "no snapshot published yet");
    } else {
      response.epoch = snapshot->epoch();
      if (type == RequestType::Sleep) {
        execute(*snapshot, request, response);
      } else {
        const CacheKey key{snapshot->epoch(), canonical_key(request)};
        if (const auto cached = cache_.get(key)) {
          response = **cached;
          response.cache_hit = true;
        } else {
          execute(*snapshot, request, response);
          if (response.status == Status::Ok) {
            cache_.put(key, std::make_shared<const Response>(response));
          }
        }
      }
    }
  } catch (const std::exception& e) {
    fail(response, Status::Error, e.what());
  }
  response.latency_us =
      std::chrono::duration<double, std::micro>(Clock::now() - admitted).count();
  metrics_.record(type, response.latency_us, response.cache_hit,
                  response.status != Status::Ok);
  return response;
}

void Engine::finish() {
  std::lock_guard<std::mutex> lock(idle_mu_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) idle_cv_.notify_all();
}

std::future<Response> Engine::submit(Request request) {
  const auto admitted = Clock::now();
  const RequestType type = request_type(request);
  // Admission control: claim a pending slot or shed.  CAS loop so a burst
  // can never overshoot max_pending.
  std::size_t current = pending_.load(std::memory_order_relaxed);
  for (;;) {
    if (current >= options_.max_pending) {
      metrics_.record_shed(type);
      std::promise<Response> rejected;
      Response response;
      response.status = Status::Overloaded;
      response.error = "engine at max_pending (" + std::to_string(options_.max_pending) + ")";
      rejected.set_value(std::move(response));
      return rejected.get_future();
    }
    if (pending_.compare_exchange_weak(current, current + 1, std::memory_order_acq_rel)) {
      break;
    }
  }
  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  executor_.post([this, promise, request = std::move(request), admitted]() mutable {
    promise->set_value(run(std::move(request), admitted));
    finish();
  });
  return future;
}

}  // namespace intertubes::serve
