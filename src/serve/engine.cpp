#include "serve/engine.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "geo/latency.hpp"
#include "isp/profiles.hpp"

namespace intertubes::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Union-find over dense node indices for the what-if connectivity delta.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<std::size_t> parent_;
};

struct Connectivity {
  double connected_fraction = 0.0;
  std::size_t components = 0;
};

/// Connectivity of the conduit graph restricted to conduits where
/// `alive(id)` holds, over the *uncut* map's node set (so severed nodes
/// count as disconnected, not vanished).
template <typename AlivePred>
Connectivity connectivity(const core::FiberMap& map, const AlivePred& alive) {
  const auto nodes = map.nodes();
  Connectivity out;
  if (nodes.size() < 2) {
    out.connected_fraction = 1.0;
    out.components = nodes.size();
    return out;
  }
  std::unordered_map<transport::CityId, std::size_t> dense;
  dense.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) dense[nodes[i]] = i;
  DisjointSets sets(nodes.size());
  for (const auto& conduit : map.conduits()) {
    if (alive(conduit.id)) sets.unite(dense[conduit.a], dense[conduit.b]);
  }
  std::unordered_map<std::size_t, std::size_t> component_sizes;
  for (std::size_t i = 0; i < nodes.size(); ++i) ++component_sizes[sets.find(i)];
  double connected_pairs = 0.0;
  for (const auto& [root, size] : component_sizes) {
    (void)root;
    connected_pairs += 0.5 * static_cast<double>(size) * static_cast<double>(size - 1);
  }
  const double n = static_cast<double>(nodes.size());
  out.connected_fraction = connected_pairs / (0.5 * n * (n - 1.0));
  out.components = component_sizes.size();
  return out;
}

void fail(Response& response, Status status, std::string message) {
  response.status = status;
  response.error = std::move(message);
}

void execute_shared_risk(const Snapshot& snap, const SharedRiskQuery& query,
                         Response& response) {
  const auto& profiles = snap.truth().profiles();
  const isp::IspId id = isp::find_profile(profiles, query.isp);
  if (id == isp::kNoIsp) {
    fail(response, Status::NotFound, "unknown ISP: " + query.isp);
    return;
  }
  SharedRiskResult result;
  result.isp = profiles[id].name;
  for (const auto& row : snap.risk_ranking()) {
    if (row.isp != id) continue;
    result.conduits_used = row.conduits_used;
    result.mean_sharing = row.mean_sharing;
    result.standard_error = row.standard_error;
    result.p25 = row.p25;
    result.p75 = row.p75;
    break;
  }
  response.body = std::move(result);
}

void execute_top_conduits(const Snapshot& snap, const TopConduitsQuery& query,
                          Response& response) {
  if (query.k == 0) {
    fail(response, Status::BadRequest, "top-conduits k must be positive");
    return;
  }
  const auto& cities = snap.cities();
  TopConduitsResult result;
  for (core::ConduitId id : snap.matrix().most_shared_conduits(query.k)) {
    const auto& conduit = snap.map().conduit(id);
    TopConduitRow row;
    row.conduit = id;
    row.a = cities.city(conduit.a).display_name();
    row.b = cities.city(conduit.b).display_name();
    row.tenants = conduit.tenants.size();
    row.validated = conduit.validated;
    result.rows.push_back(std::move(row));
  }
  response.body = std::move(result);
}

void execute_what_if_cut(const Snapshot& snap, const WhatIfCutQuery& query,
                         Response& response) {
  if (query.cuts.empty()) {
    fail(response, Status::BadRequest, "what-if-cut needs at least one conduit");
    return;
  }
  const auto& map = snap.map();
  std::vector<core::ConduitId> cuts = query.cuts;
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (cuts.back() >= map.conduits().size()) {
    fail(response, Status::BadRequest,
         "conduit id " + std::to_string(cuts.back()) + " out of range");
    return;
  }
  const auto is_cut = [&cuts](core::ConduitId c) {
    return std::binary_search(cuts.begin(), cuts.end(), c);
  };
  WhatIfCutResult result;
  result.conduits_cut = cuts.size();
  std::vector<char> isp_hit(map.num_isps(), 0);
  for (const auto& link : map.links()) {
    const bool severed =
        std::any_of(link.conduits.begin(), link.conduits.end(), is_cut);
    if (!severed) continue;
    ++result.links_severed;
    isp_hit[link.isp] = 1;
  }
  result.isps_hit =
      static_cast<std::size_t>(std::count(isp_hit.begin(), isp_hit.end(), 1));
  const auto before = connectivity(map, [](core::ConduitId) { return true; });
  const auto after = connectivity(map, [&is_cut](core::ConduitId c) { return !is_cut(c); });
  result.connected_fraction_before = before.connected_fraction;
  result.connected_fraction_after = after.connected_fraction;
  result.components_after = after.components;
  response.body = std::move(result);
}

void execute_city_path(const Snapshot& snap, const CityPathQuery& query, Response& response) {
  const auto& cities = snap.cities();
  const auto from = cities.find(query.from);
  const auto to = cities.find(query.to);
  if (!from || !to) {
    fail(response, Status::NotFound,
         "unknown city: " + (from ? query.to : query.from));
    return;
  }
  CityPathResult result;
  if (*from == *to) {
    result.reachable = true;
    response.body = std::move(result);
    return;
  }
  // Min-length route over the snapshot's compiled conduit graph.
  const auto& map = snap.map();
  const auto path = snap.path_engine().shortest_path(*from, *to);
  if (!path.reachable) {
    response.body = std::move(result);  // reachable = false is the answer
    return;
  }
  result.reachable = true;
  result.hops.reserve(path.edges.size());
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    PathHop hop;
    hop.a = cities.city(path.nodes[i]).display_name();
    hop.b = cities.city(path.nodes[i + 1]).display_name();
    hop.km = map.conduit(path.edges[i]).length_km;
    result.hops.push_back(std::move(hop));
  }
  result.km = path.cost;
  result.delay_ms = geo::fiber_delay_ms(result.km);
  response.body = std::move(result);
}

void execute_hamming_neighbors(const Snapshot& snap, const HammingNeighborsQuery& query,
                               Response& response) {
  if (query.k == 0) {
    fail(response, Status::BadRequest, "hamming-neighbors k must be positive");
    return;
  }
  const auto& profiles = snap.truth().profiles();
  const isp::IspId id = isp::find_profile(profiles, query.isp);
  if (id == isp::kNoIsp) {
    fail(response, Status::NotFound, "unknown ISP: " + query.isp);
    return;
  }
  const auto& matrix = snap.matrix();
  HammingNeighborsResult result;
  result.isp = profiles[id].name;
  std::vector<std::pair<std::size_t, isp::IspId>> distances;
  for (isp::IspId other = 0; other < matrix.num_isps(); ++other) {
    if (other == id) continue;
    std::size_t distance = 0;
    for (core::ConduitId c = 0; c < matrix.num_conduits(); ++c) {
      if (matrix.uses(id, c) != matrix.uses(other, c)) ++distance;
    }
    distances.emplace_back(distance, other);
  }
  const std::size_t k = std::min(query.k, distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k),
                    distances.end());
  for (std::size_t i = 0; i < k; ++i) {
    result.neighbors.push_back({profiles[distances[i].second].name, distances[i].first});
  }
  response.body = std::move(result);
}

dissect::LatencyDissector make_dissector(const Snapshot& snap) {
  // Alias the snapshot's compiled conduit graph instead of building a
  // duplicate; the snapshot shared_ptr held by the request pins it.
  return dissect::LatencyDissector(snap.shared_path_engine(), snap.map().nodes(),
                                   snap.cities(), snap.row());
}

void execute_latency_dissection(const Snapshot& snap, const LatencyDissectionQuery& query,
                                Response& response) {
  const auto& cities = snap.cities();
  const auto from = cities.find(query.from);
  const auto to = cities.find(query.to);
  if (!from || !to) {
    fail(response, Status::NotFound, "unknown city: " + (from ? query.to : query.from));
    return;
  }
  if (*from == *to) {
    fail(response, Status::BadRequest, "latency dissection needs two distinct cities");
    return;
  }
  LatencyDissectionResult result;
  result.from = cities.city(*from).display_name();
  result.to = cities.city(*to).display_name();
  result.dissection = make_dissector(snap).dissect_pair(*from, *to);
  response.body = std::move(result);
}

void execute_clatency_audit(const Snapshot& snap, const CLatencyAuditQuery& query,
                            Response& response) {
  if (query.top_k == 0) {
    fail(response, Status::BadRequest, "audit top_k must be positive");
    return;
  }
  if (query.target_factor < 1.0) {
    fail(response, Status::BadRequest, "audit target factor must be >= 1");
    return;
  }
  const auto& cities = snap.cities();
  // The sweep runs serially inside this worker (no nested parallelism);
  // the epoch-keyed cache makes repeats on the same snapshot free.
  dissect::DissectOptions options;
  options.target_factor = query.target_factor;
  const auto study = make_dissector(snap).dissect(nullptr, options);

  CLatencyAuditResult result;
  result.cities = study.nodes.size();
  result.pairs = study.pairs.size();
  result.fiber_unreachable = study.fiber_unreachable;
  result.median_stretch = study.median_stretch;
  result.p95_stretch = study.p95_stretch;
  result.within_target = study.within_target;
  result.total_achievable_ms = study.total_achievable_ms;

  std::vector<const dissect::PairDissection*> ranked;
  ranked.reserve(study.pairs.size());
  for (const auto& p : study.pairs) {
    if (p.fiber_reachable && p.row_reachable) ranked.push_back(&p);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const dissect::PairDissection* a, const dissect::PairDissection* b) {
                     return a->achievable_ms > b->achievable_ms;
                   });
  if (ranked.size() > query.top_k) ranked.resize(query.top_k);
  for (const auto* p : ranked) {
    result.top.push_back({cities.city(p->a).display_name(), cities.city(p->b).display_name(),
                          p->clat_ms, p->achievable_ms, p->stretch});
  }
  response.body = std::move(result);
}

void execute_what_if_cascade(const Snapshot& snap, const WhatIfCascadeQuery& query,
                             Response& response) {
  if (query.cuts.empty()) {
    fail(response, Status::BadRequest, "what-if-cascade needs at least one conduit");
    return;
  }
  if (query.capacity_margin < 0.0) {
    fail(response, Status::BadRequest, "capacity margin must be non-negative");
    return;
  }
  if (query.max_rounds == 0 || query.max_rounds > 64) {
    fail(response, Status::BadRequest, "max_rounds must be in [1, 64]");
    return;
  }
  const auto& map = snap.map();
  std::vector<core::ConduitId> cuts = query.cuts;
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (cuts.back() >= map.conduits().size()) {
    fail(response, Status::BadRequest,
         "conduit id " + std::to_string(cuts.back()) + " out of range");
    return;
  }
  cascade::CascadeParams params;
  params.capacity_margin = query.capacity_margin;
  params.max_rounds = query.max_rounds;
  const auto outcome = snap.cascade_engine().run_cascade(cuts, params);
  const auto& fixed = outcome.rounds.back();

  WhatIfCascadeResult result;
  result.conduits_cut = cuts.size();
  result.rounds = outcome.fixed_point_round;
  result.converged = outcome.converged;
  result.overload_failures = outcome.overload_failures;
  result.conduits_dead = fixed.conduits_dead;
  result.giant_component = fixed.giant_component;
  result.l3_edges_dead = fixed.l3_edges_dead;
  result.l3_reachability = fixed.l3_reachability;
  result.demand_delivered = fixed.demand_delivered;
  result.mean_stretch = fixed.mean_stretch;
  for (std::uint32_t lost : outcome.isp_links_lost) {
    result.links_undeliverable += lost;
    if (lost > 0) ++result.isps_hit;
  }
  response.body = std::move(result);
}

void execute_sleep(const SleepQuery& query, Response& response) {
  if (query.ms < 0.0) {
    fail(response, Status::BadRequest, "sleep duration must be non-negative");
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(query.ms));
  response.body = SleepResult{};
}

}  // namespace

RequestType request_type(const Request& request) noexcept {
  return static_cast<RequestType>(request.index());
}

std::string canonical_key(const Request& request) {
  std::ostringstream key;
  std::visit(
      [&key](const auto& query) {
        using T = std::decay_t<decltype(query)>;
        if constexpr (std::is_same_v<T, SharedRiskQuery>) {
          key << "risk:" << query.isp;
        } else if constexpr (std::is_same_v<T, TopConduitsQuery>) {
          key << "top:" << query.k;
        } else if constexpr (std::is_same_v<T, WhatIfCutQuery>) {
          auto cuts = query.cuts;
          std::sort(cuts.begin(), cuts.end());
          cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
          key << "cut:";
          for (std::size_t i = 0; i < cuts.size(); ++i) key << (i ? "," : "") << cuts[i];
        } else if constexpr (std::is_same_v<T, CityPathQuery>) {
          key << "path:" << query.from << "|" << query.to;
        } else if constexpr (std::is_same_v<T, HammingNeighborsQuery>) {
          key << "hamming:" << query.isp << ":" << query.k;
        } else if constexpr (std::is_same_v<T, LatencyDissectionQuery>) {
          key << "dissect:" << query.from << "|" << query.to;
        } else if constexpr (std::is_same_v<T, CLatencyAuditQuery>) {
          key << "claudit:" << query.top_k << ":" << query.target_factor;
        } else if constexpr (std::is_same_v<T, WhatIfCascadeQuery>) {
          auto cuts = query.cuts;
          std::sort(cuts.begin(), cuts.end());
          cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
          key << "cascade:";
          for (std::size_t i = 0; i < cuts.size(); ++i) key << (i ? "," : "") << cuts[i];
          key << ";m=" << query.capacity_margin << ";r=" << query.max_rounds;
        } else if constexpr (std::is_same_v<T, SleepQuery>) {
          key << "sleep:" << query.ms;
        }
      },
      request);
  return key.str();
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::Overloaded: return "overloaded";
    case Status::NotFound: return "not-found";
    case Status::BadRequest: return "bad-request";
    case Status::NoSnapshot: return "no-snapshot";
    case Status::Error: return "error";
  }
  return "unknown";
}

Engine::Engine(SnapshotStore& store, sim::Executor& executor, EngineOptions options)
    : store_(store),
      executor_(executor),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  IT_CHECK(options.max_pending > 0);
}

Engine::~Engine() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void Engine::execute(const Snapshot& snapshot, const Request& request,
                     Response& response) const {
  std::visit(
      [&](const auto& query) {
        using T = std::decay_t<decltype(query)>;
        if constexpr (std::is_same_v<T, SharedRiskQuery>) {
          execute_shared_risk(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, TopConduitsQuery>) {
          execute_top_conduits(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, WhatIfCutQuery>) {
          execute_what_if_cut(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, CityPathQuery>) {
          execute_city_path(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, HammingNeighborsQuery>) {
          execute_hamming_neighbors(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, LatencyDissectionQuery>) {
          execute_latency_dissection(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, CLatencyAuditQuery>) {
          execute_clatency_audit(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, WhatIfCascadeQuery>) {
          execute_what_if_cascade(snapshot, query, response);
        } else if constexpr (std::is_same_v<T, SleepQuery>) {
          execute_sleep(query, response);
        }
      },
      request);
}

Response Engine::run(Request request, Clock::time_point admitted) {
  const RequestType type = request_type(request);
  Response response;
  try {
    // One wait-free load; holding the shared_ptr pins every artifact for
    // the rest of the request even if a new snapshot is published now.
    const auto snapshot = store_.current();
    if (!snapshot) {
      fail(response, Status::NoSnapshot, "no snapshot published yet");
    } else {
      response.epoch = snapshot->epoch();
      if (type == RequestType::Sleep) {
        execute(*snapshot, request, response);
      } else {
        const CacheKey key{snapshot->epoch(), canonical_key(request)};
        if (const auto cached = cache_.get(key)) {
          response = **cached;
          response.cache_hit = true;
        } else {
          execute(*snapshot, request, response);
          if (response.status == Status::Ok) {
            cache_.put(key, std::make_shared<const Response>(response));
          }
        }
      }
    }
  } catch (const std::exception& e) {
    fail(response, Status::Error, e.what());
  }
  response.latency_us =
      std::chrono::duration<double, std::micro>(Clock::now() - admitted).count();
  metrics_.record(type, response.latency_us, response.cache_hit,
                  response.status != Status::Ok);
  return response;
}

void Engine::finish() {
  std::lock_guard<std::mutex> lock(idle_mu_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) idle_cv_.notify_all();
}

std::future<Response> Engine::submit(Request request) {
  const auto admitted = Clock::now();
  const RequestType type = request_type(request);
  // Admission control: claim a pending slot or shed.  CAS loop so a burst
  // can never overshoot max_pending.
  std::size_t current = pending_.load(std::memory_order_relaxed);
  for (;;) {
    if (current >= options_.max_pending) {
      metrics_.record_shed(type);
      std::promise<Response> rejected;
      Response response;
      response.status = Status::Overloaded;
      response.error = "engine at max_pending (" + std::to_string(options_.max_pending) + ")";
      rejected.set_value(std::move(response));
      return rejected.get_future();
    }
    if (pending_.compare_exchange_weak(current, current + 1, std::memory_order_acq_rel)) {
      break;
    }
  }
  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  executor_.post([this, promise, request = std::move(request), admitted]() mutable {
    promise->set_value(run(std::move(request), admitted));
    finish();
  });
  return future;
}

}  // namespace intertubes::serve
