// Request-level observability for the query service: per-request-type
// latency histograms (util/stats LatencyHistogram, microsecond domain),
// shed/error counters, and a table renderer for operator-facing reports.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "serve/cache.hpp"
#include "util/stats.hpp"

namespace intertubes::serve {

/// One value per Request variant alternative (and the order must match the
/// variant in serve/engine.hpp — see request_type() there).
enum class RequestType : std::uint8_t {
  SharedRisk = 0,
  TopConduits,
  WhatIfCut,
  CityPath,
  HammingNeighbors,
  LatencyDissection,
  CLatencyAudit,
  WhatIfCascade,
  Sleep,
};
inline constexpr std::size_t kNumRequestTypes = 9;

const char* request_type_name(RequestType type) noexcept;

/// Point-in-time numbers for one request type.
struct RequestTypeMetrics {
  std::uint64_t count = 0;       ///< requests served (Ok or error, not shed)
  std::uint64_t cache_hits = 0;  ///< served straight from the cache
  std::uint64_t shed = 0;        ///< rejected Overloaded at admission
  std::uint64_t errors = 0;      ///< served with a non-Ok, non-Overloaded status
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double mean_us = 0.0;
};

/// Thread-safe registry.  record() takes one short per-type lock; readers
/// (snapshot_of, render) take the same locks briefly — metrics reads are
/// rare next to request traffic.
class MetricsRegistry {
 public:
  void record(RequestType type, double latency_us, bool cache_hit, bool error);
  void record_shed(RequestType type);

  /// Fold another registry's counters and histograms into this one (the
  /// sharded front-end merges per-shard registries into a combined
  /// report).  `other` may still be recording: each source type is copied
  /// out under its own lock, then folded under ours, so the merge sees a
  /// consistent point-in-time view per type without holding both locks at
  /// once.
  void merge_from(const MetricsRegistry& other);

  RequestTypeMetrics snapshot_of(RequestType type) const;
  std::uint64_t total_served() const;
  std::uint64_t total_shed() const;

  /// Operator report: one row per request type with traffic so far, plus a
  /// cache summary line from `cache`.
  std::string render(const CacheStats& cache) const;

 private:
  struct PerType {
    mutable std::mutex mu;
    LatencyHistogram hist;  // default geometry: 1 µs .. 10 s
    std::uint64_t count = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t shed = 0;
    std::uint64_t errors = 0;
  };
  std::array<PerType, kNumRequestTypes> types_;
};

}  // namespace intertubes::serve
