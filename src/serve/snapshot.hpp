// Immutable, versioned bundles of the expensive world artifacts, behind an
// RCU-style atomic pointer swap.
//
// A Snapshot packages everything a query needs — the constructed FiberMap,
// the ISP × conduit RiskMatrix, the L3 topology, the traceroute overlay,
// and the precomputed conduit-sharing tables — as one immutable unit.  The
// SnapshotStore publishes snapshots with a monotonically increasing epoch;
// readers grab the current snapshot with a single lock-free
// std::atomic<std::shared_ptr> load and keep it alive for the duration of
// their query, so a rebuilt world (new seed, strict/lenient reingest, or a
// what-if conduit cut) hot-swaps under live readers with zero locking on
// the read path.  Old snapshots die when their last reader drops them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cascade/cascade.hpp"
#include "core/world_view.hpp"
#include "risk/risk_matrix.hpp"
#include "route/path_engine.hpp"
#include "traceroute/overlay.hpp"

namespace intertubes::serve {

/// Sentinel for SnapshotSoA::node_dense entries of cities that are not a
/// conduit endpoint.
inline constexpr std::uint32_t kNoDenseNode = 0xffffffffu;

/// Struct-of-arrays projections of the derived artifacts, built once at
/// Snapshot::derive() time.  The serve fast path (serve/fastpath.hpp)
/// streams over these flat arrays instead of chasing unordered_map /
/// vector<vector> nodes, which is what makes steady-state queries
/// allocation-free: every per-query structure the old handlers built
/// (dense node maps, component-size hash maps, usage-row scans) is either
/// precomputed here or replaced by an array pass over caller scratch.
struct SnapshotSoA {
  // --- risk rows (Hamming / shared-risk) ------------------------------
  /// Usage bitset, row-major: ISP i uses conduit c  <=>  bit (c % 64) of
  /// usage_bits[i * words_per_isp + c / 64].  Hamming distance between
  /// two ISPs = popcount of the XOR of their rows.
  std::size_t words_per_isp = 0;
  std::vector<std::uint64_t> usage_bits;
  /// Per-ISP shared-risk row indexed by IspId (zeros for ISPs using no
  /// conduits) — O(1) lookup vs scanning risk_ranking() per query.
  std::vector<risk::RiskMatrix::IspRisk> risk_by_isp;

  // --- conduit columns (top-k / city-path hops) -----------------------
  /// Every conduit id in most_shared_conduits order (descending tenancy,
  /// ascending id ties): the top-k answer is the first k entries.
  std::vector<core::ConduitId> conduits_by_tenancy;
  std::vector<transport::CityId> conduit_a;    ///< indexed by ConduitId
  std::vector<transport::CityId> conduit_b;
  std::vector<std::uint16_t> conduit_tenants;
  std::vector<std::uint8_t> conduit_validated;
  std::vector<double> conduit_km;

  // --- link → conduit incidence CSR (what-if-cut) ---------------------
  std::vector<std::uint32_t> link_isp;             ///< indexed by link order
  std::vector<std::uint32_t> link_conduit_offsets; ///< size links()+1
  std::vector<core::ConduitId> link_conduits;      ///< CSR payload
  std::size_t num_isps = 0;

  // --- dense node indexing (what-if-cut connectivity) -----------------
  /// Dense index per CityId over the cities that appear as a conduit
  /// endpoint (kNoDenseNode otherwise); replaces the per-query
  /// unordered_map the connectivity scan used to build.
  std::vector<std::uint32_t> node_dense;
  std::size_t num_map_nodes = 0;
  /// Connectivity of the *uncut* conduit graph — the what-if baseline,
  /// identical for every query on this snapshot.
  double connected_fraction_before = 0.0;
  std::size_t components_before = 0;
};

struct SnapshotOptions {
  /// Probes for the traceroute campaign feeding the overlay; 0 skips the
  /// overlay entirely (it is the most expensive derived artifact).
  std::uint64_t overlay_probes = 0;
  /// Human-readable provenance shown in diagnostics ("seed=0x1257",
  /// "what-if cut {3,17}", ...).  build() defaults it from the seed.
  std::string label;
};

class Snapshot {
 public:
  /// Derive every artifact from an already-built world.  The view's owner
  /// handle pins the backing world so what-if variants can share it.  Also
  /// eagerly builds the map's lazy adjacency, making all const queries on
  /// the snapshot safe from any number of threads.  Works for any world
  /// source: the paper Scenario or a worldgen::World.
  static std::shared_ptr<Snapshot> build(core::WorldView world, SnapshotOptions options = {});

  /// Paper-world convenience: build from a Scenario.
  static std::shared_ptr<Snapshot> build(std::shared_ptr<const core::Scenario> scenario,
                                         SnapshotOptions options = {}) {
    return build(core::WorldView::of(std::move(scenario)), std::move(options));
  }

  /// A what-if world: `cuts` (conduit ids of *base's* map) severed.  The
  /// surviving conduits keep their tenancy and validation state; links
  /// that traversed a cut conduit are severed (dropped).  Derived
  /// artifacts are recomputed against the cut map.  The base scenario and
  /// L3 topology are shared; the overlay is dropped (its probe evidence
  /// refers to the uncut world).
  static std::shared_ptr<Snapshot> with_conduits_cut(const Snapshot& base,
                                                     std::vector<core::ConduitId> cuts);

  /// A sibling snapshot over a rebuilt FiberMap (the live-delta path:
  /// serve::LiveMap folds a DeltaBatch into a mutated map and derives the
  /// next epoch through here).  The base world and L3 topology are
  /// shared; the overlay is dropped (its probe evidence refers to the
  /// base map).  `links_severed` records base-map links the mutation
  /// dropped, for parity with with_conduits_cut().
  static std::shared_ptr<Snapshot> with_map(const Snapshot& base, core::FiberMap map,
                                            std::string label, std::size_t links_severed = 0);

  /// Epoch this snapshot was published at; 0 until SnapshotStore::publish.
  std::uint64_t epoch() const noexcept { return epoch_; }
  const std::string& label() const noexcept { return label_; }

  /// The world this snapshot was derived from.  Note map() below is the
  /// snapshot's own (possibly what-if-cut) copy, not world().map.
  const core::WorldView& world() const noexcept { return world_; }
  const transport::CityDatabase& cities() const noexcept { return *world_.cities; }
  const transport::RightOfWayRegistry& row() const noexcept { return *world_.row; }
  const isp::GroundTruth& truth() const noexcept { return *world_.truth; }
  const core::FiberMap& map() const noexcept { return map_; }
  const risk::RiskMatrix& matrix() const noexcept { return matrix_; }
  const traceroute::L3Topology& l3() const noexcept { return *l3_; }
  /// Null when overlay_probes was 0 or for what-if snapshots.
  const traceroute::OverlayResult* overlay() const noexcept { return overlay_.get(); }

  /// Flat struct-of-arrays projections for the zero-alloc serve fast
  /// path (see serve/fastpath.hpp); derived once per snapshot.
  const SnapshotSoA& soa() const noexcept { return soa_; }

  /// Precomputed sharing tables: conduits_shared_by_at_least (Fig. 6
  /// series) and the per-ISP risk ranking, both derived from matrix().
  const std::vector<std::size_t>& sharing_table() const noexcept { return sharing_table_; }
  const std::vector<risk::RiskMatrix::IspRisk>& risk_ranking() const noexcept {
    return risk_ranking_;
  }

  /// Links of the base map severed by the cut (0 for non-what-if
  /// snapshots).
  std::size_t links_severed() const noexcept { return links_severed_; }

  /// The compiled length-weighted conduit graph (conduit id = edge id,
  /// node = city) for city-pair path queries.  Immutable like everything
  /// else here, so any number of request threads may query it.
  const route::PathEngine& path_engine() const noexcept { return *path_engine_; }

  /// Shared handle to the same engine, for consumers (dissect/) that
  /// alias it instead of compiling a duplicate.
  std::shared_ptr<const route::PathEngine> shared_path_engine() const noexcept {
    return path_engine_;
  }

  /// Cross-layer cascade engine over this snapshot's map, aliasing the
  /// snapshot's compiled path engine (the demand substrate and capacities
  /// are precomputed at derive() time, so per-request work is just the
  /// overload rounds).
  const cascade::CascadeEngine& cascade_engine() const noexcept { return *cascade_; }

 private:
  friend class SnapshotStore;
  Snapshot() = default;
  void derive();  ///< compute matrix_ + tables from map_ and warm caches

  std::uint64_t epoch_ = 0;
  std::string label_;
  core::WorldView world_;
  core::FiberMap map_{0};
  risk::RiskMatrix matrix_;
  std::shared_ptr<const traceroute::L3Topology> l3_;
  std::shared_ptr<const traceroute::OverlayResult> overlay_;
  std::vector<std::size_t> sharing_table_;
  std::vector<risk::RiskMatrix::IspRisk> risk_ranking_;
  SnapshotSoA soa_;
  std::shared_ptr<const route::PathEngine> path_engine_;
  std::shared_ptr<const cascade::CascadeEngine> cascade_;
  std::size_t links_severed_ = 0;
};

/// Publication point: one atomic shared_ptr, so current() is wait-free and
/// publish() is a single pointer swap.  Epochs are assigned at publish
/// time and strictly increase.
class SnapshotStore {
 public:
  /// The snapshot visible to new requests; nullptr before first publish.
  std::shared_ptr<const Snapshot> current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Stamp the snapshot with the next epoch and swap it in.  Returns the
  /// assigned epoch.  In-flight readers keep the previous snapshot alive
  /// until they finish.
  std::uint64_t publish(std::shared_ptr<Snapshot> snapshot);

  /// Install an already epoch-stamped snapshot without restamping it —
  /// the replica-distribution path: the sharded front-end stamps each
  /// snapshot exactly once through its primary store, then installs the
  /// same pointer into every shard's store so all shards agree on the
  /// epoch.  Keeps this store's own epoch counter ahead of the installed
  /// epoch, so a later direct publish() here stays strictly monotone.
  void install(std::shared_ptr<const Snapshot> snapshot);

  /// Epoch of the currently published snapshot (0 when empty).
  std::uint64_t epoch() const noexcept {
    const auto snap = current();
    return snap ? snap->epoch() : 0;
  }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  std::atomic<std::uint64_t> next_epoch_{1};
};

}  // namespace intertubes::serve
