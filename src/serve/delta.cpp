#include "serve/delta.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace intertubes::serve {

namespace {

[[noreturn]] void reject(const char* what, transport::CorridorId corridor) {
  std::ostringstream msg;
  msg << "delta rejected: " << what << " (corridor " << corridor << ")";
  throw std::invalid_argument(msg.str());
}

}  // namespace

LiveMap::LiveMap(std::shared_ptr<const Snapshot> base) : base_(std::move(base)) {
  IT_CHECK(base_ != nullptr);
}

bool LiveMap::in_base(transport::CorridorId corridor) const {
  return base_->map().conduit_for_corridor(corridor).has_value();
}

std::shared_ptr<Snapshot> LiveMap::apply(const DeltaBatch& batch) {
  // Stage the batch on copies of the cumulative state; commit only once
  // every delta validated, so a thrown rejection leaves *this untouched.
  auto cut = cut_;
  auto added = added_;
  auto extra = extra_tenants_;

  const auto& row = base_->row();
  const std::size_t num_isps = base_->map().num_isps();
  const auto added_at = [&added](transport::CorridorId corridor) {
    return std::find_if(added.begin(), added.end(), [corridor](const NewConduitDelta& d) {
      return d.corridor == corridor;
    });
  };
  const auto live = [&](transport::CorridorId corridor) {
    return (in_base(corridor) && cut.count(corridor) == 0) || added_at(corridor) != added.end();
  };

  for (const transport::CorridorId corridor : batch.cut) {
    if (!live(corridor)) reject("cut of a corridor with no live conduit", corridor);
    const auto it = added_at(corridor);
    if (it != added.end()) {
      // Cutting a delta-added conduit removes it entirely (nothing of it
      // exists in the base to repair later).
      added.erase(it);
    } else {
      cut.insert(corridor);
    }
    // The conduit is gone; tenancy evidence added on top of it goes too —
    // cut-then-repair restores the *base* conduit.
    extra.erase(corridor);
  }
  for (const transport::CorridorId corridor : batch.repair) {
    if (cut.erase(corridor) == 0) reject("repair of a corridor that is not cut", corridor);
  }
  for (const NewConduitDelta& delta : batch.add) {
    if (delta.corridor >= row.corridors().size()) {
      reject("new conduit on an unknown corridor", delta.corridor);
    }
    if (in_base(delta.corridor)) {
      // Occupied or cut: a cut corridor must come back via repair so the
      // base tenancy is restored, never silently replaced.
      reject(cut.count(delta.corridor) ? "new conduit on a cut corridor (repair it instead)"
                                       : "new conduit on an occupied corridor",
             delta.corridor);
    }
    if (added_at(delta.corridor) != added.end()) {
      reject("new conduit on an already-added corridor", delta.corridor);
    }
    NewConduitDelta staged = delta;
    std::sort(staged.tenants.begin(), staged.tenants.end());
    staged.tenants.erase(std::unique(staged.tenants.begin(), staged.tenants.end()),
                         staged.tenants.end());
    for (const isp::IspId tenant : staged.tenants) {
      if (tenant >= num_isps) reject("new conduit with an out-of-range tenant", delta.corridor);
    }
    added.push_back(std::move(staged));
  }
  for (const TenantDelta& delta : batch.tenant_adds) {
    if (delta.tenant >= num_isps) reject("out-of-range tenant", delta.corridor);
    if (!live(delta.corridor)) reject("tenant change on a corridor with no live conduit",
                                      delta.corridor);
    const auto it = added_at(delta.corridor);
    if (it != added.end()) {
      auto& tenants = it->tenants;
      const auto pos = std::lower_bound(tenants.begin(), tenants.end(), delta.tenant);
      if (pos == tenants.end() || *pos != delta.tenant) tenants.insert(pos, delta.tenant);
    } else {
      extra[delta.corridor].insert(delta.tenant);
    }
  }

  cut_ = std::move(cut);
  added_ = std::move(added);
  extra_tenants_ = std::move(extra);
  ++batches_;
  return rebuild(batch.label);
}

std::shared_ptr<Snapshot> LiveMap::rebuild(const std::string& note) const {
  const auto& old_map = base_->map();
  const auto& row = base_->row();
  core::FiberMap map(old_map.num_isps());
  std::size_t links_severed = 0;

  // Base conduits in id order, then delta-added conduits in insertion
  // order: the rebuild order is a pure function of the cumulative state,
  // which is what makes sequential-vs-merged application byte-identical.
  for (const auto& conduit : old_map.conduits()) {
    if (cut_.count(conduit.corridor)) continue;
    const core::ConduitId nid =
        map.ensure_conduit(row.corridor(conduit.corridor), conduit.provenance);
    for (const isp::IspId tenant : conduit.tenants) map.add_tenant(nid, tenant);
    if (conduit.validated) map.mark_validated(nid);
  }
  for (const auto& delta : added_) {
    const core::ConduitId nid =
        map.ensure_conduit(row.corridor(delta.corridor), core::Provenance::PublicRecords);
    for (const isp::IspId tenant : delta.tenants) map.add_tenant(nid, tenant);
    if (delta.validated) map.mark_validated(nid);
  }
  for (const auto& [corridor, tenants] : extra_tenants_) {
    const auto nid = map.conduit_for_corridor(corridor);
    IT_CHECK(nid.has_value());  // live-ness was validated at apply time
    for (const isp::IspId tenant : tenants) map.add_tenant(*nid, tenant);
  }
  // Links: severed when any conduit they ride is cut, identical to the
  // with_conduits_cut contract; conduit ids remap via corridor identity.
  for (const auto& link : old_map.links()) {
    std::vector<core::ConduitId> remapped;
    remapped.reserve(link.conduits.size());
    bool severed = false;
    for (const core::ConduitId cid : link.conduits) {
      const transport::CorridorId corridor = old_map.conduit(cid).corridor;
      if (cut_.count(corridor)) {
        severed = true;
        break;
      }
      remapped.push_back(*map.conduit_for_corridor(corridor));
    }
    if (severed) {
      ++links_severed;
      continue;
    }
    map.add_link(link.isp, link.a, link.b, remapped, link.geocoded);
  }

  std::ostringstream label;
  label << base_->label() << " @delta " << batches_;
  if (!note.empty()) label << " (" << note << ")";
  return Snapshot::with_map(*base_, std::move(map), label.str(), links_severed);
}

}  // namespace intertubes::serve
