#include "serve/snapshot.hpp"

#include <algorithm>
#include <sstream>

#include "traceroute/campaign.hpp"
#include "util/check.hpp"

namespace intertubes::serve {

namespace {

/// The uncut-map connectivity baseline, precomputed once per snapshot so
/// what-if-cut queries only ever pay for the *after* side.  Union-find
/// over the dense node index; the pair-count terms are exact integers in
/// double, so the sum is bit-identical to the old per-query hash-map scan
/// regardless of accumulation order.
void derive_base_connectivity(const core::FiberMap& map, SnapshotSoA& soa) {
  const std::size_t n = soa.num_map_nodes;
  if (n < 2) {
    soa.connected_fraction_before = 1.0;
    soa.components_before = n;
    return;
  }
  std::vector<std::uint32_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<std::uint32_t>(i);
  const auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& conduit : map.conduits()) {
    const std::uint32_t a = find(soa.node_dense[conduit.a]);
    const std::uint32_t b = find(soa.node_dense[conduit.b]);
    if (a != b) parent[a] = b;
  }
  std::vector<std::uint32_t> component_size(n, 0);
  for (std::size_t i = 0; i < n; ++i) ++component_size[find(static_cast<std::uint32_t>(i))];
  double connected_pairs = 0.0;
  std::size_t components = 0;
  for (const std::uint32_t size : component_size) {
    if (size == 0) continue;
    ++components;
    connected_pairs += 0.5 * static_cast<double>(size) * static_cast<double>(size - 1);
  }
  const double nodes = static_cast<double>(n);
  soa.connected_fraction_before = connected_pairs / (0.5 * nodes * (nodes - 1.0));
  soa.components_before = components;
}

/// Build every flat projection the fast path streams over.
SnapshotSoA derive_soa(const core::FiberMap& map, const risk::RiskMatrix& matrix,
                       const std::vector<risk::RiskMatrix::IspRisk>& ranking,
                       std::size_t num_cities) {
  SnapshotSoA soa;
  const std::size_t num_conduits = map.conduits().size();
  soa.num_isps = map.num_isps();

  // Usage bitset rows (Hamming = XOR + popcount over these words).
  soa.words_per_isp = (num_conduits + 63) / 64;
  soa.usage_bits.assign(soa.num_isps * soa.words_per_isp, 0);
  for (const auto& conduit : map.conduits()) {
    const std::size_t word = conduit.id / 64;
    const std::uint64_t bit = std::uint64_t{1} << (conduit.id % 64);
    for (const isp::IspId tenant : conduit.tenants) {
      soa.usage_bits[tenant * soa.words_per_isp + word] |= bit;
    }
  }

  // O(1) shared-risk rows (the ranking covers every IspId exactly once).
  soa.risk_by_isp.assign(soa.num_isps, {});
  for (const auto& row : ranking) soa.risk_by_isp[row.isp] = row;

  // The full most-shared ordering; any top-k is a prefix copy.
  soa.conduits_by_tenancy = matrix.most_shared_conduits(num_conduits);

  // Conduit columns.
  soa.conduit_a.resize(num_conduits);
  soa.conduit_b.resize(num_conduits);
  soa.conduit_tenants.resize(num_conduits);
  soa.conduit_validated.resize(num_conduits);
  soa.conduit_km.resize(num_conduits);
  for (const auto& conduit : map.conduits()) {
    soa.conduit_a[conduit.id] = conduit.a;
    soa.conduit_b[conduit.id] = conduit.b;
    soa.conduit_tenants[conduit.id] = static_cast<std::uint16_t>(conduit.tenants.size());
    soa.conduit_validated[conduit.id] = conduit.validated ? 1 : 0;
    soa.conduit_km[conduit.id] = conduit.length_km;
  }

  // Link → conduit incidence CSR.
  const auto& links = map.links();
  soa.link_isp.resize(links.size());
  soa.link_conduit_offsets.assign(links.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < links.size(); ++i) {
    soa.link_isp[i] = links[i].isp;
    soa.link_conduit_offsets[i] = static_cast<std::uint32_t>(total);
    total += links[i].conduits.size();
  }
  soa.link_conduit_offsets[links.size()] = static_cast<std::uint32_t>(total);
  soa.link_conduits.reserve(total);
  for (const auto& link : links) {
    soa.link_conduits.insert(soa.link_conduits.end(), link.conduits.begin(),
                             link.conduits.end());
  }

  // Dense node index over the conduit-endpoint cities.
  soa.node_dense.assign(num_cities, kNoDenseNode);
  const auto nodes = map.nodes();
  soa.num_map_nodes = nodes.size();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    soa.node_dense[nodes[i]] = static_cast<std::uint32_t>(i);
  }

  derive_base_connectivity(map, soa);
  return soa;
}

}  // namespace

void Snapshot::derive() {
  matrix_ = risk::RiskMatrix::from_map(map_);
  sharing_table_ = matrix_.conduits_shared_by_at_least();
  risk_ranking_ = matrix_.isp_risk_ranking();
  soa_ = derive_soa(map_, matrix_, risk_ranking_, world_.cities->size());
  // Compile the conduit graph for city-pair path queries.  The snapshot's
  // publish epoch isn't assigned yet, so stamp the engine with a
  // process-unique generation instead: a route::MemoizedRouter reused
  // across live-updated snapshots (the delta/RCU path) keys on
  // engine.epoch(), and two epochs sharing generation 0 would serve each
  // other's stale paths.
  static std::atomic<std::uint64_t> next_generation{1};
  std::vector<route::EdgeSpec> edges;
  edges.reserve(map_.conduits().size());
  for (const auto& conduit : map_.conduits()) {
    edges.push_back({conduit.a, conduit.b, conduit.length_km});
  }
  path_engine_ = std::make_shared<const route::PathEngine>(
      static_cast<route::NodeId>(world_.cities->size()), std::move(edges),
      next_generation.fetch_add(1, std::memory_order_relaxed));
  // After this, every const query on the map is write-free and may run
  // from any number of threads concurrently.
  map_.prepare_for_concurrent_reads();
  // The cascade engine aliases path_engine_ (edge id == conduit id holds
  // by construction above) and snapshots the demand substrate once here,
  // so what-if-cascade requests pay only the overload rounds.
  cascade_ = std::make_shared<const cascade::CascadeEngine>(map_, l3_.get(), world_.cities,
                                                           world_.row, path_engine_);
}

std::shared_ptr<Snapshot> Snapshot::build(core::WorldView world, SnapshotOptions options) {
  IT_CHECK(world.valid());
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->world_ = std::move(world);
  snap->map_ = *snap->world_.map;
  snap->l3_ = std::make_shared<traceroute::L3Topology>(
      traceroute::L3Topology::from_ground_truth(*snap->world_.truth, *snap->world_.cities));
  if (options.overlay_probes > 0) {
    traceroute::CampaignParams params;
    params.num_probes = options.overlay_probes;
    const auto campaign = traceroute::run_campaign(*snap->l3_, *snap->world_.cities, params);
    snap->overlay_ = std::make_shared<traceroute::OverlayResult>(
        traceroute::overlay_campaign(snap->map_, *snap->world_.cities, campaign));
  }
  snap->label_ = options.label.empty() ? "base world" : options.label;
  snap->derive();
  return snap;
}

std::shared_ptr<Snapshot> Snapshot::with_conduits_cut(const Snapshot& base,
                                                      std::vector<core::ConduitId> cuts) {
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  const auto& old_map = base.map();
  for (core::ConduitId c : cuts) IT_CHECK(c < old_map.conduits().size());

  const auto is_cut = [&cuts](core::ConduitId c) {
    return std::binary_search(cuts.begin(), cuts.end(), c);
  };

  const auto& row = *base.world_.row;
  std::size_t links_severed = 0;
  core::FiberMap map(old_map.num_isps());
  // Surviving conduits keep tenancy (including overlay-inferred tenants
  // with no surviving link) and validation state.  Ids are re-assigned;
  // corridor identity is what carries over.
  for (const auto& conduit : old_map.conduits()) {
    if (is_cut(conduit.id)) continue;
    const core::ConduitId nid =
        map.ensure_conduit(row.corridor(conduit.corridor), conduit.provenance);
    for (isp::IspId tenant : conduit.tenants) map.add_tenant(nid, tenant);
    if (conduit.validated) map.mark_validated(nid);
  }
  for (const auto& link : old_map.links()) {
    std::vector<core::ConduitId> remapped;
    remapped.reserve(link.conduits.size());
    bool severed = false;
    for (core::ConduitId cid : link.conduits) {
      if (is_cut(cid)) {
        severed = true;
        break;
      }
      remapped.push_back(*map.conduit_for_corridor(old_map.conduit(cid).corridor));
    }
    if (severed) {
      ++links_severed;
      continue;
    }
    map.add_link(link.isp, link.a, link.b, remapped, link.geocoded);
  }

  std::ostringstream label;
  label << base.label_ << " - cut {";
  for (std::size_t i = 0; i < cuts.size(); ++i) label << (i ? "," : "") << cuts[i];
  label << "}";
  return with_map(base, std::move(map), label.str(), links_severed);
}

std::shared_ptr<Snapshot> Snapshot::with_map(const Snapshot& base, core::FiberMap map,
                                             std::string label, std::size_t links_severed) {
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->world_ = base.world_;
  snap->l3_ = base.l3_;  // ground-truth topology is unaffected by map mutations
  snap->map_ = std::move(map);
  snap->label_ = std::move(label);
  snap->links_severed_ = links_severed;
  snap->derive();
  return snap;
}

std::uint64_t SnapshotStore::publish(std::shared_ptr<Snapshot> snapshot) {
  IT_CHECK(snapshot != nullptr);
  const std::uint64_t epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  snapshot->epoch_ = epoch;
  current_.store(std::move(snapshot), std::memory_order_release);
  return epoch;
}

void SnapshotStore::install(std::shared_ptr<const Snapshot> snapshot) {
  IT_CHECK(snapshot != nullptr);
  // Keep next_epoch_ strictly above the installed epoch (CAS max, so
  // concurrent installs of out-of-order replicas cannot wind it back).
  std::uint64_t next = next_epoch_.load(std::memory_order_relaxed);
  while (next <= snapshot->epoch() &&
         !next_epoch_.compare_exchange_weak(next, snapshot->epoch() + 1,
                                            std::memory_order_relaxed)) {
  }
  current_.store(std::move(snapshot), std::memory_order_release);
}

}  // namespace intertubes::serve
