#include "serve/snapshot.hpp"

#include <algorithm>
#include <sstream>

#include "traceroute/campaign.hpp"
#include "util/check.hpp"

namespace intertubes::serve {

void Snapshot::derive() {
  matrix_ = risk::RiskMatrix::from_map(map_);
  sharing_table_ = matrix_.conduits_shared_by_at_least();
  risk_ranking_ = matrix_.isp_risk_ranking();
  // Compile the conduit graph for city-pair path queries.  The snapshot's
  // publish epoch isn't assigned yet, but the serve response cache keys on
  // that epoch itself, so the engine epoch can stay 0.
  std::vector<route::EdgeSpec> edges;
  edges.reserve(map_.conduits().size());
  for (const auto& conduit : map_.conduits()) {
    edges.push_back({conduit.a, conduit.b, conduit.length_km});
  }
  path_engine_ = std::make_shared<const route::PathEngine>(
      static_cast<route::NodeId>(world_.cities->size()), std::move(edges));
  // After this, every const query on the map is write-free and may run
  // from any number of threads concurrently.
  map_.prepare_for_concurrent_reads();
  // The cascade engine aliases path_engine_ (edge id == conduit id holds
  // by construction above) and snapshots the demand substrate once here,
  // so what-if-cascade requests pay only the overload rounds.
  cascade_ = std::make_shared<const cascade::CascadeEngine>(map_, l3_.get(), world_.cities,
                                                           world_.row, path_engine_);
}

std::shared_ptr<Snapshot> Snapshot::build(core::WorldView world, SnapshotOptions options) {
  IT_CHECK(world.valid());
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->world_ = std::move(world);
  snap->map_ = *snap->world_.map;
  snap->l3_ = std::make_shared<traceroute::L3Topology>(
      traceroute::L3Topology::from_ground_truth(*snap->world_.truth, *snap->world_.cities));
  if (options.overlay_probes > 0) {
    traceroute::CampaignParams params;
    params.num_probes = options.overlay_probes;
    const auto campaign = traceroute::run_campaign(*snap->l3_, *snap->world_.cities, params);
    snap->overlay_ = std::make_shared<traceroute::OverlayResult>(
        traceroute::overlay_campaign(snap->map_, *snap->world_.cities, campaign));
  }
  snap->label_ = options.label.empty() ? "base world" : options.label;
  snap->derive();
  return snap;
}

std::shared_ptr<Snapshot> Snapshot::with_conduits_cut(const Snapshot& base,
                                                      std::vector<core::ConduitId> cuts) {
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  const auto& old_map = base.map();
  for (core::ConduitId c : cuts) IT_CHECK(c < old_map.conduits().size());

  const auto is_cut = [&cuts](core::ConduitId c) {
    return std::binary_search(cuts.begin(), cuts.end(), c);
  };

  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->world_ = base.world_;
  snap->l3_ = base.l3_;  // ground-truth topology is unaffected by map cuts

  const auto& row = *snap->world_.row;
  core::FiberMap map(old_map.num_isps());
  // Surviving conduits keep tenancy (including overlay-inferred tenants
  // with no surviving link) and validation state.  Ids are re-assigned;
  // corridor identity is what carries over.
  for (const auto& conduit : old_map.conduits()) {
    if (is_cut(conduit.id)) continue;
    const core::ConduitId nid =
        map.ensure_conduit(row.corridor(conduit.corridor), conduit.provenance);
    for (isp::IspId tenant : conduit.tenants) map.add_tenant(nid, tenant);
    if (conduit.validated) map.mark_validated(nid);
  }
  for (const auto& link : old_map.links()) {
    std::vector<core::ConduitId> remapped;
    remapped.reserve(link.conduits.size());
    bool severed = false;
    for (core::ConduitId cid : link.conduits) {
      if (is_cut(cid)) {
        severed = true;
        break;
      }
      remapped.push_back(*map.conduit_for_corridor(old_map.conduit(cid).corridor));
    }
    if (severed) {
      ++snap->links_severed_;
      continue;
    }
    map.add_link(link.isp, link.a, link.b, remapped, link.geocoded);
  }
  snap->map_ = std::move(map);

  std::ostringstream label;
  label << base.label_ << " - cut {";
  for (std::size_t i = 0; i < cuts.size(); ++i) label << (i ? "," : "") << cuts[i];
  label << "}";
  snap->label_ = label.str();
  snap->derive();
  return snap;
}

std::uint64_t SnapshotStore::publish(std::shared_ptr<Snapshot> snapshot) {
  IT_CHECK(snapshot != nullptr);
  const std::uint64_t epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  snapshot->epoch_ = epoch;
  current_.store(std::move(snapshot), std::memory_order_release);
  return epoch;
}

}  // namespace intertubes::serve
