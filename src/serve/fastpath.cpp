#include "serve/fastpath.hpp"

#include <algorithm>
#include <bit>

namespace intertubes::serve::fastpath {

void RequestScratch::warm(const Snapshot& snap) {
  const SnapshotSoA& soa = snap.soa();
  const std::size_t num_conduits = soa.conduit_a.size();
  cut_ids.reserve(num_conduits);
  conduit_cut.assign(num_conduits, 0);
  isp_hit.assign(soa.num_isps, 0);
  uf_parent.assign(soa.num_map_nodes, 0);
  component_size.assign(soa.num_map_nodes, 0);
  hamming.reserve(soa.num_isps);
  snap.path_engine().warm_workspace(route_ws);
  path.edges.reserve(soa.num_map_nodes + 1);
  path.nodes.reserve(soa.num_map_nodes + 1);
}

bool fast_what_if_cut(const SnapshotSoA& soa, const std::vector<core::ConduitId>& cuts,
                      RequestScratch& scratch, CutImpact& out) {
  const std::size_t num_conduits = soa.conduit_a.size();
  scratch.cut_ids.assign(cuts.begin(), cuts.end());
  std::sort(scratch.cut_ids.begin(), scratch.cut_ids.end());
  scratch.cut_ids.erase(std::unique(scratch.cut_ids.begin(), scratch.cut_ids.end()),
                        scratch.cut_ids.end());
  if (!scratch.cut_ids.empty() && scratch.cut_ids.back() >= num_conduits) return false;

  out = CutImpact{};
  out.conduits_cut = scratch.cut_ids.size();
  out.connected_fraction_before = soa.connected_fraction_before;

  scratch.conduit_cut.assign(num_conduits, 0);
  for (const core::ConduitId c : scratch.cut_ids) scratch.conduit_cut[c] = 1;

  // Severed links + distinct ISPs hit, one CSR pass.
  scratch.isp_hit.assign(soa.num_isps, 0);
  const std::size_t num_links = soa.link_isp.size();
  for (std::size_t i = 0; i < num_links; ++i) {
    const std::uint32_t begin = soa.link_conduit_offsets[i];
    const std::uint32_t end = soa.link_conduit_offsets[i + 1];
    bool severed = false;
    for (std::uint32_t j = begin; j < end && !severed; ++j) {
      severed = scratch.conduit_cut[soa.link_conduits[j]] != 0;
    }
    if (!severed) continue;
    ++out.links_severed;
    scratch.isp_hit[soa.link_isp[i]] = 1;
  }
  for (const std::uint8_t hit : scratch.isp_hit) out.isps_hit += hit;

  // Post-cut connectivity over the uncut node set: union-find in dense
  // index space (severed nodes stay as singleton components).
  const std::size_t n = soa.num_map_nodes;
  if (n < 2) {
    out.connected_fraction_after = 1.0;
    out.components_after = n;
    return true;
  }
  scratch.uf_parent.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch.uf_parent[i] = static_cast<std::uint32_t>(i);
  auto* parent = scratch.uf_parent.data();
  const auto find = [parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t c = 0; c < num_conduits; ++c) {
    if (scratch.conduit_cut[c]) continue;
    const std::uint32_t a = find(soa.node_dense[soa.conduit_a[c]]);
    const std::uint32_t b = find(soa.node_dense[soa.conduit_b[c]]);
    if (a != b) parent[a] = b;
  }
  scratch.component_size.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++scratch.component_size[find(static_cast<std::uint32_t>(i))];
  }
  double connected_pairs = 0.0;
  for (const std::uint32_t size : scratch.component_size) {
    if (size == 0) continue;
    ++out.components_after;
    connected_pairs += 0.5 * static_cast<double>(size) * static_cast<double>(size - 1);
  }
  const double nodes = static_cast<double>(n);
  out.connected_fraction_after = connected_pairs / (0.5 * nodes * (nodes - 1.0));
  return true;
}

std::size_t fast_hamming_neighbors(const SnapshotSoA& soa, std::uint32_t isp, std::size_t k,
                                   RequestScratch& scratch) {
  scratch.hamming.clear();
  const std::uint64_t* self = soa.usage_bits.data() + isp * soa.words_per_isp;
  for (std::uint32_t other = 0; other < soa.num_isps; ++other) {
    if (other == isp) continue;
    const std::uint64_t* row = soa.usage_bits.data() + other * soa.words_per_isp;
    std::uint64_t distance = 0;
    for (std::size_t w = 0; w < soa.words_per_isp; ++w) {
      distance += static_cast<std::uint64_t>(std::popcount(self[w] ^ row[w]));
    }
    scratch.hamming.emplace_back(distance, other);
  }
  const std::size_t count = k < scratch.hamming.size() ? k : scratch.hamming.size();
  std::partial_sort(scratch.hamming.begin(),
                    scratch.hamming.begin() + static_cast<std::ptrdiff_t>(count),
                    scratch.hamming.end());
  return count;
}

void fast_city_path(const Snapshot& snap, route::NodeId from, route::NodeId to,
                    RequestScratch& scratch) {
  snap.path_engine().shortest_path(from, to, {}, scratch.route_ws, scratch.path);
}

}  // namespace intertubes::serve::fastpath
