#include "serve/metrics.hpp"

#include <sstream>

#include "util/table.hpp"

namespace intertubes::serve {

const char* request_type_name(RequestType type) noexcept {
  switch (type) {
    case RequestType::SharedRisk: return "shared-risk";
    case RequestType::TopConduits: return "top-conduits";
    case RequestType::WhatIfCut: return "what-if-cut";
    case RequestType::CityPath: return "city-path";
    case RequestType::HammingNeighbors: return "hamming-neighbors";
    case RequestType::LatencyDissection: return "latency-dissection";
    case RequestType::CLatencyAudit: return "clat-audit";
    case RequestType::WhatIfCascade: return "what-if-cascade";
    case RequestType::Sleep: return "sleep";
  }
  return "unknown";
}

void MetricsRegistry::record(RequestType type, double latency_us, bool cache_hit, bool error) {
  PerType& t = types_[static_cast<std::size_t>(type)];
  std::lock_guard<std::mutex> lock(t.mu);
  t.hist.add(latency_us);
  ++t.count;
  if (cache_hit) ++t.cache_hits;
  if (error) ++t.errors;
}

void MetricsRegistry::record_shed(RequestType type) {
  PerType& t = types_[static_cast<std::size_t>(type)];
  std::lock_guard<std::mutex> lock(t.mu);
  ++t.shed;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
    const PerType& src = other.types_[i];
    LatencyHistogram hist;
    std::uint64_t count, cache_hits, shed, errors;
    {
      std::lock_guard<std::mutex> lock(src.mu);
      hist = src.hist;
      count = src.count;
      cache_hits = src.cache_hits;
      shed = src.shed;
      errors = src.errors;
    }
    PerType& dst = types_[i];
    std::lock_guard<std::mutex> lock(dst.mu);
    dst.hist.merge(hist);
    dst.count += count;
    dst.cache_hits += cache_hits;
    dst.shed += shed;
    dst.errors += errors;
  }
}

RequestTypeMetrics MetricsRegistry::snapshot_of(RequestType type) const {
  const PerType& t = types_[static_cast<std::size_t>(type)];
  std::lock_guard<std::mutex> lock(t.mu);
  RequestTypeMetrics out;
  out.count = t.count;
  out.cache_hits = t.cache_hits;
  out.shed = t.shed;
  out.errors = t.errors;
  if (t.count > 0) {
    out.p50_us = t.hist.percentile(50.0);
    out.p95_us = t.hist.percentile(95.0);
    out.p99_us = t.hist.percentile(99.0);
    out.max_us = t.hist.max();
    out.mean_us = t.hist.mean();
  }
  return out;
}

std::uint64_t MetricsRegistry::total_served() const {
  std::uint64_t total = 0;
  for (const PerType& t : types_) {
    std::lock_guard<std::mutex> lock(t.mu);
    total += t.count;
  }
  return total;
}

std::uint64_t MetricsRegistry::total_shed() const {
  std::uint64_t total = 0;
  for (const PerType& t : types_) {
    std::lock_guard<std::mutex> lock(t.mu);
    total += t.shed;
  }
  return total;
}

std::string MetricsRegistry::render(const CacheStats& cache) const {
  TextTable table({"request", "served", "shed", "errors", "cache hit %", "p50 µs", "p95 µs",
                   "p99 µs", "max µs"});
  for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
    const auto type = static_cast<RequestType>(i);
    const auto m = snapshot_of(type);
    if (m.count == 0 && m.shed == 0) continue;
    table.start_row();
    table.add_cell(request_type_name(type));
    table.add_cell(m.count);
    table.add_cell(m.shed);
    table.add_cell(m.errors);
    table.add_cell(m.count ? 100.0 * static_cast<double>(m.cache_hits) /
                                 static_cast<double>(m.count)
                           : 0.0,
                   1);
    table.add_cell(m.p50_us, 1);
    table.add_cell(m.p95_us, 1);
    table.add_cell(m.p99_us, 1);
    table.add_cell(m.max_us, 1);
  }
  std::ostringstream out;
  out << table.render("serve latency by request type");
  out << "cache: " << cache.hits << " hits, " << cache.misses << " misses ("
      << format_double(100.0 * cache.hit_ratio(), 1) << "% hit ratio), " << cache.evictions
      << " evictions, " << cache.invalidations << " invalidated\n";
  return out.str();
}

}  // namespace intertubes::serve
