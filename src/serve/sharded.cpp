#include "serve/sharded.hpp"

#include <functional>
#include <stdexcept>

#include "util/check.hpp"

namespace intertubes::serve {

namespace {

/// Finalizing mix on top of std::hash so a weak string hash still spreads
/// over small shard counts.
std::uint64_t mix(std::uint64_t h) noexcept {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

sim::ExecutorOptions executor_options(const ShardedOptions& options, std::size_t index) {
  sim::ExecutorOptions out;
  // Executor counts the calling thread, so +1 buys `threads_per_shard`
  // dedicated workers; 0 workers degrades to the inline serial engine.
  out.num_threads = options.threads_per_shard + 1;
  out.pin_first_core =
      options.pin_cores ? static_cast<int>(index * options.threads_per_shard) : -1;
  return out;
}

}  // namespace

ShardedEngine::Shard::Shard(const ShardedOptions& options, std::size_t index)
    : executor(executor_options(options, index)), engine(store, executor, options.engine) {}

ShardedEngine::ShardedEngine(ShardedOptions options) : options_(options) {
  IT_CHECK(options.shards > 0);
  shards_.reserve(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options, s));
  }
}

std::uint64_t ShardedEngine::publish(std::shared_ptr<Snapshot> snapshot) {
  IT_CHECK(snapshot != nullptr);
  std::lock_guard<std::mutex> lock(publish_mu_);
  const std::uint64_t epoch = primary_.publish(snapshot);  // stamps exactly once
  const std::shared_ptr<const Snapshot> replica = std::move(snapshot);
  for (auto& shard : shards_) shard->store.install(replica);
  live_ = std::make_unique<LiveMap>(replica);
  return epoch;
}

std::uint64_t ShardedEngine::apply(const DeltaBatch& batch) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  if (!live_) throw std::logic_error("ShardedEngine::apply before first publish");
  // The expensive part — fold + full derive of the next epoch — runs
  // right here in the churn thread, while every shard keeps serving the
  // current epoch untouched.
  std::shared_ptr<Snapshot> next = live_->apply(batch);
  const std::uint64_t epoch = primary_.publish(next);
  const std::shared_ptr<const Snapshot> replica = std::move(next);
  for (auto& shard : shards_) shard->store.install(replica);
  ++deltas_applied_;
  return epoch;
}

std::size_t ShardedEngine::deltas_applied() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return deltas_applied_;
}

std::size_t ShardedEngine::shard_of(const Request& request) const {
  return mix(std::hash<std::string>{}(canonical_key(request))) % shards_.size();
}

std::future<Response> ShardedEngine::submit(Request request) {
  const std::size_t shard = shard_of(request);
  return shards_[shard]->engine.submit(std::move(request));
}

std::size_t ShardedEngine::pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->engine.pending();
  return total;
}

CacheStats ShardedEngine::cache_stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    const CacheStats s = shard->engine.cache_stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.invalidations += s.invalidations;
  }
  return total;
}

std::size_t ShardedEngine::cache_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->engine.cache_size();
  return total;
}

void ShardedEngine::clear_cache() {
  for (auto& shard : shards_) shard->engine.clear_cache();
}

std::size_t ShardedEngine::purge_stale_cache() {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->engine.purge_stale_cache();
  return total;
}

std::uint64_t ShardedEngine::total_served() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->engine.metrics().total_served();
  return total;
}

std::uint64_t ShardedEngine::total_shed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->engine.metrics().total_shed();
  return total;
}

void ShardedEngine::merge_metrics_into(MetricsRegistry& out) const {
  for (const auto& shard : shards_) out.merge_from(shard->engine.metrics());
}

RequestTypeMetrics ShardedEngine::merged_metrics_of(RequestType type) const {
  MetricsRegistry merged;
  merge_metrics_into(merged);
  return merged.snapshot_of(type);
}

std::string ShardedEngine::render_metrics() const {
  MetricsRegistry merged;
  merge_metrics_into(merged);
  return merged.render(cache_stats());
}

}  // namespace intertubes::serve
