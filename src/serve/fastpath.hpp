// The zero-allocation serve kernels (DESIGN.md §14).
//
// Each fast_* function here is the computational core of one Engine
// request handler, restated as a pure pass over the Snapshot's flat SoA
// projections (serve/snapshot.hpp) plus caller-owned RequestScratch.  The
// kernels traffic exclusively in ids and PODs — no strings, no Response
// structs — and at steady state (a warmed scratch whose buffers have seen
// this snapshot's dimensions once) they perform **zero heap allocations**
// per query.  That claim is machine-checked: tests/serve/zero_alloc_test.cpp
// wraps every kernel in a util::ZeroAllocGuard, and bench_serve_engine
// reports allocs_per_query as a tracked regression metric.
//
// The Engine's presentation layer (resolving display names, building the
// Response variant, the memoization cache) sits *outside* the guarantee by
// design — it materializes user-facing strings and cached shared_ptrs.
// The contract is: everything algorithmic is allocation-free; only the
// final string materialization allocates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "route/path_engine.hpp"
#include "serve/snapshot.hpp"

namespace intertubes::serve::fastpath {

/// Reusable per-request scratch, leased from the Engine's capped
/// util::LeasePool.  All buffers grow to the snapshot's dimensions on
/// first use and keep their capacity across leases, so every later query
/// against a same-or-smaller snapshot is allocation-free.  warm() sizes
/// everything up front for tests/benches that assert on the *first*
/// measured query.
struct RequestScratch {
  // what-if-cut
  std::vector<core::ConduitId> cut_ids;     ///< sorted, deduplicated cut set
  std::vector<std::uint8_t> conduit_cut;    ///< bitmap indexed by ConduitId
  std::vector<std::uint8_t> isp_hit;        ///< bitmap indexed by IspId
  std::vector<std::uint32_t> uf_parent;     ///< union-find over dense nodes
  std::vector<std::uint32_t> component_size;

  // hamming-neighbors: (distance, other-isp), sorted ascending
  std::vector<std::pair<std::uint64_t, std::uint32_t>> hamming;

  // city-path
  route::PathEngine::Workspace route_ws;
  route::Path path;

  /// Size every buffer (including the Dijkstra workspace) to `snap`'s
  /// dimensions so the next query on this scratch allocates nothing.
  void warm(const Snapshot& snap);
};

/// What-if-cut blast radius, POD form of serve::WhatIfCutResult.
struct CutImpact {
  std::size_t conduits_cut = 0;
  std::size_t links_severed = 0;
  std::size_t isps_hit = 0;
  double connected_fraction_before = 0.0;
  double connected_fraction_after = 0.0;
  std::size_t components_after = 0;
};

/// O(1) shared-risk row for one ISP (a reference into the snapshot).
inline const risk::RiskMatrix::IspRisk& fast_shared_risk(const SnapshotSoA& soa,
                                                         std::uint32_t isp) noexcept {
  return soa.risk_by_isp[isp];
}

/// Number of rows a top-k query answers: min(k, conduits).  The rows
/// themselves are soa.conduits_by_tenancy[0 .. count) — the precomputed
/// full ordering makes any k a prefix read.  k == 0 is a valid empty
/// query, k > conduits returns the whole list.
inline std::size_t fast_top_conduits(const SnapshotSoA& soa, std::size_t k) noexcept {
  return k < soa.conduits_by_tenancy.size() ? k : soa.conduits_by_tenancy.size();
}

/// Sever `cuts` (unsorted, possibly duplicated) and measure the blast
/// radius.  Returns false when a cut id is out of range (scratch.cut_ids
/// holds the sorted set, so .back() is the offender); true on success
/// with `out` filled.  Bit-identical to the old hash-map connectivity
/// scan: same union order, and the connected-pair terms are exact
/// integers in double, so the sum is order-independent.
bool fast_what_if_cut(const SnapshotSoA& soa, const std::vector<core::ConduitId>& cuts,
                      RequestScratch& scratch, CutImpact& out);

/// The k nearest ISPs to `isp` by usage-row Hamming distance (popcount of
/// XOR over the packed bitset rows).  Fills scratch.hamming with the
/// result, sorted by (distance, isp id) ascending; returns the count
/// (min(k, num_isps - 1); k == 0 is a valid empty query).
std::size_t fast_hamming_neighbors(const SnapshotSoA& soa, std::uint32_t isp, std::size_t k,
                                   RequestScratch& scratch);

/// Shortest conduit path between two cities into scratch.path (reachable
/// = false is the answer for disconnected pairs).  Pure delegation to the
/// PathEngine's into-caller-buffer overload with scratch-owned workspace.
void fast_city_path(const Snapshot& snap, route::NodeId from, route::NodeId to,
                    RequestScratch& scratch);

}  // namespace intertubes::serve::fastpath
