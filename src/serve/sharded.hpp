// Sharded multi-domain serving: N independent serve domains behind a
// combining front-end, plus the live-update path that RCU-swaps every
// domain's snapshot replica epoch-atomically.
//
// The shape follows the GASNet gemini-conduit multi-domain notes
// (SNIPPETS.md snippet 2): replicate the contended resource — here the
// snapshot pointer, the response cache, the metrics registry, and the
// request scratch pool — once per shard, and spread threads across the
// replicas so shards never touch each other's locks.  Each shard owns a
// SnapshotStore (its replica pointer), a sim::Executor (its workers,
// optionally pinned onto consecutive cores), and a serve::Engine (its
// cache + metrics + admission bound).  The front-end routes by a hash of
// the request's canonical key, so identical requests always land on the
// same shard and its cache, and merges per-shard metrics/histograms into
// one operator report.
//
// Epoch protocol: publish() and apply() stamp each snapshot exactly once
// through the primary store, then install the *same* pointer into every
// shard's store.  All shards therefore agree on the epoch of every
// snapshot they ever serve (no shard-local stamping), each shard's epoch
// sequence is strictly monotone, and a query in flight during a swap
// keeps its pinned snapshot alive — the same RCU guarantee as the single
// engine, replicated.  The install loop is not a cross-shard barrier: for
// a moment some shards answer at epoch N+1 while others still answer at
// N, which is inherent to RCU (a single engine has the same window
// between publish and a reader's next load).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/delta.hpp"
#include "serve/engine.hpp"

namespace intertubes::serve {

struct ShardedOptions {
  std::size_t shards = 1;
  /// Dedicated worker threads per shard.  0 = no workers: requests
  /// execute inline in submit() on the calling thread (the deterministic
  /// serial baseline, and what the bit-identity oracle drives).
  std::size_t threads_per_shard = 0;
  /// Pin shard s's workers onto consecutive cores starting at
  /// s * threads_per_shard (Linux; no-op elsewhere).
  bool pin_cores = false;
  /// Per-shard engine knobs.  max_pending and the cache capacity are per
  /// shard, so the fleet-wide admission bound is shards * max_pending.
  EngineOptions engine;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedOptions options = {});
  ~ShardedEngine() = default;  ///< each shard's engine drains before its executor dies

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Stamp `snapshot` with the next epoch, install it into every shard,
  /// and rebase the live-delta state on it.  Returns the epoch.
  std::uint64_t publish(std::shared_ptr<Snapshot> snapshot);

  /// The live-update path: fold `batch` into the cumulative delta state,
  /// build the next-epoch snapshot *in the calling thread* (off the query
  /// hot path — queries keep streaming against the current epoch), then
  /// swap all shard replicas.  Serialized with publish(); throws
  /// std::invalid_argument on a bad batch (state unchanged) and
  /// std::logic_error before the first publish.  Returns the new epoch.
  std::uint64_t apply(const DeltaBatch& batch);

  std::future<Response> submit(Request request);
  Response serve(Request request) { return submit(std::move(request)).get(); }

  /// The shard a request routes to (stable across calls: a pure function
  /// of the canonical key and the shard count).
  std::size_t shard_of(const Request& request) const;

  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::uint64_t epoch() const noexcept { return primary_.epoch(); }
  std::shared_ptr<const Snapshot> current() const noexcept { return primary_.current(); }
  std::size_t deltas_applied() const;

  const Engine& shard_engine(std::size_t shard) const { return shards_[shard]->engine; }
  const sim::Executor& shard_executor(std::size_t shard) const {
    return shards_[shard]->executor;
  }

  // Combining views over the shard fleet.
  std::size_t pending() const;
  CacheStats cache_stats() const;       ///< summed across shards
  std::size_t cache_size() const;
  void clear_cache();
  std::size_t purge_stale_cache();      ///< per-shard purge against the shared epoch
  std::uint64_t total_served() const;
  std::uint64_t total_shed() const;
  /// Fold every shard's registry into `out` (histograms merge, counters
  /// sum) — the merged fleet view a caller can take percentiles from.
  void merge_metrics_into(MetricsRegistry& out) const;
  RequestTypeMetrics merged_metrics_of(RequestType type) const;
  /// Operator report over the merged registries + summed cache stats.
  std::string render_metrics() const;

 private:
  struct Shard {
    SnapshotStore store;
    sim::Executor executor;
    Engine engine;
    Shard(const ShardedOptions& options, std::size_t index);
  };

  ShardedOptions options_;
  SnapshotStore primary_;  ///< the epoch authority; stamps every snapshot once
  mutable std::mutex publish_mu_;
  std::unique_ptr<LiveMap> live_;  ///< guarded by publish_mu_
  std::size_t deltas_applied_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace intertubes::serve
