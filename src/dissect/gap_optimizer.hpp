// Gap-closing optimizer: propose minimum-cost conduit additions that pull
// the worst city pairs within a target factor of their c-latency.
//
// The dissection study (dissector.hpp) measures how far each pair sits
// above target_factor x c-latency; this pass closes those gaps greedily,
// one new conduit per step, choosing among the *unlit* right-of-way
// corridors (corridors that hold no conduit yet — the trenchable but
// untrenched inventory).
//
// Candidate evaluation is exact, not a surrogate, and needs zero extra
// Dijkstras: with the batched all-pairs rows in hand, a single new edge
// (u, v, L) changes pair (a, b)'s distance to
//
//     d'(a,b) = min(d(a,b), d(a,u) + L + d(v,b), d(a,v) + L + d(u,b))
//
// and every term is a cell of the DistanceMatrix.  Each greedy step
// scores all candidates (fanned out on the executor), commits the best,
// rebuilds the engine with a bumped epoch, and re-sweeps — so chains of
// corridors emerge across steps even though each step adds one edge.
#pragma once

#include <cstddef>
#include <vector>

#include "core/fiber_map.hpp"
#include "transport/cities.hpp"
#include "transport/row.hpp"

namespace intertubes::sim {
class Executor;
}

namespace intertubes::dissect {

struct GapClosingParams {
  /// Pairs with fiber delay above target_factor x c-latency are gaps.
  double target_factor = 2.0;
  /// Build-cost pressure: a candidate's score is its excess reduction
  /// (ms) minus cost_weight x the candidate's own propagation delay (a
  /// km-proportional cost proxy).  Higher values prefer short trenches.
  double cost_weight = 0.35;
  /// Maximum number of conduits to propose.
  std::size_t max_k = 5;
  /// Finite excess charged to a fiber-unreachable pair, so connecting
  /// disconnected components scores as closing a (large) gap.  Roughly a
  /// continental crossing of fiber.
  double unreachable_excess_ms = 25.0;
};

/// One committed greedy step, with the *post-commit* exact state.
struct GapStep {
  transport::CorridorId corridor = transport::kNoCorridor;
  double km_added = 0.0;       ///< corridor length trenched
  double excess_ms = 0.0;      ///< total excess after this step
  std::size_t gap_pairs = 0;   ///< pairs still above target after this step
};

struct GapClosingResult {
  double excess_ms_before = 0.0;
  std::size_t gap_pairs_before = 0;
  std::vector<GapStep> steps;  ///< empty when no beneficial addition exists
  double excess_ms_after = 0.0;
  std::size_t gap_pairs_after = 0;
};

/// Greedy gap-closing over the unlit-corridor inventory.  Deterministic:
/// candidate scores are reduced in candidate order and ties break to the
/// lowest corridor id, so the result is identical for any executor size
/// (including executor == nullptr, the serial baseline).
GapClosingResult close_gaps(const core::FiberMap& map, const transport::CityDatabase& cities,
                            const transport::RightOfWayRegistry& row,
                            const GapClosingParams& params = {},
                            sim::Executor* executor = nullptr);

}  // namespace intertubes::dissect
