#include "dissect/dissector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/latency.hpp"
#include "util/check.hpp"

namespace intertubes::dissect {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::shared_ptr<const route::PathEngine> compile_fiber_engine(const core::FiberMap& map,
                                                              const transport::CityDatabase& cities) {
  std::vector<route::EdgeSpec> edges;
  edges.reserve(map.conduits().size());
  for (const auto& conduit : map.conduits()) {
    edges.push_back({conduit.a, conduit.b, conduit.length_km});
  }
  return std::make_shared<const route::PathEngine>(static_cast<route::NodeId>(cities.size()),
                                                   std::move(edges));
}

/// Percentile of an ascending-sorted vector (nearest-rank).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5));
  return sorted[rank];
}

}  // namespace

LatencyDissector::LatencyDissector(const core::FiberMap& map,
                                   const transport::CityDatabase& cities,
                                   const transport::RightOfWayRegistry& row)
    : fiber_(compile_fiber_engine(map, cities)),
      nodes_(map.nodes()),
      cities_(cities),
      row_(row) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
}

LatencyDissector::LatencyDissector(std::shared_ptr<const route::PathEngine> fiber_engine,
                                   std::vector<transport::CityId> nodes,
                                   const transport::CityDatabase& cities,
                                   const transport::RightOfWayRegistry& row)
    : fiber_(std::move(fiber_engine)), nodes_(std::move(nodes)), cities_(cities), row_(row) {
  IT_CHECK(fiber_ != nullptr);
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  for (transport::CityId c : nodes_) IT_CHECK(c < fiber_->num_nodes());
}

PairDissection LatencyDissector::decompose(transport::CityId a, transport::CityId b,
                                           double fiber_km, double row_km) const {
  PairDissection d;
  d.a = a;
  d.b = b;
  const double gc_km = geo::distance_km(cities_.city(a).location, cities_.city(b).location);
  d.clat_ms = geo::c_latency_ms(gc_km);
  d.los_ms = geo::los_delay_ms(gc_km);
  d.fiber_reachable = std::isfinite(fiber_km);
  d.row_reachable = std::isfinite(row_km);
  d.fiber_ms = d.fiber_reachable ? geo::fiber_delay_ms(fiber_km) : kInf;
  d.row_ms = d.row_reachable ? geo::fiber_delay_ms(row_km) : kInf;
  d.refraction_ms = d.los_ms - d.clat_ms;
  d.row_inflation_ms = d.row_reachable ? d.row_ms - d.los_ms : 0.0;
  if (d.fiber_reachable && d.row_reachable) {
    d.detour_ms = d.fiber_ms - d.row_ms;
    d.achievable_ms = std::max(0.0, d.detour_ms);
  }
  d.stretch = d.fiber_reachable && d.clat_ms > 0.0 ? d.fiber_ms / d.clat_ms : kInf;
  return d;
}

DissectionStudy LatencyDissector::dissect(sim::Executor* executor,
                                          const DissectOptions& options) const {
  DissectionStudy study;
  study.nodes = nodes_;
  study.target_factor = options.target_factor;
  const std::size_t n = nodes_.size();
  if (n < 2) return study;

  // The batched layer: one Dijkstra row per source over each graph instead
  // of n(n-1)/2 point-to-point queries.  Both matrices are bit-identical
  // for any thread count (see PathEngine's determinism contract), so the
  // decomposition below — a pure per-cell function — is too.
  std::vector<route::NodeId> sources(nodes_.begin(), nodes_.end());
  const route::DistanceMatrix fiber_rows = fiber_->distance_rows(sources, {}, executor);
  const route::DistanceMatrix row_rows = row_.path_engine().distance_rows(sources, {}, executor);

  study.pairs.reserve(n * (n - 1) / 2);
  std::vector<double> stretches;
  stretches.reserve(study.pairs.capacity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      PairDissection d =
          decompose(nodes_[i], nodes_[j], fiber_rows.at(i, nodes_[j]), row_rows.at(i, nodes_[j]));
      if (!d.fiber_reachable) {
        ++study.fiber_unreachable;
      } else {
        stretches.push_back(d.stretch);
        if (d.fiber_ms <= options.target_factor * d.clat_ms) ++study.within_target;
        if (d.row_reachable) study.total_achievable_ms += d.achievable_ms;
      }
      if (!d.row_reachable) ++study.row_unreachable;
      study.pairs.push_back(std::move(d));
    }
  }
  std::sort(stretches.begin(), stretches.end());
  study.median_stretch = percentile(stretches, 0.5);
  study.p95_stretch = percentile(stretches, 0.95);
  return study;
}

PairDissection LatencyDissector::dissect_pair(transport::CityId a, transport::CityId b) const {
  IT_CHECK(a < fiber_->num_nodes() && b < fiber_->num_nodes());
  // distances_from is the same row primitive the sweep batches, so the
  // result is bitwise equal to the corresponding sweep entry.
  const double fiber_km = fiber_->distances_from(static_cast<route::NodeId>(a))[b];
  const double row_km =
      row_.path_engine().distances_from(static_cast<route::NodeId>(a))[b];
  return decompose(a, b, fiber_km, row_km);
}

}  // namespace intertubes::dissect
