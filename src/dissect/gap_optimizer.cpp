#include "dissect/gap_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/geo_point.hpp"
#include "geo/latency.hpp"
#include "route/path_engine.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"

namespace intertubes::dissect {

namespace {

/// One pair the optimizer is trying to pull under target.  Distances stay
/// in km (the engine's weight unit); the target is pre-converted to km so
/// candidate scoring is a pure min/compare over matrix cells.
struct GapPair {
  std::size_t i = 0;         ///< source row of endpoint a
  std::size_t j = 0;         ///< source row of endpoint b
  double target_km = 0.0;    ///< target_factor x c-latency, in fiber-km
  double excess_ms = 0.0;    ///< current excess above target
};

double excess_of(double d_km, double target_km, double unreachable_excess_ms) {
  if (!std::isfinite(d_km)) return unreachable_excess_ms;
  return std::max(0.0, geo::fiber_delay_ms(d_km - target_km));
}

}  // namespace

GapClosingResult close_gaps(const core::FiberMap& map, const transport::CityDatabase& cities,
                            const transport::RightOfWayRegistry& row,
                            const GapClosingParams& params, sim::Executor* executor) {
  IT_CHECK(params.target_factor >= 1.0);

  std::vector<transport::CityId> nodes = map.nodes();
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  const std::size_t n = nodes.size();
  const std::vector<route::NodeId> sources(nodes.begin(), nodes.end());

  // target in km: fiber covering target_factor x c_latency_ms of delay.
  // (c-latency converts back through the glass constant so all comparisons
  // happen in the engine's km domain.)
  std::vector<double> target_km(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double gc_km =
          geo::distance_km(cities.city(nodes[i]).location, cities.city(nodes[j]).location);
      target_km[i * n + j] =
          geo::fiber_km_for_ms(params.target_factor * geo::c_latency_ms(gc_km));
    }
  }

  // The unlit-corridor inventory: every right-of-way corridor that holds
  // no conduit yet is a trenching candidate.
  std::vector<transport::CorridorId> candidates;
  for (const auto& corridor : row.corridors()) {
    if (!map.conduit_for_corridor(corridor.id).has_value()) candidates.push_back(corridor.id);
  }

  std::vector<route::EdgeSpec> edges;
  edges.reserve(map.conduits().size() + params.max_k);
  for (const auto& conduit : map.conduits()) {
    edges.push_back({conduit.a, conduit.b, conduit.length_km});
  }

  GapClosingResult result;
  std::uint64_t epoch = 0;
  for (;;) {
    // Exact state of the current build: one batched sweep, then the gap
    // list.  (Rebuild bumps the epoch so workspaces and memo keys from
    // the previous build can never alias this one.)
    const route::PathEngine engine(static_cast<route::NodeId>(cities.size()), edges, epoch);
    const route::DistanceMatrix rows = engine.distance_rows(sources, {}, executor);

    std::vector<GapPair> gaps;
    double total_excess = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double t = target_km[i * n + j];
        const double e = excess_of(rows.at(i, nodes[j]), t, params.unreachable_excess_ms);
        if (e <= 0.0) continue;
        total_excess += e;
        gaps.push_back({i, j, t, e});
      }
    }

    if (epoch == 0) {
      result.excess_ms_before = total_excess;
      result.gap_pairs_before = gaps.size();
    } else {
      result.steps.back().excess_ms = total_excess;
      result.steps.back().gap_pairs = gaps.size();
    }
    result.excess_ms_after = total_excess;
    result.gap_pairs_after = gaps.size();
    if (result.steps.size() >= params.max_k || gaps.empty() || candidates.empty()) break;

    // Score every candidate exactly via the one-new-edge identity.  The
    // score vector is in candidate order regardless of thread count; the
    // argmax below is serial, so the pick is deterministic.
    const auto score_candidate = [&](std::size_t c) {
      const auto& corridor = row.corridor(candidates[c]);
      const route::NodeId u = corridor.a;
      const route::NodeId v = corridor.b;
      const double len = corridor.length_km;
      double gain = 0.0;
      for (const GapPair& g : gaps) {
        const double via_uv = rows.at(g.i, u) + len + rows.at(g.j, v);
        const double via_vu = rows.at(g.i, v) + len + rows.at(g.j, u);
        const double new_d =
            std::min(rows.at(g.i, nodes[g.j]), std::min(via_uv, via_vu));
        gain += g.excess_ms - excess_of(new_d, g.target_km, params.unreachable_excess_ms);
      }
      return gain;
    };
    std::vector<double> gains;
    if (executor == nullptr) {
      gains.resize(candidates.size());
      for (std::size_t c = 0; c < candidates.size(); ++c) gains[c] = score_candidate(c);
    } else {
      gains = executor->parallel_map<double>(candidates.size(), score_candidate);
    }

    std::size_t best = candidates.size();
    double best_score = 0.0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const double cost =
          params.cost_weight * geo::fiber_delay_ms(row.corridor(candidates[c]).length_km);
      const double score = gains[c] - cost;
      // Strict > keeps the first (lowest corridor id) among exact ties.
      if (score > 0.0 && score > best_score) {
        best = c;
        best_score = score;
      }
    }
    if (best == candidates.size()) break;  // nothing pays for its trench

    const auto& won = row.corridor(candidates[best]);
    edges.push_back({won.a, won.b, won.length_km});
    result.steps.push_back({won.id, won.length_km, 0.0, 0});
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(best));
    ++epoch;
  }
  return result;
}

}  // namespace intertubes::dissect
