// Latency dissection: the paper's §5.3 delay study (Figure 12) extended
// into a production all-pairs workload, following *Dissecting Latency in
// the Internet's Fiber Infrastructure*.
//
// For every unordered pair of mapped cities, the one-way propagation
// delay of the best existing fiber path is decomposed into four stacked
// components, each the gap between two successively weaker idealizations:
//
//   c-latency        great-circle distance at the vacuum speed of light —
//                    the hard physical floor;
//   + refraction     the same straight line through fiber glass (group
//                    index ~1.468) — unavoidable as long as light rides
//                    fiber;
//   + ROW inflation  the best right-of-way route through fiber — the cost
//                    of following roads/rails/pipelines instead of the
//                    chord; the floor any *build-out* can reach;
//   + fiber detour   the best *existing* conduit path — what today's lit
//                    fiber adds on top of the best trenchable route.
//
// The detour component is the **achievable improvement**: delay that new
// conduits along existing rights-of-way could recover without new
// physics or new corridors.  The audit ranks pairs by it; the gap-closing
// optimizer (gap_optimizer.hpp) proposes the conduits.
//
// The sweep runs on route::PathEngine::distance_rows — one Dijkstra per
// source city over the conduit graph and one over the ROW corridor graph,
// optionally fanned out on a sim::Executor — instead of one point-to-point
// Dijkstra per pair.  Rows are pure functions of (graph, source), so the
// study is bit-identical for any thread count.
#pragma once

#include <memory>
#include <vector>

#include "core/fiber_map.hpp"
#include "route/path_engine.hpp"
#include "transport/cities.hpp"
#include "transport/row.hpp"

namespace intertubes::sim {
class Executor;
}

namespace intertubes::dissect {

/// One city pair's decomposition.  Delays are one-way propagation in ms;
/// row_ms / fiber_ms are +inf when the respective graph offers no path
/// (never aliased to a finite fallback — see the Figure 12 contamination
/// fix in optimize/latency).  The component fields are meaningful only
/// when both graphs reach the pair.
struct PairDissection {
  transport::CityId a = transport::kNoCity;
  transport::CityId b = transport::kNoCity;
  double clat_ms = 0.0;   ///< great-circle at c in vacuum — the floor
  double los_ms = 0.0;    ///< great-circle through fiber glass
  double row_ms = 0.0;    ///< best right-of-way route (+inf if unreachable)
  double fiber_ms = 0.0;  ///< best existing conduit path (+inf if unreachable)
  // Decomposition of fiber_ms (stacked gaps; sums back to fiber_ms):
  double refraction_ms = 0.0;      ///< los - clat: glass group index
  double row_inflation_ms = 0.0;   ///< row - los: following rights of way
  double detour_ms = 0.0;          ///< fiber - row: lit fiber off the best ROW
  double stretch = 0.0;            ///< fiber_ms / clat_ms (+inf if unreachable)
  double achievable_ms = 0.0;      ///< max(0, fiber - row): recoverable by trenching
  bool fiber_reachable = false;
  bool row_reachable = false;
};

/// The full all-pairs study plus its headline aggregates.
struct DissectionStudy {
  std::vector<transport::CityId> nodes;  ///< swept city set, ascending
  /// All unordered pairs of `nodes` in (i, j>i) row-major order.
  std::vector<PairDissection> pairs;
  std::size_t fiber_unreachable = 0;
  std::size_t row_unreachable = 0;
  double target_factor = 0.0;   ///< the stretch bar within_target was judged at
  std::size_t within_target = 0;  ///< fiber-reachable pairs with stretch <= target
  // Aggregates over fiber-reachable pairs:
  double median_stretch = 0.0;
  double p95_stretch = 0.0;
  /// Sum of achievable_ms over pairs where both graphs reach — the total
  /// delay on the table for a build-out along existing rights-of-way.
  double total_achievable_ms = 0.0;
};

struct DissectOptions {
  /// Pairs with fiber_ms <= target_factor * clat_ms count as "within
  /// target" (the serving-quality bar the gap optimizer also closes to).
  double target_factor = 2.0;
};

/// Decomposes all-pairs latency over one immutable world.  Construction
/// compiles (or borrows) the length-weighted conduit engine; dissect()
/// runs the batched sweep.  Thread-safe: all queries are const and the
/// engines never mutate.
class LatencyDissector {
 public:
  /// Compile a fresh length-weighted conduit engine from `map`.  The
  /// city database and ROW registry are borrowed and must outlive the
  /// dissector.
  LatencyDissector(const core::FiberMap& map, const transport::CityDatabase& cities,
                   const transport::RightOfWayRegistry& row);

  /// Share an already compiled conduit engine (serve::Snapshot's) instead
  /// of building a duplicate.  `nodes` is the city set to sweep (the
  /// map's nodes); it must be sorted ascending.
  LatencyDissector(std::shared_ptr<const route::PathEngine> fiber_engine,
                   std::vector<transport::CityId> nodes,
                   const transport::CityDatabase& cities,
                   const transport::RightOfWayRegistry& row);

  const std::vector<transport::CityId>& nodes() const noexcept { return nodes_; }

  /// The batched all-pairs sweep: one distance row per node over each of
  /// the conduit and ROW engines (parallel over sources when `executor`
  /// is non-null), then the pure per-pair decomposition.  Bit-identical
  /// for any thread count.
  DissectionStudy dissect(sim::Executor* executor = nullptr,
                          const DissectOptions& options = {}) const;

  /// One pair, point queries only — bit-identical to the corresponding
  /// sweep entry (both are pure functions of the same graphs).
  PairDissection dissect_pair(transport::CityId a, transport::CityId b) const;

 private:
  PairDissection decompose(transport::CityId a, transport::CityId b, double fiber_km,
                           double row_km) const;

  std::shared_ptr<const route::PathEngine> fiber_;
  std::vector<transport::CityId> nodes_;
  const transport::CityDatabase& cities_;
  const transport::RightOfWayRegistry& row_;
};

}  // namespace intertubes::dissect
