// Shared-risk analysis (§4): the ISP × conduit risk matrix and the metrics
// derived from it — the conduit-sharing distribution (Fig. 6), the per-ISP
// shared-risk ranking (Fig. 6/7), and the Hamming-distance similarity of
// ISP risk profiles (Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "core/fiber_map.hpp"

namespace intertubes::risk {

/// The paper's risk matrix: rows are ISPs, columns are conduits; the entry
/// for (ISP i, conduit c) is the number of ISPs sharing c if i uses c, and
/// 0 otherwise.
class RiskMatrix {
 public:
  static RiskMatrix from_map(const core::FiberMap& map);

  std::size_t num_isps() const noexcept { return uses_.size(); }
  std::size_t num_conduits() const noexcept { return sharing_.size(); }

  /// Number of ISPs in conduit c.
  std::size_t sharing_count(core::ConduitId c) const;
  bool uses(isp::IspId i, core::ConduitId c) const;
  /// The matrix entry as defined above.
  std::size_t entry(isp::IspId i, core::ConduitId c) const;

  /// Figure 6 (bar series): count of conduits shared by at least k ISPs,
  /// for k = 1..max; result[k-1] is the count for k.
  std::vector<std::size_t> conduits_shared_by_at_least() const;

  /// Conduits with more than `k` tenants (the paper's "12 out of 542
  /// conduits shared by more than 17 ISPs").
  std::vector<core::ConduitId> conduits_shared_by_more_than(std::size_t k) const;

  /// The `count` most shared conduits, descending by tenancy.
  std::vector<core::ConduitId> most_shared_conduits(std::size_t count) const;

  /// Figure 6 (ranking): per-ISP average shared risk over the conduits the
  /// ISP uses, with standard error and quartiles.
  struct IspRisk {
    isp::IspId isp = isp::kNoIsp;
    std::size_t conduits_used = 0;
    double mean_sharing = 0.0;
    double standard_error = 0.0;
    double p25 = 0.0;
    double p75 = 0.0;
  };
  /// Sorted ascending by mean_sharing (the paper's left-to-right order).
  std::vector<IspRisk> isp_risk_ranking() const;

  /// Figure 7: per ISP, the raw number of its conduits shared with at
  /// least one other provider.
  std::vector<std::size_t> shared_conduit_counts() const;

  /// Figure 8: pairwise Hamming distance between ISP usage rows (smaller
  /// distance ⇒ more similar risk profile).
  std::vector<std::vector<std::size_t>> hamming_matrix() const;

 private:
  std::vector<std::vector<char>> uses_;   // [isp][conduit]
  std::vector<std::uint16_t> sharing_;    // [conduit] tenant count
};

}  // namespace intertubes::risk
