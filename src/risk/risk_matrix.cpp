#include "risk/risk_matrix.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace intertubes::risk {

using core::ConduitId;
using isp::IspId;

RiskMatrix RiskMatrix::from_map(const core::FiberMap& map) {
  RiskMatrix m;
  m.uses_.assign(map.num_isps(), std::vector<char>(map.conduits().size(), 0));
  m.sharing_.assign(map.conduits().size(), 0);
  for (const auto& conduit : map.conduits()) {
    m.sharing_[conduit.id] = static_cast<std::uint16_t>(conduit.tenants.size());
    for (IspId t : conduit.tenants) m.uses_[t][conduit.id] = 1;
  }
  return m;
}

std::size_t RiskMatrix::sharing_count(ConduitId c) const {
  IT_CHECK(c < sharing_.size());
  return sharing_[c];
}

bool RiskMatrix::uses(IspId i, ConduitId c) const {
  IT_CHECK(i < uses_.size());
  IT_CHECK(c < sharing_.size());
  return uses_[i][c] != 0;
}

std::size_t RiskMatrix::entry(IspId i, ConduitId c) const {
  return uses(i, c) ? sharing_[c] : 0;
}

std::vector<std::size_t> RiskMatrix::conduits_shared_by_at_least() const {
  std::size_t max_sharing = 0;
  for (auto s : sharing_) max_sharing = std::max<std::size_t>(max_sharing, s);
  std::vector<std::size_t> counts(max_sharing, 0);
  for (auto s : sharing_) {
    for (std::size_t k = 1; k <= s; ++k) ++counts[k - 1];
  }
  return counts;
}

std::vector<ConduitId> RiskMatrix::conduits_shared_by_more_than(std::size_t k) const {
  std::vector<ConduitId> out;
  for (ConduitId c = 0; c < sharing_.size(); ++c) {
    if (sharing_[c] > k) out.push_back(c);
  }
  return out;
}

std::vector<ConduitId> RiskMatrix::most_shared_conduits(std::size_t count) const {
  std::vector<ConduitId> ids(sharing_.size());
  for (ConduitId c = 0; c < sharing_.size(); ++c) ids[c] = c;
  std::sort(ids.begin(), ids.end(), [this](ConduitId x, ConduitId y) {
    if (sharing_[x] != sharing_[y]) return sharing_[x] > sharing_[y];
    return x < y;
  });
  if (ids.size() > count) ids.resize(count);
  return ids;
}

std::vector<RiskMatrix::IspRisk> RiskMatrix::isp_risk_ranking() const {
  std::vector<IspRisk> out;
  out.reserve(uses_.size());
  for (IspId i = 0; i < uses_.size(); ++i) {
    IspRisk row;
    row.isp = i;
    RunningStats stats;
    std::vector<double> values;
    for (ConduitId c = 0; c < sharing_.size(); ++c) {
      if (!uses_[i][c]) continue;
      stats.add(static_cast<double>(sharing_[c]));
      values.push_back(static_cast<double>(sharing_[c]));
    }
    row.conduits_used = stats.count();
    if (!values.empty()) {
      row.mean_sharing = stats.mean();
      row.standard_error = stats.standard_error();
      row.p25 = quartile25(values);
      row.p75 = quartile75(values);
    }
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(), [](const IspRisk& x, const IspRisk& y) {
    if (x.mean_sharing != y.mean_sharing) return x.mean_sharing < y.mean_sharing;
    return x.isp < y.isp;
  });
  return out;
}

std::vector<std::size_t> RiskMatrix::shared_conduit_counts() const {
  std::vector<std::size_t> out(uses_.size(), 0);
  for (IspId i = 0; i < uses_.size(); ++i) {
    for (ConduitId c = 0; c < sharing_.size(); ++c) {
      if (uses_[i][c] && sharing_[c] >= 2) ++out[i];
    }
  }
  return out;
}

std::vector<std::vector<std::size_t>> RiskMatrix::hamming_matrix() const {
  const std::size_t n = uses_.size();
  std::vector<std::vector<std::size_t>> h(n, std::vector<std::size_t>(n, 0));
  for (IspId i = 0; i < n; ++i) {
    for (IspId j = i + 1; j < n; ++j) {
      std::size_t d = 0;
      for (ConduitId c = 0; c < sharing_.size(); ++c) {
        if (uses_[i][c] != uses_[j][c]) ++d;
      }
      h[i][j] = h[j][i] = d;
    }
  }
  return h;
}

}  // namespace intertubes::risk
