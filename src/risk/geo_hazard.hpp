// Geographically correlated failures.
//
// The paper's §7 grounds its motivation in the literature on regional
// disasters (tornados, hurricanes, earthquakes, the 2003 blackout) and in
// the authors' own RiskRoute framework: what fails in practice is not a
// random conduit but *every conduit in a disaster region*.  This module
// models a hazard as a disc on the map, finds the conduits it severs, and
// quantifies the service and connectivity impact — including the
// worst-case disaster placement, which is what infrastructure sharing
// concentrates.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fiber_map.hpp"
#include "transport/row.hpp"

namespace intertubes::risk {

struct HazardRegion {
  geo::GeoPoint center;
  double radius_km = 100.0;
};

/// Conduits whose route passes within the region (geometry from the ROW
/// registry's corridor paths).
std::vector<core::ConduitId> conduits_in_region(const core::FiberMap& map,
                                                const transport::RightOfWayRegistry& row,
                                                const HazardRegion& region);

struct HazardImpact {
  std::size_t conduits_cut = 0;
  std::size_t links_hit = 0;       ///< ISP links traversing >= 1 cut conduit
  std::size_t isps_hit = 0;        ///< distinct ISPs with >= 1 hit link
  double connectivity = 1.0;       ///< fraction of node pairs still connected
};

/// Assess one disaster.
HazardImpact assess_hazard(const core::FiberMap& map, const transport::RightOfWayRegistry& row,
                           const HazardRegion& region);

/// Monte-Carlo study: disasters strike at population-weighted random
/// locations (severe weather correlates with where people build).
struct HazardStudy {
  double mean_links_hit = 0.0;
  double p95_links_hit = 0.0;
  double mean_conduits_cut = 0.0;
  double mean_connectivity = 1.0;
  /// Worst observed sample.
  HazardRegion worst_region;
  HazardImpact worst_impact;
};

HazardStudy hazard_study(const core::FiberMap& map, const transport::CityDatabase& cities,
                         const transport::RightOfWayRegistry& row, double radius_km,
                         std::size_t samples, std::uint64_t seed);

/// Deterministic worst-case placement: grid-search disaster centers over
/// the map's extent and return the one maximizing links hit.
HazardRegion worst_case_placement(const core::FiberMap& map,
                                  const transport::CityDatabase& cities,
                                  const transport::RightOfWayRegistry& row, double radius_km,
                                  double grid_step_km = 75.0);

/// Per-ISP hazard exposure: expected fraction of the ISP's links severed
/// by a population-weighted random disaster of the given radius.  The
/// geographic complement to the risk matrix — two ISPs with equal conduit
/// sharing can differ wildly here if one's routes bunch through one valley.
std::vector<double> isp_hazard_exposure(const core::FiberMap& map,
                                        const transport::CityDatabase& cities,
                                        const transport::RightOfWayRegistry& row,
                                        double radius_km, std::size_t samples,
                                        std::uint64_t seed);

}  // namespace intertubes::risk
