#include "risk/geo_hazard.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace intertubes::risk {

using core::ConduitId;
using core::FiberMap;
using transport::CityId;

std::vector<ConduitId> conduits_in_region(const FiberMap& map,
                                          const transport::RightOfWayRegistry& row,
                                          const HazardRegion& region) {
  IT_CHECK(region.radius_km > 0.0);
  std::vector<ConduitId> hit;
  for (const auto& conduit : map.conduits()) {
    const auto& path = row.corridor(conduit.corridor).path;
    // Cheap reject via the expanded bounding box, then exact distance.
    if (!path.bounds().expanded_km(region.radius_km).contains(region.center)) continue;
    if (path.distance_to_km(region.center) <= region.radius_km) hit.push_back(conduit.id);
  }
  return hit;
}

namespace {

/// Connectivity of the map with a set of conduits removed.
double connectivity_without(const FiberMap& map, const std::vector<char>& dead) {
  std::map<CityId, std::size_t> index;
  std::vector<CityId> nodes = map.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) index[nodes[i]] = i;
  std::vector<char> visited(nodes.size(), 0);
  double connected_pairs = 0.0;
  for (std::size_t start = 0; start < nodes.size(); ++start) {
    if (visited[start]) continue;
    std::size_t size = 0;
    std::vector<std::size_t> stack{start};
    visited[start] = 1;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      ++size;
      for (ConduitId cid : map.conduits_at(nodes[u])) {
        if (dead[cid]) continue;
        const auto& conduit = map.conduit(cid);
        const CityId other = (conduit.a == nodes[u]) ? conduit.b : conduit.a;
        const std::size_t v = index.at(other);
        if (!visited[v]) {
          visited[v] = 1;
          stack.push_back(v);
        }
      }
    }
    connected_pairs += static_cast<double>(size) * static_cast<double>(size - 1) / 2.0;
  }
  const double n = static_cast<double>(nodes.size());
  const double total = n * (n - 1) / 2.0;
  return total > 0.0 ? connected_pairs / total : 1.0;
}

}  // namespace

HazardImpact assess_hazard(const FiberMap& map, const transport::RightOfWayRegistry& row,
                           const HazardRegion& region) {
  HazardImpact impact;
  const auto cut = conduits_in_region(map, row, region);
  impact.conduits_cut = cut.size();
  if (cut.empty()) return impact;

  std::vector<char> dead(map.conduits().size(), 0);
  for (ConduitId cid : cut) dead[cid] = 1;

  std::set<isp::IspId> isps;
  for (const auto& link : map.links()) {
    for (ConduitId cid : link.conduits) {
      if (dead[cid]) {
        ++impact.links_hit;
        isps.insert(link.isp);
        break;
      }
    }
  }
  impact.isps_hit = isps.size();
  impact.connectivity = connectivity_without(map, dead);
  return impact;
}

HazardStudy hazard_study(const FiberMap& map, const transport::CityDatabase& cities,
                         const transport::RightOfWayRegistry& row, double radius_km,
                         std::size_t samples, std::uint64_t seed) {
  IT_CHECK(samples > 0);
  Rng rng(mix64(seed ^ 0xdead1357ULL));
  std::vector<double> weights;
  weights.reserve(cities.size());
  for (const auto& city : cities.all()) weights.push_back(static_cast<double>(city.population));

  HazardStudy study;
  RunningStats links_stats;
  RunningStats conduit_stats;
  RunningStats connectivity_stats;
  std::vector<double> links_samples;
  links_samples.reserve(samples);
  std::size_t worst = 0;
  bool have_worst = false;
  for (std::size_t s = 0; s < samples; ++s) {
    // A disaster centred near (not exactly on) a population centre.
    const auto anchor = cities.city(static_cast<CityId>(rng.weighted_pick(weights)));
    HazardRegion region;
    region.center = geo::destination(anchor.location, rng.uniform(0.0, 360.0),
                                     std::abs(rng.normal(0.0, radius_km)));
    region.radius_km = radius_km;
    const auto impact = assess_hazard(map, row, region);
    links_stats.add(static_cast<double>(impact.links_hit));
    conduit_stats.add(static_cast<double>(impact.conduits_cut));
    connectivity_stats.add(impact.connectivity);
    links_samples.push_back(static_cast<double>(impact.links_hit));
    if (!have_worst || impact.links_hit > worst) {
      worst = impact.links_hit;
      have_worst = true;
      study.worst_region = region;
      study.worst_impact = impact;
    }
  }
  study.mean_links_hit = links_stats.mean();
  study.p95_links_hit = percentile(links_samples, 95.0);
  study.mean_conduits_cut = conduit_stats.mean();
  study.mean_connectivity = connectivity_stats.mean();
  return study;
}

HazardRegion worst_case_placement(const FiberMap& map, const transport::CityDatabase& cities,
                                  const transport::RightOfWayRegistry& row, double radius_km,
                                  double grid_step_km) {
  IT_CHECK(grid_step_km > 0.0);
  // Extent of the map: bounding box of all cities, padded.
  double min_lat = 90.0, max_lat = -90.0, min_lon = 180.0, max_lon = -180.0;
  for (const auto& city : cities.all()) {
    min_lat = std::min(min_lat, city.location.lat_deg);
    max_lat = std::max(max_lat, city.location.lat_deg);
    min_lon = std::min(min_lon, city.location.lon_deg);
    max_lon = std::max(max_lon, city.location.lon_deg);
  }
  const double lat_step = grid_step_km / 111.0;
  const double lon_step = grid_step_km / 85.0;  // ~mid-US latitude

  HazardRegion best;
  best.radius_km = radius_km;
  std::size_t best_links = 0;
  for (double lat = min_lat; lat <= max_lat; lat += lat_step) {
    for (double lon = min_lon; lon <= max_lon; lon += lon_step) {
      HazardRegion region;
      region.center = {lat, lon};
      region.radius_km = radius_km;
      // Cheap pre-count on conduits, full assess only if promising.
      const auto cut = conduits_in_region(map, row, region);
      if (cut.empty()) continue;
      std::vector<char> dead(map.conduits().size(), 0);
      for (ConduitId cid : cut) dead[cid] = 1;
      std::size_t links_hit = 0;
      for (const auto& link : map.links()) {
        for (ConduitId cid : link.conduits) {
          if (dead[cid]) {
            ++links_hit;
            break;
          }
        }
      }
      if (links_hit > best_links) {
        best_links = links_hit;
        best = region;
      }
    }
  }
  return best;
}

std::vector<double> isp_hazard_exposure(const FiberMap& map,
                                        const transport::CityDatabase& cities,
                                        const transport::RightOfWayRegistry& row,
                                        double radius_km, std::size_t samples,
                                        std::uint64_t seed) {
  IT_CHECK(samples > 0);
  Rng rng(mix64(seed ^ 0x15b0f00dULL));
  std::vector<double> weights;
  for (const auto& city : cities.all()) weights.push_back(static_cast<double>(city.population));

  std::vector<std::size_t> total_links(map.num_isps(), 0);
  for (const auto& link : map.links()) ++total_links[link.isp];

  std::vector<double> exposure(map.num_isps(), 0.0);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto anchor = cities.city(static_cast<CityId>(rng.weighted_pick(weights)));
    HazardRegion region;
    region.center = geo::destination(anchor.location, rng.uniform(0.0, 360.0),
                                     std::abs(rng.normal(0.0, radius_km)));
    region.radius_km = radius_km;
    const auto cut = conduits_in_region(map, row, region);
    if (cut.empty()) continue;
    std::vector<char> dead(map.conduits().size(), 0);
    for (ConduitId cid : cut) dead[cid] = 1;
    std::vector<std::size_t> hit(map.num_isps(), 0);
    for (const auto& link : map.links()) {
      for (ConduitId cid : link.conduits) {
        if (dead[cid]) {
          ++hit[link.isp];
          break;
        }
      }
    }
    for (isp::IspId i = 0; i < map.num_isps(); ++i) {
      if (total_links[i] > 0) {
        exposure[i] += static_cast<double>(hit[i]) / static_cast<double>(total_links[i]);
      }
    }
  }
  for (double& e : exposure) e /= static_cast<double>(samples);
  return exposure;
}

}  // namespace intertubes::risk
