// Traffic-weighted shared risk (§4.3's combined metric).
//
// "We are able to identify those components of the long-haul fiber-optic
// infrastructure which experience high levels of infrastructure sharing as
// well as high volumes of traffic."  Conduit tenancy alone treats a
// 19-tenant rural spur like a 19-tenant Chicago artery; weighting by
// observed probe volume separates them.  Probe counts come from any
// traceroute overlay (passed as a plain per-conduit vector so this module
// stays independent of the measurement machinery).
#pragma once

#include <cstdint>
#include <vector>

#include "risk/risk_matrix.hpp"

namespace intertubes::risk {

struct WeightedConduitRisk {
  core::ConduitId conduit = core::kNoConduit;
  std::size_t tenants = 0;
  std::uint64_t probes = 0;
  /// tenants × log2(1 + probes): linear in how many providers share the
  /// cut, logarithmic in traffic (route popularity is heavy-tailed).
  double score = 0.0;
};

/// All conduits ranked by combined risk, descending.
std::vector<WeightedConduitRisk> traffic_weighted_ranking(
    const RiskMatrix& matrix, const std::vector<std::uint64_t>& probes_per_conduit);

/// Per-ISP mean combined risk over the conduits the ISP uses — the
/// traffic-aware version of Fig. 6's ranking.  Sorted ascending by score.
struct IspWeightedRisk {
  isp::IspId isp = isp::kNoIsp;
  double mean_score = 0.0;
  std::size_t conduits_used = 0;
};

std::vector<IspWeightedRisk> isp_traffic_weighted_ranking(
    const RiskMatrix& matrix, const std::vector<std::uint64_t>& probes_per_conduit);

/// Spearman rank correlation between the tenancy-only conduit ranking and
/// the traffic-weighted one — how much does traffic reshuffle the risk
/// picture?
double ranking_rank_correlation(const RiskMatrix& matrix,
                                const std::vector<std::uint64_t>& probes_per_conduit);

}  // namespace intertubes::risk
