#include "risk/cuts.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "sim/executor.hpp"
#include "util/check.hpp"

namespace intertubes::risk {

using core::ConduitId;
using core::FiberMap;
using transport::CityId;

namespace {

/// Compact city-index view of the map's conduit graph.
struct Graph {
  std::vector<CityId> cities;                       // index → city
  std::map<CityId, std::size_t> index_of;           // city → index
  std::vector<std::vector<std::pair<std::size_t, ConduitId>>> adjacency;

  explicit Graph(const FiberMap& map) {
    for (CityId node : map.nodes()) {
      index_of[node] = cities.size();
      cities.push_back(node);
    }
    adjacency.resize(cities.size());
    for (const auto& conduit : map.conduits()) {
      const std::size_t u = index_of.at(conduit.a);
      const std::size_t v = index_of.at(conduit.b);
      adjacency[u].emplace_back(v, conduit.id);
      adjacency[v].emplace_back(u, conduit.id);
    }
  }
};

/// Connectivity statistics of the graph with `dead` conduits removed.
void connectivity(const Graph& graph, const std::vector<char>& dead, double& pair_fraction,
                  std::size_t& components) {
  const std::size_t n = graph.cities.size();
  std::vector<char> visited(n, 0);
  components = 0;
  double connected_pairs = 0.0;
  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++components;
    std::size_t size = 0;
    std::vector<std::size_t> stack{start};
    visited[start] = 1;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      ++size;
      for (const auto& [v, cid] : graph.adjacency[u]) {
        if (dead[cid] || visited[v]) continue;
        visited[v] = 1;
        stack.push_back(v);
      }
    }
    connected_pairs += static_cast<double>(size) * static_cast<double>(size - 1) / 2.0;
  }
  const double total_pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  pair_fraction = total_pairs > 0.0 ? connected_pairs / total_pairs : 1.0;
}

}  // namespace

std::vector<ConduitId> bridge_conduits(const FiberMap& map) {
  const Graph graph(map);
  const std::size_t n = graph.cities.size();
  // Iterative Tarjan bridge finding over the multigraph: an edge is a
  // bridge iff low[v] > disc[u] for tree edge u→v, where parallel edges
  // are distinguished by conduit id.
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<ConduitId> bridges;
  int timer = 0;

  struct Frame {
    std::size_t u;
    ConduitId via;       // conduit used to enter u (kNoConduit at roots)
    std::size_t next = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::vector<Frame> stack;
    stack.push_back({root, core::kNoConduit});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < graph.adjacency[frame.u].size()) {
        const auto [v, cid] = graph.adjacency[frame.u][frame.next++];
        if (cid == frame.via) continue;  // don't traverse the entry conduit backwards
        if (disc[v] == -1) {
          disc[v] = low[v] = timer++;
          stack.push_back({v, cid});
        } else {
          low[frame.u] = std::min(low[frame.u], disc[v]);
        }
      } else {
        const Frame done = frame;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[parent.u] = std::min(low[parent.u], low[done.u]);
          if (low[done.u] > disc[parent.u]) bridges.push_back(done.via);
        }
      }
    }
  }
  std::sort(bridges.begin(), bridges.end());
  return bridges;
}

std::vector<FailurePoint> failure_curve(const FiberMap& map, FailureStrategy strategy,
                                        std::size_t max_failures, std::size_t trials,
                                        std::uint64_t seed) {
  const std::size_t num_conduits = map.conduits().size();
  if (num_conduits == 0) {
    // Degenerate map: one baseline point (no nodes, nothing to cut)
    // instead of looping over an empty conduit pool.
    FailurePoint base;
    base.connected_pair_fraction = 1.0;
    base.components = 0.0;
    return {base};
  }
  const Graph graph(map);
  max_failures = std::min(max_failures, num_conduits);
  if (strategy == FailureStrategy::MostSharedFirst) trials = 1;
  IT_CHECK(trials >= 1);

  // Trials are independent (per-trial RNG substream, unchanged from the
  // historical serial derivation), so they fan out over the executor; the
  // reduction below runs in trial order, keeping the result bit-identical
  // to the serial loop for any thread count.
  const auto trial_curves = sim::default_executor().parallel_map<std::vector<FailurePoint>>(
      trials, [&](std::size_t trial) {
        std::vector<ConduitId> order(num_conduits);
        for (ConduitId c = 0; c < num_conduits; ++c) order[c] = c;
        if (strategy == FailureStrategy::Random) {
          Rng rng(mix64(seed ^ (0x9e37ULL * (trial + 1))));
          rng.shuffle(order);
        } else {
          std::stable_sort(order.begin(), order.end(), [&map](ConduitId x, ConduitId y) {
            return map.conduit(x).tenants.size() > map.conduit(y).tenants.size();
          });
        }

        std::vector<FailurePoint> partial(max_failures + 1);
        std::vector<char> dead(num_conduits, 0);
        for (std::size_t f = 0; f <= max_failures; ++f) {
          if (f > 0) dead[order[f - 1]] = 1;
          double fraction = 0.0;
          std::size_t components = 0;
          connectivity(graph, dead, fraction, components);
          partial[f].connected_pair_fraction = fraction;
          partial[f].components = static_cast<double>(components);
        }
        return partial;
      });

  std::vector<FailurePoint> curve(max_failures + 1);
  for (std::size_t f = 0; f <= max_failures; ++f) curve[f].failed = f;
  for (const auto& partial : trial_curves) {
    for (std::size_t f = 0; f <= max_failures; ++f) {
      curve[f].connected_pair_fraction += partial[f].connected_pair_fraction;
      curve[f].components += partial[f].components;
    }
  }
  for (auto& point : curve) {
    point.connected_pair_fraction /= static_cast<double>(trials);
    point.components /= static_cast<double>(trials);
  }
  return curve;
}

std::vector<ServiceImpactPoint> service_impact_curve(const FiberMap& map,
                                                     FailureStrategy strategy,
                                                     std::size_t max_failures, std::size_t trials,
                                                     std::uint64_t seed) {
  const std::size_t num_conduits = map.conduits().size();
  if (num_conduits == 0) return {ServiceImpactPoint{}};  // baseline only
  max_failures = std::min(max_failures, num_conduits);
  if (strategy == FailureStrategy::MostSharedFirst) trials = 1;
  IT_CHECK(trials >= 1);

  // links_using[cid] — link ids traversing each conduit.
  std::vector<std::vector<core::LinkId>> links_using(num_conduits);
  for (const auto& link : map.links()) {
    for (ConduitId cid : link.conduits) links_using[cid].push_back(link.id);
  }

  // Same fan-out/ordered-reduction scheme as failure_curve.
  const auto trial_curves =
      sim::default_executor().parallel_map<std::vector<ServiceImpactPoint>>(
          trials, [&](std::size_t trial) {
            std::vector<ConduitId> order(num_conduits);
            for (ConduitId c = 0; c < num_conduits; ++c) order[c] = c;
            if (strategy == FailureStrategy::Random) {
              Rng rng(mix64(seed ^ (0x11c7ULL * (trial + 1))));
              rng.shuffle(order);
            } else {
              std::stable_sort(order.begin(), order.end(), [&map](ConduitId x, ConduitId y) {
                return map.conduit(x).tenants.size() > map.conduit(y).tenants.size();
              });
            }

            std::vector<ServiceImpactPoint> partial(max_failures + 1);
            std::vector<char> link_hit(map.links().size(), 0);
            std::vector<char> isp_hit(map.num_isps(), 0);
            std::size_t links_hit = 0;
            std::size_t isps_hit = 0;
            for (std::size_t f = 0; f <= max_failures; ++f) {
              if (f > 0) {
                for (core::LinkId lid : links_using[order[f - 1]]) {
                  if (!link_hit[lid]) {
                    link_hit[lid] = 1;
                    ++links_hit;
                    const auto isp = map.link(lid).isp;
                    if (!isp_hit[isp]) {
                      isp_hit[isp] = 1;
                      ++isps_hit;
                    }
                  }
                }
              }
              partial[f].links_hit = static_cast<double>(links_hit);
              partial[f].isps_hit = static_cast<double>(isps_hit);
            }
            return partial;
          });

  std::vector<ServiceImpactPoint> curve(max_failures + 1);
  for (std::size_t f = 0; f <= max_failures; ++f) curve[f].failed = f;
  for (const auto& partial : trial_curves) {
    for (std::size_t f = 0; f <= max_failures; ++f) {
      curve[f].links_hit += partial[f].links_hit;
      curve[f].isps_hit += partial[f].isps_hit;
    }
  }
  for (auto& point : curve) {
    point.links_hit /= static_cast<double>(trials);
    point.isps_hit /= static_cast<double>(trials);
  }
  return curve;
}

std::size_t min_conduit_cut(const FiberMap& map, CityId s, CityId t) {
  const Graph graph(map);
  IT_CHECK_MSG(graph.index_of.count(s) && graph.index_of.count(t),
               "city is not a node of the map");
  const std::size_t src = graph.index_of.at(s);
  const std::size_t dst = graph.index_of.at(t);
  IT_CHECK(src != dst);

  // Unit-capacity Edmonds–Karp: residual capacity per (conduit, direction).
  const std::size_t num_conduits = map.conduits().size();
  std::vector<std::int8_t> flow(num_conduits, 0);  // -1, 0, +1 (a→b positive)

  auto residual = [&](std::size_t from, const std::pair<std::size_t, ConduitId>& edge) {
    const auto& conduit = map.conduit(edge.second);
    const bool forward = graph.index_of.at(conduit.a) == from;
    // Capacity 1 each way minus current signed flow.
    const int f = forward ? flow[edge.second] : -flow[edge.second];
    return 1 - f;
  };

  std::size_t max_flow = 0;
  for (;;) {
    // BFS for an augmenting path.
    std::vector<std::pair<std::size_t, ConduitId>> parent(
        graph.cities.size(), {SIZE_MAX, core::kNoConduit});
    std::queue<std::size_t> queue;
    queue.push(src);
    parent[src] = {src, core::kNoConduit};
    bool reached = false;
    while (!queue.empty() && !reached) {
      const std::size_t u = queue.front();
      queue.pop();
      for (const auto& edge : graph.adjacency[u]) {
        if (parent[edge.first].first != SIZE_MAX) continue;
        if (residual(u, edge) <= 0) continue;
        parent[edge.first] = {u, edge.second};
        if (edge.first == dst) {
          reached = true;
          break;
        }
        queue.push(edge.first);
      }
    }
    if (!reached) break;
    // Augment by one unit along the path.
    std::size_t cur = dst;
    while (cur != src) {
      const auto [prev, cid] = parent[cur];
      const auto& conduit = map.conduit(cid);
      const bool forward = graph.index_of.at(conduit.a) == prev;
      flow[cid] = static_cast<std::int8_t>(flow[cid] + (forward ? 1 : -1));
      cur = prev;
    }
    ++max_flow;
  }
  return max_flow;
}

namespace {

/// Generic unit-capacity undirected max-flow (Edmonds–Karp) over an edge
/// list; nodes are 0..n-1.
std::size_t unit_max_flow(std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& edges,
                          std::size_t src, std::size_t dst) {
  std::vector<std::vector<std::size_t>> incident(n);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    incident[edges[e].first].push_back(e);
    incident[edges[e].second].push_back(e);
  }
  std::vector<std::int8_t> flow(edges.size(), 0);  // signed, first→second positive
  std::size_t total = 0;
  for (;;) {
    std::vector<std::pair<std::size_t, std::size_t>> parent(n, {SIZE_MAX, SIZE_MAX});
    std::queue<std::size_t> queue;
    queue.push(src);
    parent[src] = {src, SIZE_MAX};
    bool reached = false;
    while (!queue.empty() && !reached) {
      const std::size_t u = queue.front();
      queue.pop();
      for (std::size_t e : incident[u]) {
        const std::size_t v = edges[e].first == u ? edges[e].second : edges[e].first;
        if (parent[v].first != SIZE_MAX) continue;
        const int f = edges[e].first == u ? flow[e] : -flow[e];
        if (1 - f <= 0) continue;
        parent[v] = {u, e};
        if (v == dst) {
          reached = true;
          break;
        }
        queue.push(v);
      }
    }
    if (!reached) break;
    std::size_t cur = dst;
    while (cur != src) {
      const auto [prev, e] = parent[cur];
      flow[e] = static_cast<std::int8_t>(flow[e] + (edges[e].first == prev ? 1 : -1));
      cur = prev;
    }
    ++total;
  }
  return total;
}

}  // namespace

std::size_t min_conduit_cut_with_undersea(const FiberMap& map,
                                          const std::vector<transport::UnderseaCable>& cables,
                                          CityId s, CityId t) {
  // Node set: map nodes plus any cable landing not already in the map.
  std::map<CityId, std::size_t> index;
  for (CityId node : map.nodes()) index.emplace(node, index.size());
  for (const auto& cable : cables) {
    index.emplace(cable.landing_a, index.size());
    index.emplace(cable.landing_b, index.size());
  }
  IT_CHECK_MSG(index.count(s) && index.count(t), "city is not a node of the map or a landing");
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (const auto& conduit : map.conduits()) {
    edges.emplace_back(index.at(conduit.a), index.at(conduit.b));
  }
  for (const auto& cable : cables) {
    edges.emplace_back(index.at(cable.landing_a), index.at(cable.landing_b));
  }
  return unit_max_flow(index.size(), edges, index.at(s), index.at(t));
}

}  // namespace intertubes::risk
