// Fiber-cut resilience analysis.
//
// §4 notes that metrics like "the number of fiber cuts needed to partition
// the US long-haul infrastructure" carry security implications, and §8
// lists resilience analysis as future work.  This module provides the
// machinery: bridge (single-point-of-failure) conduits, random vs
// targeted failure curves — where "targeted" fails the most-shared
// conduits first, the scenario infrastructure sharing makes worse — and
// the minimum conduit cut between two cities (unit-capacity max-flow).
#pragma once

#include <cstdint>
#include <vector>

#include "core/fiber_map.hpp"
#include "transport/undersea.hpp"
#include "util/rng.hpp"

namespace intertubes::risk {

/// Conduits whose single failure disconnects some pair of currently
/// connected map nodes (bridges of the conduit multigraph; a conduit
/// parallel to another between the same cities is never a bridge).
std::vector<core::ConduitId> bridge_conduits(const core::FiberMap& map);

enum class FailureStrategy : std::uint8_t {
  Random,           ///< conduits fail uniformly at random (backhoes)
  MostSharedFirst,  ///< adversary cuts the most heavily shared conduits
};

struct FailurePoint {
  std::size_t failed = 0;
  /// Fraction of node pairs still connected, averaged over trials.
  double connected_pair_fraction = 0.0;
  /// Mean number of connected components.
  double components = 0.0;
};

/// Failure curve: connectivity as cuts accumulate, one point per failure
/// count in [0, max_failures].  Random strategy averages `trials` runs;
/// the targeted strategy is deterministic (trials ignored).
std::vector<FailurePoint> failure_curve(const core::FiberMap& map, FailureStrategy strategy,
                                        std::size_t max_failures, std::size_t trials,
                                        std::uint64_t seed);

/// Minimum number of conduits whose removal disconnects cities s and t
/// (Menger: max number of conduit-disjoint paths), via unit-capacity
/// Edmonds–Karp max-flow on the conduit graph.
std::size_t min_conduit_cut(const core::FiberMap& map, transport::CityId s, transport::CityId t);

/// Footnote 8: the same min cut when coastal undersea festoons count as
/// alternate routes (cables are cuttable too — each contributes one unit
/// of capacity — but no terrestrial backhoe reaches them, so the cut
/// value can only grow).
std::size_t min_conduit_cut_with_undersea(const core::FiberMap& map,
                                          const std::vector<transport::UnderseaCable>& cables,
                                          transport::CityId s, transport::CityId t);

struct ServiceImpactPoint {
  std::size_t failed = 0;
  /// Mean number of ISP links that traverse >= 1 failed conduit — the
  /// services a repair crew finds in the severed tube.  This, not global
  /// reachability, is the paper's shared-risk harm model: metros have
  /// parallel paths, so connectivity survives cuts whose service impact
  /// is enormous.
  double links_hit = 0.0;
  /// Mean number of distinct ISPs with >= 1 hit link.
  double isps_hit = 0.0;
};

/// Service-impact curve under accumulating cuts.  Targeting the most
/// shared conduits maximizes early impact (the §4 risk thesis).
std::vector<ServiceImpactPoint> service_impact_curve(const core::FiberMap& map,
                                                     FailureStrategy strategy,
                                                     std::size_t max_failures, std::size_t trials,
                                                     std::uint64_t seed);

}  // namespace intertubes::risk
