#include "risk/traffic_weighted.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace intertubes::risk {

using core::ConduitId;

namespace {

double combined_score(std::size_t tenants, std::uint64_t probes) {
  return static_cast<double>(tenants) * std::log2(1.0 + static_cast<double>(probes));
}

}  // namespace

std::vector<WeightedConduitRisk> traffic_weighted_ranking(
    const RiskMatrix& matrix, const std::vector<std::uint64_t>& probes_per_conduit) {
  IT_CHECK(probes_per_conduit.size() == matrix.num_conduits());
  std::vector<WeightedConduitRisk> ranking;
  ranking.reserve(matrix.num_conduits());
  for (ConduitId c = 0; c < matrix.num_conduits(); ++c) {
    WeightedConduitRisk entry;
    entry.conduit = c;
    entry.tenants = matrix.sharing_count(c);
    entry.probes = probes_per_conduit[c];
    entry.score = combined_score(entry.tenants, entry.probes);
    ranking.push_back(entry);
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const WeightedConduitRisk& x, const WeightedConduitRisk& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.conduit < y.conduit;
            });
  return ranking;
}

std::vector<IspWeightedRisk> isp_traffic_weighted_ranking(
    const RiskMatrix& matrix, const std::vector<std::uint64_t>& probes_per_conduit) {
  IT_CHECK(probes_per_conduit.size() == matrix.num_conduits());
  std::vector<IspWeightedRisk> out;
  for (isp::IspId i = 0; i < matrix.num_isps(); ++i) {
    IspWeightedRisk row;
    row.isp = i;
    RunningStats stats;
    for (ConduitId c = 0; c < matrix.num_conduits(); ++c) {
      if (!matrix.uses(i, c)) continue;
      stats.add(combined_score(matrix.sharing_count(c), probes_per_conduit[c]));
    }
    row.conduits_used = stats.count();
    row.mean_score = stats.mean();
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(), [](const IspWeightedRisk& x, const IspWeightedRisk& y) {
    if (x.mean_score != y.mean_score) return x.mean_score < y.mean_score;
    return x.isp < y.isp;
  });
  return out;
}

double ranking_rank_correlation(const RiskMatrix& matrix,
                                const std::vector<std::uint64_t>& probes_per_conduit) {
  IT_CHECK(probes_per_conduit.size() == matrix.num_conduits());
  const std::size_t n = matrix.num_conduits();
  IT_CHECK(n >= 2);

  // Ranks (average-rank tie handling) for both orderings.
  auto ranks_of = [n](auto key) {
    std::vector<ConduitId> order(n);
    for (ConduitId c = 0; c < n; ++c) order[c] = c;
    std::sort(order.begin(), order.end(),
              [&key](ConduitId x, ConduitId y) { return key(x) < key(y); });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && key(order[j + 1]) == key(order[i])) ++j;
      const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
      for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
      i = j + 1;
    }
    return ranks;
  };

  const auto tenancy_ranks =
      ranks_of([&matrix](ConduitId c) { return static_cast<double>(matrix.sharing_count(c)); });
  const auto weighted_ranks = ranks_of([&](ConduitId c) {
    return combined_score(matrix.sharing_count(c), probes_per_conduit[c]);
  });
  return pearson(tenancy_ranks, weighted_ranks);
}

}  // namespace intertubes::risk
