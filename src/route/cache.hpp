// Sharded LRU memoization for reroute queries, following the serve/cache
// pattern: keys carry the graph epoch, so a rebuilt graph (new epoch)
// invalidates every cached path implicitly — no coordination with readers,
// stale entries just stop being requested — and purge_stale() reclaims
// their memory when convenient.  Unlike serve's string-keyed response
// cache, the key here is a packed (epoch, source, target, mask hash)
// tuple: reroute queries are issued millions of times per sweep, so key
// construction must not allocate.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "route/path_engine.hpp"
#include "util/check.hpp"

namespace intertubes::route {

struct PathKey {
  std::uint64_t epoch = 0;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint64_t mask_hash = 0;

  bool operator==(const PathKey& other) const noexcept {
    return epoch == other.epoch && from == other.from && to == other.to &&
           mask_hash == other.mask_hash;
  }
};

inline std::uint64_t mix64(std::uint64_t h) noexcept {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

/// Order-sensitive fold of a sorted mask; callers sort first so that
/// {3,7} and {7,3} collide on purpose.
inline std::uint64_t mask_hash(const std::vector<EdgeId>& sorted_mask) noexcept {
  std::uint64_t h = 0x2545f4914f6cdd1dull;
  for (EdgeId id : sorted_mask) h = mix64(h ^ id);
  return h;
}

struct PathKeyHash {
  std::size_t operator()(const PathKey& key) const noexcept {
    const std::uint64_t a = mix64(key.epoch ^ (static_cast<std::uint64_t>(key.from) << 32 |
                                               static_cast<std::uint64_t>(key.to)));
    return static_cast<std::size_t>(mix64(a ^ key.mask_hash));
  }
};

struct PathCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      ///< capacity evictions (LRU tail drops)
  std::uint64_t invalidations = 0;  ///< stale-epoch entries purged

  double hit_ratio() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Sharded LRU over PathKey → immutable Path.  Same locking discipline as
/// serve::ShardedLruCache: independently locked shards, atomics for stats.
class PathCache {
 public:
  explicit PathCache(std::size_t capacity = 4096, std::size_t num_shards = 8)
      : per_shard_capacity_(checked_per_shard(capacity, num_shards)), shards_(num_shards) {}

  using Value = std::shared_ptr<const Path>;

  std::optional<Value> get(const PathKey& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  void put(const PathKey& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drop every entry whose epoch differs from `current_epoch`.
  std::size_t purge_stale(std::uint64_t current_epoch) {
    std::size_t dropped = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (it->first.epoch != current_epoch) {
          shard.index.erase(it->first);
          it = shard.lru.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  PathCacheStats stats() const {
    PathCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<PathKey, Value>> lru;  // front = most recent
    std::unordered_map<PathKey, std::list<std::pair<PathKey, Value>>::iterator, PathKeyHash>
        index;
  };

  static std::size_t checked_per_shard(std::size_t capacity, std::size_t num_shards) {
    IT_CHECK(capacity > 0);
    IT_CHECK(num_shards > 0);
    return (capacity + num_shards - 1) / num_shards;
  }

  Shard& shard_for(const PathKey& key) {
    return shards_[PathKeyHash{}(key) % shards_.size()];
  }

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

/// Memoizing front end: routes through a PathEngine, caching results under
/// (engine epoch, from, to, mask hash).  The engine is passed per call so
/// one cache can serve a sequence of rebuilt graphs (greedy expansion
/// commits); entries from superseded epochs die by key mismatch.
/// Thread-safe: the cache shards lock independently and the engine's
/// pooled workspaces make concurrent misses safe.
class MemoizedRouter {
 public:
  explicit MemoizedRouter(std::size_t capacity = 4096, std::size_t num_shards = 8)
      : cache_(capacity, num_shards) {}

  /// `mask` must be sorted ascending (so semantically equal masks share a
  /// cache slot).  Returns a shared immutable Path — hit or miss.
  std::shared_ptr<const Path> route(const PathEngine& engine, NodeId from, NodeId to,
                                    const std::vector<EdgeId>& mask = {}) {
    const PathKey key{engine.epoch(), from, to, mask_hash(mask)};
    if (auto cached = cache_.get(key)) return *cached;
    Query query;
    if (!mask.empty()) query.masked = &mask;
    auto path = std::make_shared<const Path>(engine.shortest_path(from, to, query));
    cache_.put(key, path);
    return path;
  }

  PathCacheStats stats() const { return cache_.stats(); }
  std::size_t size() const { return cache_.size(); }
  void clear() { cache_.clear(); }
  std::size_t purge_stale(std::uint64_t epoch) { return cache_.purge_stale(epoch); }

 private:
  PathCache cache_;
};

}  // namespace intertubes::route
