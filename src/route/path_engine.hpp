// The shared routing core: one compiled graph, many cheap what-if queries.
//
// Every mitigation analysis in the repo (robustness suggestions, k-new-
// conduit expansion, ROW shortest paths, serve city-pair paths) reduces to
// a min-weight path over a mostly static graph with small per-query
// perturbations — an excluded conduit, a tentative new edge, a custom
// weight.  PathEngine compiles the graph once into CSR adjacency (flat
// uint32 arrays, cache-friendly, no per-node hashing) and answers Dijkstra
// queries against generation-stamped scratch arrays: resetting a Workspace
// between queries is O(1) (bump a counter), and after the first query on a
// Workspace no allocation happens at all.
//
// Query-time perturbations never copy the graph:
//   * edge masks — a sorted list of excluded edge ids, stamped into the
//     workspace in O(|mask|);
//   * overlay edges — extra EdgeSpecs scanned alongside the CSR rows,
//     with ids starting at num_edges() (how the expansion optimizer
//     evaluates a tentative conduit without cloning anything);
//   * weight overrides — a per-edge cost functor (+inf forbids), the
//     escape hatch for the ROW registry's custom WeightFn callers.
//
// Many-to-many workloads (the dissect/ all-pairs sweep, expansion and
// robustness fan-outs) use distance_rows(): one full Dijkstra per source
// written into a flat row-major DistanceMatrix, optionally parallelized
// over sources on a sim::Executor — n sources cost n scratch passes
// instead of n(n-1)/2 point-to-point queries.
//
// Determinism contract: results are a pure function of (graph, query).
// Ties are broken canonically — the heap pops equal-distance nodes in
// node-id order, and among equal-cost predecessors the lowest edge id
// wins — so parallel fan-outs that issue one query per work item are
// bit-identical to their serial runs for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "util/alloc.hpp"

namespace intertubes::sim {
class Executor;
}

namespace intertubes::route {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;
inline constexpr EdgeId kNoEdge = 0xffffffffu;

/// An undirected edge with its precompiled base weight.
struct EdgeSpec {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  double weight = 0.0;
};

/// A shortest path.  `edges` may contain overlay ids (>= num_edges());
/// `nodes` has edges.size()+1 entries when reachable (just {from} when
/// from == to).  An unreachable query leaves cost at +inf.
struct Path {
  std::vector<EdgeId> edges;
  std::vector<NodeId> nodes;
  double cost = std::numeric_limits<double>::infinity();
  bool reachable = false;
};

/// Dense distance rows for many sources against one shared query — the
/// result of a batched many-to-many sweep.  Row i holds the full
/// distance vector of sources[i] (kNoNode-free dense layout, +inf for
/// unreachable nodes), laid out row-major at a fixed stride so consumers
/// stream over flat doubles instead of per-source vectors.
struct DistanceMatrix {
  std::vector<double> cells;    ///< row-major, num_sources x stride
  std::size_t num_sources = 0;
  std::size_t stride = 0;       ///< = engine.num_nodes()

  const double* row(std::size_t source_index) const noexcept {
    return cells.data() + source_index * stride;
  }
  double at(std::size_t source_index, NodeId node) const noexcept {
    return cells[source_index * stride + node];
  }
};

/// Dense shortest-path forests for many sources against one shared query —
/// the parent-carrying sibling of DistanceMatrix.  Row i holds the full
/// Dijkstra tree of sources[i]: distance, incoming edge, and predecessor
/// per node, so consumers can materialize any tree path (or just walk its
/// edge ids) without re-running a point-to-point query.  Every extracted
/// path is bit-identical to shortest_path(sources[i], to, query): the
/// canonical tie-breaks freeze a settled node's parent, so the full run
/// and the early-exit run agree on every node settled before `to`.
struct RouteForest {
  std::vector<double> dist;      ///< row-major num_sources x stride, +inf unreached
  std::vector<EdgeId> via_edge;  ///< incoming edge; kNoEdge at the source / unreached
  std::vector<NodeId> via_node;  ///< predecessor; kNoNode at the source / unreached
  std::vector<NodeId> sources;
  std::size_t stride = 0;        ///< = engine.num_nodes()

  double dist_at(std::size_t source_index, NodeId node) const noexcept {
    return dist[source_index * stride + node];
  }
  bool reachable(std::size_t source_index, NodeId node) const noexcept {
    return via_node[source_index * stride + node] != kNoNode ||
           sources[source_index] == node;
  }

  /// The tree path sources[source_index] → to, bit-identical to the
  /// point-to-point query under the forest's own Query.
  Path path_to(std::size_t source_index, NodeId to) const;

  /// Visit the edge ids on the tree path to → source (leaf-to-root order,
  /// no allocation).  No-op when `to` is unreached or the source itself.
  template <typename Fn>
  void for_each_path_edge(std::size_t source_index, NodeId to, const Fn& fn) const {
    const std::size_t base = source_index * stride;
    NodeId cur = to;
    while (via_node[base + cur] != kNoNode) {
      fn(via_edge[base + cur]);
      cur = via_node[base + cur];
    }
  }
};

/// Per-query perturbations.  All pointers are borrowed for the duration of
/// the call and may be null.
struct Query {
  /// Excluded edge ids, sorted ascending (base edges only).
  const std::vector<EdgeId>* masked = nullptr;
  /// Extra edges; overlay edge i gets id num_edges() + i.
  const std::vector<EdgeSpec>* overlay = nullptr;
  /// Replaces the base weight of every base edge; return +inf to forbid.
  /// Overlay edges keep their own weight.
  const std::function<double(EdgeId)>* weight_override = nullptr;
};

class PathEngine {
 public:
  /// Reusable Dijkstra scratch: distance/parent/heap arrays with a
  /// generation stamp per node, so reset between queries is O(1).  One
  /// Workspace per thread; the engine never writes through `this`.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class PathEngine;
    void prepare(std::size_t num_nodes, std::size_t num_edges);

    std::vector<double> dist_;
    std::vector<EdgeId> via_edge_;
    std::vector<NodeId> via_node_;
    std::vector<std::uint64_t> node_gen_;   // per node: last query that touched it
    std::vector<std::uint32_t> heap_pos_;   // valid only when node_gen_ is current
    std::vector<NodeId> heap_;              // indexed binary min-heap of node ids
    std::vector<std::uint64_t> mask_gen_;   // per base edge: last query that masked it
    std::uint64_t generation_ = 0;
  };

  /// Compile the CSR adjacency.  Edge ids are indices into `edges`.
  /// `epoch` identifies this build of the graph for memoization keys; a
  /// rebuilt graph must carry a different epoch.
  PathEngine(NodeId num_nodes, std::vector<EdgeSpec> edges, std::uint64_t epoch = 0);

  std::uint64_t epoch() const noexcept { return epoch_; }
  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  const EdgeSpec& edge(EdgeId id) const;

  /// Dijkstra from `from` to `to` under `query`, using caller-owned
  /// scratch (the zero-allocation hot path; reuse `ws` across queries).
  Path shortest_path(NodeId from, NodeId to, const Query& query, Workspace& ws) const;

  /// Fully reusable variant: the result lands in `out`, whose vectors are
  /// cleared and refilled in place.  With a warmed `ws` and an `out` that
  /// has served a query before, this performs zero heap allocations — the
  /// serve fast-path primitive (see ZeroAllocGuard in util/alloc.hpp).
  void shortest_path(NodeId from, NodeId to, const Query& query, Workspace& ws,
                     Path& out) const;

  /// Convenience overload borrowing a Workspace from the engine's
  /// internal pool — thread-safe, allocation-free after warm-up.
  Path shortest_path(NodeId from, NodeId to, const Query& query = {}) const;

  /// Single-source distances to every node (+inf when unreachable).
  std::vector<double> distances_from(NodeId from, const Query& query = {}) const;
  std::vector<double> distances_from(NodeId from, const Query& query, Workspace& ws) const;

  /// Fill out[0 .. num_nodes()) with distances from `from` — the
  /// allocation-free row primitive distance_rows() is built on (one
  /// generation-stamped scratch pass, no output vector per source).
  void distances_into(NodeId from, const Query& query, Workspace& ws, double* out) const;

  /// Fill one forest row (distance + incoming edge + predecessor per
  /// node) from `from` — the row primitive route_forest() is built on.
  /// All three output spans cover [0 .. num_nodes()).
  void forest_into(NodeId from, const Query& query, Workspace& ws, double* dist,
                   EdgeId* via_edge, NodeId* via_node) const;

  /// Batched many-to-many sweep: one full Dijkstra per source, written
  /// into a flat row-major matrix.  When `executor` is non-null the
  /// sources fan out over its chunked parallel region with one leased
  /// Workspace per chunk; each row is a pure function of (graph, query,
  /// source), so the matrix is bit-identical for any thread count.  This
  /// is the all-pairs primitive: n sources cost n Dijkstras instead of
  /// the n(n-1)/2 point-to-point queries a per-pair sweep pays.
  DistanceMatrix distance_rows(const std::vector<NodeId>& sources, const Query& query = {},
                               sim::Executor* executor = nullptr) const;

  /// Batched shortest-path forests: one full Dijkstra per source with the
  /// parent arrays kept, so callers that need the *paths* of a fan-out
  /// (load accumulation, used-edge sets, reroute suggestions) pay one row
  /// per source instead of one point-to-point query per pair.  Same
  /// executor fan-out and determinism contract as distance_rows.
  RouteForest route_forest(const std::vector<NodeId>& sources, const Query& query = {},
                           sim::Executor* executor = nullptr) const;

  /// Lease a Workspace from the engine's internal capped pool — what the
  /// convenience overloads use.  Allocation-free once the pool has warmed
  /// to the steady-state concurrency level; releases beyond the cap free
  /// their workspace instead of growing the pool forever.
  util::LeasePool<Workspace>::Lease lease_workspace() const { return pool_.acquire(); }

  /// Size every scratch array in `ws` (including the heap) to this
  /// graph's node/edge counts, so the *first* query on it is already
  /// allocation-free.  Without this, the first query on a fresh Workspace
  /// sizes the arrays itself (the documented warm-up allocation).
  void warm_workspace(Workspace& ws) const;

  /// Pool observability for the capped-growth regression tests.
  std::size_t workspace_pool_idle() const { return pool_.idle(); }
  std::size_t workspace_pool_cap() const noexcept { return pool_.cap(); }
  std::size_t workspaces_created() const noexcept { return pool_.created(); }
  std::size_t workspaces_dropped() const noexcept { return pool_.dropped(); }

 private:
  void run_dijkstra(NodeId from, NodeId to, const Query& query, Workspace& ws) const;
  Path reconstruct(NodeId from, NodeId to, const Workspace& ws) const;
  void reconstruct_into(NodeId from, NodeId to, const Workspace& ws, Path& out) const;

  std::size_t num_nodes_ = 0;
  std::vector<EdgeSpec> edges_;
  // CSR: incidences of node u live at [offsets_[u], offsets_[u+1]).
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> targets_;
  std::vector<EdgeId> edge_ids_;
  std::uint64_t epoch_ = 0;

  mutable util::LeasePool<Workspace> pool_;
};

}  // namespace intertubes::route
