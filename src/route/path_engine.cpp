#include "route/path_engine.hpp"

#include <algorithm>

#include "sim/executor.hpp"
#include "util/check.hpp"

namespace intertubes::route {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kSettled = 0xffffffffu;  // heap_pos_ sentinel
}  // namespace

void PathEngine::Workspace::prepare(std::size_t num_nodes, std::size_t num_edges) {
  if (dist_.size() < num_nodes) {
    dist_.resize(num_nodes, kInf);
    via_edge_.resize(num_nodes, kNoEdge);
    via_node_.resize(num_nodes, kNoNode);
    node_gen_.resize(num_nodes, 0);
    heap_pos_.resize(num_nodes, 0);
  }
  if (mask_gen_.size() < num_edges) mask_gen_.resize(num_edges, 0);
  heap_.clear();
  ++generation_;
}

PathEngine::PathEngine(NodeId num_nodes, std::vector<EdgeSpec> edges, std::uint64_t epoch)
    : num_nodes_(num_nodes), edges_(std::move(edges)), epoch_(epoch) {
  for (const EdgeSpec& e : edges_) {
    IT_CHECK(e.a < num_nodes_ && e.b < num_nodes_);
  }
  // Counting sort of the 2|E| incidences into CSR rows.
  offsets_.assign(num_nodes_ + 1, 0);
  for (const EdgeSpec& e : edges_) {
    ++offsets_[e.a + 1];
    ++offsets_[e.b + 1];
  }
  for (std::size_t u = 0; u < num_nodes_; ++u) offsets_[u + 1] += offsets_[u];
  targets_.resize(2 * edges_.size());
  edge_ids_.resize(2 * edges_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const EdgeSpec& e = edges_[id];
    targets_[cursor[e.a]] = e.b;
    edge_ids_[cursor[e.a]++] = id;
    targets_[cursor[e.b]] = e.a;
    edge_ids_[cursor[e.b]++] = id;
  }
}

const EdgeSpec& PathEngine::edge(EdgeId id) const {
  IT_CHECK(id < edges_.size());
  return edges_[id];
}

namespace {

/// Indexed binary min-heap over node ids; order = (dist, node id), so
/// equal-distance pops are deterministic.
struct Heap {
  std::vector<NodeId>& items;
  const std::vector<double>& dist;
  std::vector<std::uint32_t>& pos;

  bool less(NodeId x, NodeId y) const {
    if (dist[x] != dist[y]) return dist[x] < dist[y];
    return x < y;
  }
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(items[i], items[parent])) break;
      std::swap(items[i], items[parent]);
      pos[items[i]] = static_cast<std::uint32_t>(i);
      pos[items[parent]] = static_cast<std::uint32_t>(parent);
      i = parent;
    }
  }
  void sift_down(std::size_t i) {
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < items.size() && less(items[l], items[best])) best = l;
      if (r < items.size() && less(items[r], items[best])) best = r;
      if (best == i) break;
      std::swap(items[i], items[best]);
      pos[items[i]] = static_cast<std::uint32_t>(i);
      pos[items[best]] = static_cast<std::uint32_t>(best);
      i = best;
    }
  }
  void push(NodeId n) {
    items.push_back(n);
    pos[n] = static_cast<std::uint32_t>(items.size() - 1);
    sift_up(items.size() - 1);
  }
  NodeId pop_min() {
    const NodeId top = items.front();
    pos[top] = kSettled;
    items.front() = items.back();
    items.pop_back();
    if (!items.empty()) {
      pos[items.front()] = 0;
      sift_down(0);
    }
    return top;
  }
};

}  // namespace

void PathEngine::run_dijkstra(NodeId from, NodeId to, const Query& query, Workspace& ws) const {
  IT_CHECK(from < num_nodes_ && (to < num_nodes_ || to == kNoNode));
  ws.prepare(num_nodes_, edges_.size());
  const std::uint64_t gen = ws.generation_;
  if (query.masked != nullptr) {
    for (EdgeId id : *query.masked) {
      if (id < edges_.size()) ws.mask_gen_[id] = gen;
    }
  }
  const std::vector<EdgeSpec>* overlay = query.overlay;
  const auto* override_fn = query.weight_override;

  Heap heap{ws.heap_, ws.dist_, ws.heap_pos_};
  ws.node_gen_[from] = gen;
  ws.dist_[from] = 0.0;
  ws.via_edge_[from] = kNoEdge;
  ws.via_node_[from] = kNoNode;
  heap.push(from);

  const auto relax = [&](NodeId u, NodeId v, EdgeId eid, double w) {
    if (!(w < kInf)) return;
    const double nd = ws.dist_[u] + w;
    if (ws.node_gen_[v] != gen) {
      ws.node_gen_[v] = gen;
      ws.dist_[v] = nd;
      ws.via_edge_[v] = eid;
      ws.via_node_[v] = u;
      heap.push(v);
      return;
    }
    if (ws.heap_pos_[v] == kSettled) return;
    if (nd < ws.dist_[v]) {
      ws.dist_[v] = nd;
      ws.via_edge_[v] = eid;
      ws.via_node_[v] = u;
      heap.sift_up(ws.heap_pos_[v]);
    } else if (nd == ws.dist_[v] && eid < ws.via_edge_[v]) {
      // Equal cost: the lowest edge id wins (the determinism contract).
      ws.via_edge_[v] = eid;
      ws.via_node_[v] = u;
    }
  };

  while (!ws.heap_.empty()) {
    const NodeId u = heap.pop_min();
    if (u == to) break;
    const std::uint32_t begin = offsets_[u];
    const std::uint32_t end = offsets_[u + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      const EdgeId eid = edge_ids_[i];
      if (ws.mask_gen_[eid] == gen) continue;
      const double w = override_fn != nullptr ? (*override_fn)(eid) : edges_[eid].weight;
      relax(u, targets_[i], eid, w);
    }
    if (overlay != nullptr) {
      for (std::size_t i = 0; i < overlay->size(); ++i) {
        const EdgeSpec& e = (*overlay)[i];
        const EdgeId eid = static_cast<EdgeId>(edges_.size() + i);
        if (e.a == u) {
          relax(u, e.b, eid, e.weight);
        } else if (e.b == u) {
          relax(u, e.a, eid, e.weight);
        }
      }
    }
  }
}

void PathEngine::reconstruct_into(NodeId from, NodeId to, const Workspace& ws,
                                  Path& out) const {
  out.edges.clear();
  out.nodes.clear();
  out.cost = kInf;
  out.reachable = false;
  if (ws.node_gen_[to] != ws.generation_) return;  // never reached
  out.reachable = true;
  out.cost = ws.dist_[to];
  NodeId cur = to;
  out.nodes.push_back(cur);
  while (cur != from) {
    out.edges.push_back(ws.via_edge_[cur]);
    cur = ws.via_node_[cur];
    out.nodes.push_back(cur);
  }
  std::reverse(out.edges.begin(), out.edges.end());
  std::reverse(out.nodes.begin(), out.nodes.end());
}

Path PathEngine::reconstruct(NodeId from, NodeId to, const Workspace& ws) const {
  Path path;
  reconstruct_into(from, to, ws, path);
  return path;
}

Path PathEngine::shortest_path(NodeId from, NodeId to, const Query& query, Workspace& ws) const {
  IT_CHECK(to < num_nodes_);
  run_dijkstra(from, to, query, ws);
  return reconstruct(from, to, ws);
}

void PathEngine::shortest_path(NodeId from, NodeId to, const Query& query, Workspace& ws,
                               Path& out) const {
  IT_CHECK(to < num_nodes_);
  run_dijkstra(from, to, query, ws);
  reconstruct_into(from, to, ws, out);
}

void PathEngine::warm_workspace(Workspace& ws) const {
  ws.prepare(num_nodes_, edges_.size());
  // prepare() sizes every generation-stamped array; the heap is the one
  // buffer that otherwise grows lazily as Dijkstra pushes nodes.
  ws.heap_.reserve(num_nodes_);
}

std::vector<double> PathEngine::distances_from(NodeId from, const Query& query,
                                               Workspace& ws) const {
  std::vector<double> out(num_nodes_);
  distances_into(from, query, ws, out.data());
  return out;
}

void PathEngine::distances_into(NodeId from, const Query& query, Workspace& ws,
                                double* out) const {
  run_dijkstra(from, kNoNode, query, ws);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    out[n] = ws.node_gen_[n] == ws.generation_ ? ws.dist_[n] : kInf;
  }
}

void PathEngine::forest_into(NodeId from, const Query& query, Workspace& ws, double* dist,
                             EdgeId* via_edge, NodeId* via_node) const {
  run_dijkstra(from, kNoNode, query, ws);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (ws.node_gen_[n] == ws.generation_) {
      dist[n] = ws.dist_[n];
      via_edge[n] = ws.via_edge_[n];
      via_node[n] = ws.via_node_[n];
    } else {
      dist[n] = kInf;
      via_edge[n] = kNoEdge;
      via_node[n] = kNoNode;
    }
  }
}

Path RouteForest::path_to(std::size_t source_index, NodeId to) const {
  // Mirrors PathEngine::reconstruct: an unreached target yields the
  // default (unreachable) Path; from == to yields the trivial one.
  Path path;
  if (!reachable(source_index, to)) return path;
  const std::size_t base = source_index * stride;
  path.reachable = true;
  path.cost = dist[base + to];
  NodeId cur = to;
  path.nodes.push_back(cur);
  while (via_node[base + cur] != kNoNode) {
    path.edges.push_back(via_edge[base + cur]);
    cur = via_node[base + cur];
    path.nodes.push_back(cur);
  }
  std::reverse(path.edges.begin(), path.edges.end());
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

Path PathEngine::shortest_path(NodeId from, NodeId to, const Query& query) const {
  const auto lease = pool_.acquire();
  return shortest_path(from, to, query, *lease);
}

std::vector<double> PathEngine::distances_from(NodeId from, const Query& query) const {
  const auto lease = pool_.acquire();
  return distances_from(from, query, *lease);
}

DistanceMatrix PathEngine::distance_rows(const std::vector<NodeId>& sources, const Query& query,
                                         sim::Executor* executor) const {
  for (NodeId s : sources) IT_CHECK(s < num_nodes_);
  DistanceMatrix matrix;
  matrix.num_sources = sources.size();
  matrix.stride = num_nodes_;
  matrix.cells.resize(sources.size() * num_nodes_);
  // One Workspace lease per chunk: the pool warms to the number of chunks
  // in flight (= thread count, capped) and every later sweep is
  // allocation-free.
  const auto fill = [&](std::size_t begin, std::size_t end) {
    const auto lease = pool_.acquire();
    for (std::size_t i = begin; i < end; ++i) {
      distances_into(sources[i], query, *lease, matrix.cells.data() + i * num_nodes_);
    }
  };
  if (executor == nullptr || sources.size() < 2) {
    fill(0, sources.size());
  } else {
    executor->for_each_chunk(0, sources.size(), /*chunk=*/0, fill);
  }
  return matrix;
}

RouteForest PathEngine::route_forest(const std::vector<NodeId>& sources, const Query& query,
                                     sim::Executor* executor) const {
  for (NodeId s : sources) IT_CHECK(s < num_nodes_);
  RouteForest forest;
  forest.sources = sources;
  forest.stride = num_nodes_;
  forest.dist.resize(sources.size() * num_nodes_);
  forest.via_edge.resize(sources.size() * num_nodes_);
  forest.via_node.resize(sources.size() * num_nodes_);
  const auto fill = [&](std::size_t begin, std::size_t end) {
    const auto lease = pool_.acquire();
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t base = i * num_nodes_;
      forest_into(sources[i], query, *lease, forest.dist.data() + base,
                  forest.via_edge.data() + base, forest.via_node.data() + base);
    }
  };
  if (executor == nullptr || sources.size() < 2) {
    fill(0, sources.size());
  } else {
    executor->for_each_chunk(0, sources.size(), /*chunk=*/0, fill);
  }
  return forest;
}

}  // namespace intertubes::route
