// Synthetic transportation networks over the city database.
//
// The paper's National Atlas roadway/railway layers are not available
// offline, so we synthesize networks with the same roles: a dense
// interstate-style roadway graph, a sparser railway graph biased toward
// trunk corridors, and a small set of pipeline corridors (the
// "other rights-of-way" of §3).  Topology is a Gabriel graph over city
// locations — the classic proximity graph that reproduces the look of
// national highway systems — pruned/augmented per mode; edge geometry is a
// curved polyline (roads and rails do not follow great circles exactly).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "geo/polyline.hpp"
#include "transport/cities.hpp"
#include "util/rng.hpp"

namespace intertubes::transport {

enum class TransportMode : std::uint8_t { Road, Rail, Pipeline, Submarine };

std::string_view mode_name(TransportMode m) noexcept;

using EdgeId = std::uint32_t;

struct TransportEdge {
  EdgeId id = 0;
  CityId a = kNoCity;
  CityId b = kNoCity;
  TransportMode mode = TransportMode::Road;
  geo::Polyline path;       ///< Curved geometry from city a to city b.
  double length_km = 0.0;   ///< path.length_km(), cached.
};

/// One mode's network: edges over the shared city set.
class TransportNetwork {
 public:
  TransportNetwork(TransportMode mode, std::vector<TransportEdge> edges, std::size_t num_cities);

  TransportMode mode() const noexcept { return mode_; }
  const std::vector<TransportEdge>& edges() const noexcept { return edges_; }
  std::size_t num_cities() const noexcept { return num_cities_; }

  /// Edge ids incident to city `c`.
  const std::vector<EdgeId>& edges_at(CityId c) const;

  /// True if an edge joins a and b (either direction).
  bool connects(CityId a, CityId b) const;

  double total_length_km() const noexcept { return total_length_km_; }

 private:
  TransportMode mode_;
  std::vector<TransportEdge> edges_;
  std::size_t num_cities_;
  std::vector<std::vector<EdgeId>> adjacency_;
  double total_length_km_ = 0.0;
};

/// Generation parameters; defaults give road/rail/pipeline networks with
/// realistic relative density (road ≈ 1.5× rail edge count; pipelines
/// sparse and corridor-like).
struct NetworkGenParams {
  std::uint64_t seed = 0x1257;
  /// Extra nearest-neighbour edges added per city on top of the Gabriel
  /// graph (roads only; makes the road net denser than rail).
  std::size_t road_extra_neighbors = 2;
  /// Fraction of Gabriel edges kept for rail (biased to high-population
  /// endpoints — trunk lines survive, spurs are dropped).
  double rail_keep_fraction = 0.62;
  /// Fraction kept for pipelines (lowest density).
  double pipeline_keep_fraction = 0.18;
  /// Peak perpendicular deviation of edge geometry as a fraction of edge
  /// length, per mode.  Roads wiggle less than rails in this model simply
  /// to make the two buffers distinguishable.
  double road_curvature = 0.095;
  double rail_curvature = 0.15;
  double pipeline_curvature = 0.12;
  /// Submarine cables run close to great circles; the small residual
  /// curvature models seabed routing around bathymetry.
  double submarine_curvature = 0.05;
  /// Number of interior vertices per 100 km of edge length.
  double vertices_per_100km = 4.0;
};

/// Gabriel graph over the city set: edge (a,b) iff no third city lies in
/// the disc with diameter ab.  Returned as (a, b) id pairs with a < b.
std::vector<std::pair<CityId, CityId>> gabriel_graph(const CityDatabase& cities);

/// Generate a curved polyline between two cities.  Deterministic in
/// (seed, a, b, mode): the same corridor always gets the same geometry,
/// which is what makes conduit identity well-defined across the library.
geo::Polyline curved_path(const CityDatabase& cities, CityId a, CityId b, TransportMode mode,
                          const NetworkGenParams& params);

/// Generate one network of the given mode.
TransportNetwork generate_network(const CityDatabase& cities, TransportMode mode,
                                  const NetworkGenParams& params);

/// Generate the full road + rail + pipeline bundle with one call.
struct TransportBundle {
  TransportNetwork road;
  TransportNetwork rail;
  TransportNetwork pipeline;
};

TransportBundle generate_bundle(const CityDatabase& cities, const NetworkGenParams& params);

}  // namespace intertubes::transport
