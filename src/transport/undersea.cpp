#include "transport/undersea.hpp"

#include <cmath>

#include "util/check.hpp"

namespace intertubes::transport {

namespace {

/// An offshore arc: interpolate the great circle between landings and push
/// every interior vertex seaward (perpendicular offset toward the given
/// bearing side).
geo::Polyline offshore_arc(const geo::GeoPoint& a, const geo::GeoPoint& b, double offshore_km) {
  const int interior = 6;
  std::vector<geo::GeoPoint> pts;
  pts.push_back(a);
  for (int i = 1; i <= interior; ++i) {
    const double t = static_cast<double>(i) / (interior + 1);
    const geo::GeoPoint on_gc = geo::interpolate(a, b, t);
    const double bearing = geo::initial_bearing_deg(on_gc, b);
    // Bulge is largest mid-route.
    const double bulge = offshore_km * std::sin(geo::kPi * t);
    pts.push_back(geo::destination(on_gc, bearing + 90.0, bulge));
  }
  pts.push_back(b);
  return geo::Polyline(std::move(pts));
}

}  // namespace

std::vector<UnderseaCable> default_us_festoons(const CityDatabase& cities) {
  struct Spec {
    const char* name;
    const char* from;
    const char* to;
    double offshore_km;  ///< positive bulges right of the travel direction
  };
  // Offshore sides: Pacific runs north→south with the sea to the right
  // (+90°); Atlantic runs north→south with the sea to the left, so the
  // offset is negative; the Gulf runs east→west with the sea to the left.
  static constexpr Spec kSpecs[] = {
      {"Pacific Festoon North", "Seattle, WA", "San Francisco, CA", 120.0},
      {"Pacific Festoon Central", "San Francisco, CA", "Los Angeles, CA", 90.0},
      {"Pacific Festoon South", "Los Angeles, CA", "San Diego, CA", 60.0},
      {"Atlantic Festoon North", "Boston, MA", "New York, NY", -80.0},
      {"Atlantic Festoon Mid", "New York, NY", "Norfolk, VA", -110.0},
      {"Atlantic Festoon South", "Norfolk, VA", "Charleston, SC", -120.0},
      {"Atlantic Festoon Florida", "Charleston, SC", "Miami, FL", -130.0},
      {"Gulf Festoon East", "Miami, FL", "New Orleans, LA", -160.0},
      {"Gulf Festoon West", "New Orleans, LA", "Houston, TX", -120.0},
  };

  std::vector<UnderseaCable> cables;
  for (const auto& spec : kSpecs) {
    const auto a = cities.find(spec.from);
    const auto b = cities.find(spec.to);
    IT_CHECK_MSG(a.has_value() && b.has_value(), "festoon landing city missing");
    UnderseaCable cable;
    cable.name = spec.name;
    cable.landing_a = *a;
    cable.landing_b = *b;
    cable.route = offshore_arc(cities.city(*a).location, cities.city(*b).location,
                               spec.offshore_km);
    cable.length_km = cable.route.length_km();
    cables.push_back(std::move(cable));
  }
  return cables;
}

}  // namespace intertubes::transport
