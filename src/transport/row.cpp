#include "transport/row.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace intertubes::transport {

RightOfWayRegistry::RightOfWayRegistry(const TransportBundle& bundle) {
  num_cities_ = bundle.road.num_cities();
  IT_CHECK(bundle.rail.num_cities() == num_cities_);
  IT_CHECK(bundle.pipeline.num_cities() == num_cities_);
  adjacency_.resize(num_cities_);
  add_network(bundle.road);
  add_network(bundle.rail);
  add_network(bundle.pipeline);
}

void RightOfWayRegistry::add_network(const TransportNetwork& net) {
  for (const auto& e : net.edges()) {
    Corridor c;
    c.id = static_cast<CorridorId>(corridors_.size());
    c.a = e.a;
    c.b = e.b;
    c.mode = e.mode;
    c.path = e.path;
    c.length_km = e.length_km;
    adjacency_[c.a].push_back(c.id);
    adjacency_[c.b].push_back(c.id);
    corridors_.push_back(std::move(c));
  }
}

const Corridor& RightOfWayRegistry::corridor(CorridorId id) const {
  IT_CHECK(id < corridors_.size());
  return corridors_[id];
}

const std::vector<CorridorId>& RightOfWayRegistry::corridors_at(CityId c) const {
  IT_CHECK(c < adjacency_.size());
  return adjacency_[c];
}

std::optional<CorridorId> RightOfWayRegistry::direct(CityId a, CityId b,
                                                     std::optional<TransportMode> mode) const {
  IT_CHECK(a < num_cities_ && b < num_cities_);
  std::optional<CorridorId> best;
  for (CorridorId cid : adjacency_[a]) {
    const auto& c = corridors_[cid];
    const bool joins = (c.a == a && c.b == b) || (c.a == b && c.b == a);
    if (!joins) continue;
    if (mode && c.mode != *mode) continue;
    if (!best || c.length_km < corridors_[*best].length_km) best = cid;
  }
  return best;
}

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  CityId city;
  bool operator>(const QueueEntry& o) const noexcept { return dist > o.dist; }
};
}  // namespace

RowPath RightOfWayRegistry::shortest_path(CityId from, CityId to, const WeightFn& weight) const {
  IT_CHECK(from < num_cities_ && to < num_cities_);
  std::vector<double> dist(num_cities_, kInf);
  std::vector<CorridorId> via(num_cities_, kNoCorridor);
  std::vector<CityId> prev(num_cities_, kNoCity);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (CorridorId cid : adjacency_[u]) {
      const auto& c = corridors_[cid];
      const CityId v = (c.a == u) ? c.b : c.a;
      const double w = weight ? weight(c) : c.length_km;
      if (!(w < kInf)) continue;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        via[v] = cid;
        prev[v] = u;
        queue.push({nd, v});
      }
    }
  }

  RowPath path;
  if (!(dist[to] < kInf)) return path;
  // Walk back from `to`.
  std::vector<CorridorId> rev_corridors;
  std::vector<CityId> rev_cities;
  CityId cur = to;
  rev_cities.push_back(cur);
  while (cur != from) {
    rev_corridors.push_back(via[cur]);
    cur = prev[cur];
    rev_cities.push_back(cur);
  }
  path.corridors.assign(rev_corridors.rbegin(), rev_corridors.rend());
  path.cities.assign(rev_cities.rbegin(), rev_cities.rend());
  for (CorridorId cid : path.corridors) path.length_km += corridors_[cid].length_km;
  return path;
}

std::vector<double> RightOfWayRegistry::distances_from(CityId from, const WeightFn& weight) const {
  IT_CHECK(from < num_cities_);
  std::vector<double> dist(num_cities_, kInf);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (CorridorId cid : adjacency_[u]) {
      const auto& c = corridors_[cid];
      const CityId v = (c.a == u) ? c.b : c.a;
      const double w = weight ? weight(c) : c.length_km;
      if (!(w < kInf)) continue;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        queue.push({nd, v});
      }
    }
  }
  return dist;
}

geo::Polyline RightOfWayRegistry::path_geometry(const RowPath& path) const {
  IT_CHECK(!path.empty());
  IT_CHECK(path.cities.size() == path.corridors.size() + 1);
  std::vector<geo::GeoPoint> pts;
  for (std::size_t i = 0; i < path.corridors.size(); ++i) {
    const auto& c = corridors_[path.corridors[i]];
    // Orient the corridor geometry to run from path.cities[i] to [i+1].
    const bool forward = (c.a == path.cities[i]);
    const auto& src = c.path.points();
    if (forward) {
      for (std::size_t k = (i == 0 ? 0 : 1); k < src.size(); ++k) pts.push_back(src[k]);
    } else {
      for (std::size_t k = (i == 0 ? src.size() : src.size() - 1); k-- > 0;)
        pts.push_back(src[k]);
    }
  }
  return geo::Polyline(std::move(pts));
}

}  // namespace intertubes::transport
