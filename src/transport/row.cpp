#include "transport/row.hpp"

#include <functional>

#include "util/check.hpp"

namespace intertubes::transport {

RightOfWayRegistry::RightOfWayRegistry(const TransportBundle& bundle,
                                       const TransportNetwork* submarine) {
  num_cities_ = bundle.road.num_cities();
  IT_CHECK(bundle.rail.num_cities() == num_cities_);
  IT_CHECK(bundle.pipeline.num_cities() == num_cities_);
  adjacency_.resize(num_cities_);
  add_network(bundle.road);
  add_network(bundle.rail);
  add_network(bundle.pipeline);
  if (submarine) {
    IT_CHECK(submarine->num_cities() == num_cities_);
    add_network(*submarine);
  }
  // Compile the corridor graph once; corridors are fixed from here on.
  std::vector<route::EdgeSpec> edges;
  edges.reserve(corridors_.size());
  for (const auto& c : corridors_) {
    edges.push_back({c.a, c.b, c.length_km});
  }
  engine_ = std::make_unique<route::PathEngine>(static_cast<route::NodeId>(num_cities_),
                                                std::move(edges));
}

void RightOfWayRegistry::add_network(const TransportNetwork& net) {
  for (const auto& e : net.edges()) {
    Corridor c;
    c.id = static_cast<CorridorId>(corridors_.size());
    c.a = e.a;
    c.b = e.b;
    c.mode = e.mode;
    c.path = e.path;
    c.length_km = e.length_km;
    adjacency_[c.a].push_back(c.id);
    adjacency_[c.b].push_back(c.id);
    corridors_.push_back(std::move(c));
  }
}

const Corridor& RightOfWayRegistry::corridor(CorridorId id) const {
  IT_CHECK(id < corridors_.size());
  return corridors_[id];
}

const std::vector<CorridorId>& RightOfWayRegistry::corridors_at(CityId c) const {
  IT_CHECK(c < adjacency_.size());
  return adjacency_[c];
}

std::optional<CorridorId> RightOfWayRegistry::direct(CityId a, CityId b,
                                                     std::optional<TransportMode> mode) const {
  IT_CHECK(a < num_cities_ && b < num_cities_);
  std::optional<CorridorId> best;
  for (CorridorId cid : adjacency_[a]) {
    const auto& c = corridors_[cid];
    const bool joins = (c.a == a && c.b == b) || (c.a == b && c.b == a);
    if (!joins) continue;
    if (mode && c.mode != *mode) continue;
    if (!best || c.length_km < corridors_[*best].length_km) best = cid;
  }
  return best;
}

RowPath RightOfWayRegistry::to_row_path(const route::Path& path) const {
  RowPath row_path;
  if (!path.reachable) return row_path;
  row_path.corridors.assign(path.edges.begin(), path.edges.end());
  row_path.cities.assign(path.nodes.begin(), path.nodes.end());
  // Length is always physical trench length, even under a custom weight.
  for (CorridorId cid : row_path.corridors) row_path.length_km += corridors_[cid].length_km;
  return row_path;
}

RowPath RightOfWayRegistry::shortest_path(CityId from, CityId to, const WeightFn& weight) const {
  IT_CHECK(from < num_cities_ && to < num_cities_);
  if (!weight) return to_row_path(engine_->shortest_path(from, to));
  const std::function<double(route::EdgeId)> override_fn = [this, &weight](route::EdgeId eid) {
    return weight(corridors_[eid]);
  };
  route::Query query;
  query.weight_override = &override_fn;
  return to_row_path(engine_->shortest_path(from, to, query));
}

std::vector<double> RightOfWayRegistry::distances_from(CityId from, const WeightFn& weight) const {
  IT_CHECK(from < num_cities_);
  if (!weight) return engine_->distances_from(from);
  const std::function<double(route::EdgeId)> override_fn = [this, &weight](route::EdgeId eid) {
    return weight(corridors_[eid]);
  };
  route::Query query;
  query.weight_override = &override_fn;
  return engine_->distances_from(from, query);
}

geo::Polyline RightOfWayRegistry::path_geometry(const RowPath& path) const {
  IT_CHECK(!path.empty());
  IT_CHECK(path.cities.size() == path.corridors.size() + 1);
  std::vector<geo::GeoPoint> pts;
  for (std::size_t i = 0; i < path.corridors.size(); ++i) {
    const auto& c = corridors_[path.corridors[i]];
    // Orient the corridor geometry to run from path.cities[i] to [i+1].
    const bool forward = (c.a == path.cities[i]);
    const auto& src = c.path.points();
    if (forward) {
      for (std::size_t k = (i == 0 ? 0 : 1); k < src.size(); ++k) pts.push_back(src[k]);
    } else {
      for (std::size_t k = (i == 0 ? src.size() : src.size() - 1); k-- > 0;)
        pts.push_back(src[k]);
    }
  }
  return geo::Polyline(std::move(pts));
}

}  // namespace intertubes::transport
