#include "transport/network.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <unordered_set>

#include "util/check.hpp"

namespace intertubes::transport {

std::string_view mode_name(TransportMode m) noexcept {
  switch (m) {
    case TransportMode::Road: return "road";
    case TransportMode::Rail: return "rail";
    case TransportMode::Pipeline: return "pipeline";
    case TransportMode::Submarine: return "submarine";
  }
  return "?";
}

TransportNetwork::TransportNetwork(TransportMode mode, std::vector<TransportEdge> edges,
                                   std::size_t num_cities)
    : mode_(mode), edges_(std::move(edges)), num_cities_(num_cities) {
  adjacency_.resize(num_cities_);
  for (auto& e : edges_) {
    IT_CHECK(e.a < num_cities_ && e.b < num_cities_ && e.a != e.b);
    adjacency_[e.a].push_back(e.id);
    adjacency_[e.b].push_back(e.id);
    total_length_km_ += e.length_km;
  }
}

const std::vector<EdgeId>& TransportNetwork::edges_at(CityId c) const {
  IT_CHECK(c < adjacency_.size());
  return adjacency_[c];
}

bool TransportNetwork::connects(CityId a, CityId b) const {
  if (a >= adjacency_.size()) return false;
  for (EdgeId eid : adjacency_[a]) {
    const auto& e = edges_[eid];
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return true;
  }
  return false;
}

namespace {

// Spatial accelerator for the Gabriel construction: a uniform lat/lon grid
// answering "does any city lie strictly inside this disc?".  Purely a
// pruning structure — every candidate is re-checked with the exact
// distance_km predicate the naive O(N^3) scan used, so the resulting edge
// set is bit-identical to it.
class GabrielGrid {
 public:
  explicit GabrielGrid(const CityDatabase& cities) : cities_(cities) {
    const auto n = static_cast<CityId>(cities.size());
    for (CityId i = 0; i < n; ++i) {
      const auto& p = cities.city(i).location;
      min_lat_ = std::min(min_lat_, p.lat_deg);
      max_lat_ = std::max(max_lat_, p.lat_deg);
      min_lon_ = std::min(min_lon_, p.lon_deg);
      max_lon_ = std::max(max_lon_, p.lon_deg);
    }
    const double span_lat = std::max(1e-3, max_lat_ - min_lat_);
    const double span_lon = std::max(1e-3, max_lon_ - min_lon_);
    // ~2 cities per cell keeps probe scans short without bloating the grid.
    cell_deg_ =
        std::max(0.05, std::sqrt(span_lat * span_lon * 2.0 / static_cast<double>(std::max<CityId>(n, 1))));
    rows_ = static_cast<long>(span_lat / cell_deg_) + 1;
    cols_ = static_cast<long>(span_lon / cell_deg_) + 1;
    cells_.resize(static_cast<std::size_t>(rows_ * cols_));
    for (CityId i = 0; i < n; ++i) {
      const auto& p = cities.city(i).location;
      cells_[static_cast<std::size_t>(row_of(p.lat_deg) * cols_ + col_of(p.lon_deg))].push_back(i);
    }
  }

  /// True iff some city other than a/b satisfies
  /// distance_km(center, c) < radius - 1e-9 — the exact naive predicate.
  bool any_strictly_inside(const geo::GeoPoint& center, double radius, CityId a, CityId b) const {
    // Conservative search box.  On the sphere, d >= R|dlat| bounds the
    // latitude band; for longitude, haversine gives
    //   sin(d/2R) >= cos(phi_band) * sin(|dlon|/2)
    // where phi_band bounds |lat| of both endpoints, so any point within
    // `radius` of `center` falls inside the box (wraparound handled below).
    const double km_per_deg = geo::kEarthRadiusKm * geo::kPi / 180.0;
    const double lat_hw = radius / km_per_deg;
    const long r0 = row_of(center.lat_deg - lat_hw);
    const long r1 = row_of(center.lat_deg + lat_hw);

    const double band = std::min(89.9, std::abs(center.lat_deg) + lat_hw);
    const double cos_band = std::cos(band * geo::kPi / 180.0);
    const double half_angle = std::min(geo::kPi / 2.0, radius / (2.0 * geo::kEarthRadiusKm));
    const double s = std::sin(half_angle);
    double lon_hw = 180.0;
    if (cos_band > s) lon_hw = 2.0 * std::asin(s / cos_band) * 180.0 / geo::kPi;

    // Fast path: the center cell and its neighbours catch nearly every
    // blocked pair in a dense map.
    {
      const long cr = row_of(center.lat_deg);
      const long cc = col_of(center.lon_deg);
      for (long r = std::max(cr - 1, 0L); r <= std::min(cr + 1, rows_ - 1); ++r) {
        for (long c = std::max(cc - 1, 0L); c <= std::min(cc + 1, cols_ - 1); ++c) {
          if (scan_cell(r, c, center, radius, a, b)) return true;
        }
      }
    }

    // Up to three column intervals: the raw one plus +-360-degree images
    // (a disc straddling the antimeridian sees cities on the far side).
    std::array<std::pair<long, long>, 3> ranges{};
    std::size_t num_ranges = 0;
    const auto add_range = [&](double lo, double hi) {
      lo = std::max(lo, min_lon_);
      hi = std::min(hi, max_lon_);
      if (lo > hi) return;
      ranges[num_ranges++] = {col_of(lo), col_of(hi)};
    };
    if (lon_hw >= 180.0) {
      add_range(min_lon_, max_lon_);
    } else {
      add_range(center.lon_deg - lon_hw, center.lon_deg + lon_hw);
      add_range(center.lon_deg - 360.0 - lon_hw, center.lon_deg - 360.0 + lon_hw);
      add_range(center.lon_deg + 360.0 - lon_hw, center.lon_deg + 360.0 + lon_hw);
    }

    for (long r = std::max(r0, 0L); r <= std::min(r1, rows_ - 1); ++r) {
      for (std::size_t k = 0; k < num_ranges; ++k) {
        for (long c = ranges[k].first; c <= ranges[k].second; ++c) {
          if (scan_cell(r, c, center, radius, a, b)) return true;
        }
      }
    }
    return false;
  }

 private:
  long row_of(double lat) const {
    return std::clamp(static_cast<long>((lat - min_lat_) / cell_deg_), 0L, rows_ - 1);
  }
  long col_of(double lon) const {
    return std::clamp(static_cast<long>((lon - min_lon_) / cell_deg_), 0L, cols_ - 1);
  }

  bool scan_cell(long r, long c, const geo::GeoPoint& center, double radius, CityId a,
                 CityId b) const {
    for (CityId id : cells_[static_cast<std::size_t>(r * cols_ + c)]) {
      if (id == a || id == b) continue;
      // Strictly inside the diameter disc (small epsilon avoids ties for
      // collinear metro clusters).
      if (geo::distance_km(center, cities_.city(id).location) < radius - 1e-9) return true;
    }
    return false;
  }

  const CityDatabase& cities_;
  double min_lat_ = 90.0, max_lat_ = -90.0, min_lon_ = 180.0, max_lon_ = -180.0;
  double cell_deg_ = 1.0;
  long rows_ = 1, cols_ = 1;
  std::vector<std::vector<CityId>> cells_;
};

}  // namespace

std::vector<std::pair<CityId, CityId>> gabriel_graph(const CityDatabase& cities) {
  const auto n = static_cast<CityId>(cities.size());
  const GabrielGrid grid(cities);
  std::vector<std::pair<CityId, CityId>> edges;
  for (CityId a = 0; a < n; ++a) {
    for (CityId b = a + 1; b < n; ++b) {
      const auto& pa = cities.city(a).location;
      const auto& pb = cities.city(b).location;
      const geo::GeoPoint mid = geo::midpoint(pa, pb);
      const double radius = geo::distance_km(pa, pb) / 2.0;
      if (!grid.any_strictly_inside(mid, radius, a, b)) edges.emplace_back(a, b);
    }
  }
  return edges;
}

geo::Polyline curved_path(const CityDatabase& cities, CityId a, CityId b, TransportMode mode,
                          const NetworkGenParams& params) {
  IT_CHECK(a != b);
  const auto& pa = cities.city(a).location;
  const auto& pb = cities.city(b).location;
  const double straight_km = geo::distance_km(pa, pb);

  double curvature = params.road_curvature;
  if (mode == TransportMode::Rail) curvature = params.rail_curvature;
  if (mode == TransportMode::Pipeline) curvature = params.pipeline_curvature;
  if (mode == TransportMode::Submarine) curvature = params.submarine_curvature;

  // Deterministic per (seed, unordered city pair, mode): geometry is a
  // property of the corridor, not of which endpoint we started from.
  const CityId lo = std::min(a, b);
  const CityId hi = std::max(a, b);
  Rng rng(mix64(params.seed ^ (static_cast<std::uint64_t>(lo) << 40) ^
                (static_cast<std::uint64_t>(hi) << 16) ^ static_cast<std::uint64_t>(mode)));

  auto interior = static_cast<std::size_t>(params.vertices_per_100km * straight_km / 100.0);
  interior = std::clamp<std::size_t>(interior, 1, 24);

  // Smooth lateral bump: amplitude × sin(π t) envelope plus a second
  // harmonic, offsetting each interior vertex perpendicular to the
  // great-circle bearing.
  const double amp1 = rng.uniform(0.3, 1.0) * curvature * straight_km;
  const double amp2 = rng.uniform(-0.4, 0.4) * curvature * straight_km;
  const double side = rng.chance(0.5) ? 1.0 : -1.0;

  std::vector<geo::GeoPoint> pts;
  pts.reserve(interior + 2);
  pts.push_back(pa);
  for (std::size_t i = 1; i <= interior; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(interior + 1);
    const geo::GeoPoint on_gc = geo::interpolate(pa, pb, t);
    const double bearing = geo::initial_bearing_deg(on_gc, pb);
    const double offset =
        side * (amp1 * std::sin(geo::kPi * t) + amp2 * std::sin(2.0 * geo::kPi * t)) +
        rng.normal(0.0, 0.02 * straight_km / static_cast<double>(interior + 1));
    pts.push_back(geo::destination(on_gc, bearing + 90.0, offset));
  }
  pts.push_back(pb);
  return geo::Polyline(std::move(pts));
}

namespace {

std::vector<std::pair<CityId, CityId>> road_edge_set(const CityDatabase& cities,
                                                     const NetworkGenParams& params,
                                                     std::vector<std::pair<CityId, CityId>> edges) {
  // Roads: augment the Gabriel graph with each city's k nearest neighbours
  // that are not already connected (interstates cross Gabriel-blocked
  // regions).
  const auto n = static_cast<CityId>(cities.size());
  const auto pack = [](CityId a, CityId b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };
  std::unordered_set<std::uint64_t> edge_keys;
  edge_keys.reserve(edges.size() * 2);
  for (const auto& [a, b] : edges) edge_keys.insert(pack(a, b));
  auto has_edge = [&edge_keys, &pack](CityId a, CityId b) {
    return edge_keys.contains(pack(a, b));
  };
  for (CityId a = 0; a < n; ++a) {
    std::vector<std::pair<double, CityId>> dists;
    for (CityId b = 0; b < n; ++b) {
      if (b == a) continue;
      dists.emplace_back(geo::distance_km(cities.city(a).location, cities.city(b).location), b);
    }
    std::sort(dists.begin(), dists.end());
    std::size_t added = 0;
    for (const auto& [d, b] : dists) {
      if (added >= params.road_extra_neighbors) break;
      if (!has_edge(a, b)) {
        edges.emplace_back(std::min(a, b), std::max(a, b));
        edge_keys.insert(pack(a, b));
        ++added;
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<std::pair<CityId, CityId>> pruned_edge_set(const CityDatabase& cities,
                                                       double keep_fraction, Rng& rng,
                                                       std::vector<std::pair<CityId, CityId>> gabriel) {
  // Score each edge by endpoint population product (trunk lines between big
  // cities survive) with random jitter; keep the top fraction, then patch
  // connectivity with a spanning pass so no city is isolated.
  struct Scored {
    double score;
    std::pair<CityId, CityId> edge;
  };
  std::vector<Scored> scored;
  scored.reserve(gabriel.size());
  for (const auto& [a, b] : gabriel) {
    const double pop = std::log1p(static_cast<double>(cities.city(a).population)) *
                       std::log1p(static_cast<double>(cities.city(b).population));
    scored.push_back({pop * rng.uniform(0.5, 1.5), {a, b}});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& x, const Scored& y) { return x.score > y.score; });
  const auto keep = static_cast<std::size_t>(keep_fraction * static_cast<double>(scored.size()));
  std::vector<std::pair<CityId, CityId>> edges;
  edges.reserve(keep);
  for (std::size_t i = 0; i < keep && i < scored.size(); ++i) edges.push_back(scored[i].edge);

  // Connectivity patch: union-find over kept edges; reattach isolated
  // components via their best dropped Gabriel edge.
  const auto n = cities.size();
  std::vector<CityId> parent(n);
  for (CityId i = 0; i < n; ++i) parent[i] = i;
  std::function<CityId(CityId)> find = [&](CityId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](CityId x, CityId y) { parent[find(x)] = find(y); };
  for (const auto& [a, b] : edges) unite(a, b);
  for (std::size_t i = keep; i < scored.size(); ++i) {
    const auto [a, b] = scored[i].edge;
    if (find(a) != find(b)) {
      edges.push_back(scored[i].edge);
      unite(a, b);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

TransportNetwork build_network(const CityDatabase& cities, TransportMode mode,
                               std::vector<std::pair<CityId, CityId>> pairs,
                               const NetworkGenParams& params) {
  std::vector<TransportEdge> edges;
  edges.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    TransportEdge e;
    e.id = static_cast<EdgeId>(edges.size());
    e.a = a;
    e.b = b;
    e.mode = mode;
    e.path = curved_path(cities, a, b, mode, params);
    e.length_km = e.path.length_km();
    edges.push_back(std::move(e));
  }
  return TransportNetwork(mode, std::move(edges), cities.size());
}

TransportNetwork generate_from_gabriel(const CityDatabase& cities, TransportMode mode,
                                       const NetworkGenParams& params,
                                       std::vector<std::pair<CityId, CityId>> gabriel) {
  switch (mode) {
    case TransportMode::Road:
      return build_network(cities, mode, road_edge_set(cities, params, std::move(gabriel)),
                           params);
    case TransportMode::Rail: {
      Rng rng(mix64(params.seed ^ 0x5a11ULL));
      return build_network(
          cities, mode, pruned_edge_set(cities, params.rail_keep_fraction, rng, std::move(gabriel)),
          params);
    }
    case TransportMode::Pipeline: {
      Rng rng(mix64(params.seed ^ 0x919eULL));
      return build_network(
          cities, mode,
          pruned_edge_set(cities, params.pipeline_keep_fraction, rng, std::move(gabriel)), params);
    }
    case TransportMode::Submarine:
      // Submarine networks are laid cable by cable (worldgen plans landing
      // pairs explicitly); there is no proximity-graph generator for them.
      break;
  }
  IT_CHECK_MSG(false, "unreachable");
  throw std::logic_error("unreachable");
}

}  // namespace

TransportNetwork generate_network(const CityDatabase& cities, TransportMode mode,
                                  const NetworkGenParams& params) {
  return generate_from_gabriel(cities, mode, params, gabriel_graph(cities));
}

TransportBundle generate_bundle(const CityDatabase& cities, const NetworkGenParams& params) {
  // One Gabriel construction feeds all three mode-specific edge sets;
  // results are identical to three generate_network calls.
  const auto gabriel = gabriel_graph(cities);
  return TransportBundle{
      generate_from_gabriel(cities, TransportMode::Road, params, gabriel),
      generate_from_gabriel(cities, TransportMode::Rail, params, gabriel),
      generate_from_gabriel(cities, TransportMode::Pipeline, params, gabriel),
  };
}

}  // namespace intertubes::transport
