#include "transport/network.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/check.hpp"

namespace intertubes::transport {

std::string_view mode_name(TransportMode m) noexcept {
  switch (m) {
    case TransportMode::Road: return "road";
    case TransportMode::Rail: return "rail";
    case TransportMode::Pipeline: return "pipeline";
  }
  return "?";
}

TransportNetwork::TransportNetwork(TransportMode mode, std::vector<TransportEdge> edges,
                                   std::size_t num_cities)
    : mode_(mode), edges_(std::move(edges)), num_cities_(num_cities) {
  adjacency_.resize(num_cities_);
  for (auto& e : edges_) {
    IT_CHECK(e.a < num_cities_ && e.b < num_cities_ && e.a != e.b);
    adjacency_[e.a].push_back(e.id);
    adjacency_[e.b].push_back(e.id);
    total_length_km_ += e.length_km;
  }
}

const std::vector<EdgeId>& TransportNetwork::edges_at(CityId c) const {
  IT_CHECK(c < adjacency_.size());
  return adjacency_[c];
}

bool TransportNetwork::connects(CityId a, CityId b) const {
  if (a >= adjacency_.size()) return false;
  for (EdgeId eid : adjacency_[a]) {
    const auto& e = edges_[eid];
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return true;
  }
  return false;
}

std::vector<std::pair<CityId, CityId>> gabriel_graph(const CityDatabase& cities) {
  const auto n = static_cast<CityId>(cities.size());
  std::vector<std::pair<CityId, CityId>> edges;
  for (CityId a = 0; a < n; ++a) {
    for (CityId b = a + 1; b < n; ++b) {
      const auto& pa = cities.city(a).location;
      const auto& pb = cities.city(b).location;
      const geo::GeoPoint mid = geo::midpoint(pa, pb);
      const double radius = geo::distance_km(pa, pb) / 2.0;
      bool blocked = false;
      for (CityId c = 0; c < n && !blocked; ++c) {
        if (c == a || c == b) continue;
        // Strictly inside the diameter disc (small epsilon avoids ties for
        // collinear metro clusters).
        if (geo::distance_km(mid, cities.city(c).location) < radius - 1e-9) blocked = true;
      }
      if (!blocked) edges.emplace_back(a, b);
    }
  }
  return edges;
}

geo::Polyline curved_path(const CityDatabase& cities, CityId a, CityId b, TransportMode mode,
                          const NetworkGenParams& params) {
  IT_CHECK(a != b);
  const auto& pa = cities.city(a).location;
  const auto& pb = cities.city(b).location;
  const double straight_km = geo::distance_km(pa, pb);

  double curvature = params.road_curvature;
  if (mode == TransportMode::Rail) curvature = params.rail_curvature;
  if (mode == TransportMode::Pipeline) curvature = params.pipeline_curvature;

  // Deterministic per (seed, unordered city pair, mode): geometry is a
  // property of the corridor, not of which endpoint we started from.
  const CityId lo = std::min(a, b);
  const CityId hi = std::max(a, b);
  Rng rng(mix64(params.seed ^ (static_cast<std::uint64_t>(lo) << 40) ^
                (static_cast<std::uint64_t>(hi) << 16) ^ static_cast<std::uint64_t>(mode)));

  auto interior = static_cast<std::size_t>(params.vertices_per_100km * straight_km / 100.0);
  interior = std::clamp<std::size_t>(interior, 1, 24);

  // Smooth lateral bump: amplitude × sin(π t) envelope plus a second
  // harmonic, offsetting each interior vertex perpendicular to the
  // great-circle bearing.
  const double amp1 = rng.uniform(0.3, 1.0) * curvature * straight_km;
  const double amp2 = rng.uniform(-0.4, 0.4) * curvature * straight_km;
  const double side = rng.chance(0.5) ? 1.0 : -1.0;

  std::vector<geo::GeoPoint> pts;
  pts.reserve(interior + 2);
  pts.push_back(pa);
  for (std::size_t i = 1; i <= interior; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(interior + 1);
    const geo::GeoPoint on_gc = geo::interpolate(pa, pb, t);
    const double bearing = geo::initial_bearing_deg(on_gc, pb);
    const double offset =
        side * (amp1 * std::sin(geo::kPi * t) + amp2 * std::sin(2.0 * geo::kPi * t)) +
        rng.normal(0.0, 0.02 * straight_km / static_cast<double>(interior + 1));
    pts.push_back(geo::destination(on_gc, bearing + 90.0, offset));
  }
  pts.push_back(pb);
  return geo::Polyline(std::move(pts));
}

namespace {

std::vector<std::pair<CityId, CityId>> road_edge_set(const CityDatabase& cities,
                                                     const NetworkGenParams& params) {
  auto edges = gabriel_graph(cities);
  // Roads: augment with each city's k nearest neighbours that are not
  // already connected (interstates cross Gabriel-blocked regions).
  const auto n = static_cast<CityId>(cities.size());
  auto has_edge = [&edges](CityId a, CityId b) {
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    return std::find(edges.begin(), edges.end(), key) != edges.end();
  };
  for (CityId a = 0; a < n; ++a) {
    std::vector<std::pair<double, CityId>> dists;
    for (CityId b = 0; b < n; ++b) {
      if (b == a) continue;
      dists.emplace_back(geo::distance_km(cities.city(a).location, cities.city(b).location), b);
    }
    std::sort(dists.begin(), dists.end());
    std::size_t added = 0;
    for (const auto& [d, b] : dists) {
      if (added >= params.road_extra_neighbors) break;
      if (!has_edge(a, b)) {
        edges.emplace_back(std::min(a, b), std::max(a, b));
        ++added;
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<std::pair<CityId, CityId>> pruned_edge_set(const CityDatabase& cities,
                                                       double keep_fraction, Rng& rng) {
  auto gabriel = gabriel_graph(cities);
  // Score each edge by endpoint population product (trunk lines between big
  // cities survive) with random jitter; keep the top fraction, then patch
  // connectivity with a spanning pass so no city is isolated.
  struct Scored {
    double score;
    std::pair<CityId, CityId> edge;
  };
  std::vector<Scored> scored;
  scored.reserve(gabriel.size());
  for (const auto& [a, b] : gabriel) {
    const double pop = std::log1p(static_cast<double>(cities.city(a).population)) *
                       std::log1p(static_cast<double>(cities.city(b).population));
    scored.push_back({pop * rng.uniform(0.5, 1.5), {a, b}});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& x, const Scored& y) { return x.score > y.score; });
  const auto keep = static_cast<std::size_t>(keep_fraction * static_cast<double>(scored.size()));
  std::vector<std::pair<CityId, CityId>> edges;
  edges.reserve(keep);
  for (std::size_t i = 0; i < keep && i < scored.size(); ++i) edges.push_back(scored[i].edge);

  // Connectivity patch: union-find over kept edges; reattach isolated
  // components via their best dropped Gabriel edge.
  const auto n = cities.size();
  std::vector<CityId> parent(n);
  for (CityId i = 0; i < n; ++i) parent[i] = i;
  std::function<CityId(CityId)> find = [&](CityId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](CityId x, CityId y) { parent[find(x)] = find(y); };
  for (const auto& [a, b] : edges) unite(a, b);
  for (std::size_t i = keep; i < scored.size(); ++i) {
    const auto [a, b] = scored[i].edge;
    if (find(a) != find(b)) {
      edges.push_back(scored[i].edge);
      unite(a, b);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

TransportNetwork build_network(const CityDatabase& cities, TransportMode mode,
                               std::vector<std::pair<CityId, CityId>> pairs,
                               const NetworkGenParams& params) {
  std::vector<TransportEdge> edges;
  edges.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    TransportEdge e;
    e.id = static_cast<EdgeId>(edges.size());
    e.a = a;
    e.b = b;
    e.mode = mode;
    e.path = curved_path(cities, a, b, mode, params);
    e.length_km = e.path.length_km();
    edges.push_back(std::move(e));
  }
  return TransportNetwork(mode, std::move(edges), cities.size());
}

}  // namespace

TransportNetwork generate_network(const CityDatabase& cities, TransportMode mode,
                                  const NetworkGenParams& params) {
  switch (mode) {
    case TransportMode::Road:
      return build_network(cities, mode, road_edge_set(cities, params), params);
    case TransportMode::Rail: {
      Rng rng(mix64(params.seed ^ 0x5a11ULL));
      return build_network(cities, mode, pruned_edge_set(cities, params.rail_keep_fraction, rng),
                           params);
    }
    case TransportMode::Pipeline: {
      Rng rng(mix64(params.seed ^ 0x919eULL));
      return build_network(cities, mode,
                           pruned_edge_set(cities, params.pipeline_keep_fraction, rng), params);
    }
  }
  IT_CHECK_MSG(false, "unreachable");
  throw std::logic_error("unreachable");
}

TransportBundle generate_bundle(const CityDatabase& cities, const NetworkGenParams& params) {
  return TransportBundle{
      generate_network(cities, TransportMode::Road, params),
      generate_network(cities, TransportMode::Rail, params),
      generate_network(cities, TransportMode::Pipeline, params),
  };
}

}  // namespace intertubes::transport
