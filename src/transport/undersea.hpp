// Undersea cable festoons along the US coasts.
//
// Footnote 8 of the paper: "When accounting for alternate routes via
// undersea cables, network partitioning for the US Internet is a very
// unlikely scenario."  §8 lists undersea cable maps as the natural map
// enrichment.  This module provides a realistic set of coastal festoon
// segments (landing-station cities are real; routes are offshore arcs)
// that resilience analyses can count as alternate paths no terrestrial
// backhoe or regional disaster reaches.
#pragma once

#include <string>
#include <vector>

#include "geo/polyline.hpp"
#include "transport/cities.hpp"

namespace intertubes::transport {

struct UnderseaCable {
  std::string name;
  CityId landing_a = kNoCity;
  CityId landing_b = kNoCity;
  geo::Polyline route;     ///< offshore arc between the landings
  double length_km = 0.0;
};

/// The default coastal festoon systems: Pacific (Seattle…San Diego),
/// Atlantic (Boston…Miami) and Gulf (Miami…Houston) segments.
std::vector<UnderseaCable> default_us_festoons(const CityDatabase& cities);

}  // namespace intertubes::transport
