// The city database: population centres of the continental US that anchor
// the long-haul infrastructure.  Coordinates and populations are embedded
// (real, public data, rounded) so the library has no runtime data
// dependencies.  The set includes every city named in the paper's tables.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/geo_point.hpp"

namespace intertubes::transport {

using CityId = std::uint32_t;
inline constexpr CityId kNoCity = 0xffffffffu;

/// Broad census-style region, used by ISP deployment profiles to bias
/// footprints geographically.
enum class Region : std::uint8_t { West, Mountain, Central, South, East };

std::string_view region_name(Region r) noexcept;

struct City {
  std::string name;
  std::string state;  ///< Two-letter code.
  geo::GeoPoint location;
  std::uint32_t population = 0;  ///< City-proper population, approximate.
  Region region = Region::Central;

  /// "Dallas, TX"
  std::string display_name() const { return name + ", " + state; }
};

/// Immutable database of cities with id-based and name-based lookup.
class CityDatabase {
 public:
  /// The built-in continental-US database (~140 cities).
  static const CityDatabase& us_default();

  explicit CityDatabase(std::vector<City> cities);

  std::size_t size() const noexcept { return cities_.size(); }
  const City& city(CityId id) const;
  const std::vector<City>& all() const noexcept { return cities_; }

  /// Find by exact "Name, ST" or bare name (first match); nullopt if absent.
  std::optional<CityId> find(std::string_view name) const;

  /// The city nearest to a point (ties broken by id).
  CityId nearest(const geo::GeoPoint& p) const;

  /// Cities within radius_km of p, sorted by distance.
  std::vector<CityId> within_radius(const geo::GeoPoint& p, double radius_km) const;

  /// Ids of cities with population >= threshold, descending by population.
  std::vector<CityId> major_cities(std::uint32_t min_population) const;

  /// Total population (for gravity-model normalisation).
  std::uint64_t total_population() const noexcept { return total_population_; }

 private:
  std::vector<City> cities_;
  std::uint64_t total_population_ = 0;
  // Name lookup index (lowercased keys, first id wins on duplicates —
  // identical to the original linear scan's semantics, but O(1) so that
  // dataset ingest stays linear at worldgen scales).
  std::unordered_map<std::string, CityId> by_display_name_;
  std::unordered_map<std::string, CityId> by_name_;
};

}  // namespace intertubes::transport
