#include "transport/cities.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace intertubes::transport {

std::string_view region_name(Region r) noexcept {
  switch (r) {
    case Region::West: return "West";
    case Region::Mountain: return "Mountain";
    case Region::Central: return "Central";
    case Region::South: return "South";
    case Region::East: return "East";
  }
  return "?";
}

namespace {

Region region_for_state(std::string_view st) {
  static const std::unordered_map<std::string_view, Region> kMap = {
      {"CA", Region::West},     {"OR", Region::West},     {"WA", Region::West},
      {"NV", Region::West},     {"MT", Region::Mountain}, {"ID", Region::Mountain},
      {"WY", Region::Mountain}, {"UT", Region::Mountain}, {"CO", Region::Mountain},
      {"AZ", Region::Mountain}, {"NM", Region::Mountain}, {"ND", Region::Central},
      {"SD", Region::Central},  {"NE", Region::Central},  {"KS", Region::Central},
      {"OK", Region::Central},  {"TX", Region::Central},  {"MN", Region::Central},
      {"IA", Region::Central},  {"MO", Region::Central},  {"AR", Region::Central},
      {"LA", Region::Central},  {"WI", Region::Central},  {"IL", Region::Central},
      {"MI", Region::Central},  {"IN", Region::Central},  {"OH", Region::Central},
      {"KY", Region::South},    {"TN", Region::South},    {"MS", Region::South},
      {"AL", Region::South},    {"GA", Region::South},    {"FL", Region::South},
      {"SC", Region::South},    {"NC", Region::South},    {"VA", Region::South},
      {"WV", Region::South},    {"NY", Region::East},     {"NJ", Region::East},
      {"PA", Region::East},     {"MD", Region::East},     {"DE", Region::East},
      {"CT", Region::East},     {"RI", Region::East},     {"MA", Region::East},
      {"VT", Region::East},     {"NH", Region::East},     {"ME", Region::East},
      {"DC", Region::East},
  };
  const auto it = kMap.find(st);
  IT_CHECK_MSG(it != kMap.end(), std::string("unknown state: ") + std::string(st));
  return it->second;
}

struct RawCity {
  const char* name;
  const char* state;
  double lat;
  double lon;
  std::uint32_t pop;  // in thousands
};

// Coordinates rounded to ~0.01°, populations city-proper (thousands),
// mid-2010s vintage to match the paper's era.
constexpr RawCity kUsCities[] = {
    {"New York", "NY", 40.71, -74.01, 8400},
    {"Los Angeles", "CA", 34.05, -118.24, 3900},
    {"Chicago", "IL", 41.88, -87.63, 2700},
    {"Houston", "TX", 29.76, -95.37, 2200},
    {"Phoenix", "AZ", 33.45, -112.07, 1500},
    {"Philadelphia", "PA", 39.95, -75.17, 1550},
    {"San Antonio", "TX", 29.42, -98.49, 1400},
    {"San Diego", "CA", 32.72, -117.16, 1350},
    {"Dallas", "TX", 32.78, -96.80, 1250},
    {"San Jose", "CA", 37.34, -121.89, 1000},
    {"Austin", "TX", 30.27, -97.74, 885},
    {"Jacksonville", "FL", 30.33, -81.66, 840},
    {"Fort Worth", "TX", 32.75, -97.33, 790},
    {"Columbus", "OH", 39.96, -83.00, 820},
    {"Charlotte", "NC", 35.23, -80.84, 790},
    {"San Francisco", "CA", 37.77, -122.42, 840},
    {"Indianapolis", "IN", 39.77, -86.16, 850},
    {"Seattle", "WA", 47.61, -122.33, 650},
    {"Denver", "CO", 39.74, -104.99, 650},
    {"Washington", "DC", 38.91, -77.04, 660},
    {"Boston", "MA", 42.36, -71.06, 650},
    {"El Paso", "TX", 31.76, -106.49, 680},
    {"Nashville", "TN", 36.16, -86.78, 640},
    {"Detroit", "MI", 42.33, -83.05, 690},
    {"Oklahoma City", "OK", 35.47, -97.52, 610},
    {"Portland", "OR", 45.52, -122.68, 610},
    {"Las Vegas", "NV", 36.17, -115.14, 600},
    {"Memphis", "TN", 35.15, -90.05, 655},
    {"Louisville", "KY", 38.25, -85.76, 610},
    {"Baltimore", "MD", 39.29, -76.61, 620},
    {"Milwaukee", "WI", 43.04, -87.91, 600},
    {"Albuquerque", "NM", 35.08, -106.65, 555},
    {"Tucson", "AZ", 32.22, -110.97, 525},
    {"Fresno", "CA", 36.74, -119.79, 510},
    {"Sacramento", "CA", 38.58, -121.49, 480},
    {"Kansas City", "MO", 39.10, -94.58, 465},
    {"Atlanta", "GA", 33.75, -84.39, 450},
    {"Omaha", "NE", 41.26, -95.94, 435},
    {"Colorado Springs", "CO", 38.83, -104.82, 440},
    {"Raleigh", "NC", 35.78, -78.64, 430},
    {"Miami", "FL", 25.76, -80.19, 420},
    {"Minneapolis", "MN", 44.98, -93.27, 400},
    {"Tulsa", "OK", 36.15, -95.99, 400},
    {"Cleveland", "OH", 41.50, -81.69, 390},
    {"Wichita", "KS", 37.69, -97.34, 385},
    {"New Orleans", "LA", 29.95, -90.07, 380},
    {"Tampa", "FL", 27.95, -82.46, 350},
    {"St. Louis", "MO", 38.63, -90.20, 320},
    {"Pittsburgh", "PA", 40.44, -79.99, 305},
    {"Cincinnati", "OH", 39.10, -84.51, 297},
    {"Salt Lake City", "UT", 40.76, -111.89, 190},
    {"Orlando", "FL", 28.54, -81.38, 255},
    {"Buffalo", "NY", 42.89, -78.88, 260},
    {"Richmond", "VA", 37.54, -77.44, 215},
    {"Boise", "ID", 43.62, -116.21, 215},
    {"Spokane", "WA", 47.66, -117.43, 210},
    {"Des Moines", "IA", 41.59, -93.62, 207},
    {"Birmingham", "AL", 33.52, -86.80, 212},
    {"Baton Rouge", "LA", 30.45, -91.15, 229},
    {"Norfolk", "VA", 36.85, -76.29, 245},
    {"Reno", "NV", 39.53, -119.81, 230},
    {"Lincoln", "NE", 40.81, -96.68, 268},
    {"Anaheim", "CA", 33.84, -117.91, 345},
    {"Bakersfield", "CA", 35.37, -119.02, 365},
    {"Topeka", "KS", 39.05, -95.68, 127},
    {"Knoxville", "TN", 35.96, -83.92, 183},
    {"Chattanooga", "TN", 35.05, -85.31, 173},
    {"Little Rock", "AR", 34.75, -92.29, 197},
    {"Shreveport", "LA", 32.53, -93.75, 200},
    {"Amarillo", "TX", 35.22, -101.83, 196},
    {"Lubbock", "TX", 33.58, -101.86, 240},
    {"Corpus Christi", "TX", 27.80, -97.40, 316},
    {"Laredo", "TX", 27.51, -99.51, 248},
    {"Mobile", "AL", 30.69, -88.04, 195},
    {"Jackson", "MS", 32.30, -90.18, 173},
    {"Savannah", "GA", 32.08, -81.09, 142},
    {"Columbia", "SC", 34.00, -81.03, 132},
    {"Greensboro", "NC", 36.07, -79.79, 280},
    {"Lexington", "KY", 38.04, -84.50, 308},
    {"Toledo", "OH", 41.65, -83.54, 281},
    {"Madison", "WI", 43.07, -89.40, 243},
    {"Grand Rapids", "MI", 42.96, -85.66, 192},
    {"Akron", "OH", 41.08, -81.52, 198},
    {"Rochester", "NY", 43.16, -77.61, 210},
    {"Syracuse", "NY", 43.05, -76.15, 144},
    {"Albany", "NY", 42.65, -73.75, 98},
    {"Hartford", "CT", 41.76, -72.68, 125},
    {"Providence", "RI", 41.82, -71.41, 179},
    {"Portland", "ME", 43.66, -70.26, 66},
    {"Burlington", "VT", 44.48, -73.21, 42},
    {"Fargo", "ND", 46.88, -96.79, 113},
    {"Bismarck", "ND", 46.81, -100.78, 67},
    {"Sioux Falls", "SD", 43.54, -96.73, 164},
    {"Rapid City", "SD", 44.08, -103.23, 71},
    {"Duluth", "MN", 46.79, -92.10, 86},
    {"Green Bay", "WI", 44.51, -88.01, 104},
    {"Eau Claire", "WI", 44.81, -91.50, 66},
    {"Springfield", "MO", 37.21, -93.29, 164},
    {"Fort Smith", "AR", 35.39, -94.40, 88},
    {"Midland", "TX", 32.00, -102.08, 123},
    {"Bryan", "TX", 30.67, -96.37, 78},
    {"Wichita Falls", "TX", 33.91, -98.49, 104},
    {"McAllen", "TX", 26.20, -98.23, 136},
    {"Santa Fe", "NM", 35.69, -105.94, 69},
    {"Flagstaff", "AZ", 35.20, -111.65, 68},
    {"Yuma", "AZ", 32.69, -114.62, 93},
    {"Sedona", "AZ", 34.87, -111.76, 10},
    {"Camp Verde", "AZ", 34.56, -111.85, 11},
    {"Pueblo", "CO", 38.25, -104.61, 108},
    {"Grand Junction", "CO", 39.06, -108.55, 60},
    {"Cheyenne", "WY", 41.14, -104.82, 62},
    {"Casper", "WY", 42.85, -106.33, 58},
    {"Billings", "MT", 45.78, -108.50, 109},
    {"Bozeman", "MT", 45.68, -111.04, 42},
    {"Missoula", "MT", 46.87, -113.99, 70},
    {"Helena", "MT", 46.59, -112.04, 30},
    {"Great Falls", "MT", 47.50, -111.29, 59},
    {"Idaho Falls", "ID", 43.49, -112.04, 59},
    {"Pocatello", "ID", 42.87, -112.45, 54},
    {"Twin Falls", "ID", 42.56, -114.46, 46},
    {"Ogden", "UT", 41.22, -111.97, 84},
    {"Provo", "UT", 40.23, -111.66, 115},
    {"St. George", "UT", 37.10, -113.57, 77},
    {"Elko", "NV", 40.83, -115.76, 20},
    {"Wells", "NV", 41.11, -114.96, 1},
    {"Winnemucca", "NV", 40.97, -117.74, 8},
    {"Redding", "CA", 40.59, -122.39, 91},
    {"Chico", "CA", 39.73, -121.84, 88},
    {"Medford", "OR", 42.33, -122.88, 77},
    {"Eugene", "OR", 44.05, -123.09, 160},
    {"Bend", "OR", 44.06, -121.32, 81},
    {"Hillsboro", "OR", 45.52, -122.99, 97},
    {"Yakima", "WA", 46.60, -120.51, 93},
    {"Santa Barbara", "CA", 34.42, -119.70, 90},
    {"San Luis Obispo", "CA", 35.28, -120.66, 46},
    {"Lompoc", "CA", 34.64, -120.46, 43},
    {"Palo Alto", "CA", 37.44, -122.14, 66},
    {"Santa Clara", "CA", 37.35, -121.95, 120},
    {"Stockton", "CA", 37.96, -121.29, 301},
    {"Gainesville", "FL", 29.65, -82.32, 128},
    {"Ocala", "FL", 29.19, -82.14, 58},
    {"Tallahassee", "FL", 30.44, -84.28, 188},
    {"Pensacola", "FL", 30.42, -87.22, 52},
    {"West Palm Beach", "FL", 26.71, -80.05, 101},
    {"Boca Raton", "FL", 26.37, -80.10, 91},
    {"Fort Myers", "FL", 26.64, -81.87, 70},
    {"Charleston", "SC", 32.78, -79.93, 128},
    {"Charleston", "WV", 38.35, -81.63, 50},
    {"Roanoke", "VA", 37.27, -79.94, 99},
    {"Lynchburg", "VA", 37.41, -79.14, 78},
    {"Charlottesville", "VA", 38.03, -78.48, 45},
    {"Trenton", "NJ", 40.22, -74.76, 84},
    {"Edison", "NJ", 40.52, -74.41, 101},
    {"Newark", "NJ", 40.74, -74.17, 280},
    {"Allentown", "PA", 40.61, -75.47, 119},
    {"Harrisburg", "PA", 40.27, -76.88, 49},
    {"Scranton", "PA", 41.41, -75.66, 76},
    {"Towson", "MD", 39.40, -76.61, 57},
    {"White Plains", "NY", 41.03, -73.76, 58},
    {"Stamford", "CT", 41.05, -73.54, 126},
    {"Kalamazoo", "MI", 42.29, -85.59, 75},
    {"Battle Creek", "MI", 42.32, -85.18, 52},
    {"Lansing", "MI", 42.73, -84.56, 115},
    {"South Bend", "IN", 41.68, -86.25, 101},
    {"Fort Wayne", "IN", 41.08, -85.14, 254},
    {"Livonia", "MI", 42.37, -83.35, 95},
    {"Southfield", "MI", 42.47, -83.22, 73},
    {"Dayton", "OH", 39.76, -84.19, 141},
    {"Erie", "PA", 42.13, -80.09, 101},
    {"Laurel", "MS", 31.69, -89.13, 19},
    {"Hattiesburg", "MS", 31.33, -89.29, 46},
    {"Montgomery", "AL", 32.38, -86.31, 205},
    {"Macon", "GA", 32.84, -83.63, 153},
    {"Waco", "TX", 31.55, -97.15, 130},
    {"Tyler", "TX", 32.35, -95.30, 100},
    {"Texarkana", "TX", 33.44, -94.08, 37},
    {"Monroe", "LA", 32.51, -92.12, 49},
    {"Lafayette", "LA", 30.22, -92.02, 124},
    {"Beaumont", "TX", 30.08, -94.10, 118},
};

}  // namespace

const CityDatabase& CityDatabase::us_default() {
  static const CityDatabase db = [] {
    std::vector<City> cities;
    cities.reserve(std::size(kUsCities));
    for (const auto& raw : kUsCities) {
      City c;
      c.name = raw.name;
      c.state = raw.state;
      c.location = {raw.lat, raw.lon};
      c.population = raw.pop * 1000;
      c.region = region_for_state(raw.state);
      cities.push_back(std::move(c));
    }
    return CityDatabase(std::move(cities));
  }();
  return db;
}

CityDatabase::CityDatabase(std::vector<City> cities) : cities_(std::move(cities)) {
  IT_CHECK(!cities_.empty());
  by_display_name_.reserve(cities_.size());
  by_name_.reserve(cities_.size());
  for (CityId id = 0; id < cities_.size(); ++id) {
    const auto& c = cities_[id];
    total_population_ += c.population;
    by_display_name_.emplace(to_lower(c.display_name()), id);  // first id wins
    by_name_.emplace(to_lower(c.name), id);
  }
}

const City& CityDatabase::city(CityId id) const {
  IT_CHECK(id < cities_.size());
  return cities_[id];
}

std::optional<CityId> CityDatabase::find(std::string_view name) const {
  const std::string wanted = to_lower(trim(name));
  // Exact "name, st" match first.
  if (const auto it = by_display_name_.find(wanted); it != by_display_name_.end()) {
    return it->second;
  }
  if (const auto it = by_name_.find(wanted); it != by_name_.end()) return it->second;
  return std::nullopt;
}

CityId CityDatabase::nearest(const geo::GeoPoint& p) const {
  CityId best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (CityId id = 0; id < cities_.size(); ++id) {
    const double d = geo::distance_km(p, cities_[id].location);
    if (d < best_d) {
      best_d = d;
      best = id;
    }
  }
  return best;
}

std::vector<CityId> CityDatabase::within_radius(const geo::GeoPoint& p, double radius_km) const {
  std::vector<std::pair<double, CityId>> hits;
  for (CityId id = 0; id < cities_.size(); ++id) {
    const double d = geo::distance_km(p, cities_[id].location);
    if (d <= radius_km) hits.emplace_back(d, id);
  }
  std::sort(hits.begin(), hits.end());
  std::vector<CityId> out;
  out.reserve(hits.size());
  for (const auto& [d, id] : hits) out.push_back(id);
  return out;
}

std::vector<CityId> CityDatabase::major_cities(std::uint32_t min_population) const {
  std::vector<CityId> out;
  for (CityId id = 0; id < cities_.size(); ++id) {
    if (cities_[id].population >= min_population) out.push_back(id);
  }
  std::sort(out.begin(), out.end(), [this](CityId a, CityId b) {
    if (cities_[a].population != cities_[b].population)
      return cities_[a].population > cities_[b].population;
    return a < b;
  });
  return out;
}

}  // namespace intertubes::transport
