// The right-of-way (ROW) registry: the union of all transportation
// corridors, which is where conduits can physically be trenched.
//
// Each transport edge becomes a *corridor* with a stable CorridorId.
// Conduits are laid along sequences of corridors; the registry provides
// the shortest-path machinery (by length or by custom weight) that the
// deployment generator, the mapping pipeline, and the optimizers share.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "route/path_engine.hpp"
#include "transport/network.hpp"

namespace intertubes::transport {

using CorridorId = std::uint32_t;
inline constexpr CorridorId kNoCorridor = 0xffffffffu;

struct Corridor {
  CorridorId id = 0;
  CityId a = kNoCity;
  CityId b = kNoCity;
  TransportMode mode = TransportMode::Road;
  geo::Polyline path;
  double length_km = 0.0;
};

/// A path through the ROW graph: corridors in order from `from` to `to`.
struct RowPath {
  std::vector<CorridorId> corridors;
  std::vector<CityId> cities;  ///< Visited cities, size = corridors.size()+1.
  double length_km = 0.0;

  bool empty() const noexcept { return corridors.empty(); }
};

class RightOfWayRegistry {
 public:
  /// Build from the three-mode bundle.  Corridors joining the same city
  /// pair in different modes are kept distinct (a road and a rail between
  /// the same cities are different trenching opportunities).
  explicit RightOfWayRegistry(const TransportBundle& bundle)
      : RightOfWayRegistry(bundle, nullptr) {}

  /// Same, plus an optional submarine-cable network appended after the
  /// land modes (worldgen's intercontinental corridors).  Corridor ids for
  /// the land modes are identical to the three-mode constructor's.
  RightOfWayRegistry(const TransportBundle& bundle, const TransportNetwork* submarine);

  std::size_t num_cities() const noexcept { return num_cities_; }
  const std::vector<Corridor>& corridors() const noexcept { return corridors_; }
  const Corridor& corridor(CorridorId id) const;

  /// Corridor ids incident to a city.
  const std::vector<CorridorId>& corridors_at(CityId c) const;

  /// The cheapest corridor directly joining a and b, if any (optionally a
  /// specific mode).
  std::optional<CorridorId> direct(CityId a, CityId b,
                                   std::optional<TransportMode> mode = std::nullopt) const;

  /// Weight function: given a corridor, return its cost, or +inf to forbid.
  using WeightFn = std::function<double(const Corridor&)>;

  /// Dijkstra from `from` to `to` under `weight` (default: length in km).
  /// Returns an empty path if unreachable.
  RowPath shortest_path(CityId from, CityId to, const WeightFn& weight = {}) const;

  /// All-destination Dijkstra from `from`; dist[i] = +inf if unreachable.
  std::vector<double> distances_from(CityId from, const WeightFn& weight = {}) const;

  /// Concatenated geometry of a path (corridor polylines oriented and
  /// joined end to end).
  geo::Polyline path_geometry(const RowPath& path) const;

  /// The compiled length-weighted corridor graph (corridor id = edge id)
  /// all path queries run on.  Custom WeightFn queries ride the engine's
  /// weight-override hook; the graph itself is fixed after construction.
  const route::PathEngine& path_engine() const noexcept { return *engine_; }

 private:
  void add_network(const TransportNetwork& net);
  RowPath to_row_path(const route::Path& path) const;

  std::size_t num_cities_ = 0;
  std::vector<Corridor> corridors_;
  std::vector<std::vector<CorridorId>> adjacency_;
  std::unique_ptr<route::PathEngine> engine_;
};

}  // namespace intertubes::transport
