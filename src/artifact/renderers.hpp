// Deterministic string renderers for the paper's headline artifacts.
//
// The per-figure benchmark harnesses used to own this formatting inline,
// which meant the only way to notice an accounting change (e.g. PR 4's
// already_optimal/unreachable split) was to eyeball EXPERIMENTS.md diffs.
// Factoring the rendering into a library gives two call sites one source
// of truth: the bench binaries print exactly these strings, and the golden
// regression tests pin them byte-for-byte against checked-in fixtures so
// any change to the numbers has to be made explicitly (regenerate the
// fixture and commit the diff).
//
// Renderers are pure functions of their inputs — no wall times, no cache
// statistics, no thread counts — so the bytes depend only on the scenario
// seed and the analysis code.
#pragma once

#include <string>

#include "cascade/cascade.hpp"
#include "core/scenario.hpp"
#include "dissect/dissector.hpp"
#include "risk/risk_matrix.hpp"

namespace intertubes::artifact {

/// Table 1: per-ISP node/link counts (geocoded + POP-only sets), map
/// totals, and the fidelity score against ground truth.
std::string render_table1(const core::Scenario& scenario);

/// Figure 6: the conduit-sharing distribution and the per-ISP average
/// shared-risk ranking.
std::string render_fig6(const core::Scenario& scenario, const risk::RiskMatrix& matrix);

/// Figure 10: path inflation / shared-risk reduction per ISP over the
/// twelve most-shared conduits, plus the §5.1 network-wide gain check.
std::string render_fig10(const core::Scenario& scenario, const risk::RiskMatrix& matrix);

/// Speed-of-light audit: headline stretch aggregates of the all-pairs
/// dissection study plus the top-k pairs ranked by achievable improvement
/// (delay recoverable by trenching along existing rights of way).  Pure
/// function of the study, so the bytes depend only on the scenario seed.
std::string render_clatency_audit(const dissect::DissectionStudy& study,
                                  const transport::CityDatabase& cities, std::size_t top_k);

/// Cross-layer cascade: per-overload-round mean/p5/p95 curves (physical
/// fragmentation, L3 damage, demand delivery, stretch) plus the per-ISP
/// undeliverable-demand table at the fixed point.  `profiles` (when
/// given) supplies ISP display names.
std::string render_cascade(const cascade::CascadeReport& report,
                           const std::vector<isp::IspProfile>* profiles = nullptr);

/// Percolation sweep: structural metrics across the fraction-removed
/// grid for one adversary model.
std::string render_percolation(const cascade::PercolationReport& report);

}  // namespace intertubes::artifact
