#include "artifact/renderers.hpp"

#include <sstream>

#include "core/fidelity.hpp"
#include "optimize/robustness.hpp"
#include "util/table.hpp"

namespace intertubes::artifact {

std::string render_table1(const core::Scenario& scenario) {
  std::ostringstream out;
  const auto stats = core::compute_stats(scenario.map());
  const auto& profiles = scenario.truth().profiles();

  out << "nodes and long-haul links per step-1 (geocoded-map) ISP\n";
  TextTable table({"ISP", "nodes", "links"});
  for (isp::IspId i = 0; i < profiles.size(); ++i) {
    if (!profiles[i].publishes_geocoded_map) continue;
    table.start_row();
    table.add_cell(profiles[i].name);
    table.add_cell(stats.nodes_per_isp[i]);
    table.add_cell(stats.links_per_isp[i]);
  }
  out << table.render();

  out << "\nPOP-only (step-3) ISPs added to the augmented map:\n";
  TextTable table3({"ISP", "nodes", "links"});
  for (isp::IspId i = 0; i < profiles.size(); ++i) {
    if (profiles[i].publishes_geocoded_map) continue;
    table3.start_row();
    table3.add_cell(profiles[i].name);
    table3.add_cell(stats.nodes_per_isp[i]);
    table3.add_cell(stats.links_per_isp[i]);
  }
  out << table3.render();

  out << "\nmap totals: " << stats.nodes << " nodes, " << stats.links << " links, "
      << stats.conduits << " conduits (" << stats.validated_conduits << " validated, "
      << format_double(stats.total_conduit_km, 0) << " conduit-km)\n"
      << "paper totals at US scale: 273 nodes, 2411 links, 542 conduits\n";

  const auto fidelity = core::score_fidelity(scenario.map(), scenario.truth());
  out << "fidelity vs ground truth: conduit P/R = "
      << format_double(fidelity.conduit_precision, 3) << "/"
      << format_double(fidelity.conduit_recall, 3)
      << ", tenancy P/R = " << format_double(fidelity.tenancy_precision, 3) << "/"
      << format_double(fidelity.tenancy_recall, 3) << "\n";
  return out.str();
}

std::string render_fig6(const core::Scenario& scenario, const risk::RiskMatrix& matrix) {
  std::ostringstream out;
  const auto& profiles = scenario.truth().profiles();

  out << "number of conduits shared by at least k ISPs\n";
  const auto counts = matrix.conduits_shared_by_at_least();
  TextTable dist({"k", "conduits shared by >= k", "% of all"});
  const double total = static_cast<double>(matrix.num_conduits());
  for (std::size_t k = 1; k <= counts.size(); ++k) {
    dist.start_row();
    dist.add_cell(k);
    dist.add_cell(counts[k - 1]);
    dist.add_cell(100.0 * static_cast<double>(counts[k - 1]) / total, 1);
  }
  out << dist.render();
  out << "\npaper: 89.7 / 63.3 / 53.5 % shared by >= 2 / 3 / 4 ISPs; here "
      << format_double(100.0 * static_cast<double>(counts[1]) / total, 1) << " / "
      << format_double(100.0 * static_cast<double>(counts[2]) / total, 1) << " / "
      << format_double(100.0 * static_cast<double>(counts[3]) / total, 1) << " %\n";
  out << "conduits shared by more than 17 ISPs: "
      << matrix.conduits_shared_by_more_than(17).size() << " of " << matrix.num_conduits()
      << " (paper: 12 of 542)\n";

  out << "\nper-ISP average shared risk, ascending (mean, SE, quartiles)\n";
  TextTable ranking({"ISP", "conduits used", "avg sharing", "std err", "p25", "p75"});
  for (const auto& row : matrix.isp_risk_ranking()) {
    ranking.start_row();
    ranking.add_cell(profiles[row.isp].name);
    ranking.add_cell(row.conduits_used);
    ranking.add_cell(row.mean_sharing, 2);
    ranking.add_cell(row.standard_error, 2);
    ranking.add_cell(row.p25, 1);
    ranking.add_cell(row.p75, 1);
  }
  out << ranking.render();
  out << "\npaper order: Suddenlink/EarthLink/Level 3 least shared; Deutsche "
         "Telekom/NTT/XO most\n";
  return out.str();
}

std::string render_fig10(const core::Scenario& scenario, const risk::RiskMatrix& matrix) {
  std::ostringstream out;
  const auto& cities = core::Scenario::cities();
  const auto& map = scenario.map();
  const auto& profiles = scenario.truth().profiles();
  const auto target_set = matrix.most_shared_conduits(12);

  out << "path inflation and shared-risk reduction per ISP, twelve most "
         "heavily shared conduits\n";
  out << "the twelve targets:\n";
  for (core::ConduitId cid : target_set) {
    const auto& conduit = map.conduit(cid);
    out << "  " << cities.city(conduit.a).display_name() << " -- "
        << cities.city(conduit.b).display_name() << " (" << conduit.tenants.size()
        << " tenants)\n";
  }

  optimize::RobustnessPlanner planner(map, matrix);
  const auto summaries = planner.summarize_robustness(target_set);
  TextTable table(
      {"ISP", "targets used", "PI min", "PI avg", "PI max", "SRR min", "SRR avg", "SRR max"});
  for (const auto& s : summaries) {
    table.start_row();
    table.add_cell(profiles[s.isp].name);
    table.add_cell(s.targets_using);
    table.add_cell(s.pi_min, 1);
    table.add_cell(s.pi_avg, 2);
    table.add_cell(s.pi_max, 1);
    table.add_cell(s.srr_min, 1);
    table.add_cell(s.srr_avg, 2);
    table.add_cell(s.srr_max, 1);
  }
  out << "\n" << table.render();
  out << "\npaper shape: average PI of ~1-2 hops buys SRR of order 10 for every ISP\n";

  const auto gain = planner.network_wide_gain(12);
  out << "\nnetwork-wide optimization (all " << gain.conduits_evaluated
      << " conduits): avg attainable SRR " << format_double(gain.avg_srr_rest, 2)
      << " outside the top-12 vs " << format_double(gain.avg_srr_top, 2) << " inside; "
      << gain.already_optimal
      << " conduits already have no better alternative (paper: \"many of the existing "
         "paths used by ISPs were already the best paths\"); "
      << gain.unreachable << " are bridges with no alternative path at all\n";
  return out.str();
}

std::string render_clatency_audit(const dissect::DissectionStudy& study,
                                  const transport::CityDatabase& cities, std::size_t top_k) {
  std::ostringstream out;
  const std::size_t reachable = study.pairs.size() - study.fiber_unreachable;
  out << "speed-of-light audit over " << study.nodes.size() << " cities, " << study.pairs.size()
      << " pairs (" << study.fiber_unreachable << " fiber-unreachable, " << study.row_unreachable
      << " ROW-unreachable)\n";
  out << "stretch vs c-latency: median " << format_double(study.median_stretch, 3) << ", p95 "
      << format_double(study.p95_stretch, 3) << "; " << study.within_target << "/" << reachable
      << " reachable pairs within " << format_double(study.target_factor, 1) << "x c-latency\n";
  out << "total achievable improvement (trenching along existing rights of way): "
      << format_double(study.total_achievable_ms, 1) << " ms across all pairs\n";

  // Rank by achievable improvement; ties (e.g. zero) break to the earlier
  // pair in sweep order so the artifact is stable byte-for-byte.
  std::vector<const dissect::PairDissection*> ranked;
  ranked.reserve(study.pairs.size());
  for (const auto& p : study.pairs) {
    if (p.fiber_reachable && p.row_reachable) ranked.push_back(&p);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const dissect::PairDissection* a, const dissect::PairDissection* b) {
                     return a->achievable_ms > b->achievable_ms;
                   });
  if (ranked.size() > top_k) ranked.resize(top_k);

  out << "\ntop pairs by achievable improvement (one-way ms)\n";
  TextTable table({"pair", "c-lat", "refraction", "ROW infl", "detour", "fiber", "stretch"});
  for (const auto* p : ranked) {
    table.start_row();
    table.add_cell(cities.city(p->a).display_name() + " -- " + cities.city(p->b).display_name());
    table.add_cell(p->clat_ms, 2);
    table.add_cell(p->refraction_ms, 2);
    table.add_cell(p->row_inflation_ms, 2);
    table.add_cell(p->detour_ms, 2);
    table.add_cell(p->fiber_ms, 2);
    table.add_cell(p->stretch, 2);
  }
  out << table.render();
  return out.str();
}

std::string render_cascade(const cascade::CascadeReport& report,
                           const std::vector<isp::IspProfile>* profiles) {
  std::ostringstream out;
  out << "cascade: " << report.stressor << " — " << report.trials << " trials, capacity margin "
      << format_double(report.params.capacity_margin, 2) << ", up to " << report.rounds
      << " overload rounds\n\n";

  TextTable table({"round", "dead mean", "dead p95", "overload", "giant", "L3 dead", "L3 reach",
                   "delivered", "stretch"});
  for (std::size_t r = 0; r < report.conduits_dead.points.size(); ++r) {
    table.start_row();
    table.add_cell(r);
    table.add_cell(report.conduits_dead.points[r].mean, 1);
    table.add_cell(report.conduits_dead.points[r].p95, 1);
    table.add_cell(report.overload_failed.points[r].mean, 2);
    table.add_cell(report.giant_component.points[r].mean, 4);
    table.add_cell(report.l3_edges_dead.points[r].mean, 4);
    table.add_cell(report.l3_reachability.points[r].mean, 4);
    table.add_cell(report.demand_delivered.points[r].mean, 4);
    // An all-undeliverable step has no finite stretch sample to show.
    const auto& stretch = report.mean_stretch.points[r];
    if (stretch.samples > 0) {
      table.add_cell(stretch.mean, 3);
    } else {
      table.add_cell("-");
    }
  }
  out << table.render("overload-round curve (across trials)");

  if (!report.isp_impact.empty()) {
    TextTable isp_table({"ISP", "mean links undeliverable", "p95", "max"});
    for (const auto& impact : report.isp_impact) {
      isp_table.start_row();
      if (profiles && impact.isp < profiles->size()) {
        isp_table.add_cell((*profiles)[impact.isp].name);
      } else {
        isp_table.add_cell("isp " + std::to_string(impact.isp));
      }
      isp_table.add_cell(impact.mean_links_lost, 2);
      isp_table.add_cell(impact.p95_links_lost, 1);
      isp_table.add_cell(impact.max_links_lost, 1);
    }
    out << "\n" << isp_table.render("per-ISP damage at the fixed point");
  }
  return out.str();
}

std::string render_percolation(const cascade::PercolationReport& report) {
  std::ostringstream out;
  out << "percolation: " << report.adversary << " — " << report.trials << " trials, "
      << report.resolution << " grid points\n\n";

  TextTable table({"fraction", "dead mean", "giant mean", "giant p5", "L3 dead", "L3 reach mean",
                   "L3 reach p5"});
  for (std::size_t k = 0; k < report.conduits_dead.points.size(); ++k) {
    table.start_row();
    table.add_cell(static_cast<double>(k) / static_cast<double>(report.resolution), 2);
    table.add_cell(report.conduits_dead.points[k].mean, 4);
    table.add_cell(report.giant_component.points[k].mean, 4);
    table.add_cell(report.giant_component.points[k].p5, 4);
    table.add_cell(report.l3_edges_dead.points[k].mean, 4);
    table.add_cell(report.l3_reachability.points[k].mean, 4);
    table.add_cell(report.l3_reachability.points[k].p5, 4);
  }
  out << table.render("structural damage vs fraction of conduits removed");
  return out.str();
}

}  // namespace intertubes::artifact
