// Router DNS naming and decoding — the paper's hop-attribution mechanism.
//
// §4.3 infers conduit tenants "through analysis of naming conventions in
// the traceroute data" (refs [78] "What's in a Name? Decoding Router
// Interface Names" and [92] DRoP).  Real carriers embed city codes and
// their domain in interface names ("ae-3.r21.chcgil.sprintlink.net");
// this module generates such names for the simulated routers and decodes
// them back — so attribution rests on an actual parser, with the actual
// failure mode: routers without descriptive reverse DNS are opaque.
#pragma once

#include <optional>
#include <string>

#include "isp/profiles.hpp"
#include "transport/cities.hpp"

namespace intertubes::traceroute {

/// The 6-ish character location code a carrier would embed for a city
/// ("chcgil" for Chicago IL, "sltlcut" style for multi-word names).
/// Deterministic in the city record.
std::string city_code(const transport::City& city);

/// The carrier's DNS zone ("sprintlink.net", "level3.net", ...).  Real
/// domains for the twenty studied ISPs; a slug fallback otherwise.
std::string isp_domain(const isp::IspProfile& profile);

/// A descriptive interface name: "<iface>.<router>.<citycode>.<domain>".
/// `salt` varies the interface/router tokens deterministically.
std::string router_dns_name(const isp::IspProfile& profile, const transport::City& city,
                            std::uint64_t salt);

/// Decode a hostname back to (ISP, city).  Either component may fail
/// independently: unknown domain → no ISP; no recognizable city code → no
/// city.  Empty names (no PTR record) decode to nothing.
class NameDecoder {
 public:
  NameDecoder(const transport::CityDatabase& cities,
              const std::vector<isp::IspProfile>& profiles);

  struct Decoded {
    std::optional<isp::IspId> isp;
    std::optional<transport::CityId> city;
  };

  Decoded decode(const std::string& hostname) const;

 private:
  std::unordered_map<std::string, isp::IspId> by_domain_;
  std::unordered_map<std::string, transport::CityId> by_code_;
};

}  // namespace intertubes::traceroute
