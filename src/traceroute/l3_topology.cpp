#include "traceroute/l3_topology.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/check.hpp"

namespace intertubes::traceroute {

using isp::IspId;
using isp::IspKind;
using transport::CityId;
using transport::CorridorId;

const std::vector<RouterIdx> L3Topology::kNoRouters{};
const std::vector<std::uint32_t> L3Topology::kNoEdges{};

namespace {
std::uint64_t isp_city_key(IspId isp, CityId city) noexcept {
  return (static_cast<std::uint64_t>(isp) << 32) | city;
}
}  // namespace

L3Topology L3Topology::from_ground_truth(const isp::GroundTruth& truth,
                                         const transport::CityDatabase& cities,
                                         const PeeringParams& params) {
  L3Topology topo;

  // Routers: one per (ISP, link endpoint city).
  auto ensure_router = [&topo](IspId isp, CityId city) {
    const auto key = isp_city_key(isp, city);
    const auto it = topo.by_isp_city_.find(key);
    if (it != topo.by_isp_city_.end()) return it->second;
    const auto idx = static_cast<RouterIdx>(topo.routers_.size());
    topo.routers_.push_back({isp, city});
    topo.by_isp_city_[key] = idx;
    return idx;
  };

  for (const auto& link : truth.links()) {
    const RouterIdx u = ensure_router(link.isp, link.a);
    const RouterIdx v = ensure_router(link.isp, link.b);
    L3Edge e;
    e.u = u;
    e.v = v;
    e.length_km = link.length_km;
    e.peering = false;
    e.corridors = link.corridors;
    topo.edges_.push_back(std::move(e));
  }

  // City index.
  std::size_t max_city = 0;
  for (const auto& r : topo.routers_) max_city = std::max<std::size_t>(max_city, r.city);
  topo.by_city_.resize(max_city + 1);
  for (RouterIdx r = 0; r < topo.routers_.size(); ++r) {
    topo.by_city_[topo.routers_[r].city].push_back(r);
  }

  // Peering: at each city, connect co-located routers according to policy.
  const auto& profiles = truth.profiles();
  for (const auto& colocated : topo.by_city_) {
    for (std::size_t i = 0; i < colocated.size(); ++i) {
      for (std::size_t j = i + 1; j < colocated.size(); ++j) {
        const Router& ri = topo.routers_[colocated[i]];
        const Router& rj = topo.routers_[colocated[j]];
        const bool both_tier1 =
            profiles[ri.isp].kind == IspKind::Tier1 && profiles[rj.isp].kind == IspKind::Tier1;
        const bool any_tier1 =
            profiles[ri.isp].kind == IspKind::Tier1 || profiles[rj.isp].kind == IspKind::Tier1;
        const auto population = cities.city(ri.city).population;
        bool connect = false;
        if (both_tier1) {
          connect = population >= params.tier1_peering_min_pop;
        } else if (any_tier1) {
          connect = true;  // customer/transit attachment
        } else {
          // Two non-tier-1s interconnect only at major cities (IXstyle).
          connect = population >= 2 * params.tier1_peering_min_pop;
        }
        if (!connect) continue;
        L3Edge e;
        e.u = colocated[i];
        e.v = colocated[j];
        e.length_km = 0.0;
        e.peering = true;
        topo.edges_.push_back(std::move(e));
      }
    }
  }

  topo.adjacency_.resize(topo.routers_.size());
  for (std::uint32_t eid = 0; eid < topo.edges_.size(); ++eid) {
    topo.adjacency_[topo.edges_[eid].u].push_back(eid);
    topo.adjacency_[topo.edges_[eid].v].push_back(eid);
  }
  return topo;
}

const std::vector<std::uint32_t>& L3Topology::edges_at(RouterIdx r) const {
  if (r >= adjacency_.size()) return kNoEdges;
  return adjacency_[r];
}

std::optional<RouterIdx> L3Topology::router_at(IspId isp, CityId city) const {
  const auto it = by_isp_city_.find(isp_city_key(isp, city));
  if (it == by_isp_city_.end()) return std::nullopt;
  return it->second;
}

const std::vector<RouterIdx>& L3Topology::routers_in(CityId city) const {
  if (city >= by_city_.size()) return kNoRouters;
  return by_city_[city];
}

std::vector<RouterIdx> L3Topology::route(RouterIdx src, CityId dst_city,
                                         const PeeringParams& params) const {
  IT_CHECK(src < routers_.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(routers_.size(), kInf);
  std::vector<RouterIdx> prev(routers_.size(), kNoRouter);
  using Entry = std::pair<double, RouterIdx>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[src] = 0.0;
  queue.push({0.0, src});
  RouterIdx goal = kNoRouter;
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (routers_[u].city == dst_city) {
      goal = u;
      break;
    }
    for (std::uint32_t eid : adjacency_[u]) {
      const auto& e = edges_[eid];
      const RouterIdx v = (e.u == u) ? e.v : e.u;
      const double w = e.peering ? params.peering_penalty_km : e.length_km;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        queue.push({nd, v});
      }
    }
  }
  if (goal == kNoRouter) return {};
  std::vector<RouterIdx> path;
  for (RouterIdx cur = goal; cur != kNoRouter; cur = prev[cur]) path.push_back(cur);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<CorridorId> L3Topology::route_corridors(const std::vector<RouterIdx>& route) const {
  std::vector<CorridorId> out;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    // Find the edge joining route[i] and route[i+1].
    for (std::uint32_t eid : edges_at(route[i])) {
      const auto& e = edges_[eid];
      const RouterIdx other = (e.u == route[i]) ? e.v : e.u;
      if (other != route[i + 1]) continue;
      // Corridor lists are stored u→v; orient to the traversal direction.
      if (e.u == route[i]) {
        out.insert(out.end(), e.corridors.begin(), e.corridors.end());
      } else {
        out.insert(out.end(), e.corridors.rbegin(), e.corridors.rend());
      }
      break;
    }
  }
  return out;
}

}  // namespace intertubes::traceroute
