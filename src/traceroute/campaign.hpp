// Traceroute campaign simulation — the Edgescope-style measurement data
// of §4.3.
//
// Clients in population-weighted cities probe population-weighted
// destinations; each probe follows the L3 route and is observed as a hop
// list with the classic measurement artifacts: geolocation is per-hop
// city; DNS naming hints reveal the operating ISP only probabilistically;
// MPLS tunnels hide interior hops.  Identical (src, access ISP, dst)
// flows are aggregated with a count, which is what lets the library
// simulate millions of probes cheaply.
#pragma once

#include "traceroute/l3_topology.hpp"
#include "traceroute/naming.hpp"
#include "util/diag.hpp"
#include "util/rng.hpp"

namespace intertubes::traceroute {

struct ObservedHop {
  transport::CityId city = transport::kNoCity;  ///< geolocated position
  /// Reverse-DNS name of the interface; empty when the router has no PTR
  /// record (the real-world opaque case).
  std::string dns_name;
  /// ISP decoded from dns_name via NameDecoder; kNoIsp when the name gave
  /// nothing.
  isp::IspId isp = isp::kNoIsp;
};

/// An aggregated flow of identical traceroutes.
struct TraceFlow {
  transport::CityId src = transport::kNoCity;
  transport::CityId dst = transport::kNoCity;
  std::vector<ObservedHop> hops;
  /// Ground-truth corridors under the route (evaluation only — overlay
  /// never reads this).
  std::vector<transport::CorridorId> true_corridors;
  std::uint64_t count = 0;
};

struct CampaignParams {
  std::uint64_t seed = 0x1257;
  std::uint64_t num_probes = 500000;
  /// Gravity-model exponent on populations for endpoint selection.
  double gravity_exponent = 1.1;
  /// Probability an interior hop is hidden inside an MPLS tunnel.
  double mpls_hide_prob = 0.18;
  /// Probability a router interface has a descriptive reverse-DNS name
  /// (ISP attribution then goes through the NameDecoder).
  double naming_hint_prob = 0.62;
  PeeringParams peering;
};

struct Campaign {
  std::vector<TraceFlow> flows;
  std::uint64_t total_probes = 0;
  std::uint64_t unroutable_probes = 0;
};

/// Run a campaign over the L3 topology.  Deterministic in params.seed.
/// `profiles` drives DNS name generation/decoding; when omitted, the
/// twenty default profiles are used (correct whenever the topology came
/// from a default-profile ground truth).
Campaign run_campaign(const L3Topology& topo, const transport::CityDatabase& cities,
                      const CampaignParams& params = {});
Campaign run_campaign(const L3Topology& topo, const transport::CityDatabase& cities,
                      const std::vector<isp::IspProfile>& profiles,
                      const CampaignParams& params);

/// Serialize a campaign as TSV:
///   campaign <tab> total-probes <tab> unroutable-probes
///   flow <tab> src <tab> dst <tab> count <tab> hops <tab> corridors
/// where hops is `;`-separated `city|dns-name|isp-id-or-"-"` triples and
/// corridors is a comma-separated corridor-id list (or "-" when empty).
std::string serialize_campaign(const Campaign& campaign, const transport::CityDatabase& cities);

/// Parse a campaign archive, reporting malformed flows into `sink` with
/// their input line number; under the lenient policy the bad flow is
/// quarantined and the rest survive.  A missing or malformed `campaign`
/// header is an Error; totals then fall back to the sum of the surviving
/// flow counts.
Campaign parse_campaign(const std::string& text, const transport::CityDatabase& cities,
                        DiagnosticSink& sink, const std::string& source = "<campaign>");

/// File wrappers.  Open failures throw std::runtime_error with the OS
/// errno context.
void save_campaign(const std::string& path, const Campaign& campaign,
                   const transport::CityDatabase& cities);
Campaign load_campaign(const std::string& path, const transport::CityDatabase& cities,
                       DiagnosticSink& sink);

}  // namespace intertubes::traceroute
