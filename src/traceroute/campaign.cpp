#include "traceroute/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/check.hpp"

namespace intertubes::traceroute {

using transport::CityId;

namespace {

/// Flow key: (src city, access router, dst city).
struct FlowKey {
  CityId src;
  RouterIdx access;
  CityId dst;
  bool operator<(const FlowKey& o) const noexcept {
    if (src != o.src) return src < o.src;
    if (access != o.access) return access < o.access;
    return dst < o.dst;
  }
};

}  // namespace

Campaign run_campaign(const L3Topology& topo, const transport::CityDatabase& cities,
                      const CampaignParams& params) {
  return run_campaign(topo, cities, isp::default_profiles(), params);
}

Campaign run_campaign(const L3Topology& topo, const transport::CityDatabase& cities,
                      const std::vector<isp::IspProfile>& profiles,
                      const CampaignParams& params) {
  Rng rng(mix64(params.seed ^ 0x7ace1234ULL));
  const NameDecoder decoder(cities, profiles);
  Campaign campaign;

  // Endpoint weights: population^gravity over cities that host routers
  // (sources need an access network; destinations need a POP to respond
  // from).
  std::vector<double> weights(cities.size(), 0.0);
  for (CityId c = 0; c < cities.size(); ++c) {
    if (topo.routers_in(c).empty()) continue;
    weights[c] =
        std::pow(static_cast<double>(cities.city(c).population), params.gravity_exponent);
  }

  // Aggregate probe multiplicity per flow.
  std::map<FlowKey, std::uint64_t> flow_counts;
  for (std::uint64_t i = 0; i < params.num_probes; ++i) {
    const auto src = static_cast<CityId>(rng.weighted_pick(weights));
    CityId dst = src;
    for (int attempt = 0; attempt < 8 && dst == src; ++attempt) {
      dst = static_cast<CityId>(rng.weighted_pick(weights));
    }
    if (dst == src) continue;
    const auto& access_candidates = topo.routers_in(src);
    const RouterIdx access =
        access_candidates[rng.next_below(access_candidates.size())];
    ++flow_counts[FlowKey{src, access, dst}];
  }
  campaign.total_probes = params.num_probes;

  // Route each distinct flow once; render observed hops with artifacts.
  for (const auto& [key, count] : flow_counts) {
    const auto route = topo.route(key.access, key.dst, params.peering);
    if (route.empty()) {
      campaign.unroutable_probes += count;
      continue;
    }
    TraceFlow flow;
    flow.src = key.src;
    flow.dst = key.dst;
    flow.count = count;
    flow.true_corridors = topo.route_corridors(route);

    // Observation artifacts are drawn once per flow (a given router's DNS
    // name either resolves or it does not; a given LSP hides the same
    // interior hops for every probe of the flow).
    Rng obs_rng(mix64(params.seed ^ (static_cast<std::uint64_t>(key.access) << 32) ^
                      (static_cast<std::uint64_t>(key.src) << 16) ^ key.dst));
    for (std::size_t h = 0; h < route.size(); ++h) {
      const Router& router = topo.routers()[route[h]];
      const bool interior = h > 0 && h + 1 < route.size();
      if (interior && obs_rng.chance(params.mpls_hide_prob)) continue;  // in a tunnel
      ObservedHop hop;
      hop.city = router.city;
      // A router either has a descriptive PTR record or none at all; when
      // it does, attribution goes through the real name parser.
      if (obs_rng.chance(params.naming_hint_prob)) {
        hop.dns_name = router_dns_name(
            profiles[router.isp], cities.city(router.city),
            mix64(params.seed ^ (static_cast<std::uint64_t>(route[h]) << 20) ^ h));
        const auto decoded = decoder.decode(hop.dns_name);
        hop.isp = decoded.isp.value_or(isp::kNoIsp);
      }
      flow.hops.push_back(hop);
    }
    if (flow.hops.size() < 2) {
      campaign.unroutable_probes += count;
      continue;
    }
    campaign.flows.push_back(std::move(flow));
  }
  return campaign;
}

}  // namespace intertubes::traceroute
