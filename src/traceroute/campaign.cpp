#include "traceroute/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace intertubes::traceroute {

using transport::CityId;

namespace {

/// Flow key: (src city, access router, dst city).
struct FlowKey {
  CityId src;
  RouterIdx access;
  CityId dst;
  bool operator<(const FlowKey& o) const noexcept {
    if (src != o.src) return src < o.src;
    if (access != o.access) return access < o.access;
    return dst < o.dst;
  }
};

}  // namespace

Campaign run_campaign(const L3Topology& topo, const transport::CityDatabase& cities,
                      const CampaignParams& params) {
  return run_campaign(topo, cities, isp::default_profiles(), params);
}

Campaign run_campaign(const L3Topology& topo, const transport::CityDatabase& cities,
                      const std::vector<isp::IspProfile>& profiles,
                      const CampaignParams& params) {
  Rng rng(mix64(params.seed ^ 0x7ace1234ULL));
  const NameDecoder decoder(cities, profiles);
  Campaign campaign;

  // Endpoint weights: population^gravity over cities that host routers
  // (sources need an access network; destinations need a POP to respond
  // from).
  std::vector<double> weights(cities.size(), 0.0);
  for (CityId c = 0; c < cities.size(); ++c) {
    if (topo.routers_in(c).empty()) continue;
    weights[c] =
        std::pow(static_cast<double>(cities.city(c).population), params.gravity_exponent);
  }

  // Aggregate probe multiplicity per flow.
  std::map<FlowKey, std::uint64_t> flow_counts;
  for (std::uint64_t i = 0; i < params.num_probes; ++i) {
    const auto src = static_cast<CityId>(rng.weighted_pick(weights));
    CityId dst = src;
    for (int attempt = 0; attempt < 8 && dst == src; ++attempt) {
      dst = static_cast<CityId>(rng.weighted_pick(weights));
    }
    if (dst == src) continue;
    const auto& access_candidates = topo.routers_in(src);
    const RouterIdx access =
        access_candidates[rng.next_below(access_candidates.size())];
    ++flow_counts[FlowKey{src, access, dst}];
  }
  campaign.total_probes = params.num_probes;

  // Route each distinct flow once; render observed hops with artifacts.
  for (const auto& [key, count] : flow_counts) {
    const auto route = topo.route(key.access, key.dst, params.peering);
    if (route.empty()) {
      campaign.unroutable_probes += count;
      continue;
    }
    TraceFlow flow;
    flow.src = key.src;
    flow.dst = key.dst;
    flow.count = count;
    flow.true_corridors = topo.route_corridors(route);

    // Observation artifacts are drawn once per flow (a given router's DNS
    // name either resolves or it does not; a given LSP hides the same
    // interior hops for every probe of the flow).
    Rng obs_rng(mix64(params.seed ^ (static_cast<std::uint64_t>(key.access) << 32) ^
                      (static_cast<std::uint64_t>(key.src) << 16) ^ key.dst));
    for (std::size_t h = 0; h < route.size(); ++h) {
      const Router& router = topo.routers()[route[h]];
      const bool interior = h > 0 && h + 1 < route.size();
      if (interior && obs_rng.chance(params.mpls_hide_prob)) continue;  // in a tunnel
      ObservedHop hop;
      hop.city = router.city;
      // A router either has a descriptive PTR record or none at all; when
      // it does, attribution goes through the real name parser.
      if (obs_rng.chance(params.naming_hint_prob)) {
        hop.dns_name = router_dns_name(
            profiles[router.isp], cities.city(router.city),
            mix64(params.seed ^ (static_cast<std::uint64_t>(route[h]) << 20) ^ h));
        const auto decoded = decoder.decode(hop.dns_name);
        hop.isp = decoded.isp.value_or(isp::kNoIsp);
      }
      flow.hops.push_back(hop);
    }
    if (flow.hops.size() < 2) {
      campaign.unroutable_probes += count;
      continue;
    }
    campaign.flows.push_back(std::move(flow));
  }
  return campaign;
}

std::string serialize_campaign(const Campaign& campaign, const transport::CityDatabase& cities) {
  std::string out;
  out += "# InterTubes traceroute-campaign archive\n";
  out += "# campaign\ttotal-probes\tunroutable-probes\n";
  out += "# flow\tsrc\tdst\tcount\thops\tcorridors\n";
  out += "campaign\t" + std::to_string(campaign.total_probes) + "\t" +
         std::to_string(campaign.unroutable_probes) + "\n";
  for (const TraceFlow& flow : campaign.flows) {
    out += "flow\t" + cities.city(flow.src).display_name() + "\t" +
           cities.city(flow.dst).display_name() + "\t" + std::to_string(flow.count) + "\t";
    for (std::size_t h = 0; h < flow.hops.size(); ++h) {
      const ObservedHop& hop = flow.hops[h];
      if (h > 0) out.push_back(';');
      out += cities.city(hop.city).display_name() + "|" + hop.dns_name + "|" +
             (hop.isp == isp::kNoIsp ? std::string("-") : std::to_string(hop.isp));
    }
    out.push_back('\t');
    if (flow.true_corridors.empty()) {
      out.push_back('-');
    } else {
      for (std::size_t i = 0; i < flow.true_corridors.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += std::to_string(flow.true_corridors[i]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Campaign parse_campaign(const std::string& text, const transport::CityDatabase& cities,
                        DiagnosticSink& sink, const std::string& source) {
  Campaign campaign;
  bool have_header = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string_view line(text.data() + pos,
                          (nl == std::string::npos ? text.size() : nl) - pos);
    pos = (nl == std::string::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    const std::vector<std::string> fields = split_fields(line, '\t');
    const auto fail = [&](const std::string& msg) {
      sink.report(Severity::Error, source, line_no, msg);
    };

    if (fields[0] == "campaign") {
      const auto total = fields.size() == 3 ? parse_uint(fields[1]) : std::nullopt;
      const auto unroutable = fields.size() == 3 ? parse_uint(fields[2]) : std::nullopt;
      if (!total || !unroutable) {
        fail("campaign header: expected `campaign\\t<total>\\t<unroutable>`");
        continue;
      }
      campaign.total_probes = *total;
      campaign.unroutable_probes = *unroutable;
      have_header = true;
    } else if (fields[0] == "flow") {
      if (fields.size() != 6) {
        fail("flow: expected 6 fields, got " + std::to_string(fields.size()));
        continue;
      }
      TraceFlow flow;
      const auto src = cities.find(fields[1]);
      const auto dst = cities.find(fields[2]);
      if (!src || !dst) {
        fail("flow: unknown city \"" + (src ? fields[2] : fields[1]) + "\"");
        continue;
      }
      flow.src = *src;
      flow.dst = *dst;
      const auto count = parse_uint(fields[3]);
      if (!count || *count == 0) {
        fail("flow: probe count must be a positive integer, got \"" + fields[3] + "\"");
        continue;
      }
      flow.count = *count;
      bool hops_ok = true;
      for (const std::string& triple : split_fields(fields[4], ';')) {
        const std::vector<std::string> parts = split_fields(triple, '|');
        if (parts.size() != 3) {
          fail("flow: hop must be `city|dns-name|isp`, got \"" + triple + "\"");
          hops_ok = false;
          break;
        }
        ObservedHop hop;
        const auto city = cities.find(parts[0]);
        if (!city) {
          fail("flow: unknown hop city \"" + parts[0] + "\"");
          hops_ok = false;
          break;
        }
        hop.city = *city;
        hop.dns_name = parts[1];
        if (parts[2] != "-") {
          const auto isp_id = parse_uint(parts[2]);
          if (!isp_id || *isp_id >= isp::kNoIsp) {
            fail("flow: malformed hop ISP id \"" + parts[2] + "\"");
            hops_ok = false;
            break;
          }
          hop.isp = static_cast<isp::IspId>(*isp_id);
        }
        flow.hops.push_back(std::move(hop));
      }
      if (!hops_ok) continue;
      if (flow.hops.size() < 2) {
        fail("flow: need at least 2 observed hops, got " + std::to_string(flow.hops.size()));
        continue;
      }
      if (fields[5] != "-") {
        bool corridors_ok = true;
        for (const std::string& cid : split_fields(fields[5], ',')) {
          const auto parsed = parse_uint(cid);
          if (!parsed) {
            fail("flow: malformed corridor id \"" + cid + "\"");
            corridors_ok = false;
            break;
          }
          flow.true_corridors.push_back(static_cast<transport::CorridorId>(*parsed));
        }
        if (!corridors_ok) continue;
      }
      campaign.flows.push_back(std::move(flow));
    } else {
      fail("unknown record type \"" + fields[0] + "\"");
    }
  }
  if (!have_header) {
    sink.report(Severity::Error, source, line_no,
                "missing campaign header; totals fall back to surviving flow counts");
    campaign.total_probes = 0;
    for (const TraceFlow& flow : campaign.flows) campaign.total_probes += flow.count;
    campaign.unroutable_probes = 0;
  }
  return campaign;
}

void save_campaign(const std::string& path, const Campaign& campaign,
                   const transport::CityDatabase& cities) {
  write_file(path, serialize_campaign(campaign, cities));
}

Campaign load_campaign(const std::string& path, const transport::CityDatabase& cities,
                       DiagnosticSink& sink) {
  return parse_campaign(read_file(path), cities, sink, path);
}

}  // namespace intertubes::traceroute
