// Overlay of traceroute observations onto the constructed physical map
// (§4.3): map each consecutive hop pair onto the conduits between the two
// geolocated cities, accumulate per-conduit probe frequencies by travel
// direction, and infer *additional* conduit tenants from DNS naming hints
// — tenants the mapping pipeline never saw in any document or map.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fiber_map.hpp"
#include "traceroute/campaign.hpp"

namespace intertubes::traceroute {

enum class Direction : std::uint8_t { WestToEast, EastToWest };

struct ConduitUsage {
  std::uint64_t probes_west_east = 0;
  std::uint64_t probes_east_west = 0;
  /// ISPs observed crossing this conduit via naming hints (sorted,
  /// unique).  May include ISPs that are not tenants in the map.
  std::vector<isp::IspId> observed_isps;

  std::uint64_t total() const noexcept { return probes_west_east + probes_east_west; }
};

struct RankedConduit {
  core::ConduitId conduit = core::kNoConduit;
  std::uint64_t probes = 0;
};

struct OverlayResult {
  /// Indexed by ConduitId of the map the overlay ran against.
  std::vector<ConduitUsage> usage;
  std::uint64_t mapped_segments = 0;    ///< hop pairs resolved onto conduits
  std::uint64_t unmapped_segments = 0;  ///< no conduit path between the hop cities

  /// Top-n conduits by probe frequency in one direction (Tables 2 and 3).
  std::vector<RankedConduit> top_conduits(Direction dir, std::size_t n) const;

  /// Per-ISP count of conduits observed carrying its probe traffic,
  /// descending (Table 4).
  std::vector<std::pair<isp::IspId, std::size_t>> isps_by_conduits_used(
      std::size_t num_isps) const;
};

/// Run the overlay.  The hop→conduit resolution walks the *constructed*
/// map's conduit graph (shortest path between the two hop cities), exactly
/// as the paper overlays layer-3 links onto its physical map; it never
/// consults the flows' ground-truth corridors.
OverlayResult overlay_campaign(const core::FiberMap& map,
                               const transport::CityDatabase& cities, const Campaign& campaign);

/// Per-conduit tenant counts before/after augmenting map tenancy with
/// overlay-observed ISPs — the two CDFs of Figure 9.
struct SharingCdfData {
  std::vector<double> physical_only;      ///< per conduit: |map tenants|
  std::vector<double> with_observed;      ///< per conduit: |tenants ∪ observed|
};

SharingCdfData sharing_before_after(const core::FiberMap& map, const OverlayResult& overlay);

/// Overlay attribution accuracy against ground truth — the evaluation the
/// paper could not run.  §4.3 argues MPLS tunnels' "impact on the results
/// is limited"; here the hop→conduit attribution of every flow is graded
/// against the flow's true corridors (probe-count weighted), so the claim
/// becomes a measurement (and `bench_ablation_overlay` sweeps the MPLS
/// rate to find where it breaks).
struct OverlayAccuracy {
  double corridor_precision = 0.0;  ///< attributed corridors that are truly traversed
  double corridor_recall = 0.0;     ///< truly traversed corridors attributed
  double flows_fully_correct = 0.0; ///< probe-weighted fraction of exact matches
  std::uint64_t probes_evaluated = 0;
};

OverlayAccuracy evaluate_overlay_accuracy(const core::FiberMap& map, const Campaign& campaign);

}  // namespace intertubes::traceroute
