// Layer-3 topology over the ground-truth physical world.
//
// Routers are (ISP, city) pairs at ISP POPs; intra-ISP adjacencies are the
// ISP's deployed long-haul links (which ride corridors); inter-ISP
// adjacencies are peering/transit interconnects at cities where both
// networks have a POP.  Traceroute campaigns route over this graph — over
// *reality*, not over the constructed map — so that the overlay step can
// genuinely discover tenants the mapping pipeline missed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "isp/ground_truth.hpp"

namespace intertubes::traceroute {

using RouterIdx = std::uint32_t;
inline constexpr RouterIdx kNoRouter = 0xffffffffu;

struct Router {
  isp::IspId isp = isp::kNoIsp;
  transport::CityId city = transport::kNoCity;
};

struct L3Edge {
  RouterIdx u = kNoRouter;
  RouterIdx v = kNoRouter;
  double length_km = 0.0;                          ///< fiber distance
  bool peering = false;                            ///< inter-ISP interconnect
  std::vector<transport::CorridorId> corridors;    ///< empty for peering edges
};

struct PeeringParams {
  /// Tier-1s interconnect with each other at cities of at least this
  /// population; everyone interconnects with tier-1s wherever co-located.
  std::uint32_t tier1_peering_min_pop = 250000;
  /// Routing cost of crossing an interconnect, in km-equivalents.  Keeps
  /// paths valley-free-ish without a full BGP model.
  double peering_penalty_km = 350.0;
};

class L3Topology {
 public:
  static L3Topology from_ground_truth(const isp::GroundTruth& truth,
                                      const transport::CityDatabase& cities,
                                      const PeeringParams& params = {});

  const std::vector<Router>& routers() const noexcept { return routers_; }
  const std::vector<L3Edge>& edges() const noexcept { return edges_; }
  const std::vector<std::uint32_t>& edges_at(RouterIdx r) const;

  std::optional<RouterIdx> router_at(isp::IspId isp, transport::CityId city) const;

  /// All routers located in a city (candidate access points).
  const std::vector<RouterIdx>& routers_in(transport::CityId city) const;

  /// Shortest L3 route from router `src` to any router located at
  /// `dst_city` (weight: fiber km + peering penalties).  Returns the
  /// router sequence; empty if unreachable.
  std::vector<RouterIdx> route(RouterIdx src, transport::CityId dst_city,
                               const PeeringParams& params = {}) const;

  /// The corridors underneath a router-sequence route (concatenated
  /// corridor lists of its intra-ISP edges).
  std::vector<transport::CorridorId> route_corridors(const std::vector<RouterIdx>& route) const;

 private:
  std::vector<Router> routers_;
  std::vector<L3Edge> edges_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<std::vector<RouterIdx>> by_city_;
  std::unordered_map<std::uint64_t, RouterIdx> by_isp_city_;
  static const std::vector<RouterIdx> kNoRouters;
  static const std::vector<std::uint32_t> kNoEdges;
};

}  // namespace intertubes::traceroute
