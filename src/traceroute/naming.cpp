#include "traceroute/naming.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace intertubes::traceroute {

std::string city_code(const transport::City& city) {
  // Letters of the name, lowercased; keep the leading letter of each word
  // and following consonants until the code has four letters, then append
  // the state code.  "Salt Lake City" → "sltl" + "ut".
  std::string code;
  bool word_start = true;
  for (char ch : city.name) {
    if (code.size() >= 4) break;
    const auto lower = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    if (lower < 'a' || lower > 'z') {
      word_start = true;
      continue;
    }
    const bool vowel =
        lower == 'a' || lower == 'e' || lower == 'i' || lower == 'o' || lower == 'u';
    if (word_start || !vowel) code.push_back(lower);
    word_start = false;
  }
  // Pad very short names with their vowels ("Ocala" → "ocl" + 'a').
  if (code.size() < 3) {
    for (char ch : city.name) {
      if (code.size() >= 3) break;
      const auto lower = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      if (lower >= 'a' && lower <= 'z' &&
          code.find(lower) == std::string::npos) {
        code.push_back(lower);
      }
    }
  }
  return code + to_lower(city.state);
}

std::string isp_domain(const isp::IspProfile& profile) {
  static const std::unordered_map<std::string, std::string> kDomains = {
      {"AT&T", "att.net"},
      {"Comcast", "comcast.net"},
      {"Cogent", "cogentco.com"},
      {"EarthLink", "earthlink.net"},
      {"Integra", "integratelecom.com"},
      {"Level 3", "level3.net"},
      {"Suddenlink", "suddenlink.net"},
      {"Verizon", "verizon-gni.net"},
      {"Zayo", "zayo.com"},
      {"CenturyLink", "centurylink.net"},
      {"Cox", "cox.net"},
      {"Deutsche Telekom", "dtag.de"},
      {"HE", "he.net"},
      {"Inteliquent", "inteliquent.com"},
      {"NTT", "ntt.net"},
      {"Sprint", "sprintlink.net"},
      {"Tata", "as6453.net"},
      {"TeliaSonera", "telia.net"},
      {"TWC", "twcable.com"},
      {"XO", "xo.net"},
  };
  const auto it = kDomains.find(profile.name);
  if (it != kDomains.end()) return it->second;
  // Fallback: slug the name.
  std::string slug;
  for (char ch : to_lower(profile.name)) {
    if (std::isalnum(static_cast<unsigned char>(ch))) slug.push_back(ch);
  }
  return slug + ".net";
}

std::string router_dns_name(const isp::IspProfile& profile, const transport::City& city,
                            std::uint64_t salt) {
  const std::uint64_t h = mix64(salt ^ 0x0d15ea5eULL);
  const auto iface = static_cast<unsigned>(h % 16);
  const auto router = static_cast<unsigned>((h >> 8) % 8);
  return "ae-" + std::to_string(iface) + ".cr" + std::to_string(router) + "." +
         city_code(city) + "." + isp_domain(profile);
}

NameDecoder::NameDecoder(const transport::CityDatabase& cities,
                         const std::vector<isp::IspProfile>& profiles) {
  for (isp::IspId i = 0; i < profiles.size(); ++i) {
    by_domain_[isp_domain(profiles[i])] = i;
  }
  for (transport::CityId c = 0; c < cities.size(); ++c) {
    by_code_[city_code(cities.city(c))] = c;
  }
}

NameDecoder::Decoded NameDecoder::decode(const std::string& hostname) const {
  Decoded decoded;
  if (hostname.empty()) return decoded;
  const auto labels = split(to_lower(hostname), ".");
  if (labels.size() < 2) return decoded;

  // Domain: the last two labels.
  const std::string domain = labels[labels.size() - 2] + "." + labels.back();
  const auto domain_it = by_domain_.find(domain);
  if (domain_it != by_domain_.end()) decoded.isp = domain_it->second;

  // City code: any non-domain label that matches the gazetteer.
  for (std::size_t i = 0; i + 2 < labels.size() || (labels.size() == 2 && i < 1); ++i) {
    const auto code_it = by_code_.find(labels[i]);
    if (code_it != by_code_.end()) {
      decoded.city = code_it->second;
      break;
    }
  }
  return decoded;
}

}  // namespace intertubes::traceroute
