#include "traceroute/overlay.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>

#include "util/check.hpp"

namespace intertubes::traceroute {

using core::ConduitId;
using core::FiberMap;
using isp::IspId;
using transport::CityId;

namespace {

/// Shortest conduit path between two cities over the constructed map.
std::vector<ConduitId> conduit_path(const FiberMap& map, CityId from, CityId to) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::unordered_map<CityId, double> dist;
  std::unordered_map<CityId, ConduitId> via;
  using Entry = std::pair<double, CityId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    const auto du = dist.find(u);
    if (du != dist.end() && d > du->second) continue;
    if (u == to) break;
    for (ConduitId cid : map.conduits_at(u)) {
      const auto& c = map.conduit(cid);
      const CityId v = (c.a == u) ? c.b : c.a;
      const double nd = d + c.length_km;
      const auto dv = dist.find(v);
      if (dv == dist.end() || nd < dv->second) {
        dist[v] = nd;
        via[v] = cid;
        queue.push({nd, v});
      }
    }
  }
  if (!dist.count(to) || !(dist[to] < kInf)) return {};
  std::vector<ConduitId> path;
  CityId cur = to;
  while (cur != from) {
    const ConduitId cid = via.at(cur);
    path.push_back(cid);
    const auto& c = map.conduit(cid);
    cur = (c.a == cur) ? c.b : c.a;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

OverlayResult overlay_campaign(const FiberMap& map, const transport::CityDatabase& cities,
                               const Campaign& campaign) {
  OverlayResult result;
  result.usage.assign(map.conduits().size(), {});
  std::vector<std::set<IspId>> observed(map.conduits().size());

  // Hop-pair → conduit path cache (the expensive part of the overlay).
  std::unordered_map<std::uint64_t, std::vector<ConduitId>> path_cache;
  auto segment_path = [&](CityId a, CityId b) -> const std::vector<ConduitId>& {
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    auto it = path_cache.find(key);
    if (it == path_cache.end()) {
      it = path_cache.emplace(key, conduit_path(map, a, b)).first;
    }
    return it->second;
  };

  for (const auto& flow : campaign.flows) {
    const bool west_to_east =
        cities.city(flow.src).location.lon_deg < cities.city(flow.dst).location.lon_deg;
    for (std::size_t h = 0; h + 1 < flow.hops.size(); ++h) {
      const auto& from = flow.hops[h];
      const auto& to = flow.hops[h + 1];
      if (from.city == to.city) continue;  // interconnect inside one city
      const auto& path = segment_path(from.city, to.city);
      if (path.empty()) {
        result.unmapped_segments += flow.count;
        continue;
      }
      result.mapped_segments += flow.count;
      for (ConduitId cid : path) {
        auto& usage = result.usage[cid];
        if (west_to_east) {
          usage.probes_west_east += flow.count;
        } else {
          usage.probes_east_west += flow.count;
        }
        // Naming hints on either end of the layer-3 segment attribute the
        // segment's conduits to that ISP.
        if (from.isp != isp::kNoIsp) observed[cid].insert(from.isp);
        if (to.isp != isp::kNoIsp) observed[cid].insert(to.isp);
      }
    }
  }

  for (ConduitId cid = 0; cid < result.usage.size(); ++cid) {
    result.usage[cid].observed_isps.assign(observed[cid].begin(), observed[cid].end());
  }
  return result;
}

std::vector<RankedConduit> OverlayResult::top_conduits(Direction dir, std::size_t n) const {
  std::vector<RankedConduit> ranked;
  ranked.reserve(usage.size());
  for (ConduitId cid = 0; cid < usage.size(); ++cid) {
    const std::uint64_t probes =
        dir == Direction::WestToEast ? usage[cid].probes_west_east : usage[cid].probes_east_west;
    if (probes > 0) ranked.push_back({cid, probes});
  }
  std::sort(ranked.begin(), ranked.end(), [](const RankedConduit& x, const RankedConduit& y) {
    if (x.probes != y.probes) return x.probes > y.probes;
    return x.conduit < y.conduit;
  });
  if (ranked.size() > n) ranked.resize(n);
  return ranked;
}

std::vector<std::pair<IspId, std::size_t>> OverlayResult::isps_by_conduits_used(
    std::size_t num_isps) const {
  std::vector<std::size_t> counts(num_isps, 0);
  for (const auto& u : usage) {
    for (IspId isp_id : u.observed_isps) {
      if (isp_id < num_isps) ++counts[isp_id];
    }
  }
  std::vector<std::pair<IspId, std::size_t>> out;
  for (IspId i = 0; i < num_isps; ++i) {
    if (counts[i] > 0) out.emplace_back(i, counts[i]);
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  return out;
}

OverlayAccuracy evaluate_overlay_accuracy(const FiberMap& map, const Campaign& campaign) {
  OverlayAccuracy accuracy;
  std::unordered_map<std::uint64_t, std::vector<ConduitId>> path_cache;
  auto segment_path = [&](CityId a, CityId b) -> const std::vector<ConduitId>& {
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    auto it = path_cache.find(key);
    if (it == path_cache.end()) it = path_cache.emplace(key, conduit_path(map, a, b)).first;
    return it->second;
  };

  double precision_sum = 0.0;
  double recall_sum = 0.0;
  double exact_sum = 0.0;
  std::uint64_t weight_total = 0;
  for (const auto& flow : campaign.flows) {
    if (flow.true_corridors.empty()) continue;
    // Predicted corridor set: attribution of every observed hop segment.
    std::set<transport::CorridorId> predicted;
    for (std::size_t h = 0; h + 1 < flow.hops.size(); ++h) {
      if (flow.hops[h].city == flow.hops[h + 1].city) continue;
      for (ConduitId cid : segment_path(flow.hops[h].city, flow.hops[h + 1].city)) {
        predicted.insert(map.conduit(cid).corridor);
      }
    }
    const std::set<transport::CorridorId> truth(flow.true_corridors.begin(),
                                                flow.true_corridors.end());
    std::size_t correct = 0;
    for (auto corridor : predicted) {
      if (truth.count(corridor)) ++correct;
    }
    const double precision =
        predicted.empty() ? 0.0
                          : static_cast<double>(correct) / static_cast<double>(predicted.size());
    const double recall = static_cast<double>(correct) / static_cast<double>(truth.size());
    precision_sum += precision * static_cast<double>(flow.count);
    recall_sum += recall * static_cast<double>(flow.count);
    if (predicted == truth) exact_sum += static_cast<double>(flow.count);
    weight_total += flow.count;
  }
  if (weight_total > 0) {
    const double w = static_cast<double>(weight_total);
    accuracy.corridor_precision = precision_sum / w;
    accuracy.corridor_recall = recall_sum / w;
    accuracy.flows_fully_correct = exact_sum / w;
    accuracy.probes_evaluated = weight_total;
  }
  return accuracy;
}

SharingCdfData sharing_before_after(const FiberMap& map, const OverlayResult& overlay) {
  SharingCdfData data;
  for (const auto& conduit : map.conduits()) {
    data.physical_only.push_back(static_cast<double>(conduit.tenants.size()));
    std::set<IspId> merged(conduit.tenants.begin(), conduit.tenants.end());
    merged.insert(overlay.usage[conduit.id].observed_isps.begin(),
                  overlay.usage[conduit.id].observed_isps.end());
    data.with_observed.push_back(static_cast<double>(merged.size()));
  }
  return data;
}

}  // namespace intertubes::traceroute
