// Co-location analysis — the ArcGIS polygon-overlap substitute.
//
// Given a fiber route polyline and one or more reference infrastructure
// networks (roadway, railway, pipeline), compute the fraction of the
// route's length that lies within a buffer of each network.  This is the
// computation behind the paper's Figure 4 ("fraction of physical links
// co-located with transportation infrastructure").
#pragma once

#include <string>
#include <vector>

#include "geo/polyline.hpp"
#include "geo/spatial_index.hpp"

namespace intertubes::geo {

/// One reference network prepared for fast queries.
class ReferenceNetwork {
 public:
  ReferenceNetwork(std::string name, double cell_km = 50.0);

  void add_route(const Polyline& line);

  const std::string& name() const noexcept { return name_; }
  std::size_t segment_count() const noexcept { return index_.segment_count(); }

  /// True if p lies within buffer_km of any route of this network.
  bool covers(const GeoPoint& p, double buffer_km) const;

 private:
  std::string name_;
  SegmentIndex index_;
};

/// Per-route co-location fractions against a set of reference networks.
struct ColocationResult {
  /// fraction[i] — fraction of samples within buffer of reference i.
  std::vector<double> fraction;
  /// Fraction of samples within buffer of *at least one* reference.
  double fraction_any = 0.0;
};

/// Analyze a single route.  `sample_km` controls sampling density.
ColocationResult colocation_fractions(const Polyline& route,
                                      const std::vector<const ReferenceNetwork*>& references,
                                      double buffer_km, double sample_km = 5.0);

/// Aggregate view over many routes: the relative-frequency histogram of
/// co-location fractions (10 bins over [0,1]) for each reference and for
/// the union — the series plotted in Figure 4.
struct ColocationHistogram {
  std::vector<std::string> series_names;        // per reference + "any"
  std::vector<std::vector<double>> rel_freq;    // [series][bin], bins over [0,1]
  std::vector<double> mean_fraction;            // per series
};

ColocationHistogram colocation_histogram(const std::vector<Polyline>& routes,
                                         const std::vector<const ReferenceNetwork*>& references,
                                         double buffer_km, double sample_km = 5.0,
                                         std::size_t bins = 10);

}  // namespace intertubes::geo
