#include "geo/latency.hpp"

namespace intertubes::geo {

double fiber_delay_ms(double km) noexcept { return km / kFiberKmPerMs; }

double fiber_km_for_ms(double ms) noexcept { return ms * kFiberKmPerMs; }

double los_delay_ms(double great_circle_km) noexcept { return fiber_delay_ms(great_circle_km); }

double c_latency_ms(double great_circle_km) noexcept {
  return great_circle_km / kSpeedOfLightKmPerMs;
}

}  // namespace intertubes::geo
