// Polylines on the sphere: the geometry of fiber conduits, roads, rails
// and pipelines.  Supports length, walking to a distance/fraction,
// resampling at fixed spacing, and bounding boxes.
#pragma once

#include <vector>

#include "geo/geo_point.hpp"

namespace intertubes::geo {

struct BoundingBox {
  double min_lat = 0.0;
  double max_lat = 0.0;
  double min_lon = 0.0;
  double max_lon = 0.0;

  bool contains(const GeoPoint& p) const noexcept {
    return p.lat_deg >= min_lat && p.lat_deg <= max_lat && p.lon_deg >= min_lon &&
           p.lon_deg <= max_lon;
  }
  /// Grow the box by roughly `km` in every direction.
  BoundingBox expanded_km(double km) const noexcept;
  bool intersects(const BoundingBox& other) const noexcept;
};

/// An immutable-after-construction sequence of ≥2 vertices joined by
/// great-circle segments.  Invariant: at least two points, finite length.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<GeoPoint> points);

  static Polyline straight(const GeoPoint& a, const GeoPoint& b) {
    return Polyline(std::vector<GeoPoint>{a, b});
  }

  const std::vector<GeoPoint>& points() const noexcept { return points_; }
  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  const GeoPoint& front() const { return points_.front(); }
  const GeoPoint& back() const { return points_.back(); }

  /// Total great-circle length in km (cached at construction).
  double length_km() const noexcept { return length_km_; }

  /// Point at distance d km from the start (clamped to [0, length]).
  GeoPoint point_at_km(double d) const;

  /// Point at fraction t of the total length, t in [0, 1].
  GeoPoint point_at_fraction(double t) const;

  /// Evenly spaced samples every `spacing_km`, always including both
  /// endpoints.  spacing must be > 0.
  std::vector<GeoPoint> sample_every_km(double spacing_km) const;

  /// Minimum distance (km) from p to this polyline.
  double distance_to_km(const GeoPoint& p) const;

  /// A polyline traversing the same points in reverse.
  Polyline reversed() const;

  /// Concatenate: `other` must start where this ends (within tol_km).
  Polyline joined_with(const Polyline& other, double tol_km = 1.0) const;

  BoundingBox bounds() const noexcept { return bounds_; }

 private:
  std::vector<GeoPoint> points_;
  std::vector<double> cumulative_km_;  // cumulative length at each vertex
  double length_km_ = 0.0;
  BoundingBox bounds_{};
};

/// Fraction (0..1) of `line` whose samples lie within `buffer_km` of
/// `reference` — the core of the co-location analysis.  Sampling step is
/// `sample_km`.
double fraction_within_buffer(const Polyline& line, const Polyline& reference, double buffer_km,
                              double sample_km = 10.0);

/// Symmetric geometric similarity of two polylines: mean of the two
/// directed "fraction within buffer" measures.  Used to detect that two
/// published fiber routes occupy the same conduit.
double route_similarity(const Polyline& a, const Polyline& b, double buffer_km,
                        double sample_km = 10.0);

}  // namespace intertubes::geo
