#include "geo/geo_point.hpp"

#include <cmath>
#include <sstream>

namespace intertubes::geo {

namespace {

struct Vec3 {
  double x, y, z;
};

Vec3 to_unit_vec(const GeoPoint& p) noexcept {
  const double lat = deg_to_rad(p.lat_deg);
  const double lon = deg_to_rad(p.lon_deg);
  return {std::cos(lat) * std::cos(lon), std::cos(lat) * std::sin(lon), std::sin(lat)};
}

GeoPoint from_unit_vec(const Vec3& v) noexcept {
  const double lat = std::atan2(v.z, std::sqrt(v.x * v.x + v.y * v.y));
  const double lon = std::atan2(v.y, v.x);
  return {rad_to_deg(lat), rad_to_deg(lon)};
}

double dot(const Vec3& a, const Vec3& b) noexcept { return a.x * b.x + a.y * b.y + a.z * b.z; }

}  // namespace

double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) - std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = rad_to_deg(std::atan2(y, x));
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

GeoPoint destination(const GeoPoint& start, double bearing_deg, double dist_km) noexcept {
  const double lat1 = deg_to_rad(start.lat_deg);
  const double lon1 = deg_to_rad(start.lon_deg);
  const double theta = deg_to_rad(bearing_deg);
  const double delta = dist_km / kEarthRadiusKm;
  const double lat2 =
      std::asin(std::sin(lat1) * std::cos(delta) + std::cos(lat1) * std::sin(delta) * std::cos(theta));
  const double lon2 =
      lon1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(lat1),
                        std::cos(delta) - std::sin(lat1) * std::sin(lat2));
  double lon_deg = rad_to_deg(lon2);
  while (lon_deg > 180.0) lon_deg -= 360.0;
  while (lon_deg < -180.0) lon_deg += 360.0;
  return {rad_to_deg(lat2), lon_deg};
}

GeoPoint interpolate(const GeoPoint& a, const GeoPoint& b, double t) noexcept {
  if (t <= 0.0) return a;
  if (t >= 1.0) return b;
  const Vec3 va = to_unit_vec(a);
  const Vec3 vb = to_unit_vec(b);
  double cos_omega = dot(va, vb);
  if (cos_omega > 1.0) cos_omega = 1.0;
  if (cos_omega < -1.0) cos_omega = -1.0;
  const double omega = std::acos(cos_omega);
  if (omega < 1e-12) return a;
  const double s = std::sin(omega);
  const double wa = std::sin((1.0 - t) * omega) / s;
  const double wb = std::sin(t * omega) / s;
  const Vec3 v{wa * va.x + wb * vb.x, wa * va.y + wb * vb.y, wa * va.z + wb * vb.z};
  return from_unit_vec(v);
}

double point_to_segment_km(const GeoPoint& p, const GeoPoint& a, const GeoPoint& b) noexcept {
  // Work on a local equirectangular projection centred at the segment —
  // accurate to <1 % for segments up to a few hundred km, which is the
  // regime of transport-network edges in this library.
  const double lat0 = deg_to_rad((a.lat_deg + b.lat_deg) / 2.0);
  const double kx = std::cos(lat0) * kEarthRadiusKm * kPi / 180.0;  // km per deg lon
  const double ky = kEarthRadiusKm * kPi / 180.0;                   // km per deg lat
  const double ax = a.lon_deg * kx, ay = a.lat_deg * ky;
  const double bx = b.lon_deg * kx, by = b.lat_deg * ky;
  const double px = p.lon_deg * kx, py = p.lat_deg * ky;
  const double dx = bx - ax, dy = by - ay;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((px - ax) * dx + (py - ay) * dy) / len2;
    if (t < 0.0) t = 0.0;
    if (t > 1.0) t = 1.0;
  }
  const double cx = ax + t * dx, cy = ay + t * dy;
  const double ex = px - cx, ey = py - cy;
  return std::sqrt(ex * ex + ey * ey);
}

GeoPoint midpoint(const GeoPoint& a, const GeoPoint& b) noexcept { return interpolate(a, b, 0.5); }

std::string to_string(const GeoPoint& p) {
  std::ostringstream out;
  out.precision(4);
  out << std::fixed << "(" << p.lat_deg << ", " << p.lon_deg << ")";
  return out.str();
}

}  // namespace intertubes::geo
