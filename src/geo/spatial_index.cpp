#include "geo/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace intertubes::geo {

namespace {
// Degrees of latitude per km (longitude handled with the same cell size;
// the index is conservative, never incorrect, if cells are slightly
// rectangular in km terms).
constexpr double kDegPerKm = 180.0 / (kEarthRadiusKm * kPi);
}  // namespace

SegmentIndex::SegmentIndex(double cell_km) : cell_deg_(cell_km * kDegPerKm) {
  IT_CHECK(cell_km > 0.0);
}

std::int64_t SegmentIndex::cell_key(double lat, double lon) const noexcept {
  const auto ci = static_cast<std::int64_t>(std::floor(lat / cell_deg_));
  const auto cj = static_cast<std::int64_t>(std::floor(lon / cell_deg_));
  return (ci << 32) ^ (cj & 0xffffffffLL);
}

void SegmentIndex::add_polyline(const Polyline& line, std::uint32_t owner_id) {
  const auto& pts = line.points();
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const auto seg_idx = static_cast<std::uint32_t>(segments_.size());
    segments_.push_back({pts[i], pts[i + 1], owner_id});
    // Register the segment in every cell its bounding box touches.
    const double min_lat = std::min(pts[i].lat_deg, pts[i + 1].lat_deg);
    const double max_lat = std::max(pts[i].lat_deg, pts[i + 1].lat_deg);
    const double min_lon = std::min(pts[i].lon_deg, pts[i + 1].lon_deg);
    const double max_lon = std::max(pts[i].lon_deg, pts[i + 1].lon_deg);
    for (double lat = min_lat; ; lat += cell_deg_) {
      const double clat = std::min(lat, max_lat);
      for (double lon = min_lon; ; lon += cell_deg_) {
        const double clon = std::min(lon, max_lon);
        grid_[cell_key(clat, clon)].push_back(seg_idx);
        if (clon >= max_lon) break;
      }
      if (clat >= max_lat) break;
    }
  }
}

void SegmentIndex::visit_cells(
    const GeoPoint& p, double radius_km,
    const std::function<void(const std::vector<std::uint32_t>&)>& fn) const {
  const double radius_deg = radius_km * kDegPerKm / std::max(0.2, std::cos(deg_to_rad(p.lat_deg)));
  const auto lo_i = static_cast<std::int64_t>(std::floor((p.lat_deg - radius_deg) / cell_deg_));
  const auto hi_i = static_cast<std::int64_t>(std::floor((p.lat_deg + radius_deg) / cell_deg_));
  const auto lo_j = static_cast<std::int64_t>(std::floor((p.lon_deg - radius_deg) / cell_deg_));
  const auto hi_j = static_cast<std::int64_t>(std::floor((p.lon_deg + radius_deg) / cell_deg_));
  for (std::int64_t i = lo_i; i <= hi_i; ++i) {
    for (std::int64_t j = lo_j; j <= hi_j; ++j) {
      const std::int64_t key = (i << 32) ^ (j & 0xffffffffLL);
      const auto it = grid_.find(key);
      if (it != grid_.end()) fn(it->second);
    }
  }
}

SegmentIndex::NearestResult SegmentIndex::nearest(const GeoPoint& p, double max_radius_km) const {
  NearestResult result;
  visit_cells(p, max_radius_km, [&](const std::vector<std::uint32_t>& cell) {
    for (std::uint32_t idx : cell) {
      const auto& seg = segments_[idx];
      const double d = point_to_segment_km(p, seg.a, seg.b);
      if (d < result.distance_km) {
        result.distance_km = d;
        result.owner_id = seg.owner_id;
      }
    }
  });
  if (result.distance_km > max_radius_km) return NearestResult{};
  return result;
}

std::vector<std::uint32_t> SegmentIndex::owners_within(const GeoPoint& p, double radius_km) const {
  std::vector<std::uint32_t> owners;
  visit_cells(p, radius_km, [&](const std::vector<std::uint32_t>& cell) {
    for (std::uint32_t idx : cell) {
      const auto& seg = segments_[idx];
      if (point_to_segment_km(p, seg.a, seg.b) <= radius_km) owners.push_back(seg.owner_id);
    }
  });
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners;
}

bool SegmentIndex::anything_within(const GeoPoint& p, double radius_km) const {
  bool found = false;
  visit_cells(p, radius_km, [&](const std::vector<std::uint32_t>& cell) {
    if (found) return;
    for (std::uint32_t idx : cell) {
      const auto& seg = segments_[idx];
      if (point_to_segment_km(p, seg.a, seg.b) <= radius_km) {
        found = true;
        return;
      }
    }
  });
  return found;
}

}  // namespace intertubes::geo
