// Fiber propagation-delay model.
//
// Light in standard single-mode fiber travels at c / n with group index
// n ≈ 1.468, i.e. ≈ 204 km per millisecond — the constant the paper's §5.3
// latency analysis relies on (100 µs ≈ 20 km, 500 µs ≈ 100 km, 2 ms ≈
// 400 km; these correspondences pin one-way delay at ~0.2 km/µs... i.e. the
// paper quotes *round-trip-free* one-way propagation).
#pragma once

namespace intertubes::geo {

inline constexpr double kSpeedOfLightKmPerMs = 299792.458 / 1000.0;  // km per ms in vacuum
inline constexpr double kFiberGroupIndex = 1.468;
inline constexpr double kFiberKmPerMs = kSpeedOfLightKmPerMs / kFiberGroupIndex;  // ≈ 204.2

/// One-way propagation delay (ms) over `km` of fiber.
double fiber_delay_ms(double km) noexcept;

/// Distance (km) covered by one-way propagation of `ms` milliseconds.
double fiber_km_for_ms(double ms) noexcept;

/// Delay over a *line-of-sight* route: great-circle km through fiber glass
/// (hypothetical straight conduit, the paper's lower bound).
double los_delay_ms(double great_circle_km) noexcept;

/// c-latency: great-circle km at the vacuum speed of light — the hard
/// physical floor no fiber build-out can beat.  The gap between a path's
/// delay and this bound is what dissect/ decomposes.
double c_latency_ms(double great_circle_km) noexcept;

}  // namespace intertubes::geo
