// Geographic primitives: points on the WGS-84-ish sphere and great-circle
// math.  A spherical Earth (mean radius 6371.0088 km) is accurate to ~0.5 %
// for continental-US distances, which is far below the fidelity of the
// mapping data the paper works from.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace intertubes::geo {

inline constexpr double kEarthRadiusKm = 6371.0088;
inline constexpr double kPi = 3.14159265358979323846;

inline constexpr double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }
inline constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// A point on the sphere, in degrees.  Latitude in [-90, 90], longitude in
/// [-180, 180].  Plain data: no invariant beyond range (checked by callers
/// that construct from untrusted input).
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance in kilometres (haversine formula).
double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Initial bearing from a to b, degrees clockwise from north in [0, 360).
double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Destination point given start, bearing (degrees) and distance (km).
GeoPoint destination(const GeoPoint& start, double bearing_deg, double dist_km) noexcept;

/// Spherical linear interpolation along the great circle, t in [0, 1].
GeoPoint interpolate(const GeoPoint& a, const GeoPoint& b, double t) noexcept;

/// Cross-track distance (km) from point p to the great-circle *segment* ab:
/// the perpendicular distance if the foot of the perpendicular lies within
/// the segment, else the distance to the nearer endpoint.
double point_to_segment_km(const GeoPoint& p, const GeoPoint& a, const GeoPoint& b) noexcept;

/// Midpoint along the great circle.
GeoPoint midpoint(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Human-readable "(41.88, -87.63)".
std::string to_string(const GeoPoint& p);

}  // namespace intertubes::geo
