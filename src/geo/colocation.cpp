#include "geo/colocation.hpp"

#include "util/check.hpp"
#include "util/stats.hpp"

namespace intertubes::geo {

ReferenceNetwork::ReferenceNetwork(std::string name, double cell_km)
    : name_(std::move(name)), index_(cell_km) {}

void ReferenceNetwork::add_route(const Polyline& line) { index_.add_polyline(line, 0); }

bool ReferenceNetwork::covers(const GeoPoint& p, double buffer_km) const {
  return index_.anything_within(p, buffer_km);
}

ColocationResult colocation_fractions(const Polyline& route,
                                      const std::vector<const ReferenceNetwork*>& references,
                                      double buffer_km, double sample_km) {
  IT_CHECK(buffer_km > 0.0);
  IT_CHECK(!references.empty());
  const auto samples = route.sample_every_km(sample_km);
  ColocationResult result;
  result.fraction.assign(references.size(), 0.0);
  if (samples.empty()) return result;

  std::size_t any_count = 0;
  std::vector<std::size_t> counts(references.size(), 0);
  for (const auto& p : samples) {
    bool any = false;
    for (std::size_t r = 0; r < references.size(); ++r) {
      if (references[r]->covers(p, buffer_km)) {
        ++counts[r];
        any = true;
      }
    }
    if (any) ++any_count;
  }
  const double n = static_cast<double>(samples.size());
  for (std::size_t r = 0; r < references.size(); ++r) {
    result.fraction[r] = static_cast<double>(counts[r]) / n;
  }
  result.fraction_any = static_cast<double>(any_count) / n;
  return result;
}

ColocationHistogram colocation_histogram(const std::vector<Polyline>& routes,
                                         const std::vector<const ReferenceNetwork*>& references,
                                         double buffer_km, double sample_km, std::size_t bins) {
  IT_CHECK(!routes.empty());
  ColocationHistogram out;
  std::vector<Histogram> hists;
  for (const auto* ref : references) {
    out.series_names.push_back(ref->name());
    hists.emplace_back(0.0, 1.0 + 1e-9, bins);
  }
  out.series_names.emplace_back("any");
  hists.emplace_back(0.0, 1.0 + 1e-9, bins);

  std::vector<RunningStats> means(references.size() + 1);
  for (const auto& route : routes) {
    const auto res = colocation_fractions(route, references, buffer_km, sample_km);
    for (std::size_t r = 0; r < references.size(); ++r) {
      hists[r].add(res.fraction[r]);
      means[r].add(res.fraction[r]);
    }
    hists.back().add(res.fraction_any);
    means.back().add(res.fraction_any);
  }

  for (std::size_t s = 0; s < hists.size(); ++s) {
    std::vector<double> freq(bins, 0.0);
    for (std::size_t b = 0; b < bins; ++b) freq[b] = hists[s].relative(b);
    out.rel_freq.push_back(std::move(freq));
    out.mean_fraction.push_back(means[s].mean());
  }
  return out;
}

}  // namespace intertubes::geo
