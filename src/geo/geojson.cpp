#include "geo/geojson.hpp"

#include <sstream>

namespace intertubes::geo {

GeoProperty GeoProperty::str(std::string key, std::string value) {
  GeoProperty p;
  p.key = std::move(key);
  p.string_value = std::move(value);
  return p;
}

GeoProperty GeoProperty::num(std::string key, double value) {
  GeoProperty p;
  p.key = std::move(key);
  p.number_value = value;
  p.is_number = true;
  return p;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

std::string properties_json(const std::vector<GeoProperty>& properties) {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < properties.size(); ++i) {
    if (i) out << ",";
    const auto& p = properties[i];
    out << "\"" << json_escape(p.key) << "\":";
    if (p.is_number) {
      out << p.number_value;
    } else {
      out << "\"" << json_escape(p.string_value) << "\"";
    }
  }
  out << "}";
  return out.str();
}

std::string coord(const GeoPoint& p) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << "[" << p.lon_deg << "," << p.lat_deg << "]";
  return out.str();
}

}  // namespace

void GeoJsonWriter::add_point(const GeoPoint& p, const std::vector<GeoProperty>& properties) {
  std::ostringstream out;
  out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\",\"coordinates\":" << coord(p)
      << "},\"properties\":" << properties_json(properties) << "}";
  features_.push_back(out.str());
}

void GeoJsonWriter::add_linestring(const Polyline& line,
                                   const std::vector<GeoProperty>& properties) {
  std::ostringstream out;
  out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
  const auto& pts = line.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i) out << ",";
    out << coord(pts[i]);
  }
  out << "]},\"properties\":" << properties_json(properties) << "}";
  features_.push_back(out.str());
}

std::string GeoJsonWriter::to_string() const {
  std::ostringstream out;
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i) out << ",";
    out << features_[i];
  }
  out << "]}";
  return out.str();
}

}  // namespace intertubes::geo
