#include "geo/geojson.hpp"

#include <cctype>
#include <cstdio>
#include <optional>
#include <sstream>

#include "util/strings.hpp"

namespace intertubes::geo {

GeoProperty GeoProperty::str(std::string key, std::string value) {
  GeoProperty p;
  p.key = std::move(key);
  p.string_value = std::move(value);
  return p;
}

GeoProperty GeoProperty::num(std::string key, double value) {
  GeoProperty p;
  p.key = std::move(key);
  p.number_value = value;
  p.is_number = true;
  return p;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

std::string properties_json(const std::vector<GeoProperty>& properties) {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < properties.size(); ++i) {
    if (i) out << ",";
    const auto& p = properties[i];
    out << "\"" << json_escape(p.key) << "\":";
    if (p.is_number) {
      out << p.number_value;
    } else {
      out << "\"" << json_escape(p.string_value) << "\"";
    }
  }
  out << "}";
  return out.str();
}

std::string coord(const GeoPoint& p) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << "[" << p.lon_deg << "," << p.lat_deg << "]";
  return out.str();
}

}  // namespace

void GeoJsonWriter::add_point(const GeoPoint& p, const std::vector<GeoProperty>& properties) {
  std::ostringstream out;
  out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\",\"coordinates\":" << coord(p)
      << "},\"properties\":" << properties_json(properties) << "}";
  features_.push_back(out.str());
}

void GeoJsonWriter::add_linestring(const Polyline& line,
                                   const std::vector<GeoProperty>& properties) {
  std::ostringstream out;
  out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
  const auto& pts = line.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i) out << ",";
    out << coord(pts[i]);
  }
  out << "]},\"properties\":" << properties_json(properties) << "}";
  features_.push_back(out.str());
}

std::string GeoJsonWriter::to_string() const {
  std::ostringstream out;
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i) out << ",";
    out << features_[i];
  }
  out << "]}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Reader.

namespace {

/// A JSON value tree.  Objects keep insertion order; `line` is where the
/// value started in the input, for diagnostics.
struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;
  std::size_t line = 1;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent JSON parser with line tracking.  Syntax errors report
/// one Error diagnostic and abandon the parse (a JSON document with broken
/// framing has no trustworthy remainder to salvage).
class JsonParser {
 public:
  JsonParser(const std::string& text, DiagnosticSink& sink, const std::string& source)
      : text_(text), sink_(sink), source_(source) {}

  bool parse_document(JsonValue& out) {
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after JSON document");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    sink_.report(Severity::Error, source_, line_, message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, const char* what) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return fail(std::string("expected ") + what);
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    out.line = line_;
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.type = JsonValue::Type::String; return parse_string(out.str_v);
      case 't': return parse_literal("true", out, true);
      case 'f': return parse_literal("false", out, false);
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out.type = JsonValue::Type::Null;
          return true;
        }
        return fail("malformed literal");
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view lit, JsonValue& out, bool value) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return fail("malformed literal");
    pos_ += lit.size();
    out.type = JsonValue::Type::Bool;
    out.bool_v = value;
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    const auto parsed = parse_double(std::string_view(text_).substr(start, pos_ - start));
    if (!parsed) return fail("malformed number");
    out.type = JsonValue::Type::Number;
    out.num_v = *parsed;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\n') return fail("unterminated string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("malformed \\u escape");
          }
          // ASCII round-trips (the writer only escapes control chars);
          // anything wider degrades to '?' rather than failing the parse.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return fail("unknown escape sequence");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    out.type = JsonValue::Type::Array;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.arr.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    out.type = JsonValue::Type::Object;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':', "':' after object key")) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.obj.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  DiagnosticSink& sink_;
  const std::string& source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

/// Interpret one [lon, lat] coordinate pair; nullopt (no diagnostic — the
/// caller owns the per-feature report) on shape or range violations.
std::optional<GeoPoint> coordinate(const JsonValue& v) {
  if (v.type != JsonValue::Type::Array || v.arr.size() != 2 ||
      v.arr[0].type != JsonValue::Type::Number || v.arr[1].type != JsonValue::Type::Number) {
    return std::nullopt;
  }
  const double lon = v.arr[0].num_v;
  const double lat = v.arr[1].num_v;
  if (lon < -180.0 || lon > 180.0 || lat < -90.0 || lat > 90.0) return std::nullopt;
  return GeoPoint{lat, lon};
}

/// Interpret one feature object; false quarantines it (the caller reports).
bool interpret_feature(const JsonValue& v, GeoFeature& out, std::string& why,
                       DiagnosticSink& sink, const std::string& source) {
  if (v.type != JsonValue::Type::Object) {
    why = "feature is not an object";
    return false;
  }
  const JsonValue* type = v.find("type");
  if (!type || type->type != JsonValue::Type::String || type->str_v != "Feature") {
    why = "feature has no \"type\": \"Feature\"";
    return false;
  }
  const JsonValue* geometry = v.find("geometry");
  if (!geometry || geometry->type != JsonValue::Type::Object) {
    why = "feature has no geometry object";
    return false;
  }
  const JsonValue* gtype = geometry->find("type");
  const JsonValue* coords = geometry->find("coordinates");
  if (!gtype || gtype->type != JsonValue::Type::String || !coords) {
    why = "geometry lacks type or coordinates";
    return false;
  }
  if (gtype->str_v == "Point") {
    out.kind = GeoFeature::Kind::Point;
    const auto p = coordinate(*coords);
    if (!p) {
      why = "malformed or out-of-range Point coordinates";
      return false;
    }
    out.points.push_back(*p);
  } else if (gtype->str_v == "LineString") {
    out.kind = GeoFeature::Kind::LineString;
    if (coords->type != JsonValue::Type::Array || coords->arr.size() < 2) {
      why = "LineString needs >= 2 coordinate pairs";
      return false;
    }
    for (const JsonValue& pair : coords->arr) {
      const auto p = coordinate(pair);
      if (!p) {
        why = "malformed or out-of-range LineString coordinate";
        return false;
      }
      out.points.push_back(*p);
    }
  } else {
    why = "unsupported geometry type: " + gtype->str_v;
    return false;
  }
  if (const JsonValue* properties = v.find("properties")) {
    if (properties->type == JsonValue::Type::Object) {
      for (const auto& [key, value] : properties->obj) {
        if (value.type == JsonValue::Type::String) {
          out.properties.push_back(GeoProperty::str(key, value.str_v));
        } else if (value.type == JsonValue::Type::Number) {
          out.properties.push_back(GeoProperty::num(key, value.num_v));
        } else {
          sink.report(Severity::Warning, source, value.line,
                      "dropping property \"" + key + "\": unsupported value type");
        }
      }
    }
  }
  return true;
}

}  // namespace

std::vector<GeoFeature> parse_geojson(const std::string& text, DiagnosticSink& sink,
                                      const std::string& source) {
  std::vector<GeoFeature> features;
  JsonValue root;
  if (!JsonParser(text, sink, source).parse_document(root)) return features;
  if (root.type != JsonValue::Type::Object) {
    sink.report(Severity::Error, source, root.line, "root is not a FeatureCollection object");
    return features;
  }
  const JsonValue* type = root.find("type");
  if (!type || type->type != JsonValue::Type::String || type->str_v != "FeatureCollection") {
    sink.report(Severity::Error, source, root.line,
                "root \"type\" is not \"FeatureCollection\"");
    return features;
  }
  const JsonValue* list = root.find("features");
  if (!list || list->type != JsonValue::Type::Array) {
    sink.report(Severity::Error, source, root.line, "missing \"features\" array");
    return features;
  }
  for (const JsonValue& entry : list->arr) {
    GeoFeature feature;
    std::string why;
    if (interpret_feature(entry, feature, why, sink, source)) {
      features.push_back(std::move(feature));
    } else {
      sink.report(Severity::Error, source, entry.line, "feature quarantined: " + why);
    }
  }
  return features;
}

}  // namespace intertubes::geo
