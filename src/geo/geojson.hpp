// Minimal GeoJSON (RFC 7946) writer — enough to export maps of the
// constructed infrastructure (Figure 1's conduit map, the transport
// layers of Figures 2–3, and the annotated traffic/delay maps the paper
// lists as future work) for inspection in any GIS viewer.
#pragma once

#include <string>
#include <vector>

#include "geo/polyline.hpp"

namespace intertubes::geo {

/// A property bag entry; values are emitted as JSON strings or numbers.
struct GeoProperty {
  std::string key;
  std::string string_value;
  double number_value = 0.0;
  bool is_number = false;

  static GeoProperty str(std::string key, std::string value);
  static GeoProperty num(std::string key, double value);
};

/// Incremental FeatureCollection builder.
class GeoJsonWriter {
 public:
  void add_point(const GeoPoint& p, const std::vector<GeoProperty>& properties = {});
  void add_linestring(const Polyline& line, const std::vector<GeoProperty>& properties = {});

  std::size_t feature_count() const noexcept { return features_.size(); }

  /// Serialize the FeatureCollection.
  std::string to_string() const;

 private:
  std::vector<std::string> features_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace intertubes::geo
