// Minimal GeoJSON (RFC 7946) writer and reader — enough to export maps of
// the constructed infrastructure (Figure 1's conduit map, the transport
// layers of Figures 2–3, and the annotated traffic/delay maps the paper
// lists as future work) for inspection in any GIS viewer, and to ingest
// such files back (externally geocoded route geometry is exactly the kind
// of noisy input §2's pipeline must survive).
#pragma once

#include <string>
#include <vector>

#include "geo/polyline.hpp"
#include "util/diag.hpp"

namespace intertubes::geo {

/// A property bag entry; values are emitted as JSON strings or numbers.
struct GeoProperty {
  std::string key;
  std::string string_value;
  double number_value = 0.0;
  bool is_number = false;

  static GeoProperty str(std::string key, std::string value);
  static GeoProperty num(std::string key, double value);
};

/// Incremental FeatureCollection builder.
class GeoJsonWriter {
 public:
  void add_point(const GeoPoint& p, const std::vector<GeoProperty>& properties = {});
  void add_linestring(const Polyline& line, const std::vector<GeoProperty>& properties = {});

  std::size_t feature_count() const noexcept { return features_.size(); }

  /// Serialize the FeatureCollection.
  std::string to_string() const;

 private:
  std::vector<std::string> features_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// One parsed GeoJSON feature.  Only the geometry types the writer emits
/// (Point, LineString) are supported; properties keep string and number
/// values.
struct GeoFeature {
  enum class Kind : std::uint8_t { Point, LineString };
  Kind kind = Kind::Point;
  /// Exactly one point for Point features, >= 2 for LineString.
  std::vector<GeoPoint> points;
  std::vector<GeoProperty> properties;
};

/// Parse a GeoJSON FeatureCollection, reporting defects into `sink` with
/// the 1-based line number in the input text.  Document-level defects
/// (malformed JSON, wrong root type) abandon the parse and return what
/// was gathered so far; feature-level defects (unsupported geometry, bad
/// or out-of-range coordinates, too few LineString points) quarantine
/// that feature and keep the rest.  Property values that are neither
/// string nor number are dropped with a Warning.
std::vector<GeoFeature> parse_geojson(const std::string& text, DiagnosticSink& sink,
                                      const std::string& source = "<geojson>");

}  // namespace intertubes::geo
