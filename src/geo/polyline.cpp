#include "geo/polyline.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace intertubes::geo {

BoundingBox BoundingBox::expanded_km(double km) const noexcept {
  const double dlat = km / (kEarthRadiusKm * kPi / 180.0);
  const double mid_lat = deg_to_rad((min_lat + max_lat) / 2.0);
  const double coslat = std::max(0.1, std::cos(mid_lat));
  const double dlon = dlat / coslat;
  return {min_lat - dlat, max_lat + dlat, min_lon - dlon, max_lon + dlon};
}

bool BoundingBox::intersects(const BoundingBox& other) const noexcept {
  return !(other.min_lat > max_lat || other.max_lat < min_lat || other.min_lon > max_lon ||
           other.max_lon < min_lon);
}

Polyline::Polyline(std::vector<GeoPoint> points) : points_(std::move(points)) {
  IT_CHECK_MSG(points_.size() >= 2, "polyline needs at least 2 points");
  cumulative_km_.resize(points_.size());
  cumulative_km_[0] = 0.0;
  bounds_ = {points_[0].lat_deg, points_[0].lat_deg, points_[0].lon_deg, points_[0].lon_deg};
  for (std::size_t i = 1; i < points_.size(); ++i) {
    cumulative_km_[i] = cumulative_km_[i - 1] + distance_km(points_[i - 1], points_[i]);
    bounds_.min_lat = std::min(bounds_.min_lat, points_[i].lat_deg);
    bounds_.max_lat = std::max(bounds_.max_lat, points_[i].lat_deg);
    bounds_.min_lon = std::min(bounds_.min_lon, points_[i].lon_deg);
    bounds_.max_lon = std::max(bounds_.max_lon, points_[i].lon_deg);
  }
  length_km_ = cumulative_km_.back();
}

GeoPoint Polyline::point_at_km(double d) const {
  IT_CHECK(!points_.empty());
  if (d <= 0.0) return points_.front();
  if (d >= length_km_) return points_.back();
  // Binary search for the segment containing distance d.
  const auto it = std::upper_bound(cumulative_km_.begin(), cumulative_km_.end(), d);
  const auto idx = static_cast<std::size_t>(it - cumulative_km_.begin());
  const std::size_t seg = idx - 1;
  const double seg_len = cumulative_km_[seg + 1] - cumulative_km_[seg];
  const double t = seg_len > 0.0 ? (d - cumulative_km_[seg]) / seg_len : 0.0;
  return interpolate(points_[seg], points_[seg + 1], t);
}

GeoPoint Polyline::point_at_fraction(double t) const { return point_at_km(t * length_km_); }

std::vector<GeoPoint> Polyline::sample_every_km(double spacing_km) const {
  IT_CHECK(spacing_km > 0.0);
  std::vector<GeoPoint> out;
  for (double d = 0.0; d < length_km_; d += spacing_km) out.push_back(point_at_km(d));
  out.push_back(points_.back());
  return out;
}

double Polyline::distance_to_km(const GeoPoint& p) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    best = std::min(best, point_to_segment_km(p, points_[i], points_[i + 1]));
  }
  return best;
}

Polyline Polyline::reversed() const {
  std::vector<GeoPoint> pts(points_.rbegin(), points_.rend());
  return Polyline(std::move(pts));
}

Polyline Polyline::joined_with(const Polyline& other, double tol_km) const {
  IT_CHECK_MSG(distance_km(back(), other.front()) <= tol_km,
               "polylines do not meet at a common point");
  std::vector<GeoPoint> pts = points_;
  pts.insert(pts.end(), other.points().begin() + 1, other.points().end());
  return Polyline(std::move(pts));
}

double fraction_within_buffer(const Polyline& line, const Polyline& reference, double buffer_km,
                              double sample_km) {
  IT_CHECK(buffer_km > 0.0);
  const auto samples = line.sample_every_km(sample_km);
  if (samples.empty()) return 0.0;
  const BoundingBox ref_box = reference.bounds().expanded_km(buffer_km);
  std::size_t within = 0;
  for (const auto& p : samples) {
    if (!ref_box.contains(p)) continue;
    if (reference.distance_to_km(p) <= buffer_km) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(samples.size());
}

double route_similarity(const Polyline& a, const Polyline& b, double buffer_km, double sample_km) {
  if (!a.bounds().expanded_km(buffer_km).intersects(b.bounds())) return 0.0;
  const double f1 = fraction_within_buffer(a, b, buffer_km, sample_km);
  const double f2 = fraction_within_buffer(b, a, buffer_km, sample_km);
  return (f1 + f2) / 2.0;
}

}  // namespace intertubes::geo
