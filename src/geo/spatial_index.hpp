// A grid-hash spatial index over polyline segments, so that "distance of a
// point to the nearest road/rail" queries during co-location analysis are
// sub-linear instead of scanning every edge of the transport network.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geo/polyline.hpp"

namespace intertubes::geo {

/// Index entry: one great-circle segment of a registered polyline, tagged
/// with the id supplied at registration time.
struct IndexedSegment {
  GeoPoint a;
  GeoPoint b;
  std::uint32_t owner_id;
};

/// Spatial hash over a fixed lat/lon cell grid.  The cell size is chosen at
/// construction in km (converted to degrees at the latitude of the
/// continental US).  Queries examine the 3×3 (or larger) neighbourhood of
/// cells needed to cover the search radius.
///
/// Thread safety: construction and add_polyline() are single-writer only.
/// Once building is finished, all const queries (nearest, owners_within,
/// anything_within, segment_count) are safe to call concurrently from any
/// number of threads — the index holds no lazily initialised or mutable
/// state.  The serve/ snapshot read path relies on this contract.
class SegmentIndex {
 public:
  explicit SegmentIndex(double cell_km = 50.0);

  /// Register all segments of `line` under `owner_id`.
  void add_polyline(const Polyline& line, std::uint32_t owner_id);

  std::size_t segment_count() const noexcept { return segments_.size(); }

  /// Distance (km) from p to the nearest indexed segment, and the id of its
  /// owner.  Returns infinity / owner npos when the index is empty or
  /// nothing lies within `max_radius_km`.
  struct NearestResult {
    double distance_km = std::numeric_limits<double>::infinity();
    std::uint32_t owner_id = std::numeric_limits<std::uint32_t>::max();
  };
  NearestResult nearest(const GeoPoint& p, double max_radius_km) const;

  /// All distinct owner ids with a segment within radius_km of p.
  std::vector<std::uint32_t> owners_within(const GeoPoint& p, double radius_km) const;

  /// True if any indexed segment lies within radius_km of p.
  bool anything_within(const GeoPoint& p, double radius_km) const;

 private:
  std::int64_t cell_key(double lat, double lon) const noexcept;
  void visit_cells(const GeoPoint& p, double radius_km,
                   const std::function<void(const std::vector<std::uint32_t>&)>& fn) const;

  double cell_deg_;
  std::vector<IndexedSegment> segments_;
  // cell key → indices into segments_
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> grid_;
};

}  // namespace intertubes::geo
