#include "worldgen/worldgen.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <unordered_set>

#include "core/dataset_io.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace intertubes::worldgen {

using isp::IspId;
using isp::IspProfile;
using transport::CityId;
using transport::CorridorId;
using transport::TransportMode;

namespace {

// --------------------------------------------------------------------------
// Continent layout

struct ContinentLayout {
  geo::GeoPoint center;
  double a_deg = 0.0;  ///< longitude semi-axis
  double b_deg = 0.0;  ///< latitude semi-axis
  std::size_t num_cities = 0;
  std::string code;
};

std::size_t auto_continents(double scale) {
  if (scale <= 1.0) return 1;
  const auto c = static_cast<std::size_t>(1.0 + std::floor(std::log2(scale)));
  return std::clamp<std::size_t>(c, 1, 12);
}

std::vector<ContinentLayout> layout_continents(const WorldSpec& spec, std::size_t num_continents,
                                               std::size_t total_cities,
                                               std::size_t paper_cities) {
  std::vector<ContinentLayout> out(num_continents);
  const double spacing = 320.0 / static_cast<double>(num_continents);
  for (std::size_t c = 0; c < num_continents; ++c) {
    Rng rng(mix64(spec.seed ^ (0xc0271e17ULL * (c + 1))));
    auto& lay = out[c];
    // Cities split evenly; the remainder goes to the westernmost meshes.
    lay.num_cities = total_cities / num_continents + (c < total_cities % num_continents ? 1 : 0);
    lay.num_cities = std::max<std::size_t>(lay.num_cities, 6);
    // Landmass grows with the square root of its city count relative to
    // the paper world, so density rises with scale (metro densification)
    // instead of the ellipse swallowing the ocean gaps cables need.
    const double f = std::sqrt(static_cast<double>(lay.num_cities) /
                               static_cast<double>(std::max<std::size_t>(paper_cities, 1)));
    lay.center.lon_deg = -160.0 + (static_cast<double>(c) + 0.5) * spacing;
    lay.center.lat_deg = rng.uniform(-25.0, 40.0);
    lay.a_deg = std::min(24.0 * std::clamp(f, 0.6, 3.2), 0.38 * spacing);
    lay.b_deg = std::min(10.0 * std::clamp(f, 0.6, 3.2), 62.0 - std::abs(lay.center.lat_deg));
    lay.code = {static_cast<char>('A' + c / 26), static_cast<char>('A' + c % 26)};
  }
  return out;
}

// --------------------------------------------------------------------------
// City synthesis

const char* const kNameHeads[] = {"Bel", "Cor", "Dan", "El",  "Fen",  "Gar", "Hal", "Ist", "Jor",
                                  "Kel", "Lor", "Mar", "Nor", "Osk",  "Per", "Quin", "Ros", "Sel",
                                  "Tor", "Ul",  "Ver", "Wes", "Xan",  "Yor", "Zel"};
const char* const kNameMids[] = {"a", "e", "i", "o", "u", "ar", "en", "il", "on", "ur"};
const char* const kNameTails[] = {"burg",  "by",   "dale", "field", "ford", "gate",
                                  "ham",   "haven", "mont", "mouth", "port", "ridge",
                                  "side",  "stad",  "ton",  "ville", "wick", "worth"};

std::string synth_name(Rng& rng, std::unordered_set<std::string>& used) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string name = kNameHeads[rng.next_below(std::size(kNameHeads))];
    name += kNameMids[rng.next_below(std::size(kNameMids))];
    name += kNameTails[rng.next_below(std::size(kNameTails))];
    if (used.insert(name).second) return name;
  }
  // Combinatorially exhausted (only plausible at extreme per-continent
  // sizes): disambiguate with a counter.
  for (std::size_t n = 2;; ++n) {
    std::string name = kNameHeads[rng.next_below(std::size(kNameHeads))];
    name += kNameTails[rng.next_below(std::size(kNameTails))];
    name += " " + std::to_string(n);
    if (used.insert(name).second) return name;
  }
}

transport::Region region_of(const ContinentLayout& lay, double lon_deg) {
  const double t =
      std::clamp((lon_deg - (lay.center.lon_deg - lay.a_deg)) / (2.0 * lay.a_deg), 0.0, 0.999);
  return static_cast<transport::Region>(static_cast<int>(t * 5.0));
}

std::vector<transport::City> synth_cities(const WorldSpec& spec, const ContinentLayout& lay,
                                          std::size_t continent_index) {
  Rng rng(mix64(spec.seed ^ (0xc171e500b5ULL * (continent_index + 1))));
  const std::size_t n = lay.num_cities;
  const std::size_t anchors = std::min<std::size_t>(n, std::clamp<std::size_t>(n / 18, 4, 48));

  const auto sample_in_ellipse = [&]() {
    for (;;) {
      const double u = rng.uniform(-1.0, 1.0);
      const double v = rng.uniform(-1.0, 1.0);
      if (u * u + v * v > 1.0) continue;
      return geo::GeoPoint{lay.center.lat_deg + v * lay.b_deg, lay.center.lon_deg + u * lay.a_deg};
    }
  };

  std::vector<transport::City> cities;
  cities.reserve(n);
  std::unordered_set<std::string> used_names;
  std::vector<double> anchor_mass;

  // Anchor metros: uniform in the ellipse with a Zipf-ish population tail.
  for (std::size_t i = 0; i < anchors; ++i) {
    transport::City city;
    city.name = synth_name(rng, used_names);
    city.state = lay.code;
    city.location = sample_in_ellipse();
    const double pop = 8.5e6 * std::pow(static_cast<double>(i + 1), -0.9) * rng.uniform(0.75, 1.25);
    city.population = static_cast<std::uint32_t>(std::max(pop, 4.0e5));
    city.region = region_of(lay, city.location.lon_deg);
    anchor_mass.push_back(static_cast<double>(city.population));
    cities.push_back(std::move(city));
  }

  // Satellites cluster around population-weighted anchors.
  for (std::size_t i = anchors; i < n; ++i) {
    const std::size_t k = rng.weighted_pick(anchor_mass);
    transport::City city;
    city.name = synth_name(rng, used_names);
    city.state = lay.code;
    bool placed = false;
    for (int attempt = 0; attempt < 16 && !placed; ++attempt) {
      const geo::GeoPoint p{cities[k].location.lat_deg + rng.normal(0.0, 0.16 * lay.b_deg),
                            cities[k].location.lon_deg + rng.normal(0.0, 0.16 * lay.a_deg)};
      const double du = (p.lon_deg - lay.center.lon_deg) / lay.a_deg;
      const double dv = (p.lat_deg - lay.center.lat_deg) / lay.b_deg;
      if (du * du + dv * dv <= 1.0) {
        city.location = p;
        placed = true;
      }
    }
    if (!placed) city.location = sample_in_ellipse();
    city.population =
        static_cast<std::uint32_t>(std::exp(rng.uniform(std::log(1.8e4), std::log(5.2e5))));
    city.region = region_of(lay, city.location.lon_deg);
    cities.push_back(std::move(city));
  }
  return cities;
}

// --------------------------------------------------------------------------
// Per-continent profiles and meshes

bool is_global_carrier(const IspProfile& p) { return p.kind == isp::IspKind::Tier1; }

/// The per-continent deployment profile set: every default profile, with
/// footprint sizes scaled to the continent's share of the world and local
/// (non-Tier1) carriers renamed per continent so profile names stay
/// globally unique.  Order matches default_profiles().
std::vector<IspProfile> continent_profiles(const ContinentLayout& lay, std::size_t paper_cities,
                                           bool suffix_locals) {
  const double f =
      static_cast<double>(lay.num_cities) / static_cast<double>(std::max<std::size_t>(paper_cities, 1));
  std::vector<IspProfile> out = isp::default_profiles();
  for (auto& p : out) {
    if (suffix_locals && !is_global_carrier(p)) p.name += " (" + lay.code + ")";
    p.target_pops = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(static_cast<double>(p.target_pops) * f)), 3,
        lay.num_cities);
    p.express_links = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(static_cast<double>(p.express_links) *
                                                 std::min(f, 4.0))));
  }
  return out;
}

struct LocalMesh {
  transport::CityDatabase cities;
  transport::TransportBundle bundle;
  transport::RightOfWayRegistry row;
  isp::GroundTruth truth;
};

LocalMesh make_mesh(const WorldSpec& spec, const ContinentLayout& lay, std::size_t ci,
                    std::size_t paper_cities, bool suffix_locals) {
  transport::CityDatabase cities(synth_cities(spec, lay, ci));
  transport::NetworkGenParams net = spec.network;
  net.seed = mix64(spec.seed ^ (0x7e11a2d4c6e8f0abULL * (ci + 1)));
  transport::TransportBundle bundle = transport::generate_bundle(cities, net);
  transport::RightOfWayRegistry row(bundle);
  isp::GroundTruthParams gt = spec.ground_truth;
  gt.seed = mix64(spec.seed ^ (0x97a3d5f1c2e4b687ULL * (ci + 1)));
  isp::GroundTruth truth =
      isp::generate_ground_truth(cities, row, continent_profiles(lay, paper_cities, suffix_locals), gt);
  return LocalMesh{std::move(cities), std::move(bundle), std::move(row), std::move(truth)};
}

// --------------------------------------------------------------------------
// Submarine cables

/// Seaward cable geometry between two landing stations: great-circle
/// interpolation with a perpendicular sin(pi t) bulge (the undersea-festoon
/// idiom), keeping the wet segment off the straight line so its latency
/// profile is distinct from a hypothetical land path.
geo::Polyline cable_arc(const geo::GeoPoint& pa, const geo::GeoPoint& pb, Rng& rng) {
  const double d = geo::distance_km(pa, pb);
  const double amp = rng.uniform(0.04, 0.10) * d;
  const double side = rng.chance(0.5) ? 1.0 : -1.0;
  const auto interior = std::clamp<std::size_t>(static_cast<std::size_t>(d / 250.0), 8, 48);
  std::vector<geo::GeoPoint> pts;
  pts.reserve(interior + 2);
  pts.push_back(pa);
  for (std::size_t i = 1; i <= interior; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(interior + 1);
    const geo::GeoPoint on_gc = geo::interpolate(pa, pb, t);
    const double bearing = geo::initial_bearing_deg(on_gc, pb);
    const double offset = side * amp * std::sin(geo::kPi * t) +
                          rng.normal(0.0, 0.01 * d / static_cast<double>(interior + 1));
    pts.push_back(geo::destination(on_gc, bearing + 90.0, offset));
  }
  pts.push_back(pb);
  return geo::Polyline(std::move(pts));
}

/// Coastal landing candidates of a continent facing east (+1) or west
/// (-1): the cities in the facing-most fifth of the mesh, best first by a
/// coast-proximity x population score.
std::vector<CityId> landing_candidates(const transport::CityDatabase& cities, int facing) {
  std::vector<std::pair<double, CityId>> scored;
  for (CityId id = 0; id < cities.size(); ++id) {
    const auto& c = cities.city(id);
    const double coast = static_cast<double>(facing) * c.location.lon_deg;
    scored.emplace_back(coast + 0.35 * std::log1p(static_cast<double>(c.population)), id);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  const std::size_t keep = std::max<std::size_t>(4, cities.size() / 5);
  std::vector<CityId> out;
  for (std::size_t i = 0; i < keep && i < scored.size(); ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace

// --------------------------------------------------------------------------
// World

World::World(WorldSpec spec, transport::CityDatabase cities, transport::TransportBundle bundle,
             transport::TransportNetwork submarine, std::vector<ContinentInfo> continents)
    : spec_(std::move(spec)),
      cities_(std::move(cities)),
      bundle_(std::move(bundle)),
      submarine_(std::move(submarine)),
      row_(bundle_, &submarine_),
      continents_(std::move(continents)) {}

std::size_t World::continent_of(CityId id) const {
  for (std::size_t c = 0; c < continents_.size(); ++c) {
    if (continents_[c].contains_city(id)) return c;
  }
  IT_CHECK_MSG(false, "city id outside every continent range");
  return continents_.size();
}

std::string World::dataset() const {
  return core::serialize_dataset(map_, cities_, row_, truth_.profiles());
}

World generate_world(const WorldSpec& spec, sim::Executor* executor) {
  IT_CHECK_MSG(spec.scale > 0.0, "WorldSpec.scale must be positive");
  const std::size_t paper_cities = transport::CityDatabase::us_default().size();
  const std::size_t total_cities = std::max<std::size_t>(
      static_cast<std::size_t>(std::llround(spec.scale * static_cast<double>(paper_cities))), 6);
  const std::size_t num_continents =
      spec.continents > 0 ? spec.continents : auto_continents(spec.scale);
  IT_CHECK_MSG(num_continents <= 312, "continent count out of range");
  const bool suffix_locals = num_continents > 1;

  const auto layouts = layout_continents(spec, num_continents, total_cities, paper_cities);

  // Per-continent meshes: each is a pure function of (spec, index), so the
  // parallel fan-out merges bit-identically in continent order.
  std::vector<std::unique_ptr<LocalMesh>> meshes;
  if (executor && num_continents > 1) {
    meshes = executor->parallel_map<std::unique_ptr<LocalMesh>>(num_continents, [&](std::size_t ci) {
      return std::make_unique<LocalMesh>(make_mesh(spec, layouts[ci], ci, paper_cities, suffix_locals));
    });
  } else {
    meshes.reserve(num_continents);
    for (std::size_t ci = 0; ci < num_continents; ++ci) {
      meshes.push_back(
          std::make_unique<LocalMesh>(make_mesh(spec, layouts[ci], ci, paper_cities, suffix_locals)));
    }
  }

  // ---- merge cities ------------------------------------------------------
  std::vector<ContinentInfo> continents(num_continents);
  std::vector<CityId> city_offset(num_continents, 0);
  std::vector<transport::City> all_cities;
  for (std::size_t ci = 0; ci < num_continents; ++ci) {
    city_offset[ci] = static_cast<CityId>(all_cities.size());
    continents[ci].code = layouts[ci].code;
    continents[ci].center = layouts[ci].center;
    continents[ci].lon_semi_axis_deg = layouts[ci].a_deg;
    continents[ci].lat_semi_axis_deg = layouts[ci].b_deg;
    continents[ci].city_begin = city_offset[ci];
    for (const auto& c : meshes[ci]->cities.all()) all_cities.push_back(c);
    continents[ci].city_end = static_cast<CityId>(all_cities.size());
  }
  const std::size_t num_cities = all_cities.size();

  // ---- merge transport networks per mode ---------------------------------
  const auto merge_mode = [&](TransportMode mode) {
    std::vector<transport::TransportEdge> merged;
    for (std::size_t ci = 0; ci < num_continents; ++ci) {
      const transport::TransportNetwork& net = mode == TransportMode::Road ? meshes[ci]->bundle.road
                                               : mode == TransportMode::Rail
                                                   ? meshes[ci]->bundle.rail
                                                   : meshes[ci]->bundle.pipeline;
      for (const auto& e : net.edges()) {
        transport::TransportEdge ge = e;
        ge.id = static_cast<transport::EdgeId>(merged.size());
        ge.a = e.a + city_offset[ci];
        ge.b = e.b + city_offset[ci];
        merged.push_back(std::move(ge));
      }
    }
    return transport::TransportNetwork(mode, std::move(merged), num_cities);
  };
  transport::TransportBundle bundle{merge_mode(TransportMode::Road),
                                    merge_mode(TransportMode::Rail),
                                    merge_mode(TransportMode::Pipeline)};

  // Global corridor layout mirrors RightOfWayRegistry's insertion order:
  // all roads (by continent), all rails, all pipelines, then cables.
  std::vector<std::size_t> road_base(num_continents), rail_base(num_continents),
      pipe_base(num_continents);
  {
    std::size_t roads = 0, rails = 0, pipes = 0;
    for (std::size_t ci = 0; ci < num_continents; ++ci) {
      road_base[ci] = roads;
      roads += meshes[ci]->bundle.road.edges().size();
    }
    for (std::size_t ci = 0; ci < num_continents; ++ci) {
      rail_base[ci] = roads + rails;
      rails += meshes[ci]->bundle.rail.edges().size();
    }
    for (std::size_t ci = 0; ci < num_continents; ++ci) {
      pipe_base[ci] = roads + rails + pipes;
      pipes += meshes[ci]->bundle.pipeline.edges().size();
    }
  }
  const std::size_t land_corridors = bundle.road.edges().size() + bundle.rail.edges().size() +
                                     bundle.pipeline.edges().size();
  const auto remap_corridor = [&](std::size_t ci, CorridorId local) -> CorridorId {
    const std::size_t roads = meshes[ci]->bundle.road.edges().size();
    const std::size_t rails = meshes[ci]->bundle.rail.edges().size();
    if (local < roads) return static_cast<CorridorId>(road_base[ci] + local);
    if (local < roads + rails) return static_cast<CorridorId>(rail_base[ci] + (local - roads));
    return static_cast<CorridorId>(pipe_base[ci] + (local - roads - rails));
  };

  // ---- plan submarine cables ---------------------------------------------
  struct PlannedCable {
    std::size_t u = 0, v = 0;            // continents
    CityId landing_u = 0, landing_v = 0; // local ids
  };
  std::vector<PlannedCable> planned;
  if (num_continents > 1) {
    std::vector<std::pair<std::size_t, std::size_t>> adjacent;
    for (std::size_t ci = 0; ci + 1 < num_continents; ++ci) adjacent.emplace_back(ci, ci + 1);
    // Close the ring across the antimeridian ocean when there are enough
    // landmasses for the "round the world" route to make sense.
    if (num_continents >= 3) adjacent.emplace_back(num_continents - 1, 0);
    for (std::size_t pi = 0; pi < adjacent.size(); ++pi) {
      const auto [u, v] = adjacent[pi];
      Rng rng(mix64(spec.seed ^ (0x5eacab1e77ULL * (pi + 1))));
      // u faces east toward v, v faces west toward u (also true for the
      // ring-closing pair, whose geodesic crosses the antimeridian).
      auto east = landing_candidates(meshes[u]->cities, +1);
      auto west = landing_candidates(meshes[v]->cities, -1);
      for (std::size_t k = 0; k < spec.cables_per_adjacency; ++k) {
        PlannedCable cable;
        cable.u = u;
        cable.v = v;
        // Distinct landings per cable: draw without replacement, biased to
        // the best-ranked coastal cities.
        const auto draw = [&rng](std::vector<CityId>& pool) {
          std::vector<double> w(pool.size());
          for (std::size_t i = 0; i < pool.size(); ++i)
            w[i] = 1.0 / static_cast<double>(i + 1);
          const std::size_t pick = rng.weighted_pick(w);
          const CityId id = pool[pick];
          if (pool.size() > 1) pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
          return id;
        };
        cable.landing_u = draw(east);
        cable.landing_v = draw(west);
        planned.push_back(cable);
      }
    }
  }

  std::vector<transport::TransportEdge> cable_edges;
  std::vector<CableSystem> cables;
  for (std::size_t k = 0; k < planned.size(); ++k) {
    const auto& plan = planned[k];
    Rng rng(mix64(spec.seed ^ (0xcab1e5a7c9ULL * (k + 1))));
    const CityId ga = plan.landing_u + city_offset[plan.u];
    const CityId gb = plan.landing_v + city_offset[plan.v];
    transport::TransportEdge e;
    e.id = static_cast<transport::EdgeId>(cable_edges.size());
    e.a = ga;
    e.b = gb;
    e.mode = TransportMode::Submarine;
    e.path = cable_arc(all_cities[ga].location, all_cities[gb].location, rng);
    e.length_km = e.path.length_km();
    CableSystem sys;
    sys.name = all_cities[ga].name + "-" + all_cities[gb].name + " cable";
    sys.corridor = static_cast<CorridorId>(land_corridors + k);
    sys.landing_a = ga;
    sys.landing_b = gb;
    sys.continent_a = plan.u;
    sys.continent_b = plan.v;
    sys.length_km = e.length_km;
    cables.push_back(std::move(sys));
    cable_edges.push_back(std::move(e));
  }
  transport::TransportNetwork submarine(TransportMode::Submarine, std::move(cable_edges),
                                        num_cities);

  // ---- construct the world (compiles the global ROW registry) ------------
  World world(spec, transport::CityDatabase(std::move(all_cities)), std::move(bundle),
              std::move(submarine), std::move(continents));
  const std::size_t num_corridors = world.row_.corridors().size();
  IT_CHECK(num_corridors == land_corridors + planned.size());

  // ---- merge ground truth -------------------------------------------------
  // Global profile list: the Tier1 carriers once (they deploy on every
  // continent under one identity), then each continent's local carriers.
  const auto& base_profiles = isp::default_profiles();
  std::vector<std::size_t> tier1_slots;  // positions of globals in default order
  for (std::size_t i = 0; i < base_profiles.size(); ++i) {
    if (is_global_carrier(base_profiles[i])) tier1_slots.push_back(i);
  }
  std::vector<IspProfile> profiles;
  // local profile index (= default order) -> global IspId, per continent
  std::vector<std::vector<IspId>> isp_remap(num_continents,
                                            std::vector<IspId>(base_profiles.size(), isp::kNoIsp));
  for (std::size_t g = 0; g < tier1_slots.size(); ++g) {
    IspProfile p = base_profiles[tier1_slots[g]];
    p.target_pops = static_cast<std::size_t>(
        std::llround(static_cast<double>(p.target_pops) * std::max(spec.scale, 1.0)));
    for (std::size_t ci = 0; ci < num_continents; ++ci) {
      isp_remap[ci][tier1_slots[g]] = static_cast<IspId>(g);
    }
    profiles.push_back(std::move(p));
  }
  for (std::size_t ci = 0; ci < num_continents; ++ci) {
    const auto& local_profiles = meshes[ci]->truth.profiles();
    for (std::size_t i = 0; i < local_profiles.size(); ++i) {
      if (is_global_carrier(local_profiles[i])) continue;
      isp_remap[ci][i] = static_cast<IspId>(profiles.size());
      profiles.push_back(local_profiles[i]);  // already suffixed + scaled
    }
  }
  const std::size_t num_globals = tier1_slots.size();

  std::vector<std::vector<CityId>> pops(profiles.size());
  std::vector<isp::TrueLink> links;
  for (std::size_t ci = 0; ci < num_continents; ++ci) {
    const auto& truth = meshes[ci]->truth;
    for (std::size_t i = 0; i < truth.profiles().size(); ++i) {
      const IspId gid = isp_remap[ci][i];
      for (CityId pop : truth.pops_of(static_cast<IspId>(i))) {
        pops[gid].push_back(pop + city_offset[ci]);
      }
    }
    for (const auto& link : truth.links()) {
      isp::TrueLink gl;
      gl.isp = isp_remap[ci][link.isp];
      gl.a = link.a + city_offset[ci];
      gl.b = link.b + city_offset[ci];
      gl.corridors.reserve(link.corridors.size());
      for (CorridorId cid : link.corridors) gl.corridors.push_back(remap_corridor(ci, cid));
      gl.length_km = link.length_km;
      links.push_back(std::move(gl));
    }
  }

  // Intercontinental links: each cable is lit by a consortium of global
  // carriers; every member lands a hub-to-hub link riding its continental
  // backhaul, the wet segment, and the far-side backhaul.
  for (std::size_t k = 0; k < cables.size(); ++k) {
    auto& cable = cables[k];
    const auto& plan = planned[k];
    Rng rng(mix64(spec.seed ^ (0xc0507471a3ULL * (k + 1))));
    const std::size_t consortium =
        std::min<std::size_t>(num_globals, spec.min_cable_tenants + rng.next_below(2));
    auto members = rng.sample_indices(num_globals, consortium);
    std::sort(members.begin(), members.end());
    for (std::size_t g : members) {
      const std::size_t local_slot = tier1_slots[g];
      // The carrier's busiest POP on each side is the cable's backhaul hub
      // (ties break to the lowest city id for determinism).
      const auto hub_of = [&](std::size_t ci) {
        const auto& mesh_pops = meshes[ci]->truth.pops_of(static_cast<IspId>(local_slot));
        CityId best = mesh_pops.empty() ? 0 : mesh_pops.front();
        for (CityId p : mesh_pops) {
          const auto& cand = meshes[ci]->cities.city(p);
          const auto& cur = meshes[ci]->cities.city(best);
          if (cand.population > cur.population ||
              (cand.population == cur.population && p < best)) {
            best = p;
          }
        }
        return best;
      };
      const CityId hub_u = hub_of(plan.u);
      const CityId hub_v = hub_of(plan.v);
      isp::TrueLink link;
      link.isp = static_cast<IspId>(g);
      link.a = hub_u + city_offset[plan.u];
      link.b = hub_v + city_offset[plan.v];
      if (hub_u != plan.landing_u) {
        const auto path = meshes[plan.u]->row.shortest_path(hub_u, plan.landing_u);
        for (CorridorId cid : path.corridors) link.corridors.push_back(remap_corridor(plan.u, cid));
      }
      link.corridors.push_back(cable.corridor);
      if (hub_v != plan.landing_v) {
        const auto path = meshes[plan.v]->row.shortest_path(plan.landing_v, hub_v);
        for (CorridorId cid : path.corridors) link.corridors.push_back(remap_corridor(plan.v, cid));
      }
      for (CorridorId cid : link.corridors) {
        link.length_km += world.row_.corridor(cid).length_km;
      }
      cable.tenants.push_back(static_cast<IspId>(g));
      links.push_back(std::move(link));
    }
  }

  world.truth_ = isp::GroundTruth(std::move(profiles), std::move(pops), std::move(links),
                                  num_corridors);
  world.cables_ = std::move(cables);

  // ---- emit through the published-dataset ingest path --------------------
  // The oracle map is serialized to the TSV dataset format and strictly
  // re-parsed; World::map() is the ingested copy, so every generated world
  // is certified against the same validation the real dataset gets.
  const core::FiberMap oracle = core::map_from_ground_truth(world.truth_, world.row_);
  const std::string text =
      core::serialize_dataset(oracle, world.cities_, world.row_, world.truth_.profiles());
  world.map_ = core::parse_dataset(text, world.cities_, world.row_, world.truth_.profiles());
  return world;
}

// --------------------------------------------------------------------------
// Summary + validation

WorldSummary summarize(const World& world) {
  WorldSummary s;
  s.cities = world.cities().size();
  s.continents = world.continents().size();
  s.cables = world.cables().size();
  s.isps = world.truth().num_isps();
  const core::MapStats stats = core::compute_stats(world.map());
  s.nodes = stats.nodes;
  s.links = stats.links;
  s.conduits = stats.conduits;
  s.total_conduit_km = stats.total_conduit_km;
  std::size_t tenant_sum = 0;
  for (const auto& conduit : world.map().conduits()) {
    tenant_sum += conduit.tenants.size();
    if (world.row().corridor(conduit.corridor).mode == TransportMode::Submarine) {
      ++s.submarine_conduits;
    }
  }
  if (s.conduits > 0) {
    s.mean_tenants = static_cast<double>(tenant_sum) / static_cast<double>(s.conduits);
    s.mean_conduit_km = s.total_conduit_km / static_cast<double>(s.conduits);
  }
  if (s.nodes > 0) s.mean_degree = 2.0 * static_cast<double>(s.conduits) / static_cast<double>(s.nodes);
  return s;
}

std::vector<std::string> validate(const World& world) {
  std::vector<std::string> violations;
  const auto fail = [&violations](std::string msg) { violations.push_back(std::move(msg)); };

  for (std::size_t c = 0; c < world.continents().size(); ++c) {
    const auto& info = world.continents()[c];
    if (info.city_begin >= info.city_end) {
      fail("continent " + info.code + " has an empty city range");
    }
  }

  // Only submarine conduits may join two continents.
  for (const auto& conduit : world.map().conduits()) {
    const auto mode = world.row().corridor(conduit.corridor).mode;
    const bool crosses = world.continent_of(conduit.a) != world.continent_of(conduit.b);
    if (crosses && mode != TransportMode::Submarine) {
      fail("inter-continent conduit " + std::to_string(conduit.id) + " has land mode");
    }
    if (!crosses && mode == TransportMode::Submarine) {
      fail("submarine conduit " + std::to_string(conduit.id) + " stays on one continent");
    }
  }

  // Cables are genuinely shared wet segments.
  for (const auto& cable : world.cables()) {
    if (cable.tenants.size() < world.spec().min_cable_tenants) {
      fail(cable.name + " has " + std::to_string(cable.tenants.size()) + " tenants (min " +
           std::to_string(world.spec().min_cable_tenants) + ")");
    }
  }

  // Every link's conduit chain is a connected walk from link.a to link.b.
  for (const auto& link : world.map().links()) {
    CityId at = link.a;
    bool ok = true;
    for (core::ConduitId cid : link.conduits) {
      const auto& conduit = world.map().conduit(cid);
      if (conduit.a == at) {
        at = conduit.b;
      } else if (conduit.b == at) {
        at = conduit.a;
      } else {
        ok = false;
        break;
      }
    }
    if (!ok || at != link.b) {
      fail("link " + std::to_string(link.id) + " chain is not a connected a-to-b walk");
    }
  }
  return violations;
}

}  // namespace intertubes::worldgen
