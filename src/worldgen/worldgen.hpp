// Deterministic, seeded, planet-scale synthetic world generation.
//
// The paper's construction (§3) builds one US world: a city set, road/rail/
// pipeline rights-of-way, and per-ISP deployments over them.  This module
// scales that construction to N continental meshes — population-weighted
// city placement inside elliptical landmasses, the same Gabriel-graph
// corridor synthesis per continent — stitched together by submarine cable
// systems: long, distinct-hazard, distinct-latency conduits between coastal
// landing stations, each shared by a consortium of global carriers (the
// substrate shape of Nautilus-style cable cartography).
//
// A single WorldSpec{scale, continents, seed} drives sizes from 1x (the
// paper world's statistical envelope) to 100x.  The generated map is
// emitted through the existing dataset_io ingest path — serialized to the
// TSV dataset format and strictly re-parsed — so every downstream consumer
// (risk matrix, route::PathEngine, dissect, cascade, serve snapshots) runs
// on generated worlds unchanged.
//
// Determinism contract: generate_world(spec) is a pure function of the
// spec.  Each continent is generated from its own RNG substream of
// spec.seed and merged in continent order, so results are bit-identical
// for any executor thread count (including none).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fiber_map.hpp"
#include "core/world_view.hpp"
#include "isp/ground_truth.hpp"
#include "transport/cities.hpp"
#include "transport/network.hpp"
#include "transport/row.hpp"

namespace intertubes::sim {
class Executor;
}

namespace intertubes::worldgen {

struct WorldSpec {
  /// Total city count ≈ scale × the paper world's (~140 cities at 1x).
  double scale = 1.0;
  /// Continental meshes; 0 = auto (1 + floor(log2(scale)), capped at 12).
  std::size_t continents = 0;
  std::uint64_t seed = 0x1257;
  /// Cable systems laid per adjacent continent pair (a west-to-east chain,
  /// plus one trans-ocean closing cable when there are 3+ continents).
  std::size_t cables_per_adjacency = 2;
  /// Minimum consortium size per cable (ISPs sharing the wet segment).
  std::size_t min_cable_tenants = 2;
  /// Corridor-synthesis knobs, reused from the paper's §3 generator.  The
  /// seed fields are overridden per continent from `seed`.
  transport::NetworkGenParams network;
  isp::GroundTruthParams ground_truth;

  WorldSpec with_seed(std::uint64_t s) const {
    WorldSpec out = *this;
    out.seed = s;
    return out;
  }
};

/// One generated landmass: an elliptical region of the globe plus the
/// contiguous city-id range its mesh occupies in the global database.
struct ContinentInfo {
  std::string code;  ///< Two-letter "state" code of every city on it.
  geo::GeoPoint center;
  double lon_semi_axis_deg = 0.0;
  double lat_semi_axis_deg = 0.0;
  transport::CityId city_begin = 0;
  transport::CityId city_end = 0;  ///< exclusive

  bool contains_city(transport::CityId id) const noexcept {
    return id >= city_begin && id < city_end;
  }
};

/// One submarine cable system: a single long conduit between two landing
/// stations, lit by a consortium of global carriers.
struct CableSystem {
  std::string name;
  transport::CorridorId corridor = transport::kNoCorridor;
  transport::CityId landing_a = transport::kNoCity;
  transport::CityId landing_b = transport::kNoCity;
  std::size_t continent_a = 0;
  std::size_t continent_b = 0;
  std::vector<isp::IspId> tenants;  ///< global-carrier consortium, sorted
  double length_km = 0.0;
};

/// Summary statistics for validation against the paper world (and for the
/// CLI's generation report).
struct WorldSummary {
  std::size_t cities = 0;
  std::size_t nodes = 0;  ///< map nodes (cities touched by conduits)
  std::size_t links = 0;
  std::size_t conduits = 0;
  std::size_t submarine_conduits = 0;
  std::size_t isps = 0;
  std::size_t continents = 0;
  std::size_t cables = 0;
  double mean_degree = 0.0;       ///< conduit-graph node degree
  double mean_tenants = 0.0;      ///< tenants per conduit (sharing)
  double mean_conduit_km = 0.0;
  double total_conduit_km = 0.0;
};

/// A fully generated world, self-contained (no references into the spec or
/// any generator state).  The map() accessor is the *ingested* map: the
/// generator serializes its oracle map through core::serialize_dataset and
/// strictly re-parses it, so holding a World proves the world round-trips
/// the published-dataset path.
class World {
 public:
  const WorldSpec& spec() const noexcept { return spec_; }
  const transport::CityDatabase& cities() const noexcept { return cities_; }
  const transport::TransportBundle& bundle() const noexcept { return bundle_; }
  const transport::TransportNetwork& submarine() const noexcept { return submarine_; }
  const transport::RightOfWayRegistry& row() const noexcept { return row_; }
  const isp::GroundTruth& truth() const noexcept { return truth_; }
  /// The strict-ingested FiberMap (round-tripped through dataset_io).
  const core::FiberMap& map() const noexcept { return map_; }
  const std::vector<ContinentInfo>& continents() const noexcept { return continents_; }
  const std::vector<CableSystem>& cables() const noexcept { return cables_; }

  /// Continent index owning a city id.
  std::size_t continent_of(transport::CityId id) const;

  /// Serialize the map as a TSV dataset (the same bytes the generator
  /// ingested; re-serialization is deterministic).
  std::string dataset() const;

  /// Non-owning world view for serve::Snapshot::build and friends; the
  /// caller must keep this World alive for the view's lifetime (pass a
  /// shared_ptr-backed view via core::WorldView{...} with `owner` set when
  /// the lifetime is not lexically obvious).
  core::WorldView view() const noexcept {
    core::WorldView v;
    v.cities = &cities_;
    v.row = &row_;
    v.truth = &truth_;
    v.map = &map_;
    return v;
  }

 private:
  friend World generate_world(const WorldSpec&, sim::Executor*);
  World(WorldSpec spec, transport::CityDatabase cities, transport::TransportBundle bundle,
        transport::TransportNetwork submarine, std::vector<ContinentInfo> continents);

  WorldSpec spec_;
  transport::CityDatabase cities_;
  transport::TransportBundle bundle_;
  transport::TransportNetwork submarine_;
  transport::RightOfWayRegistry row_;
  isp::GroundTruth truth_{{}, {}, {}, 0};
  core::FiberMap map_{0};
  std::vector<ContinentInfo> continents_;
  std::vector<CableSystem> cables_;
};

/// Generate a world from the spec.  When `executor` is non-null the
/// per-continent meshes are generated in parallel; results are
/// bit-identical either way.
World generate_world(const WorldSpec& spec, sim::Executor* executor = nullptr);

/// Summary statistics of a generated world.
WorldSummary summarize(const World& world);

/// Cheap structural invariant checks; returns human-readable violations
/// (empty = valid).  Checks: every inter-continent conduit is submarine,
/// every cable has at least spec.min_cable_tenants tenants, every link's
/// conduit chain is connected, and every continent's mesh is non-empty.
std::vector<std::string> validate(const World& world);

}  // namespace intertubes::worldgen
