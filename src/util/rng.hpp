// Deterministic random number generation.
//
// All stochastic components of the library draw from an explicitly seeded
// Rng so that every experiment is exactly reproducible.  The generator is
// xoshiro256** seeded via SplitMix64; both are tiny, fast, and have
// well-studied statistical quality.  We deliberately do not use
// std::mt19937 / std::uniform_int_distribution because their output is not
// guaranteed to be identical across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace intertubes {

/// SplitMix64 step — used for seeding and for cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of a 64-bit value (one SplitMix64 round).
std::uint64_t mix64(std::uint64_t x) noexcept;

class Rng;

/// Independent substream `stream` of a seeded family: the generator for
/// (seed, stream) depends on nothing else, so Monte-Carlo trial i can be
/// computed by any thread in any order and still draw the same values.
Rng substream_rng(std::uint64_t seed, std::uint64_t stream) noexcept;

/// xoshiro256** PRNG with explicit seeding and value semantics.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box–Muller (cached second value).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;

  /// Exponential with given rate (> 0).
  double exponential(double rate) noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept;

  /// Pareto(shape, scale) — heavy-tailed draws for traffic/population models.
  double pareto(double shape, double scale) noexcept;

  /// Zipf-like rank draw in [0, n): P(k) ∝ 1/(k+1)^s, via inverse-CDF on a
  /// precomputed table is avoided; uses rejection sampling good for n ≤ 1e6.
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Index drawn proportional to non-negative weights (at least one > 0).
  std::size_t weighted_pick(const std::vector<double>& weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k ≤ n), order unspecified
  /// but deterministic.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for decoupling subsystems).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace intertubes
