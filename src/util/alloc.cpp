#include "util/alloc.hpp"

#include <atomic>

namespace intertubes::util {

namespace {

// Constant-initialized thread-locals: safe to touch from the operator new
// replacement even during static initialization and thread start-up.
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_frees = 0;
thread_local std::uint64_t t_bytes = 0;

std::atomic<bool> g_counting_active{false};

}  // namespace

AllocCounts thread_alloc_counts() noexcept { return {t_allocs, t_frees, t_bytes}; }

bool alloc_counting_active() noexcept {
  return g_counting_active.load(std::memory_order_relaxed);
}

namespace detail {

void note_alloc(std::size_t bytes) noexcept {
  ++t_allocs;
  t_bytes += bytes;
}

void note_free() noexcept { ++t_frees; }

void set_alloc_counting_active() noexcept {
  g_counting_active.store(true, std::memory_order_relaxed);
}

}  // namespace detail
}  // namespace intertubes::util
