// Counting replacements for the global allocation functions.
//
// This TU is compiled into an OBJECT library (it_alloc_hooks) and linked
// only into binaries that measure allocations — the test runner and the
// bench harnesses.  Production consumers of it_util never see it, so the
// hot path carries no instrumentation there.
//
// The replacements forward to malloc/free (which is what the default
// operators do) and bump the thread-local counters in util/alloc.cpp.
// Sanitizer builds still work: ASan/TSan intercept malloc underneath us,
// so leak/overflow detection composes with the counting.
#include <cstdlib>
#include <new>

#include "util/alloc.hpp"

namespace {

void* counted_alloc(std::size_t size) noexcept {
  intertubes::util::detail::note_alloc(size);
  // malloc(0) may return nullptr legally; operator new must not.
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  intertubes::util::detail::note_alloc(size);
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded == 0 ? align : padded);
}

// Flip util::alloc_counting_active() as soon as this TU is part of the
// link (object-library members always run their initializers).
const struct HookRegistrar {
  HookRegistrar() noexcept { intertubes::util::detail::set_alloc_counting_active(); }
} g_registrar;

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  if (p != nullptr) intertubes::util::detail::note_free();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  if (p != nullptr) intertubes::util::detail::note_free();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete[](p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { ::operator delete(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { ::operator delete[](p); }

void operator delete(void* p, std::align_val_t) noexcept {
  if (p != nullptr) intertubes::util::detail::note_free();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  if (p != nullptr) intertubes::util::detail::note_free();
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t align) noexcept {
  ::operator delete(p, align);
}

void operator delete[](void* p, std::size_t, std::align_val_t align) noexcept {
  ::operator delete[](p, align);
}
