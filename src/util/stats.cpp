#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace intertubes {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::standard_error() const noexcept {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::vector<double> values, double p) {
  IT_CHECK(!values.empty());
  IT_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double quartile25(const std::vector<double>& values) { return percentile(values, 25.0); }
double median(const std::vector<double>& values) { return percentile(values, 50.0); }
double quartile75(const std::vector<double>& values) { return percentile(values, 75.0); }

std::vector<CdfPoint> empirical_cdf(std::vector<double> values) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Emit one point per distinct value, carrying the cumulative fraction.
    if (i + 1 == values.size() || values[i + 1] != values[i]) {
      out.push_back({values[i], static_cast<double>(i + 1) / n});
    }
  }
  return out;
}

double cdf_at(const std::vector<CdfPoint>& cdf, double x) {
  double f = 0.0;
  for (const auto& pt : cdf) {
    if (pt.x <= x) {
      f = pt.f;
    } else {
      break;
    }
  }
  return f;
}

double cdf_quantile(const std::vector<CdfPoint>& cdf, double q) {
  IT_CHECK(!cdf.empty());
  IT_CHECK(q > 0.0 && q <= 1.0);
  for (const auto& pt : cdf) {
    if (pt.f >= q) return pt.x;
  }
  return cdf.back().x;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  IT_CHECK(hi > lo);
  IT_CHECK(bins > 0);
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x) noexcept { add(x, 1.0); }

void Histogram::add(double x, double weight) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<std::ptrdiff_t>(counts_.size()))
    idx = static_cast<std::ptrdiff_t>(counts_.size()) - 1;
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

double Histogram::relative(std::size_t i) const noexcept {
  if (total_ <= 0.0) return 0.0;
  return counts_[i] / total_;
}

LatencyHistogram::LatencyHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), log_lo_(std::log(lo)) {
  IT_CHECK(lo > 0.0);
  IT_CHECK(hi > lo);
  IT_CHECK(buckets > 0);
  log_step_ = (std::log(hi) - log_lo_) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void LatencyHistogram::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  std::ptrdiff_t idx = 0;
  if (x > lo_) {
    idx = static_cast<std::ptrdiff_t>(std::floor((std::log(x) - log_lo_) / log_step_));
    if (idx < 0) idx = 0;
    if (idx >= static_cast<std::ptrdiff_t>(counts_.size()))
      idx = static_cast<std::ptrdiff_t>(counts_.size()) - 1;
  }
  ++counts_[static_cast<std::size_t>(idx)];
}

double LatencyHistogram::bucket_lo(std::size_t i) const noexcept {
  return std::exp(log_lo_ + log_step_ * static_cast<double>(i));
}

double LatencyHistogram::bucket_hi(std::size_t i) const noexcept {
  return std::exp(log_lo_ + log_step_ * static_cast<double>(i + 1));
}

double LatencyHistogram::percentile(double p) const {
  IT_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  // Rank of the target observation, 1-based; the bucket that contains it
  // bounds the estimate, geometric interpolation refines within.
  const double rank = std::max(1.0, (p / 100.0) * static_cast<double>(count_));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double frac = (rank - before) / static_cast<double>(counts_[i]);
      const double log_est = std::log(bucket_lo(i)) + log_step_ * frac;
      return std::clamp(std::exp(log_est), min_, max_);
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  IT_CHECK(same_geometry(other));
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

bool LatencyHistogram::same_geometry(const LatencyHistogram& other) const noexcept {
  return lo_ == other.lo_ && hi_ == other.hi_ && counts_.size() == other.counts_.size();
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  IT_CHECK(a.size() == b.size());
  IT_CHECK(a.size() >= 2);
  RunningStats sa;
  RunningStats sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size() - 1);
  const double denom = sa.stddev() * sb.stddev();
  if (denom == 0.0) return 0.0;
  return cov / denom;
}

}  // namespace intertubes
