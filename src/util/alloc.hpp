// Fixed-capacity allocation machinery for the serve/route hot paths, plus
// the instrumentation that *proves* those paths allocation-free.
//
// The serving fast path (DESIGN.md §14) promises zero heap allocations per
// steady-state query.  Three pieces make that promise cheap to keep and
// impossible to break silently:
//
//   * BumpArena / FixedPool<T> — the classic fixed-pool idiom (swap STL
//     node containers for flat preallocated storage): a monotonic bump
//     allocator with O(1) reset for per-query scratch, and a free-list
//     pool of T slots for objects with identity.
//
//   * LeasePool<T> — a thread-safe, *capped* pool of reusable scratch
//     objects handed out as RAII leases.  Unlike a grow-only pool, a
//     lease released into a full pool is destroyed instead of retained,
//     so a burst of N concurrent callers can never pin N workspaces
//     forever (the route::PathEngine bug this layer fixes).
//
//   * Thread-local allocation counters + ZeroAllocGuard — a counting
//     layer fed by optional global operator new/delete replacements
//     (util/alloc_hooks.cpp, linked only into test and bench binaries).
//     ZeroAllocGuard snapshots this thread's counter; tests assert the
//     delta across a steady-state query is exactly zero, turning the
//     zero-alloc invariant into a machine-checked regression gate
//     (`ctest -L alloc`, allocs_per_query in the bench dumps).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace intertubes::util {

// --- Allocation counting ----------------------------------------------

/// Totals for the calling thread since it started.  `allocs`/`frees`
/// count operator new/delete calls; `bytes` sums requested sizes.
struct AllocCounts {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};

/// This thread's counters.  All zeros (and never moving) unless the
/// counting hooks TU is linked into the binary.
AllocCounts thread_alloc_counts() noexcept;

/// True when util/alloc_hooks.cpp is linked in and counters actually
/// advance.  Tests that assert on deltas must skip when this is false.
bool alloc_counting_active() noexcept;

namespace detail {
void note_alloc(std::size_t bytes) noexcept;  ///< called by the new hook
void note_free() noexcept;                    ///< called by the delete hook
void set_alloc_counting_active() noexcept;    ///< called once by the hooks TU
}  // namespace detail

/// RAII window over this thread's allocation counters: construct at the
/// start of the region under test, then assert allocations() == 0 after
/// the steady-state work.  Construction/destruction never allocates.
class ZeroAllocGuard {
 public:
  ZeroAllocGuard() noexcept : start_(thread_alloc_counts()) {}

  /// operator new calls on this thread since construction.
  std::uint64_t allocations() const noexcept {
    return thread_alloc_counts().allocs - start_.allocs;
  }
  /// operator delete calls on this thread since construction.
  std::uint64_t frees() const noexcept { return thread_alloc_counts().frees - start_.frees; }
  /// Bytes requested on this thread since construction.
  std::uint64_t bytes() const noexcept { return thread_alloc_counts().bytes - start_.bytes; }

 private:
  AllocCounts start_;
};

// --- BumpArena --------------------------------------------------------

/// Monotonic bump allocator over one fixed buffer.  allocate() is a
/// pointer bump; reset() recycles the whole arena in O(1).  Exhaustion
/// returns nullptr (typed helpers IT_CHECK instead) — the arena never
/// falls back to the heap, which is the point.
class BumpArena {
 public:
  explicit BumpArena(std::size_t capacity)
      : buffer_(std::make_unique<std::byte[]>(capacity)), capacity_(capacity) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Aligned raw storage, or nullptr when the arena is exhausted.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) noexcept {
    const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
    if (aligned + bytes > capacity_) return nullptr;
    used_ = aligned + bytes;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return buffer_.get() + aligned;
  }

  /// `count` default-initialized Ts; IT_CHECKs on exhaustion (a fixed
  /// arena sized too small is a bug, not a runtime condition).
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "BumpArena::reset never runs destructors");
    void* raw = allocate(count * sizeof(T), alignof(T));
    IT_CHECK(raw != nullptr);
    return new (raw) T[count];
  }

  /// Recycle everything.  O(1); no destructors run (see allocate_array).
  void reset() noexcept { used_ = 0; }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  /// Peak bytes ever live at once — how big the arena actually needs to be.
  std::size_t high_water() const noexcept { return high_water_; }

 private:
  std::unique_ptr<std::byte[]> buffer_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

// --- FixedPool --------------------------------------------------------

/// Free-list pool over `capacity` preconstructed T slots.  acquire()
/// pops a slot (nullptr when exhausted), release() pushes it back; no
/// heap traffic after construction.  Single-threaded by design — wrap in
/// LeasePool (below) when slots cross threads.
template <typename T>
class FixedPool {
 public:
  explicit FixedPool(std::size_t capacity) : slots_(capacity), free_(capacity) {
    for (std::size_t i = 0; i < capacity; ++i) free_[i] = capacity - 1 - i;
  }

  FixedPool(const FixedPool&) = delete;
  FixedPool& operator=(const FixedPool&) = delete;

  /// A slot, or nullptr when all `capacity()` slots are in use.  Slots
  /// are reused as-is (not reconstructed) — callers reset what they use.
  T* acquire() noexcept {
    if (free_.empty()) return nullptr;
    T* slot = &slots_[free_.back()];
    free_.pop_back();
    return slot;
  }

  /// Return a slot obtained from acquire().
  void release(T* slot) noexcept {
    IT_CHECK(slot >= slots_.data() && slot < slots_.data() + slots_.size());
    free_.push_back(static_cast<std::size_t>(slot - slots_.data()));
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t available() const noexcept { return free_.size(); }
  std::size_t in_use() const noexcept { return slots_.size() - free_.size(); }

 private:
  std::vector<T> slots_;
  std::vector<std::size_t> free_;  ///< indices of free slots, LIFO
};

// --- LeasePool --------------------------------------------------------

/// Thread-safe pool of reusable scratch objects with a hard retention
/// cap.  acquire() pops an idle object (or default-constructs one when
/// the pool is empty — the only allocation, paid once per steady-state
/// concurrency level); the returned Lease releases it back on
/// destruction.  A release into a pool already holding `cap` idle
/// objects destroys the object instead, so peak-burst concurrency never
/// pins memory forever (the unbounded-growth bug this replaces).
template <typename T>
class LeasePool {
 public:
  explicit LeasePool(std::size_t cap = kDefaultCap) : cap_(cap) { IT_CHECK(cap > 0); }

  LeasePool(const LeasePool&) = delete;
  LeasePool& operator=(const LeasePool&) = delete;

  /// RAII handle; movable, returns the object to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)), object_(std::move(other.object_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        reset();
        pool_ = std::exchange(other.pool_, nullptr);
        object_ = std::move(other.object_);
      }
      return *this;
    }
    ~Lease() { reset(); }

    T& operator*() const noexcept { return *object_; }
    T* operator->() const noexcept { return object_.get(); }
    explicit operator bool() const noexcept { return object_ != nullptr; }

   private:
    friend class LeasePool;
    Lease(const LeasePool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}
    void reset() {
      if (pool_ != nullptr && object_ != nullptr) pool_->release(std::move(object_));
      pool_ = nullptr;
      object_ = nullptr;
    }

    const LeasePool* pool_ = nullptr;
    std::unique_ptr<T> object_;
  };

  /// Lease an object.  Allocation-free when an idle object is pooled.
  Lease acquire() const {
    std::unique_ptr<T> object;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        object = std::move(idle_.back());
        idle_.pop_back();
      }
    }
    if (object == nullptr) {
      object = std::make_unique<T>();
      created_.fetch_add(1, std::memory_order_relaxed);
    }
    return Lease(this, std::move(object));
  }

  std::size_t cap() const noexcept { return cap_; }
  /// Idle objects currently retained; never exceeds cap().
  std::size_t idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }
  /// Objects ever constructed (idle + in flight + since-dropped).
  std::size_t created() const noexcept { return created_.load(std::memory_order_relaxed); }
  /// Releases that found the pool full and destroyed their object.
  std::size_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }

  static constexpr std::size_t kDefaultCap = 32;

 private:
  void release(std::unique_ptr<T> object) const {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (idle_.size() < cap_) {
        idle_.push_back(std::move(object));
        return;
      }
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // object destroyed here, outside the lock
  }

  std::size_t cap_;
  mutable std::mutex mu_;
  mutable std::vector<std::unique_ptr<T>> idle_;
  mutable std::atomic<std::size_t> created_{0};
  mutable std::atomic<std::size_t> dropped_{0};
};

}  // namespace intertubes::util
