// Structured diagnostics for ingest boundaries.
//
// The paper's inputs are messy by nature — noisy geocoded maps,
// heterogeneous public records, millions of traceroutes — so every parse
// boundary in the library reports malformed records into a DiagnosticSink
// instead of aborting the run.  Two policies:
//
//   * Lenient (default): malformed records are quarantined — recorded with
//     severity, source and input line number — and parsing continues with
//     the well-formed remainder.  A configurable error budget bounds how
//     much damage is tolerated before the input is declared hopeless.
//   * Strict: the first error-severity diagnostic throws ParseError with
//     full location context ("source:line: message").
//
// ParseError derives from std::runtime_error: bad *input* is an expected
// runtime condition, distinct from the std::logic_error that IT_CHECK
// (util/check.hpp) reserves for programmer bugs.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/table.hpp"

namespace intertubes {

/// Malformed input data.  Thrown by DiagnosticSink in strict mode (first
/// error) and in lenient mode once the error budget is exhausted.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

enum class Severity : std::uint8_t { Info, Warning, Error };

std::string_view severity_name(Severity s) noexcept;

/// One finding at an ingest boundary.
struct Diagnostic {
  Severity severity = Severity::Error;
  /// Where the input came from: a path, or a logical name like
  /// "published:Sprint" for in-memory artifacts.
  std::string source;
  /// 1-based line (or record) number within the input; 0 = whole input.
  std::size_t line = 0;
  std::string message;

  /// "source:line" (or just "source" when line is 0).
  std::string location() const;
  /// "error: source:line: message"
  std::string to_string() const;
};

enum class ParsePolicy : std::uint8_t {
  Strict,   ///< fail fast on the first malformed record
  Lenient,  ///< quarantine malformed records, keep the rest
};

/// Thread-safe collector of ingest diagnostics.  Parsers report every
/// finding here; the policy decides whether an error stops the world or is
/// quarantined.  Shared freely between the parse boundaries of one run so
/// the final summary covers all inputs.
class DiagnosticSink {
 public:
  static constexpr std::size_t kDefaultErrorBudget = 1000;

  explicit DiagnosticSink(ParsePolicy policy = ParsePolicy::Lenient,
                          std::size_t error_budget = kDefaultErrorBudget)
      : policy_(policy), error_budget_(error_budget) {}

  ParsePolicy policy() const noexcept { return policy_; }
  std::size_t error_budget() const noexcept { return error_budget_; }
  bool strict() const noexcept { return policy_ == ParsePolicy::Strict; }

  /// Record a diagnostic.  Error severity throws ParseError immediately in
  /// strict mode; in lenient mode the error is recorded, and exceeding the
  /// error budget throws regardless of policy.  The diagnostic is recorded
  /// *before* any throw, so the sink always holds the full history.
  void report(Diagnostic d);
  void report(Severity severity, std::string source, std::size_t line, std::string message);

  std::size_t error_count() const;
  std::size_t warning_count() const;
  std::size_t total() const;
  /// True when no error-severity diagnostics were recorded.
  bool ok() const { return error_count() == 0; }

  /// Snapshot of all recorded diagnostics (copied under the lock).
  std::vector<Diagnostic> diagnostics() const;

  /// Per-source rollup: errors / warnings / first error location.
  TextTable summary_table() const;
  /// The individual diagnostics, most severe first, capped at max_rows.
  TextTable detail_table(std::size_t max_rows = 25) const;
  /// Render summary + detail tables; empty string when nothing was
  /// reported.
  std::string render(std::size_t max_detail_rows = 25) const;

 private:
  ParsePolicy policy_;
  std::size_t error_budget_;
  mutable std::mutex mutex_;
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

}  // namespace intertubes
