#include "util/rng.hpp"

#include <cmath>

namespace intertubes {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 top bits → [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  if (bound == 0) return 0;
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::pareto(double shape, double scale) noexcept {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return scale / std::pow(u, 1.0 / shape);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Rejection sampling against the continuous envelope 1/x^s.
  const double nd = static_cast<double>(n);
  for (;;) {
    double u = 0.0;
    do {
      u = next_double();
    } while (u <= 0.0);
    double x = 0.0;
    if (s == 1.0) {
      x = std::exp(u * std::log(nd + 1.0));
    } else {
      const double t = std::pow(nd + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const auto k = static_cast<std::size_t>(x);
    if (k >= 1 && k <= n) {
      const double ratio = std::pow(static_cast<double>(k) / x, s);
      if (next_double() < ratio) return k - 1;
    }
  }
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  IT_CHECK(k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() noexcept {
  return Rng(next_u64() ^ 0xa5a5a5a55a5a5a5aULL);
}

Rng substream_rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two mixing rounds decorrelate nearby (seed, stream) pairs before the
  // xoshiro seeding expands the state.
  return Rng(mix64(mix64(seed) + 0x9e3779b97f4a7c15ULL * (stream + 1)));
}

}  // namespace intertubes
