#include "util/table.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace intertubes {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  IT_CHECK(!headers_.empty());
}

void TextTable::start_row() { rows_.emplace_back(); }

void TextTable::add_cell(std::string value) {
  IT_CHECK_MSG(!rows_.empty(), "call start_row() before add_cell()");
  IT_CHECK_MSG(rows_.back().size() < headers_.size(), "row has more cells than headers");
  rows_.back().push_back(std::move(value));
}

void TextTable::add_cell(const char* value) { add_cell(std::string(value)); }

void TextTable::add_cell(double value, int precision) {
  add_cell(format_double(value, precision));
}

void TextTable::add_cell(std::size_t value) { add_cell(std::to_string(value)); }
void TextTable::add_cell(long long value) { add_cell(std::to_string(value)); }
void TextTable::add_cell(int value) { add_cell(std::to_string(value)); }

void TextTable::add_row(std::vector<std::string> cells) {
  IT_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < headers_.size()) out << "  ";
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << csv_escape(headers_[c]);
    if (c + 1 < headers_.size()) out << ",";
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c < row.size()) out << csv_escape(row[c]);
      if (c + 1 < headers_.size()) out << ",";
    }
    out << "\n";
  }
  return out.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

namespace {

std::string errno_suffix() {
  return errno != 0 ? std::string(": ") + std::strerror(errno) : std::string();
}

}  // namespace

void write_file(const std::string& path, const std::string& content) {
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path + errno_suffix());
  out << content;
  if (!out) throw std::runtime_error("write failed: " + path + errno_suffix());
}

std::string read_file(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path + errno_suffix());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("read failed: " + path + errno_suffix());
  return text;
}

}  // namespace intertubes
