// Text-table and CSV rendering used by the experiment harnesses to print
// the rows/series that correspond to the paper's tables and figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace intertubes {

/// A simple column-aligned text table.  Cells are strings; numeric
/// convenience overloads format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Begin a new row.  Subsequent add_cell calls fill it left to right.
  void start_row();
  void add_cell(std::string value);
  void add_cell(const char* value);
  void add_cell(double value, int precision = 2);
  void add_cell(std::size_t value);
  void add_cell(long long value);
  void add_cell(int value);

  /// Convenience: add a full row at once.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with column alignment, a header rule, and optional title.
  std::string render(const std::string& title = {}) const;

  /// Render as CSV (RFC-4180-ish quoting).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string format_double(double value, int precision);

/// Write a string to a file, throwing std::runtime_error (with the OS
/// errno context) on failure.
void write_file(const std::string& path, const std::string& content);

/// Read a whole file, throwing std::runtime_error (with the OS errno
/// context) on failure.  Every file-ingest boundary goes through this so
/// "cannot open" errors always say *why*.
std::string read_file(const std::string& path);

}  // namespace intertubes
