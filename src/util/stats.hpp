// Small statistics toolkit used throughout the experiment harnesses:
// summary statistics, percentiles, histograms, and empirical CDFs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace intertubes {

/// Streaming summary statistics (Welford's online algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< Sample variance (n-1 denominator).
  double stddev() const noexcept;
  double standard_error() const noexcept;  ///< stddev / sqrt(n)
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample, p in [0, 100], linear interpolation between
/// order statistics (the common "type 7" definition).  Sorts a copy.
double percentile(std::vector<double> values, double p);

/// Quartile convenience wrappers.
double quartile25(const std::vector<double>& values);
double median(const std::vector<double>& values);
double quartile75(const std::vector<double>& values);

/// An empirical CDF over a sample: pairs (x, F(x)) at each distinct value.
struct CdfPoint {
  double x;
  double f;  ///< P(X <= x)
};

std::vector<CdfPoint> empirical_cdf(std::vector<double> values);

/// Evaluate an empirical CDF at a point (step-function semantics).
double cdf_at(const std::vector<CdfPoint>& cdf, double x);

/// Inverse of an empirical CDF: smallest x with F(x) >= q, q in (0, 1].
double cdf_quantile(const std::vector<CdfPoint>& cdf, double q);

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add(double x, double weight) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  double count(std::size_t i) const noexcept { return counts_[i]; }
  double total() const noexcept { return total_; }
  /// Fraction of total mass in bin i (0 if empty histogram).
  double relative(std::size_t i) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Pearson correlation of two equal-length samples.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Fixed-bucket streaming histogram with log-spaced buckets, built for
/// latency distributions: O(1) add, O(buckets) percentile estimate, exact
/// min/max/sum/count on the side, and merge of identically configured
/// instances (so per-thread histograms can be combined).  Values below
/// `lo` land in the first bucket and values at or above `hi` in the last,
/// so mass is never silently dropped (same policy as Histogram).
class LatencyHistogram {
 public:
  /// Bucket i covers [lo * g^i, lo * g^(i+1)) with g chosen so `buckets`
  /// spans [lo, hi).  Requires 0 < lo < hi and buckets > 0.
  LatencyHistogram(double lo, double hi, std::size_t buckets);

  /// Default geometry for microsecond-scale latencies: 1 µs .. 10 s at
  /// 12 buckets per decade.
  LatencyHistogram() : LatencyHistogram(1.0, 1e7, 84) {}

  void add(double x) noexcept;

  std::size_t buckets() const noexcept { return counts_.size(); }
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;
  std::uint64_t bucket_count(std::size_t i) const noexcept { return counts_[i]; }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Percentile estimate, p in [0, 100]: locate the bucket holding the
  /// target rank and interpolate geometrically within it, clamped to the
  /// exact observed [min, max].  Returns 0 on an empty histogram.
  double percentile(double p) const;

  /// Accumulate another histogram with identical (lo, hi, buckets).
  void merge(const LatencyHistogram& other);

  /// True when (lo, hi, buckets) match, i.e. merge is legal.
  bool same_geometry(const LatencyHistogram& other) const noexcept;

 private:
  double lo_;
  double hi_;
  double log_lo_;
  double log_step_;  ///< log-width of one bucket
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace intertubes
