#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace intertubes {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  return out;
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? s.size() : end;
    if (stop > start) out.emplace_back(s.substr(start, stop - start));
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return out;
}

std::vector<std::string> split_fields(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = s.find(delim, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::vector<std::string> tokenize_words(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char ch : text) {
    const auto uc = static_cast<unsigned char>(ch);
    if (std::isalnum(uc)) {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace intertubes
