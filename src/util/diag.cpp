#include "util/diag.hpp"

#include <algorithm>
#include <map>

namespace intertubes {

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::location() const {
  if (line == 0) return source;
  return source + ":" + std::to_string(line);
}

std::string Diagnostic::to_string() const {
  return std::string(severity_name(severity)) + ": " + location() + ": " + message;
}

void DiagnosticSink::report(Diagnostic d) {
  std::unique_lock lock(mutex_);
  diagnostics_.push_back(d);
  if (d.severity == Severity::Warning) ++warnings_;
  if (d.severity != Severity::Error) return;
  ++errors_;
  if (policy_ == ParsePolicy::Strict) {
    lock.unlock();
    // "location: message" — no severity prefix; what() is typically shown
    // behind an "error:" already.
    throw ParseError(d.location() + ": " + d.message);
  }
  if (errors_ > error_budget_) {
    const std::size_t count = errors_;
    lock.unlock();
    throw ParseError("error budget exceeded (" + std::to_string(count) + " > " +
                     std::to_string(error_budget_) + " errors); last: " + d.location() + ": " +
                     d.message);
  }
}

void DiagnosticSink::report(Severity severity, std::string source, std::size_t line,
                            std::string message) {
  report(Diagnostic{severity, std::move(source), line, std::move(message)});
}

std::size_t DiagnosticSink::error_count() const {
  std::lock_guard lock(mutex_);
  return errors_;
}

std::size_t DiagnosticSink::warning_count() const {
  std::lock_guard lock(mutex_);
  return warnings_;
}

std::size_t DiagnosticSink::total() const {
  std::lock_guard lock(mutex_);
  return diagnostics_.size();
}

std::vector<Diagnostic> DiagnosticSink::diagnostics() const {
  std::lock_guard lock(mutex_);
  return diagnostics_;
}

TextTable DiagnosticSink::summary_table() const {
  struct PerSource {
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::string first_error;
  };
  // std::map: deterministic source order in the rendered table.
  std::map<std::string, PerSource> by_source;
  for (const Diagnostic& d : diagnostics()) {
    auto& s = by_source[d.source];
    if (d.severity == Severity::Error) {
      if (s.errors == 0) s.first_error = d.location();
      ++s.errors;
    } else if (d.severity == Severity::Warning) {
      ++s.warnings;
    }
  }
  TextTable table({"source", "errors", "warnings", "first error"});
  for (const auto& [source, s] : by_source) {
    table.start_row();
    table.add_cell(source);
    table.add_cell(s.errors);
    table.add_cell(s.warnings);
    table.add_cell(s.first_error.empty() ? "-" : s.first_error);
  }
  return table;
}

TextTable DiagnosticSink::detail_table(std::size_t max_rows) const {
  auto all = diagnostics();
  // Most severe first; within a severity, input order (stable sort).
  std::stable_sort(all.begin(), all.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return static_cast<int>(a.severity) > static_cast<int>(b.severity);
  });
  TextTable table({"severity", "location", "message"});
  for (std::size_t i = 0; i < all.size() && i < max_rows; ++i) {
    table.start_row();
    table.add_cell(std::string(severity_name(all[i].severity)));
    table.add_cell(all[i].location());
    table.add_cell(all[i].message);
  }
  return table;
}

std::string DiagnosticSink::render(std::size_t max_detail_rows) const {
  const std::size_t n = total();
  if (n == 0) return {};
  std::string out = summary_table().render("ingest diagnostics");
  out += "\n";
  out += detail_table(max_detail_rows).render();
  if (n > max_detail_rows) {
    out += "(" + std::to_string(n - max_detail_rows) + " further diagnostics omitted)\n";
  }
  return out;
}

}  // namespace intertubes
