// Lightweight precondition / invariant checking.
//
// The library validates its inputs with IT_CHECK, which throws
// std::logic_error on violation.  Checks are always on (they guard public
// API boundaries, not hot inner loops), so behaviour does not differ
// between build types.
//
// IT_CHECK is for *programmer bugs* — violated invariants and misuse of
// the API.  Malformed external *data* is not a logic error: parse
// boundaries report it through util/diag.hpp's DiagnosticSink, which
// throws intertubes::ParseError (a std::runtime_error) under the strict
// policy, so callers can tell bad input from broken code by exception
// type.
#pragma once

#include <stdexcept>
#include <string>

namespace intertubes {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw std::logic_error(std::string("check failed: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace intertubes

#define IT_CHECK(expr)                                                 \
  do {                                                                 \
    if (!(expr)) ::intertubes::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define IT_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) ::intertubes::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
