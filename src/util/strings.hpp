// String helpers used by the public-records search engine and by table
// rendering.  All functions are pure and allocation-straightforward.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace intertubes {

/// ASCII lower-casing (the corpus is ASCII by construction).
std::string to_lower(std::string_view s);

/// Split on any character in `delims`, dropping empty pieces.
std::vector<std::string> split(std::string_view s, std::string_view delims = " \t\r\n");

/// Split on a single delimiter, keeping empty pieces — TSV field
/// splitting, where an empty field is positional information.
std::vector<std::string> split_fields(std::string_view s, char delim = '\t');

/// Whole-string unsigned integer parse; nullopt on any malformation
/// (sign, trailing junk, overflow).  The safe front door for untrusted
/// numeric fields — unlike std::stoul, it never throws.
std::optional<std::uint64_t> parse_uint(std::string_view s);

/// Whole-string double parse; nullopt on malformation or non-finite
/// input.
std::optional<double> parse_double(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;
bool contains(std::string_view haystack, std::string_view needle) noexcept;

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// Tokenize into lower-case alphanumeric words (separators: everything else).
/// This is the canonical tokenization shared by the corpus indexer and the
/// query parser so the two always agree.
std::vector<std::string> tokenize_words(std::string_view text);

}  // namespace intertubes
