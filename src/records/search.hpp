// A small ranked-retrieval search engine over the public-records corpus —
// the stand-in for the web searches ("los angeles to san francisco fiber
// iru at&t sprint") that drive the paper's validation steps.
//
// Documents are tokenized with the shared tokenizer; queries are bags of
// terms scored by TF-IDF with a minimum match-fraction gate so that a
// query about two cities and three ISPs does not return documents sharing
// only the word "fiber".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "records/document.hpp"

namespace intertubes::records {

struct SearchHit {
  DocId doc = 0;
  double score = 0.0;
  /// Fraction of distinct query terms present in the document.
  double match_fraction = 0.0;
};

class SearchIndex {
 public:
  explicit SearchIndex(const std::vector<Document>& docs);

  std::size_t num_documents() const noexcept { return doc_lengths_.size(); }
  std::size_t vocabulary_size() const noexcept { return postings_.size(); }

  /// Ranked retrieval.  `min_match` gates hits by the fraction of distinct
  /// query terms they contain; `limit` caps the result count.
  std::vector<SearchHit> query(std::string_view text, double min_match = 0.5,
                               std::size_t limit = 20) const;

  /// Document frequency of a term (0 if absent).
  std::size_t doc_frequency(std::string_view term) const;

 private:
  struct Posting {
    DocId doc;
    std::uint32_t tf;
  };
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<std::uint32_t> doc_lengths_;
  double avg_doc_length_ = 0.0;
};

}  // namespace intertubes::records
