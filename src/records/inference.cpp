#include "records/inference.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace intertubes::records {

using isp::IspId;
using transport::CityId;

namespace {

std::string seq_key(const std::vector<std::string>& tokens, std::size_t begin, std::size_t len) {
  std::string key;
  for (std::size_t i = 0; i < len; ++i) {
    if (i) key += ' ';
    key += tokens[begin + i];
  }
  return key;
}

}  // namespace

EntityExtractor::EntityExtractor(const transport::CityDatabase& cities,
                                 const std::vector<isp::IspProfile>& profiles) {
  // City entries are "<name tokens> <state>" — the corpus convention.
  for (CityId id = 0; id < cities.size(); ++id) {
    const auto& c = cities.city(id);
    auto tokens = tokenize_words(c.name + " " + c.state);
    SeqEntry entry;
    entry.length = tokens.size();
    entry.city = id;
    sequences_[join(tokens, " ")] = entry;
    max_seq_len_ = std::max(max_seq_len_, tokens.size());
  }
  for (IspId id = 0; id < profiles.size(); ++id) {
    auto tokens = tokenize_words(profiles[id].name);
    IT_CHECK(!tokens.empty());
    SeqEntry entry;
    entry.length = tokens.size();
    entry.isp = id;
    sequences_[join(tokens, " ")] = entry;
    max_seq_len_ = std::max(max_seq_len_, tokens.size());
  }
}

ExtractedEntities EntityExtractor::extract(const Document& doc) const {
  ExtractedEntities out;
  const std::string full = doc.title + " " + doc.text;
  const auto tokens = tokenize_words(full);

  for (std::size_t i = 0; i < tokens.size();) {
    std::size_t consumed = 1;
    const std::size_t max_len = std::min(max_seq_len_, tokens.size() - i);
    // Longest match wins: "salt lake city ut" before "salt".
    for (std::size_t len = max_len; len >= 1; --len) {
      const auto it = sequences_.find(seq_key(tokens, i, len));
      if (it == sequences_.end()) continue;
      const SeqEntry& entry = it->second;
      if (entry.city != transport::kNoCity) out.cities.push_back(entry.city);
      if (entry.isp != isp::kNoIsp) out.isps.push_back(entry.isp);
      consumed = len;
      break;
    }
    i += consumed;
  }

  std::sort(out.cities.begin(), out.cities.end());
  out.cities.erase(std::unique(out.cities.begin(), out.cities.end()), out.cities.end());
  std::sort(out.isps.begin(), out.isps.end());
  out.isps.erase(std::unique(out.isps.begin(), out.isps.end()), out.isps.end());

  const std::string lower = to_lower(full);
  out.negative = contains(lower, "feasibility study") ||
                 contains(lower, "no construction has commenced");
  out.strong = contains(lower, "indefeasible right of use") ||
               contains(lower, "filing before the commission") ||
               contains(lower, "class action settlement");
  if (contains(lower, "railroad") || contains(lower, "railway")) {
    out.row_mode = transport::TransportMode::Rail;
  } else if (contains(lower, "pipeline")) {
    out.row_mode = transport::TransportMode::Pipeline;
  } else if (contains(lower, "submarine cable") || contains(lower, "undersea cable") ||
             contains(lower, "landing station")) {
    out.row_mode = transport::TransportMode::Submarine;
  } else if (contains(lower, "highway") || contains(lower, "interstate")) {
    out.row_mode = transport::TransportMode::Road;
  }
  return out;
}

SharingInference::SharingInference(const transport::CityDatabase& cities,
                                   const std::vector<Document>& docs, const SearchIndex& index,
                                   const EntityExtractor& extractor,
                                   const std::vector<isp::IspProfile>& profiles)
    : cities_(cities), docs_(docs), index_(index), extractor_(extractor), profiles_(profiles) {}

ConduitEvidence SharingInference::infer(CityId a, CityId b, IspId hint_isp,
                                        std::optional<transport::TransportMode> row_mode,
                                        const InferenceParams& params) const {
  ConduitEvidence evidence;
  evidence.a = a;
  evidence.b = b;

  const auto& ca = cities_.city(a);
  const auto& cb = cities_.city(b);
  // The canonical search the paper describes, e.g.
  // "los angeles ca to san francisco ca fiber iru at&t".
  std::string query = ca.name + " " + ca.state + " to " + cb.name + " " + cb.state +
                      " fiber optic conduit right of way iru";
  if (hint_isp != isp::kNoIsp) query += " " + profiles_[hint_isp].name;

  const auto hits = index_.query(query, params.min_match, params.max_docs_per_query);

  std::unordered_map<IspId, TenantEvidence> per_isp;
  for (const auto& hit : hits) {
    const Document& doc = docs_[hit.doc];
    const auto entities = extractor_.extract(doc);
    // The analyst only counts documents that clearly concern this city
    // pair and that describe installed (not proposed) fiber.
    const bool mentions_both =
        std::binary_search(entities.cities.begin(), entities.cities.end(), a) &&
        std::binary_search(entities.cities.begin(), entities.cities.end(), b);
    if (!mentions_both || entities.negative) continue;
    // Rule ROWs out: a document that clearly describes a different
    // right-of-way type concerns the *other* conduit between these cities.
    if (row_mode && entities.row_mode && *entities.row_mode != *row_mode) continue;
    ++evidence.documents_considered;
    for (IspId isp_id : entities.isps) {
      auto& te = per_isp[isp_id];
      te.isp = isp_id;
      ++te.doc_count;
      if (entities.strong) ++te.strong_doc_count;
      te.score += hit.score;
      te.docs.push_back(doc.id);
    }
  }

  evidence.tenants.reserve(per_isp.size());
  for (auto& [isp_id, te] : per_isp) evidence.tenants.push_back(std::move(te));
  std::sort(evidence.tenants.begin(), evidence.tenants.end(),
            [](const TenantEvidence& x, const TenantEvidence& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.isp < y.isp;
            });
  return evidence;
}

std::vector<IspId> SharingInference::accepted_tenants(const ConduitEvidence& evidence,
                                                      const InferenceParams& params) const {
  std::vector<IspId> accepted;
  for (const auto& te : evidence.tenants) {
    if (te.doc_count >= params.docs_required || te.strong_doc_count >= 1) {
      accepted.push_back(te.isp);
    }
  }
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

}  // namespace intertubes::records
