// Entity extraction and conduit-sharing inference over the corpus.
//
// This is the automated analogue of what the paper's authors did by hand:
// search for "<city a> to <city b> fiber iru <isp>", read the documents
// that come back, and accept an ISP as a conduit tenant when the paper
// trail is convincing.  Extraction works on document *text only* via a
// gazetteer of city and ISP names; corpus generation metadata is never
// consulted.
#pragma once

#include <vector>

#include "isp/profiles.hpp"
#include "records/search.hpp"
#include "transport/cities.hpp"
#include "transport/network.hpp"

namespace intertubes::records {

struct ExtractedEntities {
  std::vector<transport::CityId> cities;  ///< sorted, unique
  std::vector<isp::IspId> isps;           ///< sorted, unique
  /// True when the document disclaims actual construction (feasibility
  /// studies, proposals) — not evidence of installed fiber.
  bool negative = false;
  /// True for document classes that authoritatively list parties
  /// (IRU agreements, agency filings, settlements).
  bool strong = false;
  /// Right-of-way type the document describes, when its language reveals
  /// one ("railroad right-of-way", "interstate highway", "pipeline
  /// easement") — lets the analyst rule ROWs in or out, as in §2.4.
  std::optional<transport::TransportMode> row_mode;
};

/// Gazetteer-based extractor.  Matching is longest-token-sequence-first;
/// city names must be followed by their state code (the convention of the
/// corpus and of the queries we compose), which disambiguates duplicates
/// such as Portland OR / Portland ME.
class EntityExtractor {
 public:
  EntityExtractor(const transport::CityDatabase& cities,
                  const std::vector<isp::IspProfile>& profiles);

  ExtractedEntities extract(const Document& doc) const;

 private:
  struct SeqEntry {
    std::size_t length;  // token count
    transport::CityId city = transport::kNoCity;
    isp::IspId isp = isp::kNoIsp;
  };
  std::unordered_map<std::string, SeqEntry> sequences_;
  std::size_t max_seq_len_ = 1;
};

/// Evidence accumulated for one candidate tenant of one conduit.
struct TenantEvidence {
  isp::IspId isp = isp::kNoIsp;
  std::size_t doc_count = 0;
  std::size_t strong_doc_count = 0;
  double score = 0.0;
  std::vector<DocId> docs;
};

struct ConduitEvidence {
  transport::CityId a = transport::kNoCity;
  transport::CityId b = transport::kNoCity;
  std::vector<TenantEvidence> tenants;  ///< descending by score
  std::size_t documents_considered = 0;
};

struct InferenceParams {
  /// Minimum query term match fraction for a hit to be read.
  double min_match = 0.55;
  /// Maximum documents read per query (the analyst's patience).
  std::size_t max_docs_per_query = 24;
  /// Acceptance rule: an ISP is a tenant if it has >= docs_required
  /// supporting documents, or >= 1 strong document.
  std::size_t docs_required = 2;
};

/// Runs the search-read-accumulate loop for candidate conduits.
class SharingInference {
 public:
  SharingInference(const transport::CityDatabase& cities, const std::vector<Document>& docs,
                   const SearchIndex& index, const EntityExtractor& extractor,
                   const std::vector<isp::IspProfile>& profiles);

  /// Gather evidence about the conduit between cities a and b.  `hint_isp`
  /// (optional) seeds the query with a known tenant's name, which is how
  /// the paper chains from known maps to unknown tenants.  When
  /// `row_mode` is given, documents whose language describes a different
  /// right-of-way type are ruled out (there can be a road conduit *and* a
  /// rail conduit between the same cities, with different tenants).
  ConduitEvidence infer(transport::CityId a, transport::CityId b,
                        isp::IspId hint_isp = isp::kNoIsp,
                        std::optional<transport::TransportMode> row_mode = std::nullopt,
                        const InferenceParams& params = {}) const;

  /// Apply the acceptance rule to evidence.
  std::vector<isp::IspId> accepted_tenants(const ConduitEvidence& evidence,
                                           const InferenceParams& params = {}) const;

 private:
  const transport::CityDatabase& cities_;
  const std::vector<Document>& docs_;
  const SearchIndex& index_;
  const EntityExtractor& extractor_;
  const std::vector<isp::IspProfile>& profiles_;
};

}  // namespace intertubes::records
