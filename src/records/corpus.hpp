// Corpus generation: turn ground truth into the kind of messy public
// paper trail the InterTubes methodology mines.
//
// Coverage is deliberately partial and noisy:
//   * only a fraction of lit conduits leave any paper trail at all;
//   * a document usually names only a subset of a conduit's tenants;
//   * occasionally a document names an ISP that is *not* in the conduit
//     (stale filings, proposals that never happened);
//   * some documents concern proposed-but-never-built corridors.
// The inference machinery has to work despite all of this, exactly like
// the manual searches of the paper.
#pragma once

#include "isp/ground_truth.hpp"
#include "records/document.hpp"
#include "transport/cities.hpp"
#include "transport/row.hpp"
#include "util/diag.hpp"

namespace intertubes::records {

struct CorpusParams {
  std::uint64_t seed = 0x1257;
  /// Expected number of documents per (lit conduit, tenant) pair.  Higher
  /// sharing ⇒ more paper trail, which matches reality (multi-party IRUs,
  /// settlements, joint trenching filings).
  double docs_per_tenancy = 0.9;
  /// Probability that a generated document names any given co-tenant
  /// (documents rarely list everyone in the tube).
  double cotenant_mention_prob = 0.55;
  /// Probability of a spurious ISP mention (noise).
  double false_mention_prob = 0.03;
  /// Number of documents about corridors that carry no fiber (proposals,
  /// feasibility studies) per 100 unlit corridors.
  double phantom_docs_per_100 = 6.0;
  /// Minimum documents per lit conduit regardless of tenancy (0 disables
  /// the floor; the default keeps extreme sparsity while letting most
  /// conduits stay undocumented by chance).
  std::size_t min_docs_floor = 0;
  /// §2.2: "Laws governing rights of way are established on a state-by-
  /// state basis" — some states publish far more than others.  This is
  /// the log-uniform spread of a deterministic per-state multiplier on
  /// docs_per_tenancy (0 = every state publishes alike; 1 ≈ 2.7× between
  /// the most and least forthcoming states).  A conduit's paper trail is
  /// governed by its endpoint states.
  double state_coverage_variance = 0.0;
};

/// A corpus plus the generation bookkeeping needed for *evaluation only*
/// (never consumed by search/inference).
struct Corpus {
  std::vector<Document> documents;
  /// Evaluation metadata: for each document, the corridor it concerns
  /// (kNoCorridor for phantom documents).
  std::vector<transport::CorridorId> truth_corridor;
};

Corpus generate_corpus(const transport::CityDatabase& cities,
                       const transport::RightOfWayRegistry& row, const isp::GroundTruth& truth,
                       const CorpusParams& params = {});

/// Serialize the corpus as a TSV document archive:
///   doc <tab> id <tab> type-name <tab> truth-corridor-or-"-" <tab> title
///       <tab> text
/// Title and text have backslash, tab and newline escaped, so one document
/// is always one line.
std::string serialize_corpus(const Corpus& corpus);

/// Parse a corpus archive, reporting malformed documents into `sink` with
/// their input line number; under the lenient policy they are quarantined
/// and the rest survive.  Document ids are reassigned to be dense (the
/// Corpus invariant id == index must hold after quarantining).
Corpus parse_corpus(const std::string& text, DiagnosticSink& sink,
                    const std::string& source = "<corpus>");

/// File wrappers.  Open failures throw std::runtime_error with the OS
/// errno context.
void save_corpus(const std::string& path, const Corpus& corpus);
Corpus load_corpus(const std::string& path, DiagnosticSink& sink);

}  // namespace intertubes::records
