#include "records/document.hpp"

namespace intertubes::records {

std::string_view doc_type_name(DocType t) noexcept {
  switch (t) {
    case DocType::AgencyFiling: return "agency filing";
    case DocType::IruAgreement: return "IRU agreement";
    case DocType::FranchiseAgreement: return "franchise agreement";
    case DocType::EnvironmentalImpact: return "environmental impact statement";
    case DocType::PressRelease: return "press release";
    case DocType::Settlement: return "settlement";
    case DocType::ProjectPlan: return "project plan";
    case DocType::LeaseAgreement: return "lease agreement";
  }
  return "?";
}

std::optional<DocType> doc_type_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumDocTypes; ++i) {
    const auto t = static_cast<DocType>(i);
    if (doc_type_name(t) == name) return t;
  }
  return std::nullopt;
}

}  // namespace intertubes::records
