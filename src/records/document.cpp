#include "records/document.hpp"

namespace intertubes::records {

std::string_view doc_type_name(DocType t) noexcept {
  switch (t) {
    case DocType::AgencyFiling: return "agency filing";
    case DocType::IruAgreement: return "IRU agreement";
    case DocType::FranchiseAgreement: return "franchise agreement";
    case DocType::EnvironmentalImpact: return "environmental impact statement";
    case DocType::PressRelease: return "press release";
    case DocType::Settlement: return "settlement";
    case DocType::ProjectPlan: return "project plan";
    case DocType::LeaseAgreement: return "lease agreement";
  }
  return "?";
}

}  // namespace intertubes::records
