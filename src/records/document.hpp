// The public-records document model.
//
// The paper's step 2/4 mine government agency filings, IRU agreements,
// franchise agreements, environmental impact statements, press releases,
// class-action settlements, project plans and lease agreements for
// evidence of where fiber runs and who shares a conduit.  This module
// models such documents as plain text; all downstream consumers (search,
// entity extraction, inference) operate on the text alone — generation
// metadata is never leaked to them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace intertubes::records {

using DocId = std::uint32_t;

enum class DocType : std::uint8_t {
  AgencyFiling,         ///< e.g. FCC / state-DOT filings
  IruAgreement,         ///< indefeasible-right-of-use contracts
  FranchiseAgreement,   ///< municipal franchise agreements
  EnvironmentalImpact,  ///< environmental impact statements
  PressRelease,
  Settlement,           ///< railroad-ROW class-action settlements
  ProjectPlan,          ///< construction / design project documents
  LeaseAgreement,       ///< conduit / dark-fiber lease agreements
};

inline constexpr std::size_t kNumDocTypes = 8;

std::string_view doc_type_name(DocType t) noexcept;

/// Inverse of doc_type_name; nullopt for unknown names (the corpus parser
/// quarantines such documents rather than guessing).
std::optional<DocType> doc_type_from_name(std::string_view name) noexcept;

struct Document {
  DocId id = 0;
  DocType type = DocType::AgencyFiling;
  std::string title;
  std::string text;
};

}  // namespace intertubes::records
