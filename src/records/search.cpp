#include "records/search.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace intertubes::records {

SearchIndex::SearchIndex(const std::vector<Document>& docs) {
  doc_lengths_.resize(docs.size(), 0);
  std::unordered_map<std::string, std::uint32_t> tf;
  for (const Document& doc : docs) {
    tf.clear();
    const auto tokens = tokenize_words(doc.title + " " + doc.text);
    doc_lengths_[doc.id] = static_cast<std::uint32_t>(tokens.size());
    for (const auto& tok : tokens) ++tf[tok];
    for (const auto& [term, count] : tf) {
      postings_[term].push_back({doc.id, count});
    }
  }
  double total = 0.0;
  for (auto len : doc_lengths_) total += len;
  avg_doc_length_ = doc_lengths_.empty() ? 0.0 : total / static_cast<double>(doc_lengths_.size());
}

std::size_t SearchIndex::doc_frequency(std::string_view term) const {
  const auto it = postings_.find(to_lower(term));
  return it == postings_.end() ? 0 : it->second.size();
}

std::vector<SearchHit> SearchIndex::query(std::string_view text, double min_match,
                                          std::size_t limit) const {
  auto terms = tokenize_words(text);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) return {};

  const double n_docs = static_cast<double>(doc_lengths_.size());
  // BM25-lite accumulation.
  constexpr double k1 = 1.4;
  constexpr double b = 0.6;
  std::unordered_map<DocId, double> scores;
  std::unordered_map<DocId, std::uint32_t> matched_terms;
  for (const auto& term : terms) {
    const auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const double df = static_cast<double>(it->second.size());
    const double idf = std::log(1.0 + (n_docs - df + 0.5) / (df + 0.5));
    for (const auto& posting : it->second) {
      const double len_norm =
          1.0 - b + b * static_cast<double>(doc_lengths_[posting.doc]) / avg_doc_length_;
      const double tf_component =
          static_cast<double>(posting.tf) * (k1 + 1.0) /
          (static_cast<double>(posting.tf) + k1 * len_norm);
      scores[posting.doc] += idf * tf_component;
      ++matched_terms[posting.doc];
    }
  }

  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  const double n_terms = static_cast<double>(terms.size());
  for (const auto& [doc, score] : scores) {
    const double frac = static_cast<double>(matched_terms[doc]) / n_terms;
    if (frac + 1e-12 < min_match) continue;
    hits.push_back({doc, score, frac});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& x, const SearchHit& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.doc < y.doc;
  });
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

}  // namespace intertubes::records
