#include "records/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace intertubes::records {

using isp::GroundTruth;
using isp::IspId;
using transport::CityDatabase;
using transport::Corridor;
using transport::CorridorId;
using transport::TransportMode;

namespace {

std::string mode_phrase(TransportMode m, Rng& rng) {
  switch (m) {
    case TransportMode::Road:
      return rng.chance(0.5) ? "the interstate highway right-of-way" : "the state highway corridor";
    case TransportMode::Rail:
      return rng.chance(0.5) ? "the railroad right-of-way" : "land adjacent to the railway corridor";
    case TransportMode::Pipeline:
      return rng.chance(0.5) ? "the refined-products pipeline easement"
                             : "the natural gas pipeline right-of-way";
    case TransportMode::Submarine:
      return rng.chance(0.5) ? "the submarine cable route between landing stations"
                             : "the undersea cable corridor";
  }
  return "the right-of-way";
}

std::string city_phrase(const CityDatabase& cities, transport::CityId id) {
  const auto& c = cities.city(id);
  return c.name + " " + c.state;
}

/// Render one document about a corridor naming the given ISPs.  All facts
/// the extractor may rely on are spelled out in the text itself.
Document make_document(DocId id, DocType type, const CityDatabase& cities, const Corridor& corridor,
                       const std::vector<std::string>& isp_names, Rng& rng) {
  const std::string a = city_phrase(cities, corridor.a);
  const std::string b = city_phrase(cities, corridor.b);
  const std::string row = mode_phrase(corridor.mode, rng);
  const int miles = static_cast<int>(std::lround(corridor.length_km * 0.621371));
  const std::string isps = join(isp_names, ", ");

  Document doc;
  doc.id = id;
  doc.type = type;
  std::string body;
  switch (type) {
    case DocType::IruAgreement:
      doc.title = "Indefeasible right of use agreement, " + a + " to " + b;
      body = "This indefeasible right of use agreement conveys fiber optic strands along " + row +
             " from " + a + " to " + b + ", a route of approximately " +
             std::to_string(miles) + " miles. The parties to the agreement are " + isps +
             ". The grantee shall obtain access to the conduit and associated regeneration " +
             "facilities for the term of the agreement.";
      break;
    case DocType::AgencyFiling:
      doc.title = "Public utilities filing regarding conduit from " + a + " to " + b;
      body = "Filing before the commission concerning the fiber optic conduit installed along " +
             row + " between " + a + " and " + b + ". The record shows that fiber optic cables of " +
             isps + " were pulled through portions of the conduit purchased or leased by those " +
             "carriers. The conduit spans " + std::to_string(miles) + " miles.";
      break;
    case DocType::FranchiseAgreement:
      doc.title = "Franchise agreement, " + a;
      body = std::string("Franchise agreement between the county and the cable operator. Exhibit C notes ") +
             "existing telecommunications facilities of " + isps + " running along " + row +
             " from " + a + " toward " + b + " within the public right-of-way.";
      break;
    case DocType::EnvironmentalImpact:
      doc.title = "Environmental impact statement, " + a + " to " + b + " corridor";
      body = "Chapter 4, utilities section. The affected corridor along " + row + " between " + a +
             " and " + b + " contains buried fiber optic infrastructure belonging to " + isps +
             ". Construction activities shall avoid disturbance of the existing conduit bank.";
      break;
    case DocType::PressRelease:
      doc.title = "Network expansion announcement";
      body = "The company announced completion of a long-haul fiber route from " + a + " to " + b +
             " of roughly " + std::to_string(miles) + " miles. The build makes use of existing " +
             "conduit along " + row + " shared with " + isps + ".";
      break;
    case DocType::Settlement:
      doc.title = "Class action settlement, right-of-way between " + a + " and " + b;
      body = "Notice of class action settlement involving land next to or under " + row +
             " between " + a + " and " + b + " where " + isps +
             " have installed telecommunications facilities such as fiber optic cables.";
      break;
    case DocType::ProjectPlan:
      doc.title = "Design services project document, " + a;
      body = std::string("Project document for design services. Page 4, utilities section, demonstrates the ") +
             "presence of infrastructure of " + isps + " along " + row + " from " + a + " to " + b +
             ". Potholing is required at crossings.";
      break;
    case DocType::LeaseAgreement:
      doc.title = "Conduit lease agreement, " + a + " to " + b;
      body = "Lease agreement under which the lessee obtains dark fiber from " + a + " to " + b +
             " within the existing conduit along " + row + ". Parties: " + isps +
             ". Term of twenty years with renewal options.";
      break;
  }
  doc.text = std::move(body);
  return doc;
}

DocType pick_doc_type(Rng& rng, bool multi_tenant) {
  // Multi-tenant conduits tend to surface through IRUs, settlements and
  // agency filings; single-tenant through press releases and leases.
  if (multi_tenant) {
    static constexpr DocType kTypes[] = {DocType::IruAgreement,   DocType::AgencyFiling,
                                         DocType::Settlement,     DocType::EnvironmentalImpact,
                                         DocType::FranchiseAgreement, DocType::ProjectPlan};
    return kTypes[rng.next_below(std::size(kTypes))];
  }
  static constexpr DocType kTypes[] = {DocType::PressRelease, DocType::LeaseAgreement,
                                       DocType::ProjectPlan, DocType::EnvironmentalImpact};
  return kTypes[rng.next_below(std::size(kTypes))];
}

}  // namespace

Corpus generate_corpus(const CityDatabase& cities, const transport::RightOfWayRegistry& row,
                       const GroundTruth& truth, const CorpusParams& params) {
  Rng rng(mix64(params.seed ^ 0xd0c5ULL));
  Corpus corpus;

  const auto& profiles = truth.profiles();
  auto isp_name = [&](IspId id) { return profiles[id].name; };

  // Deterministic per-state publication propensity (§2.2's state-by-state
  // ROW law variance), log-uniform around 1.
  auto state_factor = [&params](const std::string& state) {
    if (params.state_coverage_variance <= 0.0) return 1.0;
    std::uint64_t h = 0x5747ULL;
    for (char ch : state) h = mix64(h ^ static_cast<std::uint64_t>(ch));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    return std::exp(params.state_coverage_variance * (2.0 * u - 1.0));
  };

  for (const Corridor& corridor : row.corridors()) {
    const auto& tenants = truth.tenants_by_corridor()[corridor.id];
    if (tenants.empty()) continue;

    // Poisson-ish document count: expected docs_per_tenancy per tenant,
    // scaled by how forthcoming the endpoint states' agencies are.
    const double coverage = (state_factor(cities.city(corridor.a).state) +
                             state_factor(cities.city(corridor.b).state)) /
                            2.0;
    const double expectation =
        params.docs_per_tenancy * coverage * static_cast<double>(tenants.size());
    std::size_t count = 0;
    double budget = expectation;
    while (budget >= 1.0) {
      ++count;
      budget -= 1.0;
    }
    if (rng.chance(budget)) ++count;
    count = std::max(count, params.min_docs_floor);

    for (std::size_t d = 0; d < count; ++d) {
      // Anchor tenant: every document is *about* at least one real tenant.
      const IspId anchor = tenants[rng.next_below(tenants.size())];
      std::vector<std::string> names{isp_name(anchor)};
      for (IspId t : tenants) {
        if (t != anchor && rng.chance(params.cotenant_mention_prob)) names.push_back(isp_name(t));
      }
      // Spurious mention noise.
      if (rng.chance(params.false_mention_prob)) {
        const IspId bogus = static_cast<IspId>(rng.next_below(profiles.size()));
        if (std::find(tenants.begin(), tenants.end(), bogus) == tenants.end()) {
          names.push_back(isp_name(bogus));
        }
      }
      const bool multi = names.size() > 1;
      const auto id = static_cast<DocId>(corpus.documents.size());
      corpus.documents.push_back(
          make_document(id, pick_doc_type(rng, multi), cities, corridor, names, rng));
      corpus.truth_corridor.push_back(corridor.id);
    }
  }

  // Phantom documents about unlit corridors: proposals and studies that
  // never turned into glass.  These exercise the pipeline's rejection path.
  std::vector<CorridorId> unlit;
  for (const Corridor& corridor : row.corridors()) {
    if (truth.tenants_by_corridor()[corridor.id].empty()) unlit.push_back(corridor.id);
  }
  const auto phantom_count = static_cast<std::size_t>(
      params.phantom_docs_per_100 * static_cast<double>(unlit.size()) / 100.0);
  for (std::size_t i = 0; i < phantom_count && !unlit.empty(); ++i) {
    const CorridorId cid = unlit[rng.next_below(unlit.size())];
    const IspId bogus = static_cast<IspId>(rng.next_below(profiles.size()));
    std::vector<std::string> names{isp_name(bogus)};
    const auto id = static_cast<DocId>(corpus.documents.size());
    Document doc = make_document(id, DocType::ProjectPlan, cities, row.corridor(cid), names, rng);
    doc.title = "Feasibility study: " + doc.title;
    doc.text = "Feasibility study for a proposed build. " + doc.text +
               " No construction has commenced as of the date of this study.";
    corpus.documents.push_back(std::move(doc));
    corpus.truth_corridor.push_back(transport::kNoCorridor);
  }

  return corpus;
}

namespace {

std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(ch);
    }
  }
  return out;
}

std::optional<std::string> unescape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      default: return std::nullopt;
    }
  }
  return out;
}

}  // namespace

std::string serialize_corpus(const Corpus& corpus) {
  std::string out = "# InterTubes public-records corpus\n";
  out += "#docs\tid\ttype\tcorridor\ttitle\ttext\n";
  for (std::size_t i = 0; i < corpus.documents.size(); ++i) {
    const Document& doc = corpus.documents[i];
    const CorridorId corridor =
        i < corpus.truth_corridor.size() ? corpus.truth_corridor[i] : transport::kNoCorridor;
    out += "doc\t" + std::to_string(doc.id) + "\t" + std::string(doc_type_name(doc.type)) + "\t" +
           (corridor == transport::kNoCorridor ? std::string("-") : std::to_string(corridor)) +
           "\t" + escape_field(doc.title) + "\t" + escape_field(doc.text) + "\n";
  }
  return out;
}

Corpus parse_corpus(const std::string& text, DiagnosticSink& sink, const std::string& source) {
  Corpus corpus;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string line = text.substr(start, end == std::string::npos ? std::string::npos
                                                                   : end - start);
    start = end == std::string::npos ? text.size() + 1 : end + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const std::string& message) {
      sink.report(Severity::Error, source, line_no, message);
    };
    const auto fields = split_fields(line, '\t');
    if (fields[0] != "doc") {
      fail("unknown corpus record type: " + fields[0]);
      continue;
    }
    if (fields.size() != 6) {
      fail("malformed doc line: expected 6 fields, got " + std::to_string(fields.size()));
      continue;
    }
    const auto type = doc_type_from_name(fields[2]);
    if (!type) {
      fail("unknown document type: " + fields[2]);
      continue;
    }
    CorridorId corridor = transport::kNoCorridor;
    if (fields[3] != "-") {
      const auto parsed = parse_uint(fields[3]);
      if (!parsed) {
        fail("malformed truth corridor id: " + fields[3]);
        continue;
      }
      corridor = static_cast<CorridorId>(*parsed);
    }
    const auto title = unescape_field(fields[4]);
    const auto body = unescape_field(fields[5]);
    if (!title || !body || title->empty() || body->empty()) {
      fail("malformed or empty document title/text");
      continue;
    }
    Document doc;
    doc.id = static_cast<DocId>(corpus.documents.size());  // dense re-id after quarantining
    doc.type = *type;
    doc.title = *title;
    doc.text = *body;
    corpus.documents.push_back(std::move(doc));
    corpus.truth_corridor.push_back(corridor);
  }
  return corpus;
}

void save_corpus(const std::string& path, const Corpus& corpus) {
  write_file(path, serialize_corpus(corpus));
}

Corpus load_corpus(const std::string& path, DiagnosticSink& sink) {
  return parse_corpus(read_file(path), sink, path);
}

}  // namespace intertubes::records
