// Deployment profiles for the twenty service providers the paper studies.
//
// Nine providers published geocoded fiber maps (the paper's step-1 set);
// eleven published POP-level maps only (the step-3 set).  Profile
// parameters — footprint size, regional bias, redundancy, and the
// propensity to trench new conduit rather than lease/reuse — drive the
// ground-truth generator so that the emergent sharing structure matches
// the qualitative picture in the paper (facilities-rich US carriers own
// diverse paths; non-US carriers lease into existing, highly shared
// conduits).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "transport/cities.hpp"

namespace intertubes::isp {

using IspId = std::uint32_t;
inline constexpr IspId kNoIsp = 0xffffffffu;

enum class IspKind : std::uint8_t {
  Tier1,     ///< Facilities-based backbone carrier.
  Cable,     ///< Major cable/broadband provider with national fiber.
  Regional,  ///< Regional carrier with a concentrated footprint.
};

std::string_view kind_name(IspKind k) noexcept;

struct IspProfile {
  std::string name;
  IspKind kind = IspKind::Tier1;
  bool us_based = true;
  /// True for the nine step-1 ISPs whose published maps carry full
  /// geocoded link geometry; false for the eleven POP-only step-3 ISPs.
  bool publishes_geocoded_map = false;
  /// Target number of POP cities.
  std::size_t target_pops = 40;
  /// Per-region deployment weight (West, Mountain, Central, South, East).
  std::array<double, 5> region_weight{1.0, 1.0, 1.0, 1.0, 1.0};
  /// Extra redundant links as a fraction of the backbone size.  High for
  /// carriers with famously rich path diversity (Level 3), low for
  /// carriers that ride a handful of leased routes.
  double redundancy = 0.3;
  /// Number of long express routes between top hubs.
  std::size_t express_links = 4;
  /// Multiplicative discount applied to a corridor's routing cost when the
  /// corridor already holds a conduit.  Smaller ⇒ stronger preference for
  /// reuse ("simple economics" of §1); non-US dig-once/lease carriers get
  /// the smallest values.
  double reuse_discount = 0.45;
  /// Exponent biasing POP selection toward large cities.
  double pop_bias = 1.0;
};

/// The twenty providers of the study, in the paper's step order: the nine
/// geocoded-map ISPs first (Table 1), then the eleven POP-only ISPs.
const std::vector<IspProfile>& default_profiles();

/// Index of a profile by name (exact match); kNoIsp if absent.
IspId find_profile(const std::vector<IspProfile>& profiles, std::string_view name);

}  // namespace intertubes::isp
