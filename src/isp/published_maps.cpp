#include "isp/published_maps.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace intertubes::isp {

using transport::CityId;
using transport::CorridorId;

namespace {

geo::Polyline jittered(const geo::Polyline& line, double noise_km, Rng& rng) {
  if (noise_km <= 0.0) return line;
  std::vector<geo::GeoPoint> pts = line.points();
  // Endpoints stay exact (cities are well known); interior vertices wobble.
  for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
    const double bearing = rng.uniform(0.0, 360.0);
    const double dist = std::abs(rng.normal(0.0, noise_km));
    pts[i] = geo::destination(pts[i], bearing, dist);
  }
  return geo::Polyline(std::move(pts));
}

}  // namespace

PublishedMap render_published_map(const GroundTruth& truth,
                                  const transport::RightOfWayRegistry& row, IspId isp,
                                  const PublishParams& params) {
  IT_CHECK(isp < truth.num_isps());
  const auto& prof = truth.profiles()[isp];
  Rng rng(mix64(params.seed ^ (0xc0ffee11ULL * (isp + 1))));

  PublishedMap map;
  map.isp = isp;
  map.isp_name = prof.name;
  map.geocoded = prof.publishes_geocoded_map;

  std::set<CityId> nodes;
  for (std::size_t idx : truth.link_indices_of(isp)) {
    const TrueLink& link = truth.links()[idx];
    if (rng.chance(params.omit_link_prob)) continue;  // map lags deployment
    PublishedLink pub;
    pub.a = link.a;
    pub.b = link.b;
    if (map.geocoded) {
      // Published geometry is the concatenated corridor geometry with
      // georeferencing jitter.
      transport::RowPath path;
      path.corridors = link.corridors;
      path.cities.push_back(link.a);
      // Reconstruct visited city sequence by walking the corridors.
      CityId cur = link.a;
      for (CorridorId cid : link.corridors) {
        const auto& c = row.corridor(cid);
        cur = (c.a == cur) ? c.b : c.a;
        path.cities.push_back(cur);
      }
      IT_CHECK(cur == link.b);
      const geo::Polyline exact = row.path_geometry(path);
      pub.geometry = jittered(exact, params.coord_noise_km, rng);
    }
    nodes.insert(link.a);
    nodes.insert(link.b);
    map.links.push_back(std::move(pub));
  }
  map.nodes.assign(nodes.begin(), nodes.end());
  return map;
}

std::vector<PublishedMap> render_all_published_maps(const GroundTruth& truth,
                                                    const transport::RightOfWayRegistry& row,
                                                    const PublishParams& params) {
  std::vector<PublishedMap> maps;
  maps.reserve(truth.num_isps());
  for (IspId isp = 0; isp < truth.num_isps(); ++isp) {
    maps.push_back(render_published_map(truth, row, isp, params));
  }
  return maps;
}

namespace {

std::string format_geometry(const geo::Polyline& line) {
  std::string out;
  char buf[64];
  for (const geo::GeoPoint& p : line.points()) {
    if (!out.empty()) out.push_back(' ');
    std::snprintf(buf, sizeof(buf), "%.6f,%.6f", p.lon_deg, p.lat_deg);
    out += buf;
  }
  return out;
}

std::optional<geo::Polyline> parse_geometry(std::string_view field) {
  std::vector<geo::GeoPoint> pts;
  for (const std::string& pair : split(field, " ")) {
    const auto comma = pair.find(',');
    if (comma == std::string::npos) return std::nullopt;
    const auto lon = parse_double(std::string_view(pair).substr(0, comma));
    const auto lat = parse_double(std::string_view(pair).substr(comma + 1));
    if (!lon || !lat || *lon < -180.0 || *lon > 180.0 || *lat < -90.0 || *lat > 90.0) {
      return std::nullopt;
    }
    pts.push_back(geo::GeoPoint{*lat, *lon});
  }
  if (pts.size() < 2) return std::nullopt;
  return geo::Polyline(std::move(pts));
}

}  // namespace

std::string serialize_published_maps(const std::vector<PublishedMap>& maps,
                                     const transport::CityDatabase& cities) {
  std::string out;
  out += "# InterTubes published-map archive\n";
  out += "# map\tisp-name\tgeocoded\n";
  out += "# link\tfrom\tto[\tlon,lat lon,lat ...]\n";
  for (const PublishedMap& map : maps) {
    out += "map\t" + map.isp_name + "\t" + (map.geocoded ? "1" : "0") + "\n";
    for (const PublishedLink& link : map.links) {
      out += "link\t" + cities.city(link.a).display_name() + "\t" +
             cities.city(link.b).display_name();
      if (link.geometry.has_value()) {
        out += "\t" + format_geometry(*link.geometry);
      }
      out += "\n";
    }
  }
  return out;
}

std::vector<PublishedMap> parse_published_maps(const std::string& text,
                                               const transport::CityDatabase& cities,
                                               const std::vector<IspProfile>& profiles,
                                               DiagnosticSink& sink, const std::string& source) {
  std::vector<PublishedMap> maps;
  bool block_valid = false;  // links before any valid `map` header are skipped
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string_view line(text.data() + pos,
                          (nl == std::string::npos ? text.size() : nl) - pos);
    pos = (nl == std::string::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    const std::vector<std::string> fields = split_fields(line, '\t');
    const auto fail = [&](const std::string& msg) {
      sink.report(Severity::Error, source, line_no, msg);
    };

    if (fields[0] == "map") {
      block_valid = false;
      if (fields.size() != 3) {
        fail("map header: expected 3 fields, got " + std::to_string(fields.size()) +
             "; block quarantined");
        continue;
      }
      const IspId isp = find_profile(profiles, fields[1]);
      if (isp == kNoIsp) {
        fail("map header: unknown ISP \"" + fields[1] + "\"; block quarantined");
        continue;
      }
      if (fields[2] != "0" && fields[2] != "1") {
        fail("map header: geocoded flag must be 0 or 1, got \"" + fields[2] +
             "\"; block quarantined");
        continue;
      }
      PublishedMap map;
      map.isp = isp;
      map.isp_name = profiles[isp].name;
      map.geocoded = fields[2] == "1";
      maps.push_back(std::move(map));
      block_valid = true;
    } else if (fields[0] == "link") {
      if (!block_valid) continue;  // inside a quarantined block: already reported
      PublishedMap& map = maps.back();
      if (fields.size() != (map.geocoded ? 4u : 3u)) {
        fail("link: expected " + std::to_string(map.geocoded ? 4 : 3) + " fields, got " +
             std::to_string(fields.size()));
        continue;
      }
      const auto a = cities.find(fields[1]);
      const auto b = cities.find(fields[2]);
      if (!a || !b) {
        fail("link: unknown city \"" + (a ? fields[2] : fields[1]) + "\"");
        continue;
      }
      if (*a == *b) {
        fail("link: endpoints must differ (\"" + fields[1] + "\")");
        continue;
      }
      PublishedLink link;
      link.a = *a;
      link.b = *b;
      if (map.geocoded) {
        link.geometry = parse_geometry(fields[3]);
        if (!link.geometry.has_value()) {
          fail("link: malformed geometry (need >=2 valid lon,lat pairs)");
          continue;
        }
      }
      map.links.push_back(std::move(link));
    } else {
      fail("unknown record type \"" + fields[0] + "\"");
    }
  }
  // Rebuild node lists from the surviving links' endpoints.
  for (PublishedMap& map : maps) {
    std::set<CityId> nodes;
    for (const PublishedLink& link : map.links) {
      nodes.insert(link.a);
      nodes.insert(link.b);
    }
    map.nodes.assign(nodes.begin(), nodes.end());
  }
  return maps;
}

void save_published_maps(const std::string& path, const std::vector<PublishedMap>& maps,
                         const transport::CityDatabase& cities) {
  write_file(path, serialize_published_maps(maps, cities));
}

std::vector<PublishedMap> load_published_maps(const std::string& path,
                                              const transport::CityDatabase& cities,
                                              const std::vector<IspProfile>& profiles,
                                              DiagnosticSink& sink) {
  return parse_published_maps(read_file(path), cities, profiles, sink, path);
}

}  // namespace intertubes::isp
