#include "isp/published_maps.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace intertubes::isp {

using transport::CityId;
using transport::CorridorId;

namespace {

geo::Polyline jittered(const geo::Polyline& line, double noise_km, Rng& rng) {
  if (noise_km <= 0.0) return line;
  std::vector<geo::GeoPoint> pts = line.points();
  // Endpoints stay exact (cities are well known); interior vertices wobble.
  for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
    const double bearing = rng.uniform(0.0, 360.0);
    const double dist = std::abs(rng.normal(0.0, noise_km));
    pts[i] = geo::destination(pts[i], bearing, dist);
  }
  return geo::Polyline(std::move(pts));
}

}  // namespace

PublishedMap render_published_map(const GroundTruth& truth,
                                  const transport::RightOfWayRegistry& row, IspId isp,
                                  const PublishParams& params) {
  IT_CHECK(isp < truth.num_isps());
  const auto& prof = truth.profiles()[isp];
  Rng rng(mix64(params.seed ^ (0xc0ffee11ULL * (isp + 1))));

  PublishedMap map;
  map.isp = isp;
  map.isp_name = prof.name;
  map.geocoded = prof.publishes_geocoded_map;

  std::set<CityId> nodes;
  for (std::size_t idx : truth.link_indices_of(isp)) {
    const TrueLink& link = truth.links()[idx];
    if (rng.chance(params.omit_link_prob)) continue;  // map lags deployment
    PublishedLink pub;
    pub.a = link.a;
    pub.b = link.b;
    if (map.geocoded) {
      // Published geometry is the concatenated corridor geometry with
      // georeferencing jitter.
      transport::RowPath path;
      path.corridors = link.corridors;
      path.cities.push_back(link.a);
      // Reconstruct visited city sequence by walking the corridors.
      CityId cur = link.a;
      for (CorridorId cid : link.corridors) {
        const auto& c = row.corridor(cid);
        cur = (c.a == cur) ? c.b : c.a;
        path.cities.push_back(cur);
      }
      IT_CHECK(cur == link.b);
      const geo::Polyline exact = row.path_geometry(path);
      pub.geometry = jittered(exact, params.coord_noise_km, rng);
    }
    nodes.insert(link.a);
    nodes.insert(link.b);
    map.links.push_back(std::move(pub));
  }
  map.nodes.assign(nodes.begin(), nodes.end());
  return map;
}

std::vector<PublishedMap> render_all_published_maps(const GroundTruth& truth,
                                                    const transport::RightOfWayRegistry& row,
                                                    const PublishParams& params) {
  std::vector<PublishedMap> maps;
  maps.reserve(truth.num_isps());
  for (IspId isp = 0; isp < truth.num_isps(); ++isp) {
    maps.push_back(render_published_map(truth, row, isp, params));
  }
  return maps;
}

}  // namespace intertubes::isp
