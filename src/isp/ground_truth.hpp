// Ground-truth infrastructure generator.
//
// The paper reverse-engineers a map of fiber that exists in the world; the
// world itself is unavailable offline, so this module *builds* that world:
// each ISP profile deploys a backbone over the right-of-way graph with
// reuse economics (installing into an existing conduit is far cheaper than
// trenching a new one), which makes heavy conduit sharing an emergent
// property rather than an assumption.  The mapping pipeline in core/ then
// tries to recover this ground truth from the published artifacts — and
// because we hold the truth, fidelity is measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "isp/profiles.hpp"
#include "transport/row.hpp"
#include "util/rng.hpp"

namespace intertubes::isp {

struct GroundTruthParams {
  std::uint64_t seed = 0x1257;
  /// Cost factor for a corridor already holding *this* ISP's own fiber
  /// (pulling more strands through your own conduit is almost free).
  double own_reuse_factor = 0.40;
  /// Log-normal routing noise per (link, corridor): different build years,
  /// permitting fights and acquisition legacies keep real deployments from
  /// collapsing onto one canonical shortest path.  0 disables.
  double route_jitter = 0.42;
  /// Cost factor applied to pipeline corridors (harder ROW negotiations).
  double pipeline_factor = 1.12;
  /// Cost factor applied to submarine-cable corridors.  Well above 1: an
  /// intra-continent deployment never prefers an undersea detour, so cables
  /// are lit only by the explicit intercontinental links worldgen plans.
  double submarine_factor = 4.0;
  /// Deployment-order shuffling jitter: ISPs deploy in decreasing order of
  /// reuse_discount (facilities owners dig first, lessees arrive later).
  double order_jitter = 0.05;
};

/// One long-haul fiber link as deployed in the world: an ISP's fiber
/// between two of its POP cities, routed through a sequence of corridors.
struct TrueLink {
  IspId isp = kNoIsp;
  transport::CityId a = transport::kNoCity;
  transport::CityId b = transport::kNoCity;
  std::vector<transport::CorridorId> corridors;
  double length_km = 0.0;
};

class GroundTruth {
 public:
  GroundTruth(std::vector<IspProfile> profiles, std::vector<std::vector<transport::CityId>> pops,
              std::vector<TrueLink> links, std::size_t num_corridors);

  const std::vector<IspProfile>& profiles() const noexcept { return profiles_; }
  std::size_t num_isps() const noexcept { return profiles_.size(); }

  /// POP cities of one ISP.
  const std::vector<transport::CityId>& pops_of(IspId isp) const;

  const std::vector<TrueLink>& links() const noexcept { return links_; }
  /// Indices into links() belonging to one ISP.
  const std::vector<std::size_t>& link_indices_of(IspId isp) const;

  /// Tenant ISPs per corridor (sorted, unique); empty for unlit corridors.
  const std::vector<std::vector<IspId>>& tenants_by_corridor() const noexcept {
    return tenants_by_corridor_;
  }

  /// Corridor ids that carry at least one ISP's fiber ("lit" conduits).
  std::vector<transport::CorridorId> lit_corridors() const;

  bool is_tenant(transport::CorridorId corridor, IspId isp) const;
  std::size_t tenant_count(transport::CorridorId corridor) const;

 private:
  std::vector<IspProfile> profiles_;
  std::vector<std::vector<transport::CityId>> pops_;
  std::vector<TrueLink> links_;
  std::vector<std::vector<std::size_t>> links_by_isp_;
  std::vector<std::vector<IspId>> tenants_by_corridor_;
};

/// Deploy all profiles over the ROW graph.  Deterministic in params.seed.
GroundTruth generate_ground_truth(const transport::CityDatabase& cities,
                                  const transport::RightOfWayRegistry& row,
                                  const std::vector<IspProfile>& profiles,
                                  const GroundTruthParams& params = {});

}  // namespace intertubes::isp
