// Rendering of the artifacts ISPs actually publish, from ground truth.
//
// Step-1 ISPs publish maps with full geocoded link geometry (possibly
// noisy: scanned PDFs, manual georeferencing); step-3 ISPs publish
// POP-level connectivity only ("a simple point with two names").  A small
// fraction of links is missing from any published map — published maps lag
// deployments — which is one of the noise sources the mapping pipeline
// must survive.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "isp/ground_truth.hpp"

namespace intertubes::isp {

struct PublishedLink {
  transport::CityId a = transport::kNoCity;
  transport::CityId b = transport::kNoCity;
  /// Full route geometry for geocoded maps; nullopt on POP-only maps.
  std::optional<geo::Polyline> geometry;
};

struct PublishedMap {
  IspId isp = kNoIsp;
  std::string isp_name;
  bool geocoded = false;
  std::vector<transport::CityId> nodes;
  std::vector<PublishedLink> links;
};

struct PublishParams {
  std::uint64_t seed = 0x1257;
  /// Probability a deployed link is absent from the published map.
  double omit_link_prob = 0.04;
  /// Std-dev (km) of the per-vertex jitter applied to geocoded geometry,
  /// modelling georeferencing error of scanned maps.
  double coord_noise_km = 2.0;
};

/// Render the published map of one ISP from ground truth.
PublishedMap render_published_map(const GroundTruth& truth,
                                  const transport::RightOfWayRegistry& row, IspId isp,
                                  const PublishParams& params = {});

/// Render all twenty, in profile order.
std::vector<PublishedMap> render_all_published_maps(const GroundTruth& truth,
                                                    const transport::RightOfWayRegistry& row,
                                                    const PublishParams& params = {});

}  // namespace intertubes::isp
