// Rendering of the artifacts ISPs actually publish, from ground truth.
//
// Step-1 ISPs publish maps with full geocoded link geometry (possibly
// noisy: scanned PDFs, manual georeferencing); step-3 ISPs publish
// POP-level connectivity only ("a simple point with two names").  A small
// fraction of links is missing from any published map — published maps lag
// deployments — which is one of the noise sources the mapping pipeline
// must survive.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "isp/ground_truth.hpp"
#include "util/diag.hpp"

namespace intertubes::isp {

struct PublishedLink {
  transport::CityId a = transport::kNoCity;
  transport::CityId b = transport::kNoCity;
  /// Full route geometry for geocoded maps; nullopt on POP-only maps.
  std::optional<geo::Polyline> geometry;
};

struct PublishedMap {
  IspId isp = kNoIsp;
  std::string isp_name;
  bool geocoded = false;
  std::vector<transport::CityId> nodes;
  std::vector<PublishedLink> links;
};

struct PublishParams {
  std::uint64_t seed = 0x1257;
  /// Probability a deployed link is absent from the published map.
  double omit_link_prob = 0.04;
  /// Std-dev (km) of the per-vertex jitter applied to geocoded geometry,
  /// modelling georeferencing error of scanned maps.
  double coord_noise_km = 2.0;
};

/// Render the published map of one ISP from ground truth.
PublishedMap render_published_map(const GroundTruth& truth,
                                  const transport::RightOfWayRegistry& row, IspId isp,
                                  const PublishParams& params = {});

/// Render all twenty, in profile order.
std::vector<PublishedMap> render_all_published_maps(const GroundTruth& truth,
                                                    const transport::RightOfWayRegistry& row,
                                                    const PublishParams& params = {});

/// Serialize published maps as a TSV archive — the on-disk form of the
/// artifacts the pipeline ingests.  One block per ISP:
///   map  <tab> isp-name <tab> geocoded-flag
///   link <tab> from <tab> to [<tab> lon,lat lon,lat ...]   (geometry on
///                                                            geocoded maps)
std::string serialize_published_maps(const std::vector<PublishedMap>& maps,
                                     const transport::CityDatabase& cities);

/// Parse a published-map archive, reporting defects into `sink` with input
/// line numbers.  A malformed `map` header (unknown ISP, bad flag)
/// quarantines the whole block — its links are skipped without further
/// diagnostics; a malformed `link` line (unknown city, bad geometry)
/// quarantines just that link.  Node lists are rebuilt from the surviving
/// links' endpoints.
std::vector<PublishedMap> parse_published_maps(const std::string& text,
                                               const transport::CityDatabase& cities,
                                               const std::vector<IspProfile>& profiles,
                                               DiagnosticSink& sink,
                                               const std::string& source = "<published-maps>");

/// File wrappers.  Open failures throw std::runtime_error with the OS
/// errno context.
void save_published_maps(const std::string& path, const std::vector<PublishedMap>& maps,
                         const transport::CityDatabase& cities);
std::vector<PublishedMap> load_published_maps(const std::string& path,
                                              const transport::CityDatabase& cities,
                                              const std::vector<IspProfile>& profiles,
                                              DiagnosticSink& sink);

}  // namespace intertubes::isp
