#include "isp/ground_truth.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.hpp"

namespace intertubes::isp {

using transport::CityDatabase;
using transport::CityId;
using transport::Corridor;
using transport::CorridorId;
using transport::RightOfWayRegistry;
using transport::TransportMode;

GroundTruth::GroundTruth(std::vector<IspProfile> profiles,
                         std::vector<std::vector<CityId>> pops, std::vector<TrueLink> links,
                         std::size_t num_corridors)
    : profiles_(std::move(profiles)), pops_(std::move(pops)), links_(std::move(links)) {
  IT_CHECK(pops_.size() == profiles_.size());
  links_by_isp_.resize(profiles_.size());
  tenants_by_corridor_.assign(num_corridors, {});
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const auto& link = links_[i];
    IT_CHECK(link.isp < profiles_.size());
    links_by_isp_[link.isp].push_back(i);
    for (CorridorId cid : link.corridors) {
      IT_CHECK(cid < num_corridors);
      auto& tenants = tenants_by_corridor_[cid];
      if (std::find(tenants.begin(), tenants.end(), link.isp) == tenants.end()) {
        tenants.push_back(link.isp);
      }
    }
  }
  for (auto& tenants : tenants_by_corridor_) std::sort(tenants.begin(), tenants.end());
}

const std::vector<CityId>& GroundTruth::pops_of(IspId isp) const {
  IT_CHECK(isp < pops_.size());
  return pops_[isp];
}

const std::vector<std::size_t>& GroundTruth::link_indices_of(IspId isp) const {
  IT_CHECK(isp < links_by_isp_.size());
  return links_by_isp_[isp];
}

std::vector<CorridorId> GroundTruth::lit_corridors() const {
  std::vector<CorridorId> out;
  for (CorridorId cid = 0; cid < tenants_by_corridor_.size(); ++cid) {
    if (!tenants_by_corridor_[cid].empty()) out.push_back(cid);
  }
  return out;
}

bool GroundTruth::is_tenant(CorridorId corridor, IspId isp) const {
  IT_CHECK(corridor < tenants_by_corridor_.size());
  const auto& tenants = tenants_by_corridor_[corridor];
  return std::binary_search(tenants.begin(), tenants.end(), isp);
}

std::size_t GroundTruth::tenant_count(CorridorId corridor) const {
  IT_CHECK(corridor < tenants_by_corridor_.size());
  return tenants_by_corridor_[corridor].size();
}

namespace {

/// Pick the POP cities for one profile: population-biased, region-weighted
/// sampling without replacement; national tier-1s always anchor the
/// largest city of every region they serve.
std::vector<CityId> choose_pops(const CityDatabase& cities, const IspProfile& prof, Rng& rng) {
  const auto n = static_cast<CityId>(cities.size());
  std::set<CityId> chosen;

  if (prof.kind != IspKind::Regional) {
    // Anchor: biggest city in each region with meaningful weight.
    std::array<CityId, 5> best{};
    std::array<std::uint32_t, 5> best_pop{};
    best.fill(transport::kNoCity);
    best_pop.fill(0);
    for (CityId id = 0; id < n; ++id) {
      const auto& c = cities.city(id);
      const auto r = static_cast<std::size_t>(c.region);
      if (prof.region_weight[r] >= 0.5 && c.population > best_pop[r]) {
        best_pop[r] = c.population;
        best[r] = id;
      }
    }
    for (CityId id : best) {
      if (id != transport::kNoCity && chosen.size() < prof.target_pops) chosen.insert(id);
    }
  }

  std::vector<double> weights(n, 0.0);
  for (CityId id = 0; id < n; ++id) {
    const auto& c = cities.city(id);
    const auto r = static_cast<std::size_t>(c.region);
    weights[id] =
        std::pow(static_cast<double>(c.population), prof.pop_bias) * prof.region_weight[r];
  }
  while (chosen.size() < prof.target_pops) {
    const std::size_t pick = rng.weighted_pick(weights);
    weights[pick] = 0.0;  // without replacement
    chosen.insert(static_cast<CityId>(pick));
    bool any_left = false;
    for (double w : weights) {
      if (w > 0.0) {
        any_left = true;
        break;
      }
    }
    if (!any_left) break;
  }
  return {chosen.begin(), chosen.end()};
}

/// City pairs an ISP will build links between: MST over great-circle
/// distance + redundancy extras + express routes between top hubs.
std::vector<std::pair<CityId, CityId>> plan_links(const CityDatabase& cities,
                                                  const std::vector<CityId>& pops,
                                                  const IspProfile& prof, Rng& rng) {
  IT_CHECK(pops.size() >= 2);
  const std::size_t m = pops.size();
  auto dist = [&](std::size_t i, std::size_t j) {
    return geo::distance_km(cities.city(pops[i]).location, cities.city(pops[j]).location);
  };

  // Prim's MST over POPs.
  std::vector<bool> in_tree(m, false);
  std::vector<double> best_d(m, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> best_from(m, 0);
  std::vector<std::pair<std::size_t, std::size_t>> tree_edges;
  in_tree[0] = true;
  for (std::size_t j = 1; j < m; ++j) {
    best_d[j] = dist(0, j);
    best_from[j] = 0;
  }
  for (std::size_t step = 1; step < m; ++step) {
    std::size_t pick = m;
    double pick_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_tree[j] && best_d[j] < pick_d) {
        pick_d = best_d[j];
        pick = j;
      }
    }
    IT_CHECK(pick < m);
    in_tree[pick] = true;
    tree_edges.emplace_back(best_from[pick], pick);
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_tree[j]) {
        const double d = dist(pick, j);
        if (d < best_d[j]) {
          best_d[j] = d;
          best_from[j] = pick;
        }
      }
    }
  }

  std::set<std::pair<std::size_t, std::size_t>> have;
  auto norm = [](std::size_t i, std::size_t j) {
    return std::make_pair(std::min(i, j), std::max(i, j));
  };
  for (const auto& [i, j] : tree_edges) have.insert(norm(i, j));

  // Redundancy: shortest non-tree pairs with jitter, favouring pairs whose
  // tree path is long (classic ring-closure economics).
  const auto extra = static_cast<std::size_t>(std::lround(prof.redundancy * static_cast<double>(m)));
  struct Cand {
    double score;
    std::size_t i, j;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      if (have.count({i, j})) continue;
      cands.push_back({dist(i, j) * rng.uniform(0.7, 1.3), i, j});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& x, const Cand& y) { return x.score < y.score; });
  for (std::size_t k = 0; k < cands.size() && have.size() < tree_edges.size() + extra; ++k) {
    have.insert(norm(cands[k].i, cands[k].j));
  }

  // Express links between the biggest hub POPs.
  std::vector<std::size_t> hubs(m);
  for (std::size_t i = 0; i < m; ++i) hubs[i] = i;
  std::sort(hubs.begin(), hubs.end(), [&](std::size_t x, std::size_t y) {
    return cities.city(pops[x]).population > cities.city(pops[y]).population;
  });
  const std::size_t top = std::min<std::size_t>(hubs.size(), 8);
  std::size_t added_express = 0;
  for (std::size_t a = 0; a < top && added_express < prof.express_links; ++a) {
    for (std::size_t b = a + 1; b < top && added_express < prof.express_links; ++b) {
      if (have.insert(norm(hubs[a], hubs[b])).second) ++added_express;
    }
  }

  std::vector<std::pair<CityId, CityId>> out;
  out.reserve(have.size());
  for (const auto& [i, j] : have) out.emplace_back(pops[i], pops[j]);
  return out;
}

}  // namespace

GroundTruth generate_ground_truth(const CityDatabase& cities, const RightOfWayRegistry& row,
                                  const std::vector<IspProfile>& profiles,
                                  const GroundTruthParams& params) {
  IT_CHECK(!profiles.empty());
  Rng rng(mix64(params.seed ^ 0x6f17c3d2ULL));

  // Deployment order: facilities owners (high reuse_discount ⇒ willing to
  // trench) deploy first; lessees follow and find conduits to share.
  std::vector<IspId> order(profiles.size());
  for (IspId i = 0; i < profiles.size(); ++i) order[i] = i;
  std::vector<double> order_key(profiles.size());
  for (IspId i = 0; i < profiles.size(); ++i) {
    order_key[i] = profiles[i].reuse_discount + rng.uniform(-params.order_jitter, params.order_jitter);
  }
  std::sort(order.begin(), order.end(),
            [&](IspId x, IspId y) { return order_key[x] > order_key[y]; });

  std::vector<std::vector<CityId>> pops(profiles.size());
  std::vector<TrueLink> links;
  // occupancy[cid] — bitset-ish: which ISPs already lit this corridor.
  std::vector<std::vector<IspId>> occupancy(row.corridors().size());

  for (IspId isp : order) {
    const auto& prof = profiles[isp];
    Rng isp_rng(mix64(params.seed ^ (0x9e3779b9ULL * (isp + 1))));
    pops[isp] = choose_pops(cities, prof, isp_rng);
    const auto pairs = plan_links(cities, pops[isp], prof, isp_rng);

    std::uint64_t link_salt = 0;
    auto weight = [&](const Corridor& c) {
      double w = c.length_km;
      if (c.mode == TransportMode::Pipeline) w *= params.pipeline_factor;
      if (c.mode == TransportMode::Submarine) w *= params.submarine_factor;
      const auto& occ = occupancy[c.id];
      if (std::find(occ.begin(), occ.end(), isp) != occ.end()) {
        w *= params.own_reuse_factor;  // own conduit: nearly free
      } else if (!occ.empty()) {
        w *= prof.reuse_discount;  // someone else's conduit: lease/IRU
      }
      if (params.route_jitter > 0.0) {
        // Deterministic per (link, corridor) log-normal noise.
        const std::uint64_t h = mix64(link_salt ^ (0x51edULL * (c.id + 1)));
        const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
        w *= std::exp(params.route_jitter * (2.0 * u - 1.0));
      }
      return w;
    };

    for (const auto& [a, b] : pairs) {
      link_salt = mix64(params.seed ^ (static_cast<std::uint64_t>(isp) << 48) ^
                        (static_cast<std::uint64_t>(a) << 24) ^ b);
      const auto path = row.shortest_path(a, b, weight);
      if (path.empty()) continue;  // disconnected ROW graph (should not happen)
      TrueLink link;
      link.isp = isp;
      link.a = a;
      link.b = b;
      link.corridors = path.corridors;
      link.length_km = path.length_km;
      for (CorridorId cid : link.corridors) {
        auto& occ = occupancy[cid];
        if (std::find(occ.begin(), occ.end(), isp) == occ.end()) occ.push_back(isp);
      }
      links.push_back(std::move(link));
    }
  }

  return GroundTruth(profiles, std::move(pops), std::move(links), row.corridors().size());
}

}  // namespace intertubes::isp
