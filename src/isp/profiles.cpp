#include "isp/profiles.hpp"

namespace intertubes::isp {

std::string_view kind_name(IspKind k) noexcept {
  switch (k) {
    case IspKind::Tier1: return "tier1";
    case IspKind::Cable: return "cable";
    case IspKind::Regional: return "regional";
  }
  return "?";
}

namespace {

// Region weight order: West, Mountain, Central, South, East.
constexpr std::array<double, 5> kNational{1.0, 1.0, 1.0, 1.0, 1.0};
constexpr std::array<double, 5> kCoastal{1.6, 0.5, 0.6, 1.0, 1.6};
constexpr std::array<double, 5> kNorthwest{2.5, 1.6, 0.4, 0.1, 0.1};
constexpr std::array<double, 5> kSouthCentral{0.3, 0.4, 1.8, 1.6, 0.2};
constexpr std::array<double, 5> kSouthEast{0.3, 0.2, 0.8, 2.0, 1.2};

std::vector<IspProfile> make_profiles() {
  std::vector<IspProfile> p;

  auto add = [&p](std::string name, IspKind kind, bool us, bool geocoded, std::size_t pops,
                  std::array<double, 5> region, double redundancy, std::size_t express,
                  double reuse_discount, double pop_bias) {
    IspProfile prof;
    prof.name = std::move(name);
    prof.kind = kind;
    prof.us_based = us;
    prof.publishes_geocoded_map = geocoded;
    prof.target_pops = pops;
    prof.region_weight = region;
    prof.redundancy = redundancy;
    prof.express_links = express;
    prof.reuse_discount = reuse_discount;
    prof.pop_bias = pop_bias;
    p.push_back(std::move(prof));
  };

  // ---- Step-1 ISPs: geocoded published maps (paper Table 1 order). ----
  // AT&T: large facilities owner, digs its own trench relatively often.
  add("AT&T", IspKind::Tier1, true, true, 46, kNational, 0.40, 7, 0.80, 1.2);
  // Comcast: national cable, mostly rides leased/IRU fiber (e.g. Level 3).
  add("Comcast", IspKind::Cable, true, true, 44, kNational, 0.35, 5, 0.40, 1.3);
  // Cogent: lean tier-1 riding purchased dark fiber.
  add("Cogent", IspKind::Tier1, true, true, 50, kNational, 0.30, 5, 0.35, 1.1);
  // EarthLink: very wide footprint, many spur routes (248 nodes in paper).
  add("EarthLink", IspKind::Tier1, true, true, 86, kNational, 0.45, 6, 0.60, 0.7);
  // Integra: regional carrier concentrated in the Northwest.
  add("Integra", IspKind::Regional, true, true, 22, kNorthwest, 0.25, 2, 0.55, 0.8);
  // Level 3: the richest physical footprint in the study (240 nodes).
  add("Level 3", IspKind::Tier1, true, true, 82, kNational, 0.55, 9, 0.85, 0.9);
  // Suddenlink: regional cable, geographically diverse spurs (39 nodes).
  add("Suddenlink", IspKind::Cable, true, true, 26, kSouthCentral, 0.15, 2, 0.70, 0.6);
  // Verizon (MCI legacy long-haul).
  add("Verizon", IspKind::Tier1, true, true, 54, kCoastal, 0.40, 7, 0.75, 1.2);
  // Zayo: dark-fiber specialist with wide route inventory.
  add("Zayo", IspKind::Tier1, true, true, 52, kNational, 0.40, 5, 0.65, 0.9);

  // ---- Step-3 ISPs: POP-level published maps only. ----
  // CenturyLink (Qwest legacy): large facilities owner.
  add("CenturyLink", IspKind::Tier1, true, false, 58, kNational, 0.45, 7, 0.80, 1.0);
  // Cox: regional cable in the South/Southeast.
  add("Cox", IspKind::Cable, true, false, 30, kSouthEast, 0.30, 3, 0.40, 1.1);
  // Deutsche Telekom: non-US, expands via dig-once/leases into shared tubes.
  add("Deutsche Telekom", IspKind::Tier1, false, false, 16, kCoastal, 0.15, 3, 0.15, 1.6);
  // Hurricane Electric: transit-heavy, leased waves.
  add("HE", IspKind::Tier1, true, false, 32, kNational, 0.25, 4, 0.30, 1.3);
  // Inteliquent: interconnection-focused, small footprint.
  add("Inteliquent", IspKind::Regional, true, false, 16, kNational, 0.15, 2, 0.25, 1.5);
  // NTT: non-US tier-1 on heavily shared routes.
  add("NTT", IspKind::Tier1, false, false, 18, kCoastal, 0.15, 3, 0.15, 1.6);
  // Sprint: legacy national long-haul along railroad ROWs.
  add("Sprint", IspKind::Tier1, true, false, 44, kNational, 0.35, 6, 0.70, 1.1);
  // Tata: non-US carrier.
  add("Tata", IspKind::Tier1, false, false, 16, kCoastal, 0.15, 3, 0.15, 1.6);
  // TeliaSonera: non-US carrier.
  add("TeliaSonera", IspKind::Tier1, false, false, 18, kCoastal, 0.15, 3, 0.15, 1.5);
  // Time Warner Cable.
  add("TWC", IspKind::Cable, true, false, 34, kNational, 0.30, 4, 0.40, 1.2);
  // XO: tier-1 but rides heavily shared conduits (paper: high shared risk).
  add("XO", IspKind::Tier1, true, false, 34, kNational, 0.25, 4, 0.20, 1.3);

  return p;
}

}  // namespace

const std::vector<IspProfile>& default_profiles() {
  static const std::vector<IspProfile> profiles = make_profiles();
  return profiles;
}

IspId find_profile(const std::vector<IspProfile>& profiles, std::string_view name) {
  for (IspId i = 0; i < profiles.size(); ++i) {
    if (profiles[i].name == name) return i;
  }
  return kNoIsp;
}

}  // namespace intertubes::isp
