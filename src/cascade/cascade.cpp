#include "cascade/cascade.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "sim/executor.hpp"
#include "util/check.hpp"

namespace intertubes::cascade {

using core::ConduitId;
using route::NodeId;

namespace {

class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }
  std::uint32_t size_of(std::uint32_t root) const { return size_[root]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

/// Fraction of unordered pairs connected given per-root component sizes.
double connected_pair_fraction(DisjointSets& ds, std::size_t n) {
  if (n < 2) return 1.0;
  double connected = 0.0;
  for (std::uint32_t x = 0; x < n; ++x) {
    if (ds.find(x) != x) continue;
    const double s = ds.size_of(x);
    connected += s * (s - 1.0) / 2.0;
  }
  const double total = static_cast<double>(n) * (static_cast<double>(n) - 1.0) / 2.0;
  return connected / total;
}

}  // namespace

CascadeEngine::CascadeEngine(const core::FiberMap& map, const traceroute::L3Topology* l3,
                             const transport::CityDatabase* cities,
                             const transport::RightOfWayRegistry* row,
                             std::shared_ptr<const route::PathEngine> engine,
                             const std::vector<double>* demand_weights)
    : map_(map), l3_(l3), engine_(std::move(engine)), campaign_(map, cities, row) {
  if (demand_weights) {
    IT_CHECK_MSG(demand_weights->size() == map.links().size(),
                 "demand_weights must be indexed by LinkId");
  }
  const std::size_t num_conduits = map.conduits().size();

  if (!engine_) {
    NodeId top = 0;
    std::vector<route::EdgeSpec> edges;
    edges.reserve(num_conduits);
    for (const auto& conduit : map.conduits()) {
      edges.push_back({conduit.a, conduit.b, conduit.length_km});
      top = std::max({top, conduit.a, conduit.b});
    }
    for (const auto& link : map.links()) top = std::max({top, link.a, link.b});
    const NodeId num_nodes = (num_conduits == 0 && map.links().empty()) ? 0 : top + 1;
    engine_ = std::make_shared<const route::PathEngine>(num_nodes, std::move(edges));
  }
  // The overload rounds mask *conduit ids* out of the engine, so the
  // shared engine must use the id-preserving layout (edge id == conduit
  // id, one edge per conduit).
  IT_CHECK_MSG(engine_->num_edges() == num_conduits,
               "cascade engine needs edge ids == conduit ids");

  demands_.reserve(map.links().size());
  baseline_load_.assign(num_conduits, 0.0);
  for (const auto& link : map.links()) {
    IT_CHECK(link.a < engine_->num_nodes() && link.b < engine_->num_nodes());
    Demand demand;
    demand.a = link.a;
    demand.b = link.b;
    demand.isp = link.isp;
    demand.link = link.id;
    if (demand_weights) {
      demand.weight = (*demand_weights)[link.id];
      IT_CHECK_MSG(demand.weight > 0.0, "demand weights must be positive");
    }
    for (ConduitId cid : link.conduits) {
      demand.baseline_km += map.conduit(cid).length_km;
      baseline_load_[cid] += demand.weight;
    }
    total_weight_ += demand.weight;
    demands_.push_back(demand);
  }

  if (l3_) {
    l3_edge_conduits_.reserve(l3_->edges().size());
    for (const auto& edge : l3_->edges()) {
      std::vector<ConduitId> under;
      for (transport::CorridorId corridor : edge.corridors) {
        if (auto cid = map.conduit_for_corridor(corridor)) under.push_back(*cid);
      }
      l3_edge_conduits_.push_back(std::move(under));
    }
  }

  std::map<transport::CityId, std::uint32_t> index_of;
  for (transport::CityId node : map.nodes()) {
    index_of.emplace(node, static_cast<std::uint32_t>(index_of.size()));
  }
  adjacency_.resize(index_of.size());
  for (const auto& conduit : map.conduits()) {
    const std::uint32_t u = index_of.at(conduit.a);
    const std::uint32_t v = index_of.at(conduit.b);
    adjacency_[u].emplace_back(v, conduit.id);
    adjacency_[v].emplace_back(u, conduit.id);
  }
}

StructuralMetrics CascadeEngine::structure_of(const std::vector<char>& dead) const {
  StructuralMetrics metrics;

  const std::size_t n = adjacency_.size();
  if (n >= 2) {
    std::vector<char> visited(n, 0);
    std::vector<std::uint32_t> stack;
    std::size_t giant = 0;
    for (std::uint32_t start = 0; start < n; ++start) {
      if (visited[start]) continue;
      std::size_t size = 0;
      stack.assign(1, start);
      visited[start] = 1;
      while (!stack.empty()) {
        const std::uint32_t u = stack.back();
        stack.pop_back();
        ++size;
        for (const auto& [v, cid] : adjacency_[u]) {
          if (dead[cid] || visited[v]) continue;
          visited[v] = 1;
          stack.push_back(v);
        }
      }
      giant = std::max(giant, size);
    }
    metrics.giant_component = static_cast<double>(giant) / static_cast<double>(n);
  }

  if (!l3_) return metrics;
  const auto& edges = l3_->edges();
  const std::size_t num_routers = l3_->routers().size();
  DisjointSets ds(num_routers);
  std::size_t dead_edges = 0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    bool edge_dead = false;
    for (ConduitId cid : l3_edge_conduits_[e]) {
      if (dead[cid]) {
        edge_dead = true;
        break;
      }
    }
    if (edge_dead) {
      ++dead_edges;
    } else {
      ds.unite(edges[e].u, edges[e].v);
    }
  }
  metrics.l3_edges_dead =
      edges.empty() ? 0.0 : static_cast<double>(dead_edges) / static_cast<double>(edges.size());
  metrics.l3_reachability = connected_pair_fraction(ds, num_routers);
  return metrics;
}

StructuralMetrics CascadeEngine::evaluate_structure(const std::vector<ConduitId>& cuts) const {
  std::vector<char> dead(map_.conduits().size(), 0);
  for (ConduitId cid : cuts) {
    IT_CHECK(cid < dead.size());
    dead[cid] = 1;
  }
  return structure_of(dead);
}

CascadeOutcome CascadeEngine::run_cascade(const std::vector<ConduitId>& cuts,
                                          const CascadeParams& params) const {
  const std::size_t num_conduits = map_.conduits().size();
  std::vector<char> dead(num_conduits, 0);
  for (ConduitId cid : cuts) {
    IT_CHECK(cid < num_conduits);
    dead[cid] = 1;
  }

  std::vector<double> capacity(num_conduits);
  for (ConduitId c = 0; c < num_conduits; ++c) {
    capacity[c] =
        std::max(params.capacity_floor, (1.0 + params.capacity_margin) * baseline_load_[c]);
  }

  CascadeOutcome outcome;
  outcome.isp_links_lost.assign(map_.num_isps(), 0);

  std::vector<double> load(num_conduits);
  std::vector<char> delivered(demands_.size(), 0);
  std::vector<double> km(demands_.size(), 0.0);
  std::vector<ConduitId> dead_ids;
  std::vector<NodeId> sources;
  std::vector<std::size_t> affected;

  for (std::size_t round = 0;; ++round) {
    // Routing pass: intact demands keep their chains; cut demands reroute
    // over the surviving graph via one forest per distinct source.
    std::fill(load.begin(), load.end(), 0.0);
    dead_ids.clear();
    for (ConduitId c = 0; c < num_conduits; ++c) {
      if (dead[c]) dead_ids.push_back(c);  // ascending — the mask contract
    }
    affected.clear();
    for (std::size_t i = 0; i < demands_.size(); ++i) {
      const auto& chain = map_.link(demands_[i].link).conduits;
      bool intact = true;
      for (ConduitId cid : chain) {
        if (dead[cid]) {
          intact = false;
          break;
        }
      }
      if (intact) {
        delivered[i] = 1;
        km[i] = demands_[i].baseline_km;
        for (ConduitId cid : chain) load[cid] += demands_[i].weight;
      } else {
        affected.push_back(i);
      }
    }
    if (!affected.empty()) {
      sources.clear();
      for (std::size_t i : affected) sources.push_back(demands_[i].a);
      std::sort(sources.begin(), sources.end());
      sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
      route::Query query;
      query.masked = &dead_ids;
      const route::RouteForest forest = engine_->route_forest(sources, query);
      for (std::size_t i : affected) {
        const auto it = std::lower_bound(sources.begin(), sources.end(), demands_[i].a);
        const auto row = static_cast<std::size_t>(it - sources.begin());
        if (forest.reachable(row, demands_[i].b)) {
          delivered[i] = 1;
          km[i] = forest.dist_at(row, demands_[i].b);
          forest.for_each_path_edge(row, demands_[i].b,
                                    [&](route::EdgeId eid) { load[eid] += demands_[i].weight; });
        } else {
          delivered[i] = 0;
          km[i] = std::numeric_limits<double>::infinity();
        }
      }
    }

    RoundPoint point;
    point.round = round;
    point.conduits_dead = dead_ids.size();
    point.overload_failed = outcome.overload_failures.size();
    const StructuralMetrics structure = structure_of(dead);
    point.giant_component = structure.giant_component;
    point.l3_edges_dead = structure.l3_edges_dead;
    point.l3_reachability = structure.l3_reachability;
    // Weight-aware delivery and stretch.  Under unit weights these sums
    // are exact integer arithmetic in double, so the curves are
    // bit-identical to the historical count-based aggregation.
    double delivered_weight = 0.0;
    double stretch_sum = 0.0;
    for (std::size_t i = 0; i < demands_.size(); ++i) {
      if (!delivered[i]) continue;
      delivered_weight += demands_[i].weight;
      const double baseline = demands_[i].baseline_km > 0.0 ? demands_[i].baseline_km : 1.0;
      stretch_sum += demands_[i].weight * (km[i] / baseline);
    }
    point.demand_delivered = demands_.empty() ? 1.0 : delivered_weight / total_weight_;
    point.mean_stretch = delivered_weight > 0.0 ? stretch_sum / delivered_weight
                                                : std::numeric_limits<double>::infinity();
    outcome.rounds.push_back(point);

    std::vector<ConduitId> overloaded;
    for (ConduitId c = 0; c < num_conduits; ++c) {
      if (!dead[c] && load[c] > capacity[c]) overloaded.push_back(c);
    }
    if (overloaded.empty() || round == params.max_rounds) {
      outcome.fixed_point_round = round;
      outcome.converged = overloaded.empty();
      for (std::size_t i = 0; i < demands_.size(); ++i) {
        if (!delivered[i]) ++outcome.isp_links_lost[demands_[i].isp];
      }
      break;
    }
    for (ConduitId c : overloaded) {
      dead[c] = 1;
      outcome.overload_failures.push_back(c);
    }
  }
  return outcome;
}

CascadeTrialResult CascadeEngine::run_trial(const CascadeConfig& config, std::size_t trial) const {
  const auto cut_sets = campaign_.draw_cuts(config.stressor, config.seed, trial);
  std::vector<ConduitId> cuts;
  for (const auto& step : cut_sets) cuts.insert(cuts.end(), step.begin(), step.end());
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  CascadeOutcome outcome = run_cascade(cuts, config.params);
  CascadeTrialResult result;
  result.rounds = std::move(outcome.rounds);
  while (result.rounds.size() < config.params.max_rounds + 1) {
    RoundPoint point = result.rounds.back();  // hold the fixed point
    point.round = result.rounds.size();
    result.rounds.push_back(point);
  }
  result.isp_links_lost = std::move(outcome.isp_links_lost);
  return result;
}

CascadeReport CascadeEngine::run(const CascadeConfig& config, sim::Executor* executor) const {
  IT_CHECK(config.trials >= 1);
  CascadeConfig clamped = config;
  if (clamped.stressor.kind != sim::StressorKind::CorrelatedHazards) {
    clamped.stressor.steps = std::min(clamped.stressor.steps, map_.conduits().size());
  }

  std::vector<CascadeTrialResult> trials;
  if (executor) {
    trials = executor->parallel_map<CascadeTrialResult>(
        clamped.trials, [&](std::size_t trial) { return run_trial(clamped, trial); });
  } else {
    trials.reserve(clamped.trials);
    for (std::size_t trial = 0; trial < clamped.trials; ++trial) {
      trials.push_back(run_trial(clamped, trial));
    }
  }

  const std::size_t points = clamped.params.max_rounds + 1;
  const auto series_of = [&](double (*extract)(const RoundPoint&)) {
    std::vector<std::vector<double>> series(trials.size());
    for (std::size_t t = 0; t < trials.size(); ++t) {
      series[t].reserve(points);
      for (const RoundPoint& point : trials[t].rounds) series[t].push_back(extract(point));
    }
    return series;
  };

  CascadeReport report;
  report.stressor = stressor_name(clamped.stressor);
  report.seed = clamped.seed;
  report.trials = clamped.trials;
  report.rounds = clamped.params.max_rounds;
  report.params = clamped.params;
  report.conduits_dead = sim::aggregate_series(
      series_of([](const RoundPoint& p) { return static_cast<double>(p.conduits_dead); }),
      "conduits dead");
  report.overload_failed = sim::aggregate_series(
      series_of([](const RoundPoint& p) { return static_cast<double>(p.overload_failed); }),
      "overload failures");
  report.giant_component = sim::aggregate_series(
      series_of([](const RoundPoint& p) { return p.giant_component; }), "giant component");
  report.l3_edges_dead = sim::aggregate_series(
      series_of([](const RoundPoint& p) { return p.l3_edges_dead; }), "L3 edges dead");
  report.l3_reachability = sim::aggregate_series(
      series_of([](const RoundPoint& p) { return p.l3_reachability; }), "L3 reachability");
  report.demand_delivered = sim::aggregate_series(
      series_of([](const RoundPoint& p) { return p.demand_delivered; }), "demand delivered");
  report.mean_stretch =
      sim::aggregate_series(series_of([](const RoundPoint& p) { return p.mean_stretch; }),
                            "mean stretch", sim::InfPolicy::Exclude);

  std::vector<std::vector<std::uint32_t>> losses(trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) losses[t] = std::move(trials[t].isp_links_lost);
  report.isp_impact = sim::aggregate_isp_impact(losses, map_.num_isps());
  return report;
}

PercolationReport CascadeEngine::percolation(const PercolationConfig& config,
                                             sim::Executor* executor) const {
  IT_CHECK(config.trials >= 1);
  IT_CHECK(config.resolution >= 1);
  const std::size_t num_conduits = map_.conduits().size();

  sim::Stressor stressor;
  stressor.kind = config.adversary;
  stressor.hazard_radius_km = config.hazard_radius_km;
  stressor.steps = config.adversary == sim::StressorKind::CorrelatedHazards
                       ? config.max_hazard_events
                       : num_conduits;

  // One trial = grid-point samples of (dead fraction, structure).
  using TrialCurve = std::vector<std::array<double, 4>>;
  const auto trial_fn = [&](std::size_t trial) {
    const auto cut_sets = campaign_.draw_cuts(stressor, config.seed, trial);
    std::vector<char> dead(num_conduits, 0);
    std::size_t dead_count = 0;
    std::size_t next_event = 0;
    TrialCurve curve;
    curve.reserve(config.resolution + 1);
    for (std::size_t k = 0; k <= config.resolution; ++k) {
      const std::size_t threshold =
          (k * num_conduits + config.resolution - 1) / config.resolution;  // ceil
      while (dead_count < threshold && next_event < cut_sets.size()) {
        for (ConduitId cid : cut_sets[next_event]) {
          if (!dead[cid]) {
            dead[cid] = 1;
            ++dead_count;
          }
        }
        ++next_event;
      }
      const StructuralMetrics structure = structure_of(dead);
      curve.push_back({num_conduits == 0
                           ? 0.0
                           : static_cast<double>(dead_count) / static_cast<double>(num_conduits),
                       structure.giant_component, structure.l3_edges_dead,
                       structure.l3_reachability});
    }
    return curve;
  };

  std::vector<TrialCurve> trials;
  if (executor) {
    trials = executor->parallel_map<TrialCurve>(config.trials, trial_fn);
  } else {
    trials.reserve(config.trials);
    for (std::size_t trial = 0; trial < config.trials; ++trial) trials.push_back(trial_fn(trial));
  }

  const auto series_of = [&](std::size_t component) {
    std::vector<std::vector<double>> series(trials.size());
    for (std::size_t t = 0; t < trials.size(); ++t) {
      series[t].reserve(trials[t].size());
      for (const auto& point : trials[t]) series[t].push_back(point[component]);
    }
    return series;
  };

  PercolationReport report;
  report.adversary = stressor_name(stressor);
  report.seed = config.seed;
  report.trials = config.trials;
  report.resolution = config.resolution;
  report.conduits_dead = sim::aggregate_series(series_of(0), "conduits dead fraction");
  report.giant_component = sim::aggregate_series(series_of(1), "giant component");
  report.l3_edges_dead = sim::aggregate_series(series_of(2), "L3 edges dead");
  report.l3_reachability = sim::aggregate_series(series_of(3), "L3 reachability");
  return report;
}

std::vector<double> traffic_demand_weights(const core::FiberMap& map,
                                           const std::vector<std::uint64_t>& probes_per_conduit) {
  IT_CHECK_MSG(probes_per_conduit.size() == map.conduits().size(),
               "probes_per_conduit must be indexed by ConduitId");
  std::vector<double> weights;
  weights.reserve(map.links().size());
  for (const auto& link : map.links()) {
    std::uint64_t probes = 0;
    for (ConduitId cid : link.conduits) probes += probes_per_conduit[cid];
    weights.push_back(std::max(1.0, std::log2(1.0 + static_cast<double>(probes))));
  }
  return weights;
}

}  // namespace intertubes::cascade
