// Cross-layer cascade & percolation: physical cuts that propagate to L3,
// with capacity-aware overload rounds.
//
// InterTubes measures the shared risk of the physical conduit map; this
// module measures what a physical failure *does* — to the IP topology
// riding the conduits and to the traffic the surviving conduits must
// absorb.  A cascade trial:
//
//   1. cuts a set of conduits (any sim/campaign stressor: random backhoe
//      cuts, the most-shared-first adversary, disaster discs);
//   2. propagates the cuts up: an L3 edge dies iff any conduit under one
//      of its corridors is dead (peering edges ride no corridor and never
//      die physically);
//   3. runs capacity-aware overload rounds in the style of Motter–Lai:
//      every ISP link is a unit demand routed over the surviving conduit
//      graph (batched route::PathEngine forests, one Dijkstra per distinct
//      source), conduits whose demand load exceeds their provisioned
//      capacity — (1 + margin) x baseline load — fail, and the process
//      repeats to a fixed point.
//
// Percolation sweeps drive the same structural metrics across a fraction-
// removed grid per adversary model: giant-component size of the physical
// graph, dead L3 edge fraction, and L3 router-pair reachability.
//
// Determinism contract: trial t draws from RNG substream (seed, t) via
// CampaignEngine::draw_cuts; everything after the draw is a pure function
// of the cut set.  Rerouting uses the canonical PathEngine tie-breaks and
// all folds run in trial order, so every curve is bit-identical for any
// executor thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fiber_map.hpp"
#include "route/path_engine.hpp"
#include "sim/campaign.hpp"
#include "sim/report.hpp"
#include "traceroute/l3_topology.hpp"
#include "transport/cities.hpp"
#include "transport/row.hpp"

namespace intertubes::sim {
class Executor;
}

namespace intertubes::cascade {

/// Overload-round knobs.  Capacity of conduit c is
/// max(capacity_floor, (1 + capacity_margin) * baseline_load(c)) where
/// baseline_load sums the demand weights of the ISP links riding c in the
/// intact map (the link count under unit demands) — the usual
/// "provisioned for normal load plus a tolerance" model.
struct CascadeParams {
  double capacity_margin = 0.25;
  double capacity_floor = 1.0;
  /// Overload waves after the initial cut; the fixed point is declared at
  /// the first wave with no overloads, or forcibly here.
  std::size_t max_rounds = 8;

  bool operator==(const CascadeParams&) const = default;
};

/// Structure-only damage of a cut set (no overload dynamics): how the
/// physical graph fragments and what survives at L3.
struct StructuralMetrics {
  /// Largest physical component / node count (1.0 when intact).
  double giant_component = 1.0;
  /// Fraction of L3 edges with a dead conduit underneath (0 without L3).
  double l3_edges_dead = 0.0;
  /// Fraction of router pairs still L3-connected (1.0 without L3).
  double l3_reachability = 1.0;

  bool operator==(const StructuralMetrics&) const = default;
};

/// The state after overload wave `round` (round 0 = right after the
/// initial cuts, before any overload failure).
struct RoundPoint {
  std::size_t round = 0;
  std::size_t conduits_dead = 0;     ///< cumulative, cuts + overloads
  std::size_t overload_failed = 0;   ///< cumulative overload-only failures
  double giant_component = 1.0;
  double l3_edges_dead = 0.0;
  double l3_reachability = 1.0;
  /// Fraction of ISP-link demands still deliverable over surviving
  /// conduits (rerouted demands count as delivered).
  double demand_delivered = 1.0;
  /// Mean km-stretch of delivered demands vs. their intact chains (+inf
  /// when nothing is deliverable).
  double mean_stretch = 1.0;

  bool operator==(const RoundPoint&) const = default;
};

/// One full cascade from a cut set to its fixed point.
struct CascadeOutcome {
  std::vector<RoundPoint> rounds;  ///< rounds[r] = state after wave r
  std::size_t fixed_point_round = 0;
  /// False when max_rounds stopped a still-overloading cascade.
  bool converged = true;
  /// Overload-failed conduits in wave order (ascending id within a wave).
  std::vector<core::ConduitId> overload_failures;
  /// [isp] demands undeliverable at the fixed point.
  std::vector<std::uint32_t> isp_links_lost;

  bool operator==(const CascadeOutcome&) const = default;
};

/// One Monte-Carlo trial: the outcome's round curve padded to
/// max_rounds+1 points (repeating the fixed point) so trials aggregate
/// into fixed-width curves.
struct CascadeTrialResult {
  std::vector<RoundPoint> rounds;
  std::vector<std::uint32_t> isp_links_lost;

  bool operator==(const CascadeTrialResult&) const = default;
};

struct CascadeConfig {
  /// The initial-cut draw: all of the stressor's steps are drawn and cut
  /// at once (a trial is one composite failure event, not a time series).
  sim::Stressor stressor = sim::Stressor::random_cuts(8);
  CascadeParams params;
  std::size_t trials = 64;
  std::uint64_t seed = 0x1257;
};

/// Cross-trial aggregate: mean/p5/p50/p95 per overload round, plus the
/// per-ISP undeliverable-demand table at the fixed point.
struct CascadeReport {
  std::string stressor;
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  std::size_t rounds = 0;  ///< = params.max_rounds; every curve has rounds+1 points
  CascadeParams params;

  sim::MetricCurve conduits_dead;
  sim::MetricCurve overload_failed;
  sim::MetricCurve giant_component;
  sim::MetricCurve l3_edges_dead;
  sim::MetricCurve l3_reachability;
  sim::MetricCurve demand_delivered;
  /// Aggregated under InfPolicy::Exclude: a trial whose demands are all
  /// undeliverable contributes no stretch sample (samples records the
  /// survivors) instead of poisoning the mean.
  sim::MetricCurve mean_stretch;
  std::vector<sim::IspImpact> isp_impact;

  bool operator==(const CascadeReport&) const = default;
};

struct PercolationConfig {
  sim::StressorKind adversary = sim::StressorKind::RandomCuts;
  double hazard_radius_km = 100.0;  ///< CorrelatedHazards only
  /// Grid points: fraction k/resolution for k = 0..resolution.
  std::size_t resolution = 20;
  /// Hazard trials draw at most this many discs; a trial that exhausts
  /// them saturates below fraction 1.0 (the recorded conduits_dead curve
  /// stays honest about how far it got).
  std::size_t max_hazard_events = 1024;
  std::size_t trials = 32;
  std::uint64_t seed = 0x1257;
};

/// Percolation curves over the fraction-removed grid.  conduits_dead is
/// the *achieved* dead fraction at each grid point (>= the grid fraction
/// only when a disaster disc overshoots; < it only when hazard events ran
/// out).
struct PercolationReport {
  std::string adversary;
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  std::size_t resolution = 0;

  sim::MetricCurve conduits_dead;
  sim::MetricCurve giant_component;
  sim::MetricCurve l3_edges_dead;
  sim::MetricCurve l3_reachability;

  bool operator==(const PercolationReport&) const = default;
};

/// Immutable per-world cascade context shared by every trial thread:
/// the demand set (one unit demand per ISP link, riding its conduit
/// chain), baseline per-conduit loads, the L3 edge → conduit resolution,
/// and a compact physical adjacency for component sweeps.  All public
/// methods are const and thread-safe.
class CascadeEngine {
 public:
  /// `l3` is optional — without it the L3 metrics stay at their baseline
  /// constants (synthetic-map prop tests).  `cities`/`row` are required
  /// only for the CorrelatedHazards stressor.  `engine` (when non-null)
  /// shares an already compiled length-weighted conduit engine whose edge
  /// ids equal conduit ids (serve::Snapshot's); otherwise one is built.
  /// `demand_weights` (when non-null, indexed by LinkId) makes demands
  /// non-uniform — traffic-weighted via traffic_demand_weights below, or
  /// any positive per-link weighting; null keeps the historical unit
  /// demands, bit-identically (a weight of 1.0 multiplies and sums
  /// exactly).  All borrowed pointers/references must outlive the engine.
  explicit CascadeEngine(const core::FiberMap& map,
                         const traceroute::L3Topology* l3 = nullptr,
                         const transport::CityDatabase* cities = nullptr,
                         const transport::RightOfWayRegistry* row = nullptr,
                         std::shared_ptr<const route::PathEngine> engine = nullptr,
                         const std::vector<double>* demand_weights = nullptr);

  const core::FiberMap& map() const noexcept { return map_; }
  std::size_t num_demands() const noexcept { return demands_.size(); }
  /// [conduit] summed demand weight riding it in the intact map (= the
  /// ISP-link count under unit demands).
  const std::vector<double>& baseline_load() const noexcept { return baseline_load_; }

  /// Structure-only damage of a cut set — the brute-force-checkable
  /// surface the prop oracle compares against an independent BFS.
  StructuralMetrics evaluate_structure(const std::vector<core::ConduitId>& cuts) const;

  /// The full cascade from `cuts` (duplicates tolerated) to its fixed
  /// point.  Pure function of (world, cuts, params).
  CascadeOutcome run_cascade(const std::vector<core::ConduitId>& cuts,
                             const CascadeParams& params) const;

  /// One Monte-Carlo trial: draw the stressor's cuts from substream
  /// (seed, trial), union them, cascade, pad to max_rounds+1 points.
  CascadeTrialResult run_trial(const CascadeConfig& config, std::size_t trial) const;

  /// Run the campaign (parallel over trials when `executor` is non-null)
  /// and aggregate in trial order.  Bit-identical for any thread count.
  CascadeReport run(const CascadeConfig& config, sim::Executor* executor = nullptr) const;

  /// Percolation sweep: per trial, one long removal sequence drawn from
  /// the adversary; structural metrics recorded as the dead fraction
  /// crosses each grid point.  Bit-identical for any thread count.
  PercolationReport percolation(const PercolationConfig& config,
                                sim::Executor* executor = nullptr) const;

 private:
  struct Demand {
    route::NodeId a = 0;
    route::NodeId b = 0;
    isp::IspId isp = isp::kNoIsp;
    core::LinkId link = 0;
    double baseline_km = 0.0;  ///< intact chain length
    double weight = 1.0;       ///< traffic weight (unit by default)
  };

  StructuralMetrics structure_of(const std::vector<char>& dead) const;

  const core::FiberMap& map_;
  const traceroute::L3Topology* l3_ = nullptr;
  std::shared_ptr<const route::PathEngine> engine_;
  sim::CampaignEngine campaign_;  ///< the stressor draw (and only that)

  std::vector<Demand> demands_;        // one per ISP link
  std::vector<double> baseline_load_;  // [conduit] summed demand weight
  double total_weight_ = 0.0;          // sum of demand weights
  // [l3 edge] → conduit ids under its corridors (unmapped corridors and
  // peering edges resolve to none and keep the edge alive).
  std::vector<std::vector<core::ConduitId>> l3_edge_conduits_;
  // Compact physical adjacency over map_.nodes() for component sweeps.
  std::vector<std::vector<std::pair<std::uint32_t, core::ConduitId>>> adjacency_;
};

/// §4.3 probe-weighted demand weights, indexed by LinkId: weight of link L
/// = max(1, log2(1 + probes riding L's conduits)) — logarithmic in traffic
/// (route popularity is heavy-tailed, same shaping as the traffic-weighted
/// risk ranking), floored at the unit demand so an unprobed link still
/// counts as one deployment.  `probes_per_conduit` comes from any
/// traceroute overlay (see risk/traffic_weighted.hpp).
std::vector<double> traffic_demand_weights(const core::FiberMap& map,
                                           const std::vector<std::uint64_t>& probes_per_conduit);

}  // namespace intertubes::cascade
