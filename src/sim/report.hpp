// Campaign outcome records and their ordered aggregation.
//
// A failure campaign produces one TrialResult per Monte-Carlo trial; this
// module folds them — always in trial order, so the report is byte-
// identical for any executor thread count — into mean/p5/p50/p95 curves
// per failure step plus a per-ISP impact table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isp/profiles.hpp"

namespace intertubes::sim {

/// Metrics of one trial after `conduits_down` cumulative failures.
struct TrialPoint {
  std::size_t conduits_down = 0;
  double connected_pair_fraction = 1.0;  ///< node pairs still connected
  std::size_t components = 0;
  std::size_t links_hit = 0;  ///< ISP links traversing >= 1 dead conduit
  std::size_t isps_hit = 0;   ///< distinct ISPs with >= 1 hit link
  /// Fraction of the map's total conduit risk weight (tenancy ×
  /// log-traffic when probe counts are supplied, raw tenancy otherwise)
  /// sitting in dead conduits.
  double weight_lost = 0.0;

  bool operator==(const TrialPoint&) const = default;
};

/// One trial: a curve over failure steps 0..steps (index 0 = baseline)
/// plus the per-ISP link damage at the final step.
struct TrialResult {
  std::vector<TrialPoint> points;
  std::vector<std::uint32_t> isp_links_lost;  ///< [isp] links hit at final step

  bool operator==(const TrialResult&) const = default;
};

struct CurvePoint {
  double mean = 0.0;
  double p5 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  /// Samples that entered the aggregate after the InfPolicy was applied
  /// (= trial count unless Exclude dropped non-finite sentinels).
  std::size_t samples = 0;

  bool operator==(const CurvePoint&) const = default;
};

/// What to do with non-finite samples (the +inf unreachable-pair
/// sentinels of the dissect/cascade convention) when folding an outcome
/// series into a curve.  Without an explicit policy a single unreachable
/// trial poisons every mean and percentile of its step.
enum class InfPolicy : std::uint8_t {
  /// Drop non-finite samples; the point aggregates the finite remainder
  /// and `samples` records how many survived.  A point with no finite
  /// sample at all stays honestly +inf (samples = 0) — never an alias of
  /// a large real value.
  Exclude,
  /// Replace non-finite samples with `saturate_cap` and keep them — for
  /// consumers that want "unreachable" to count as a worst-case outcome
  /// instead of vanishing from the distribution.
  Saturate,
};

/// One metric aggregated across trials, one CurvePoint per failure step.
struct MetricCurve {
  std::string name;
  std::vector<CurvePoint> points;

  bool operator==(const MetricCurve&) const = default;
};

/// Fold one cross-trial sample vector (values[t] = trial t's outcome at a
/// fixed step) into a CurvePoint under an explicit non-finite policy.
/// Accumulation runs in index order, so the result is bit-identical for
/// any thread count as long as `values` is assembled in trial order.
CurvePoint aggregate_samples(const std::vector<double>& values,
                             InfPolicy policy = InfPolicy::Exclude, double saturate_cap = 0.0);

/// One metric across trials: series[t][step], every trial the same
/// length.  One CurvePoint per step via aggregate_samples.
MetricCurve aggregate_series(const std::vector<std::vector<double>>& series, std::string name,
                             InfPolicy policy = InfPolicy::Exclude, double saturate_cap = 0.0);

struct IspImpact {
  isp::IspId isp = isp::kNoIsp;
  double mean_links_lost = 0.0;
  double p95_links_lost = 0.0;
  double max_links_lost = 0.0;

  bool operator==(const IspImpact&) const = default;
};

struct CampaignReport {
  std::string stressor;  ///< human-readable stressor description
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  std::size_t steps = 0;

  MetricCurve conduits_down;
  MetricCurve connectivity;
  MetricCurve components;
  MetricCurve links_hit;
  MetricCurve isps_hit;
  MetricCurve weight_lost;
  /// ISPs with any observed damage, descending by mean_links_lost.
  std::vector<IspImpact> isp_impact;

  bool operator==(const CampaignReport&) const = default;
};

/// Fold per-trial results (in trial order) into the aggregate report.
/// Every trial must have the same number of points.  Stressor/seed/trials/
/// steps metadata is filled in by the campaign driver.
CampaignReport aggregate_trials(const std::vector<TrialResult>& trials, std::size_t num_isps);

/// Fold per-trial per-ISP loss counts (losses[t][isp]) into the damage
/// table: ISPs with any observed loss, descending by mean.  Shared by the
/// campaign and cascade aggregators; accumulation is in trial order.
std::vector<IspImpact> aggregate_isp_impact(const std::vector<std::vector<std::uint32_t>>& losses,
                                            std::size_t num_isps);

/// Render the curves and the per-ISP table with util/table.  `profiles`
/// (when given) supplies ISP display names.
std::string render_report(const CampaignReport& report,
                          const std::vector<isp::IspProfile>* profiles = nullptr);

/// The step curves as CSV (one row per step, one column group per metric).
std::string report_curves_csv(const CampaignReport& report);

}  // namespace intertubes::sim
