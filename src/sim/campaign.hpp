// Monte-Carlo failure-campaign driver.
//
// §4 frames "how many fiber cuts partition the US long-haul
// infrastructure" as the key security question; §7 grounds the correlated
// (regional-disaster) variant.  A *campaign* composes a stressor — random
// backhoe cuts, a most-shared-first adversary, or geographically
// correlated disaster discs — with many independent trials, evaluates the
// per-step outcomes of each trial (connectivity, component count, per-ISP
// link damage, risk-weighted conduit loss), and aggregates them into
// percentile curves on a sim::Executor.  Trial t draws from RNG substream
// (seed, t), so a campaign's report is bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/fiber_map.hpp"
#include "sim/executor.hpp"
#include "sim/report.hpp"
#include "transport/cities.hpp"
#include "transport/row.hpp"

namespace intertubes::sim {

enum class StressorKind : std::uint8_t {
  RandomCuts,         ///< one uniformly random conduit fails per step (backhoes)
  TargetedCuts,       ///< adversary cuts the most heavily shared conduit per step
  CorrelatedHazards,  ///< one population-weighted disaster disc strikes per step
};

struct Stressor {
  StressorKind kind = StressorKind::RandomCuts;
  /// Failure events per trial; the curve has steps+1 points (baseline
  /// included).  Cut stressors are clamped to the conduit count.
  std::size_t steps = 20;
  /// Disaster disc radius (CorrelatedHazards only).
  double hazard_radius_km = 100.0;

  static Stressor random_cuts(std::size_t steps) { return {StressorKind::RandomCuts, steps, 0.0}; }
  static Stressor targeted_cuts(std::size_t steps) {
    return {StressorKind::TargetedCuts, steps, 0.0};
  }
  static Stressor correlated_hazards(std::size_t steps, double radius_km) {
    return {StressorKind::CorrelatedHazards, steps, radius_km};
  }
};

/// Human-readable stressor description ("random cuts", "correlated
/// hazards (r=120 km)", ...) used in report headers.
std::string stressor_name(const Stressor& stressor);

struct CampaignConfig {
  Stressor stressor;
  std::size_t trials = 64;
  std::uint64_t seed = 0x1257;
};

/// Immutable per-map context shared by every trial thread: a compact
/// adjacency snapshot (FiberMap's lazily grown adjacency is never touched
/// from trial threads), conduit→links and link→ISP tables, the targeted
/// failure order, per-conduit risk weights, and city population weights.
class CampaignEngine {
 public:
  /// `cities`/`row` are required only for the CorrelatedHazards stressor.
  /// `probes_per_conduit` (when non-empty, sized like map.conduits())
  /// upgrades the risk weight from raw tenancy to the §4.3 combined
  /// metric tenants × log2(1 + probes).
  explicit CampaignEngine(const core::FiberMap& map,
                          const transport::CityDatabase* cities = nullptr,
                          const transport::RightOfWayRegistry* row = nullptr,
                          std::vector<std::uint64_t> probes_per_conduit = {});

  const core::FiberMap& map() const noexcept { return map_; }

  /// One trial, a pure function of (stressor, seed, trial).
  TrialResult run_trial(const Stressor& stressor, std::uint64_t seed, std::size_t trial) const;

  /// The per-step cut draws of one trial: entry s holds the conduits the
  /// stressor strikes at step s+1 (one id for cut stressors — empty past
  /// the end of the failure order — or a whole disaster disc for
  /// CorrelatedHazards; ids may repeat across steps).  Consumes exactly
  /// the RNG stream run_trial does, so replaying these draws elsewhere
  /// (the cascade engine) stays bit-compatible with the campaign.
  std::vector<std::vector<core::ConduitId>> draw_cuts(const Stressor& stressor, std::uint64_t seed,
                                                      std::size_t trial) const;

  /// Run the full campaign on `executor` and aggregate in trial order.
  CampaignReport run(const CampaignConfig& config, Executor& executor) const;

  /// Convenience: run on the process-wide default executor.
  CampaignReport run(const CampaignConfig& config) const;

 private:
  void connectivity(const std::vector<char>& dead, double& pair_fraction,
                    std::size_t& components) const;

  const core::FiberMap& map_;
  const transport::CityDatabase* cities_ = nullptr;
  const transport::RightOfWayRegistry* row_ = nullptr;

  std::vector<std::vector<std::pair<std::uint32_t, core::ConduitId>>> adjacency_;
  std::vector<std::vector<core::LinkId>> links_using_;  // [conduit] → link ids
  std::vector<isp::IspId> link_isp_;                    // [link] → ISP
  std::vector<core::ConduitId> targeted_order_;         // most shared first
  std::vector<double> conduit_weight_;                  // [conduit] risk weight
  double total_weight_ = 0.0;
  std::vector<double> city_weights_;  // [city] population (hazard anchors)
};

}  // namespace intertubes::sim
