#include "sim/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace intertubes::sim {

CurvePoint aggregate_samples(const std::vector<double>& values, InfPolicy policy,
                             double saturate_cap) {
  std::vector<double> kept;
  kept.reserve(values.size());
  double sum = 0.0;
  for (double v : values) {  // ordered accumulation
    if (!std::isfinite(v)) {
      if (policy == InfPolicy::Exclude) continue;
      v = saturate_cap;
    }
    kept.push_back(v);
    sum += v;
  }
  CurvePoint point;
  point.samples = kept.size();
  if (kept.empty()) {
    point.mean = point.p5 = point.p50 = point.p95 = std::numeric_limits<double>::infinity();
    return point;
  }
  point.mean = sum / static_cast<double>(kept.size());
  point.p5 = percentile(kept, 5.0);
  point.p50 = percentile(kept, 50.0);
  point.p95 = percentile(std::move(kept), 95.0);
  return point;
}

MetricCurve aggregate_series(const std::vector<std::vector<double>>& series, std::string name,
                             InfPolicy policy, double saturate_cap) {
  IT_CHECK(!series.empty());
  const std::size_t steps = series.front().size();
  for (const auto& trial : series) {
    IT_CHECK_MSG(trial.size() == steps, "series disagree on step count");
  }
  MetricCurve curve;
  curve.name = std::move(name);
  curve.points.resize(steps);
  std::vector<double> values(series.size());
  for (std::size_t step = 0; step < steps; ++step) {
    for (std::size_t t = 0; t < series.size(); ++t) values[t] = series[t][step];
    curve.points[step] = aggregate_samples(values, policy, saturate_cap);
  }
  return curve;
}

namespace {

/// Aggregate one metric: extract(trial, step) sampled across trials in
/// trial order, reduced to a CurvePoint per step.  Campaign metrics are
/// always finite, so the Exclude policy is a no-op here — this is the
/// same code path the +inf-carrying cascade curves harden.
template <typename Extract>
MetricCurve aggregate_metric(const std::vector<TrialResult>& trials, std::size_t steps,
                             std::string name, const Extract& extract) {
  MetricCurve curve;
  curve.name = std::move(name);
  curve.points.resize(steps);
  std::vector<double> values(trials.size());
  for (std::size_t step = 0; step < steps; ++step) {
    for (std::size_t t = 0; t < trials.size(); ++t) {
      values[t] = extract(trials[t].points[step]);
    }
    curve.points[step] = aggregate_samples(values, InfPolicy::Exclude);
  }
  return curve;
}

}  // namespace

CampaignReport aggregate_trials(const std::vector<TrialResult>& trials, std::size_t num_isps) {
  IT_CHECK(!trials.empty());
  const std::size_t steps = trials.front().points.size();
  for (const auto& trial : trials) {
    IT_CHECK_MSG(trial.points.size() == steps, "trials disagree on step count");
    IT_CHECK_MSG(trial.isp_links_lost.size() == num_isps, "trials disagree on ISP count");
  }

  CampaignReport report;
  report.conduits_down = aggregate_metric(trials, steps, "conduits down", [](const TrialPoint& p) {
    return static_cast<double>(p.conduits_down);
  });
  report.connectivity = aggregate_metric(trials, steps, "connectivity", [](const TrialPoint& p) {
    return p.connected_pair_fraction;
  });
  report.components = aggregate_metric(trials, steps, "components", [](const TrialPoint& p) {
    return static_cast<double>(p.components);
  });
  report.links_hit = aggregate_metric(trials, steps, "links hit", [](const TrialPoint& p) {
    return static_cast<double>(p.links_hit);
  });
  report.isps_hit = aggregate_metric(trials, steps, "ISPs hit", [](const TrialPoint& p) {
    return static_cast<double>(p.isps_hit);
  });
  report.weight_lost = aggregate_metric(trials, steps, "risk weight lost", [](const TrialPoint& p) {
    return p.weight_lost;
  });

  std::vector<std::vector<std::uint32_t>> losses(trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) losses[t] = trials[t].isp_links_lost;
  report.isp_impact = aggregate_isp_impact(losses, num_isps);
  return report;
}

std::vector<IspImpact> aggregate_isp_impact(const std::vector<std::vector<std::uint32_t>>& losses,
                                            std::size_t num_isps) {
  IT_CHECK(!losses.empty());
  for (const auto& trial : losses) {
    IT_CHECK_MSG(trial.size() == num_isps, "trials disagree on ISP count");
  }
  std::vector<IspImpact> table;
  std::vector<double> values(losses.size());
  for (isp::IspId i = 0; i < num_isps; ++i) {
    double sum = 0.0;
    double worst = 0.0;
    for (std::size_t t = 0; t < losses.size(); ++t) {
      values[t] = static_cast<double>(losses[t][i]);
      sum += values[t];
      worst = std::max(worst, values[t]);
    }
    if (worst <= 0.0) continue;
    IspImpact impact;
    impact.isp = i;
    impact.mean_links_lost = sum / static_cast<double>(losses.size());
    impact.p95_links_lost = percentile(values, 95.0);
    impact.max_links_lost = worst;
    table.push_back(impact);
  }
  std::stable_sort(table.begin(), table.end(), [](const IspImpact& a, const IspImpact& b) {
    return a.mean_links_lost > b.mean_links_lost;
  });
  return table;
}

std::string render_report(const CampaignReport& report,
                          const std::vector<isp::IspProfile>* profiles) {
  std::string out = "campaign: " + report.stressor + " — " + std::to_string(report.trials) +
                    " trials × " + std::to_string(report.steps) + " failure steps\n\n";

  TextTable curve_table({"step", "conduits", "conn mean", "conn p5", "conn p50", "conn p95",
                         "comps", "links hit", "links p95", "ISPs hit", "weight lost"});
  for (std::size_t step = 0; step < report.connectivity.points.size(); ++step) {
    curve_table.start_row();
    curve_table.add_cell(step);
    curve_table.add_cell(report.conduits_down.points[step].mean, 1);
    curve_table.add_cell(report.connectivity.points[step].mean, 4);
    curve_table.add_cell(report.connectivity.points[step].p5, 4);
    curve_table.add_cell(report.connectivity.points[step].p50, 4);
    curve_table.add_cell(report.connectivity.points[step].p95, 4);
    curve_table.add_cell(report.components.points[step].mean, 2);
    curve_table.add_cell(report.links_hit.points[step].mean, 1);
    curve_table.add_cell(report.links_hit.points[step].p95, 1);
    curve_table.add_cell(report.isps_hit.points[step].mean, 2);
    curve_table.add_cell(report.weight_lost.points[step].mean, 4);
  }
  out += curve_table.render("degradation curve (across trials)");

  if (!report.isp_impact.empty()) {
    TextTable isp_table({"ISP", "mean links lost", "p95", "max"});
    for (const auto& impact : report.isp_impact) {
      isp_table.start_row();
      if (profiles && impact.isp < profiles->size()) {
        isp_table.add_cell((*profiles)[impact.isp].name);
      } else {
        isp_table.add_cell("isp " + std::to_string(impact.isp));
      }
      isp_table.add_cell(impact.mean_links_lost, 2);
      isp_table.add_cell(impact.p95_links_lost, 1);
      isp_table.add_cell(impact.max_links_lost, 1);
    }
    out += "\n" + isp_table.render("per-ISP impact at the final step");
  }
  return out;
}

std::string report_curves_csv(const CampaignReport& report) {
  TextTable table({"step", "conduits_down_mean", "connectivity_mean", "connectivity_p5",
                   "connectivity_p50", "connectivity_p95", "components_mean", "links_hit_mean",
                   "links_hit_p95", "isps_hit_mean", "weight_lost_mean"});
  for (std::size_t step = 0; step < report.connectivity.points.size(); ++step) {
    table.start_row();
    table.add_cell(step);
    table.add_cell(report.conduits_down.points[step].mean, 6);
    table.add_cell(report.connectivity.points[step].mean, 6);
    table.add_cell(report.connectivity.points[step].p5, 6);
    table.add_cell(report.connectivity.points[step].p50, 6);
    table.add_cell(report.connectivity.points[step].p95, 6);
    table.add_cell(report.components.points[step].mean, 6);
    table.add_cell(report.links_hit.points[step].mean, 6);
    table.add_cell(report.links_hit.points[step].p95, 6);
    table.add_cell(report.isps_hit.points[step].mean, 6);
    table.add_cell(report.weight_lost.points[step].mean, 6);
  }
  return table.to_csv();
}

}  // namespace intertubes::sim
