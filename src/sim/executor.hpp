// Deterministic parallel execution for Monte-Carlo campaigns.
//
// A small chunked thread pool whose results are bit-identical for any
// thread count.  The contract that makes this possible:
//
//   * work is identified by index, never by thread — every item i gets the
//     same inputs (e.g. an RNG substream derived from seed + i) no matter
//     which thread runs it;
//   * chunk boundaries depend only on the range size and the requested
//     chunk, never on the thread count;
//   * reductions are *ordered*: parallel_map writes result i to slot i, and
//     parallel_reduce folds per-chunk partials in chunk order, so
//     floating-point accumulation order is fixed.
//
// Scheduling is dynamic (threads claim the next chunk from a shared atomic
// cursor — cheap work stealing), which is safe precisely because nothing
// about a result depends on who computed it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace intertubes::sim {

struct ExecutorOptions {
  /// 0 picks the hardware concurrency (min 1).
  std::size_t num_threads = 0;
  /// When >= 0, each spawned worker t pins itself to core
  /// (pin_first_core + t) mod hardware_concurrency — the multi-domain
  /// serving shape, where every shard's workers own consecutive cores.
  /// Linux only; silently a no-op elsewhere (pinned_workers() reports
  /// what actually stuck).  The calling thread is never pinned.
  int pin_first_core = -1;
};

class Executor {
 public:
  /// num_threads = 0 picks the hardware concurrency (min 1).  The calling
  /// thread participates in every parallel region, so Executor(1) spawns
  /// no workers and runs everything inline (the serial baseline).
  explicit Executor(std::size_t num_threads = 0) : Executor(ExecutorOptions{num_threads, -1}) {}
  explicit Executor(ExecutorOptions options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Total threads that execute work (spawned workers + the caller).
  std::size_t num_threads() const noexcept { return workers_.size() + 1; }

  /// Workers whose affinity request succeeded (0 when pinning is off or
  /// unsupported on this platform).  Advisory: workers pin themselves as
  /// they start, so the count can still rise shortly after construction.
  std::size_t pinned_workers() const noexcept {
    return pinned_workers_.load(std::memory_order_relaxed);
  }

  /// Best-effort: pin the calling thread to `core` (mod hardware
  /// concurrency).  Returns false when unsupported or refused.
  static bool pin_current_thread(std::size_t core) noexcept;

  /// The chunk actually used for a range of `items`: `chunk` if non-zero,
  /// otherwise a default that depends only on `items` (never on the thread
  /// count — that would break cross-thread-count determinism of
  /// parallel_reduce).
  static std::size_t resolve_chunk(std::size_t items, std::size_t chunk) noexcept;

  /// Submit one asynchronous task to the pool and return immediately.
  /// Tasks are independent of the chunked parallel regions: workers
  /// interleave them with published jobs, and queued tasks are drained
  /// before the destructor joins.  On a serial executor (no workers) the
  /// task runs inline in the calling thread — post() then blocks until it
  /// completes, preserving the "Executor(1) is the serial baseline"
  /// contract.  Tasks must not let exceptions escape (a throwing task
  /// terminates the worker thread's process) — catch and report through
  /// the task's own channel, as serve/engine does via response futures.
  void post(std::function<void()> task);

  /// Tasks posted but not yet picked up by a worker (serial executors
  /// always report 0).  Advisory — the count can change concurrently.
  std::size_t queued_tasks() const;

  /// Invoke body(chunk_begin, chunk_end) over [begin, end) partitioned
  /// into chunks.  Blocks until every chunk completed.  The first
  /// exception thrown by any chunk is rethrown here (remaining chunks may
  /// be skipped once a chunk has failed).  Nested calls are legal and run
  /// on the shared pool.
  void for_each_chunk(std::size_t begin, std::size_t end, std::size_t chunk,
                      const std::function<void(std::size_t, std::size_t)>& body);

  /// fn(i) for every i in [begin, end).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn, std::size_t chunk = 0) {
    for_each_chunk(begin, end, chunk, [&fn](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) fn(i);
    });
  }

  /// out[i] = fn(i) for i in [0, items).  Identical output for any thread
  /// count as long as fn(i) is a pure function of i.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t items, Fn&& fn, std::size_t chunk = 0) {
    std::vector<T> out(items);
    for_each_chunk(0, items, chunk, [&out, &fn](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) out[i] = fn(i);
    });
    return out;
  }

  /// Ordered reduction: fold map_fn(i) over [0, items) with reduce_fn.
  /// Each chunk folds locally from `identity`; chunk partials are then
  /// folded in chunk order, so the result is identical for any thread
  /// count (though not necessarily to a chunk-free serial fold — chunking
  /// fixes the association).
  template <typename T, typename MapFn, typename ReduceFn>
  T parallel_reduce(std::size_t items, T identity, MapFn&& map_fn, ReduceFn&& reduce_fn,
                    std::size_t chunk = 0) {
    chunk = resolve_chunk(items, chunk);
    const std::size_t num_chunks = items == 0 ? 0 : (items + chunk - 1) / chunk;
    std::vector<T> partials(num_chunks, identity);
    for_each_chunk(0, items, chunk, [&](std::size_t b, std::size_t e) {
      T acc = identity;
      for (std::size_t i = b; i < e; ++i) acc = reduce_fn(std::move(acc), map_fn(i));
      partials[b / chunk] = std::move(acc);
    });
    T total = std::move(identity);
    for (auto& partial : partials) total = reduce_fn(std::move(total), std::move(partial));
    return total;
  }

 private:
  struct Job;

  void worker_loop(std::size_t worker_index);
  static void run_job(Job& job);

  ExecutorOptions options_;
  std::atomic<std::size_t> pinned_workers_{0};
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;       // latest published job (kept alive for laggards)
  std::uint64_t generation_ = 0;   // bumped per published job
  std::deque<std::function<void()>> tasks_;  // post()ed, drained before shutdown
  bool stop_ = false;
};

/// Process-wide executor sized to the hardware.  Library hot paths
/// (risk::failure_curve etc.) run on it; create a private Executor to pin
/// a specific thread count.
Executor& default_executor();

}  // namespace intertubes::sim
