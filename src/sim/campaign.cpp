#include "sim/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "risk/geo_hazard.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace intertubes::sim {

using core::ConduitId;
using core::LinkId;
using transport::CityId;

std::string stressor_name(const Stressor& stressor) {
  switch (stressor.kind) {
    case StressorKind::RandomCuts:
      return "random cuts";
    case StressorKind::TargetedCuts:
      return "targeted cuts (most shared first)";
    case StressorKind::CorrelatedHazards:
      return "correlated hazards (r=" + format_double(stressor.hazard_radius_km, 0) + " km)";
  }
  return "unknown";
}

namespace {

/// Per-kind salt so the three stressors draw decorrelated substreams from
/// the same campaign seed.
std::uint64_t stressor_salt(StressorKind kind) {
  switch (kind) {
    case StressorKind::RandomCuts:
      return 0x5eed0c75ULL;
    case StressorKind::TargetedCuts:
      return 0x7a26e7edULL;
    case StressorKind::CorrelatedHazards:
      return 0xd15a57e2ULL;
  }
  return 0;
}

}  // namespace

CampaignEngine::CampaignEngine(const core::FiberMap& map, const transport::CityDatabase* cities,
                               const transport::RightOfWayRegistry* row,
                               std::vector<std::uint64_t> probes_per_conduit)
    : map_(map), cities_(cities), row_(row) {
  const std::size_t num_conduits = map.conduits().size();
  IT_CHECK_MSG(probes_per_conduit.empty() || probes_per_conduit.size() == num_conduits,
               "probe vector must match the conduit count");

  // Compact city-index adjacency snapshot.
  std::map<CityId, std::uint32_t> index_of;
  for (CityId node : map.nodes()) index_of.emplace(node, static_cast<std::uint32_t>(index_of.size()));
  adjacency_.resize(index_of.size());
  for (const auto& conduit : map.conduits()) {
    const std::uint32_t u = index_of.at(conduit.a);
    const std::uint32_t v = index_of.at(conduit.b);
    adjacency_[u].emplace_back(v, conduit.id);
    adjacency_[v].emplace_back(u, conduit.id);
  }

  links_using_.resize(num_conduits);
  link_isp_.reserve(map.links().size());
  for (const auto& link : map.links()) {
    link_isp_.push_back(link.isp);
    for (ConduitId cid : link.conduits) links_using_[cid].push_back(link.id);
  }

  targeted_order_.resize(num_conduits);
  std::iota(targeted_order_.begin(), targeted_order_.end(), ConduitId{0});
  std::stable_sort(targeted_order_.begin(), targeted_order_.end(),
                   [&map](ConduitId x, ConduitId y) {
                     return map.conduit(x).tenants.size() > map.conduit(y).tenants.size();
                   });

  conduit_weight_.resize(num_conduits, 0.0);
  for (ConduitId c = 0; c < num_conduits; ++c) {
    const auto tenants = static_cast<double>(map.conduit(c).tenants.size());
    conduit_weight_[c] =
        probes_per_conduit.empty()
            ? tenants
            : tenants * std::log2(1.0 + static_cast<double>(probes_per_conduit[c]));
    total_weight_ += conduit_weight_[c];
  }

  if (cities_) {
    city_weights_.reserve(cities_->size());
    for (const auto& city : cities_->all()) {
      city_weights_.push_back(static_cast<double>(city.population));
    }
  }
}

void CampaignEngine::connectivity(const std::vector<char>& dead, double& pair_fraction,
                                  std::size_t& components) const {
  const std::size_t n = adjacency_.size();
  std::vector<char> visited(n, 0);
  components = 0;
  double connected_pairs = 0.0;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++components;
    std::size_t size = 0;
    stack.assign(1, start);
    visited[start] = 1;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      ++size;
      for (const auto& [v, cid] : adjacency_[u]) {
        if (dead[cid] || visited[v]) continue;
        visited[v] = 1;
        stack.push_back(v);
      }
    }
    connected_pairs += static_cast<double>(size) * static_cast<double>(size - 1) / 2.0;
  }
  const double total_pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  pair_fraction = total_pairs > 0.0 ? connected_pairs / total_pairs : 1.0;
}

std::vector<std::vector<ConduitId>> CampaignEngine::draw_cuts(const Stressor& stressor,
                                                              std::uint64_t seed,
                                                              std::size_t trial) const {
  const std::size_t num_conduits = map_.conduits().size();
  Rng rng = substream_rng(seed ^ stressor_salt(stressor.kind), trial);

  std::vector<ConduitId> order;
  if (stressor.kind == StressorKind::RandomCuts) {
    order.resize(num_conduits);
    std::iota(order.begin(), order.end(), ConduitId{0});
    rng.shuffle(order);
  } else if (stressor.kind == StressorKind::TargetedCuts) {
    order = targeted_order_;
  } else {
    IT_CHECK_MSG(cities_ && row_,
                 "CorrelatedHazards needs a CityDatabase and RightOfWayRegistry");
  }

  std::vector<std::vector<ConduitId>> cuts(stressor.steps);
  for (std::size_t step = 1; step <= stressor.steps; ++step) {
    if (stressor.kind == StressorKind::CorrelatedHazards) {
      const auto anchor = cities_->city(static_cast<CityId>(rng.weighted_pick(city_weights_)));
      risk::HazardRegion region;
      region.center = geo::destination(anchor.location, rng.uniform(0.0, 360.0),
                                       std::abs(rng.normal(0.0, stressor.hazard_radius_km)));
      region.radius_km = stressor.hazard_radius_km;
      cuts[step - 1] = risk::conduits_in_region(map_, *row_, region);
    } else if (step - 1 < order.size()) {
      cuts[step - 1].push_back(order[step - 1]);
    }
  }
  return cuts;
}

TrialResult CampaignEngine::run_trial(const Stressor& stressor, std::uint64_t seed,
                                      std::size_t trial) const {
  const std::size_t num_conduits = map_.conduits().size();
  const auto cut_sets = draw_cuts(stressor, seed, trial);

  TrialResult result;
  result.isp_links_lost.assign(map_.num_isps(), 0);
  result.points.reserve(stressor.steps + 1);

  std::vector<char> dead(num_conduits, 0);
  std::vector<char> link_hit(link_isp_.size(), 0);
  std::vector<char> isp_hit(map_.num_isps(), 0);
  std::size_t conduits_down = 0;
  std::size_t links_hit = 0;
  std::size_t isps_hit = 0;
  double weight_lost = 0.0;

  auto kill = [&](ConduitId cid) {
    if (dead[cid]) return;
    dead[cid] = 1;
    ++conduits_down;
    weight_lost += conduit_weight_[cid];
    for (LinkId lid : links_using_[cid]) {
      if (link_hit[lid]) continue;
      link_hit[lid] = 1;
      ++links_hit;
      ++result.isp_links_lost[link_isp_[lid]];
      if (!isp_hit[link_isp_[lid]]) {
        isp_hit[link_isp_[lid]] = 1;
        ++isps_hit;
      }
    }
  };

  for (std::size_t step = 0; step <= stressor.steps; ++step) {
    if (step > 0) {
      for (ConduitId cid : cut_sets[step - 1]) kill(cid);
    }
    TrialPoint point;
    point.conduits_down = conduits_down;
    connectivity(dead, point.connected_pair_fraction, point.components);
    point.links_hit = links_hit;
    point.isps_hit = isps_hit;
    point.weight_lost = total_weight_ > 0.0 ? weight_lost / total_weight_ : 0.0;
    result.points.push_back(point);
  }
  return result;
}

CampaignReport CampaignEngine::run(const CampaignConfig& config, Executor& executor) const {
  IT_CHECK(config.trials >= 1);
  Stressor stressor = config.stressor;
  if (stressor.kind != StressorKind::CorrelatedHazards) {
    stressor.steps = std::min(stressor.steps, map_.conduits().size());
  }

  const auto trials = executor.parallel_map<TrialResult>(
      config.trials,
      [&](std::size_t trial) { return run_trial(stressor, config.seed, trial); });

  CampaignReport report = aggregate_trials(trials, map_.num_isps());
  report.stressor = stressor_name(stressor);
  report.seed = config.seed;
  report.trials = config.trials;
  report.steps = stressor.steps;
  return report;
}

CampaignReport CampaignEngine::run(const CampaignConfig& config) const {
  return run(config, default_executor());
}

}  // namespace intertubes::sim
