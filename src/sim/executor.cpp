#include "sim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace intertubes::sim {

/// One parallel region.  Threads claim chunks via fetch_add on `next`;
/// the last finished chunk flips `done` under `done_mu`.
struct Executor::Job {
  std::size_t end = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};  // chunks not yet finished
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // guarded by done_mu
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
};

bool Executor::pin_current_thread(std::size_t core) noexcept {
#if defined(__linux__)
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % hw, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

Executor::Executor(ExecutorOptions options) : options_(options) {
  std::size_t num_threads = options.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void Executor::post(std::function<void()> task) {
  if (workers_.empty()) {
    // Serial baseline: no worker will ever drain a queue, so run inline.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t Executor::queued_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

std::size_t Executor::resolve_chunk(std::size_t items, std::size_t chunk) noexcept {
  if (chunk > 0) return chunk;
  // Default: ~64 chunks regardless of thread count (a function of the
  // range only, so reduce partials are thread-count independent).
  return std::max<std::size_t>(1, (items + 63) / 64);
}

void Executor::run_job(Job& job) {
  for (;;) {
    const std::size_t b = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (b >= job.end) return;
    const std::size_t e = std::min(job.end, b + job.chunk);
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.body)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.done_mu);
        if (!job.failed.exchange(true)) job.error = std::current_exception();
      }
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done = true;
      job.done_cv.notify_all();
    }
  }
}

void Executor::for_each_chunk(std::size_t begin, std::size_t end, std::size_t chunk,
                              const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  chunk = resolve_chunk(end - begin, chunk);
  const std::size_t num_chunks = (end - begin + chunk - 1) / chunk;
  if (workers_.empty() || num_chunks == 1) {
    for (std::size_t b = begin; b < end; b += chunk) body(b, std::min(end, b + chunk));
    return;
  }

  auto job = std::make_shared<Job>();
  job->end = end;
  job->chunk = chunk;
  job->body = &body;
  job->next.store(begin, std::memory_order_relaxed);
  job->remaining.store(num_chunks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  cv_.notify_all();

  run_job(*job);  // the calling thread works too
  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] { return job->done; });
    if (job->error) std::rethrow_exception(job->error);
  }
}

void Executor::worker_loop(std::size_t worker_index) {
  if (options_.pin_first_core >= 0) {
    const std::size_t core = static_cast<std::size_t>(options_.pin_first_core) + worker_index;
    if (pin_current_thread(core)) pinned_workers_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || generation_ != seen || !tasks_.empty(); });
      if (!tasks_.empty()) {
        // Tasks drain even during shutdown so post()ed work never vanishes.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (stop_) {
        return;
      } else {
        seen = generation_;
        job = job_;
      }
    }
    if (task) {
      task();  // exceptions must be handled by the task itself (see post())
      continue;
    }
    // A laggard may pick up an already-drained job; run_job exits at once.
    run_job(*job);
  }
}

Executor& default_executor() {
  static Executor executor;
  return executor;
}

}  // namespace intertubes::sim
