file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hamming.dir/bench_fig8_hamming.cpp.o"
  "CMakeFiles/bench_fig8_hamming.dir/bench_fig8_hamming.cpp.o.d"
  "bench_fig8_hamming"
  "bench_fig8_hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
