# Empty dependencies file for bench_fig8_hamming.
# This may be replaced when dependencies are built.
