file(REMOVE_RECURSE
  "CMakeFiles/bench_table23_topconduits.dir/bench_table23_topconduits.cpp.o"
  "CMakeFiles/bench_table23_topconduits.dir/bench_table23_topconduits.cpp.o.d"
  "bench_table23_topconduits"
  "bench_table23_topconduits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table23_topconduits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
