# Empty dependencies file for bench_table23_topconduits.
# This may be replaced when dependencies are built.
