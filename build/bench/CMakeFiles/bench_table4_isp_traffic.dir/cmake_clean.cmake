file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_isp_traffic.dir/bench_table4_isp_traffic.cpp.o"
  "CMakeFiles/bench_table4_isp_traffic.dir/bench_table4_isp_traffic.cpp.o.d"
  "bench_table4_isp_traffic"
  "bench_table4_isp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_isp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
