# Empty dependencies file for bench_table4_isp_traffic.
# This may be replaced when dependencies are built.
