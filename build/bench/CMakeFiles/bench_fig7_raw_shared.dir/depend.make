# Empty dependencies file for bench_fig7_raw_shared.
# This may be replaced when dependencies are built.
