file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_economics.dir/bench_ablation_economics.cpp.o"
  "CMakeFiles/bench_ablation_economics.dir/bench_ablation_economics.cpp.o.d"
  "bench_ablation_economics"
  "bench_ablation_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
