# Empty dependencies file for bench_ablation_economics.
# This may be replaced when dependencies are built.
