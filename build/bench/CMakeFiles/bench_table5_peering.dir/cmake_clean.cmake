file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_peering.dir/bench_table5_peering.cpp.o"
  "CMakeFiles/bench_table5_peering.dir/bench_table5_peering.cpp.o.d"
  "bench_table5_peering"
  "bench_table5_peering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
