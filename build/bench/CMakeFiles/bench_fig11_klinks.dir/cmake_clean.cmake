file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_klinks.dir/bench_fig11_klinks.cpp.o"
  "CMakeFiles/bench_fig11_klinks.dir/bench_fig11_klinks.cpp.o.d"
  "bench_fig11_klinks"
  "bench_fig11_klinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_klinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
