# Empty dependencies file for bench_ablation_traffic_risk.
# This may be replaced when dependencies are built.
