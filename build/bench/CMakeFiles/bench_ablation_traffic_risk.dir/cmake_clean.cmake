file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_traffic_risk.dir/bench_ablation_traffic_risk.cpp.o"
  "CMakeFiles/bench_ablation_traffic_risk.dir/bench_ablation_traffic_risk.cpp.o.d"
  "bench_ablation_traffic_risk"
  "bench_ablation_traffic_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_traffic_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
