# Empty dependencies file for bench_ablation_digonce.
# This may be replaced when dependencies are built.
