file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_digonce.dir/bench_ablation_digonce.cpp.o"
  "CMakeFiles/bench_ablation_digonce.dir/bench_ablation_digonce.cpp.o.d"
  "bench_ablation_digonce"
  "bench_ablation_digonce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_digonce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
