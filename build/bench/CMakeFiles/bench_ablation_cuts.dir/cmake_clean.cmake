file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cuts.dir/bench_ablation_cuts.cpp.o"
  "CMakeFiles/bench_ablation_cuts.dir/bench_ablation_cuts.cpp.o.d"
  "bench_ablation_cuts"
  "bench_ablation_cuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
