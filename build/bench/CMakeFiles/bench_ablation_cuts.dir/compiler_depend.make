# Empty compiler generated dependencies file for bench_ablation_cuts.
# This may be replaced when dependencies are built.
