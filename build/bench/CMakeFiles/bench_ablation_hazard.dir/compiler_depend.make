# Empty compiler generated dependencies file for bench_ablation_hazard.
# This may be replaced when dependencies are built.
