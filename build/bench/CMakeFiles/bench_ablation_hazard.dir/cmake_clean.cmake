file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hazard.dir/bench_ablation_hazard.cpp.o"
  "CMakeFiles/bench_ablation_hazard.dir/bench_ablation_hazard.cpp.o.d"
  "bench_ablation_hazard"
  "bench_ablation_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
