file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overlay.dir/bench_ablation_overlay.cpp.o"
  "CMakeFiles/bench_ablation_overlay.dir/bench_ablation_overlay.cpp.o.d"
  "bench_ablation_overlay"
  "bench_ablation_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
