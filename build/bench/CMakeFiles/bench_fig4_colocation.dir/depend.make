# Empty dependencies file for bench_fig4_colocation.
# This may be replaced when dependencies are built.
