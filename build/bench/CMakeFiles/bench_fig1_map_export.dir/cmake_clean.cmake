file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_map_export.dir/bench_fig1_map_export.cpp.o"
  "CMakeFiles/bench_fig1_map_export.dir/bench_fig1_map_export.cpp.o.d"
  "bench_fig1_map_export"
  "bench_fig1_map_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_map_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
