# Empty compiler generated dependencies file for bench_fig1_map_export.
# This may be replaced when dependencies are built.
