# Empty dependencies file for bench_fig6_sharing.
# This may be replaced when dependencies are built.
