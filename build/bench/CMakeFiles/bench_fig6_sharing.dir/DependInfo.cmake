
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_sharing.cpp" "bench/CMakeFiles/bench_fig6_sharing.dir/bench_fig6_sharing.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_sharing.dir/bench_fig6_sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optical/CMakeFiles/it_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/optimize/CMakeFiles/it_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/traceroute/CMakeFiles/it_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/risk/CMakeFiles/it_risk.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/it_core.dir/DependInfo.cmake"
  "/root/repo/build/src/records/CMakeFiles/it_records.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/it_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/it_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/it_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/it_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
