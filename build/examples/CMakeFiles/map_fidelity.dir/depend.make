# Empty dependencies file for map_fidelity.
# This may be replaced when dependencies are built.
