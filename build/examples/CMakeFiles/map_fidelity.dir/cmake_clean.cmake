file(REMOVE_RECURSE
  "CMakeFiles/map_fidelity.dir/map_fidelity.cpp.o"
  "CMakeFiles/map_fidelity.dir/map_fidelity.cpp.o.d"
  "map_fidelity"
  "map_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
