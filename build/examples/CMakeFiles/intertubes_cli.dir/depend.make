# Empty dependencies file for intertubes_cli.
# This may be replaced when dependencies are built.
