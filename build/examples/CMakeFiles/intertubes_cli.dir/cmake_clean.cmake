file(REMOVE_RECURSE
  "CMakeFiles/intertubes_cli.dir/intertubes_cli.cpp.o"
  "CMakeFiles/intertubes_cli.dir/intertubes_cli.cpp.o.d"
  "intertubes_cli"
  "intertubes_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intertubes_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
