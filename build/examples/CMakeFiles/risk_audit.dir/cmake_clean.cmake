file(REMOVE_RECURSE
  "CMakeFiles/risk_audit.dir/risk_audit.cpp.o"
  "CMakeFiles/risk_audit.dir/risk_audit.cpp.o.d"
  "risk_audit"
  "risk_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
