# Empty compiler generated dependencies file for risk_audit.
# This may be replaced when dependencies are built.
