file(REMOVE_RECURSE
  "CMakeFiles/disaster_drill.dir/disaster_drill.cpp.o"
  "CMakeFiles/disaster_drill.dir/disaster_drill.cpp.o.d"
  "disaster_drill"
  "disaster_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
