# Empty dependencies file for disaster_drill.
# This may be replaced when dependencies are built.
