src/geo/CMakeFiles/it_geo.dir/latency.cpp.o: \
 /root/repo/src/geo/latency.cpp /usr/include/stdc-predef.h \
 /root/repo/src/geo/latency.hpp
