file(REMOVE_RECURSE
  "CMakeFiles/it_geo.dir/colocation.cpp.o"
  "CMakeFiles/it_geo.dir/colocation.cpp.o.d"
  "CMakeFiles/it_geo.dir/geo_point.cpp.o"
  "CMakeFiles/it_geo.dir/geo_point.cpp.o.d"
  "CMakeFiles/it_geo.dir/geojson.cpp.o"
  "CMakeFiles/it_geo.dir/geojson.cpp.o.d"
  "CMakeFiles/it_geo.dir/latency.cpp.o"
  "CMakeFiles/it_geo.dir/latency.cpp.o.d"
  "CMakeFiles/it_geo.dir/polyline.cpp.o"
  "CMakeFiles/it_geo.dir/polyline.cpp.o.d"
  "CMakeFiles/it_geo.dir/spatial_index.cpp.o"
  "CMakeFiles/it_geo.dir/spatial_index.cpp.o.d"
  "libit_geo.a"
  "libit_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
