
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/colocation.cpp" "src/geo/CMakeFiles/it_geo.dir/colocation.cpp.o" "gcc" "src/geo/CMakeFiles/it_geo.dir/colocation.cpp.o.d"
  "/root/repo/src/geo/geo_point.cpp" "src/geo/CMakeFiles/it_geo.dir/geo_point.cpp.o" "gcc" "src/geo/CMakeFiles/it_geo.dir/geo_point.cpp.o.d"
  "/root/repo/src/geo/geojson.cpp" "src/geo/CMakeFiles/it_geo.dir/geojson.cpp.o" "gcc" "src/geo/CMakeFiles/it_geo.dir/geojson.cpp.o.d"
  "/root/repo/src/geo/latency.cpp" "src/geo/CMakeFiles/it_geo.dir/latency.cpp.o" "gcc" "src/geo/CMakeFiles/it_geo.dir/latency.cpp.o.d"
  "/root/repo/src/geo/polyline.cpp" "src/geo/CMakeFiles/it_geo.dir/polyline.cpp.o" "gcc" "src/geo/CMakeFiles/it_geo.dir/polyline.cpp.o.d"
  "/root/repo/src/geo/spatial_index.cpp" "src/geo/CMakeFiles/it_geo.dir/spatial_index.cpp.o" "gcc" "src/geo/CMakeFiles/it_geo.dir/spatial_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/it_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
