# Empty compiler generated dependencies file for it_geo.
# This may be replaced when dependencies are built.
