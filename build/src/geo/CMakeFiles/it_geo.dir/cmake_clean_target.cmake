file(REMOVE_RECURSE
  "libit_geo.a"
)
