file(REMOVE_RECURSE
  "CMakeFiles/it_optical.dir/economics.cpp.o"
  "CMakeFiles/it_optical.dir/economics.cpp.o.d"
  "CMakeFiles/it_optical.dir/plant.cpp.o"
  "CMakeFiles/it_optical.dir/plant.cpp.o.d"
  "libit_optical.a"
  "libit_optical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_optical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
