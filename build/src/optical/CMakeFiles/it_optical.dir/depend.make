# Empty dependencies file for it_optical.
# This may be replaced when dependencies are built.
