file(REMOVE_RECURSE
  "libit_optical.a"
)
