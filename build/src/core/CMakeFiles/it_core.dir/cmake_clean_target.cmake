file(REMOVE_RECURSE
  "libit_core.a"
)
