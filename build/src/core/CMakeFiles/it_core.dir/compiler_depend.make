# Empty compiler generated dependencies file for it_core.
# This may be replaced when dependencies are built.
