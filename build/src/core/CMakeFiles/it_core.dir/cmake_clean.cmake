file(REMOVE_RECURSE
  "CMakeFiles/it_core.dir/dataset_diff.cpp.o"
  "CMakeFiles/it_core.dir/dataset_diff.cpp.o.d"
  "CMakeFiles/it_core.dir/dataset_io.cpp.o"
  "CMakeFiles/it_core.dir/dataset_io.cpp.o.d"
  "CMakeFiles/it_core.dir/exporter.cpp.o"
  "CMakeFiles/it_core.dir/exporter.cpp.o.d"
  "CMakeFiles/it_core.dir/fiber_map.cpp.o"
  "CMakeFiles/it_core.dir/fiber_map.cpp.o.d"
  "CMakeFiles/it_core.dir/fidelity.cpp.o"
  "CMakeFiles/it_core.dir/fidelity.cpp.o.d"
  "CMakeFiles/it_core.dir/longhaul.cpp.o"
  "CMakeFiles/it_core.dir/longhaul.cpp.o.d"
  "CMakeFiles/it_core.dir/pipeline.cpp.o"
  "CMakeFiles/it_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/it_core.dir/scenario.cpp.o"
  "CMakeFiles/it_core.dir/scenario.cpp.o.d"
  "libit_core.a"
  "libit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
