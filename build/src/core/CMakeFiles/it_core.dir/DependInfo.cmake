
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset_diff.cpp" "src/core/CMakeFiles/it_core.dir/dataset_diff.cpp.o" "gcc" "src/core/CMakeFiles/it_core.dir/dataset_diff.cpp.o.d"
  "/root/repo/src/core/dataset_io.cpp" "src/core/CMakeFiles/it_core.dir/dataset_io.cpp.o" "gcc" "src/core/CMakeFiles/it_core.dir/dataset_io.cpp.o.d"
  "/root/repo/src/core/exporter.cpp" "src/core/CMakeFiles/it_core.dir/exporter.cpp.o" "gcc" "src/core/CMakeFiles/it_core.dir/exporter.cpp.o.d"
  "/root/repo/src/core/fiber_map.cpp" "src/core/CMakeFiles/it_core.dir/fiber_map.cpp.o" "gcc" "src/core/CMakeFiles/it_core.dir/fiber_map.cpp.o.d"
  "/root/repo/src/core/fidelity.cpp" "src/core/CMakeFiles/it_core.dir/fidelity.cpp.o" "gcc" "src/core/CMakeFiles/it_core.dir/fidelity.cpp.o.d"
  "/root/repo/src/core/longhaul.cpp" "src/core/CMakeFiles/it_core.dir/longhaul.cpp.o" "gcc" "src/core/CMakeFiles/it_core.dir/longhaul.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/it_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/it_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/it_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/it_core.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/records/CMakeFiles/it_records.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/it_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/it_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/it_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/it_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
