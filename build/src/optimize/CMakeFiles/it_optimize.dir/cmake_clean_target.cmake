file(REMOVE_RECURSE
  "libit_optimize.a"
)
