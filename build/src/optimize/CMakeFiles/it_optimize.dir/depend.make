# Empty dependencies file for it_optimize.
# This may be replaced when dependencies are built.
