file(REMOVE_RECURSE
  "CMakeFiles/it_optimize.dir/expansion.cpp.o"
  "CMakeFiles/it_optimize.dir/expansion.cpp.o.d"
  "CMakeFiles/it_optimize.dir/latency.cpp.o"
  "CMakeFiles/it_optimize.dir/latency.cpp.o.d"
  "CMakeFiles/it_optimize.dir/robustness.cpp.o"
  "CMakeFiles/it_optimize.dir/robustness.cpp.o.d"
  "libit_optimize.a"
  "libit_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
