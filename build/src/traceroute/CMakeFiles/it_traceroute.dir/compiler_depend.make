# Empty compiler generated dependencies file for it_traceroute.
# This may be replaced when dependencies are built.
