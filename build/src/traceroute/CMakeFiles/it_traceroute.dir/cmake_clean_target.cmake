file(REMOVE_RECURSE
  "libit_traceroute.a"
)
