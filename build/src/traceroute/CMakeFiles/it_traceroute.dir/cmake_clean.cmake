file(REMOVE_RECURSE
  "CMakeFiles/it_traceroute.dir/campaign.cpp.o"
  "CMakeFiles/it_traceroute.dir/campaign.cpp.o.d"
  "CMakeFiles/it_traceroute.dir/l3_topology.cpp.o"
  "CMakeFiles/it_traceroute.dir/l3_topology.cpp.o.d"
  "CMakeFiles/it_traceroute.dir/naming.cpp.o"
  "CMakeFiles/it_traceroute.dir/naming.cpp.o.d"
  "CMakeFiles/it_traceroute.dir/overlay.cpp.o"
  "CMakeFiles/it_traceroute.dir/overlay.cpp.o.d"
  "libit_traceroute.a"
  "libit_traceroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_traceroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
