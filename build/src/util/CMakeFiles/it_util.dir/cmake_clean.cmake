file(REMOVE_RECURSE
  "CMakeFiles/it_util.dir/rng.cpp.o"
  "CMakeFiles/it_util.dir/rng.cpp.o.d"
  "CMakeFiles/it_util.dir/stats.cpp.o"
  "CMakeFiles/it_util.dir/stats.cpp.o.d"
  "CMakeFiles/it_util.dir/strings.cpp.o"
  "CMakeFiles/it_util.dir/strings.cpp.o.d"
  "CMakeFiles/it_util.dir/table.cpp.o"
  "CMakeFiles/it_util.dir/table.cpp.o.d"
  "libit_util.a"
  "libit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
