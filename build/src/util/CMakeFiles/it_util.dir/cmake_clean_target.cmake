file(REMOVE_RECURSE
  "libit_util.a"
)
