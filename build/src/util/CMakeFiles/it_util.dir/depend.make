# Empty dependencies file for it_util.
# This may be replaced when dependencies are built.
