# CMake generated Testfile for 
# Source directory: /root/repo/src/records
# Build directory: /root/repo/build/src/records
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
