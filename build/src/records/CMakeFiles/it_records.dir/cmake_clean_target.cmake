file(REMOVE_RECURSE
  "libit_records.a"
)
