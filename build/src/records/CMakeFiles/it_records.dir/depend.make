# Empty dependencies file for it_records.
# This may be replaced when dependencies are built.
