file(REMOVE_RECURSE
  "CMakeFiles/it_records.dir/corpus.cpp.o"
  "CMakeFiles/it_records.dir/corpus.cpp.o.d"
  "CMakeFiles/it_records.dir/document.cpp.o"
  "CMakeFiles/it_records.dir/document.cpp.o.d"
  "CMakeFiles/it_records.dir/inference.cpp.o"
  "CMakeFiles/it_records.dir/inference.cpp.o.d"
  "CMakeFiles/it_records.dir/search.cpp.o"
  "CMakeFiles/it_records.dir/search.cpp.o.d"
  "libit_records.a"
  "libit_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
