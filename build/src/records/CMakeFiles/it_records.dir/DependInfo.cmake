
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/records/corpus.cpp" "src/records/CMakeFiles/it_records.dir/corpus.cpp.o" "gcc" "src/records/CMakeFiles/it_records.dir/corpus.cpp.o.d"
  "/root/repo/src/records/document.cpp" "src/records/CMakeFiles/it_records.dir/document.cpp.o" "gcc" "src/records/CMakeFiles/it_records.dir/document.cpp.o.d"
  "/root/repo/src/records/inference.cpp" "src/records/CMakeFiles/it_records.dir/inference.cpp.o" "gcc" "src/records/CMakeFiles/it_records.dir/inference.cpp.o.d"
  "/root/repo/src/records/search.cpp" "src/records/CMakeFiles/it_records.dir/search.cpp.o" "gcc" "src/records/CMakeFiles/it_records.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isp/CMakeFiles/it_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/it_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/it_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/it_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
