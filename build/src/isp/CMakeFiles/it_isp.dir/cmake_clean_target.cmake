file(REMOVE_RECURSE
  "libit_isp.a"
)
