
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isp/ground_truth.cpp" "src/isp/CMakeFiles/it_isp.dir/ground_truth.cpp.o" "gcc" "src/isp/CMakeFiles/it_isp.dir/ground_truth.cpp.o.d"
  "/root/repo/src/isp/profiles.cpp" "src/isp/CMakeFiles/it_isp.dir/profiles.cpp.o" "gcc" "src/isp/CMakeFiles/it_isp.dir/profiles.cpp.o.d"
  "/root/repo/src/isp/published_maps.cpp" "src/isp/CMakeFiles/it_isp.dir/published_maps.cpp.o" "gcc" "src/isp/CMakeFiles/it_isp.dir/published_maps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/it_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/it_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/it_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
