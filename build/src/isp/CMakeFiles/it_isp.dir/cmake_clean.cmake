file(REMOVE_RECURSE
  "CMakeFiles/it_isp.dir/ground_truth.cpp.o"
  "CMakeFiles/it_isp.dir/ground_truth.cpp.o.d"
  "CMakeFiles/it_isp.dir/profiles.cpp.o"
  "CMakeFiles/it_isp.dir/profiles.cpp.o.d"
  "CMakeFiles/it_isp.dir/published_maps.cpp.o"
  "CMakeFiles/it_isp.dir/published_maps.cpp.o.d"
  "libit_isp.a"
  "libit_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
