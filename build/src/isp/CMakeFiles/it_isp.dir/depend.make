# Empty dependencies file for it_isp.
# This may be replaced when dependencies are built.
