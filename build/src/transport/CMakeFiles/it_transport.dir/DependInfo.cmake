
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/cities.cpp" "src/transport/CMakeFiles/it_transport.dir/cities.cpp.o" "gcc" "src/transport/CMakeFiles/it_transport.dir/cities.cpp.o.d"
  "/root/repo/src/transport/network.cpp" "src/transport/CMakeFiles/it_transport.dir/network.cpp.o" "gcc" "src/transport/CMakeFiles/it_transport.dir/network.cpp.o.d"
  "/root/repo/src/transport/row.cpp" "src/transport/CMakeFiles/it_transport.dir/row.cpp.o" "gcc" "src/transport/CMakeFiles/it_transport.dir/row.cpp.o.d"
  "/root/repo/src/transport/undersea.cpp" "src/transport/CMakeFiles/it_transport.dir/undersea.cpp.o" "gcc" "src/transport/CMakeFiles/it_transport.dir/undersea.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/it_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/it_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
