file(REMOVE_RECURSE
  "libit_transport.a"
)
