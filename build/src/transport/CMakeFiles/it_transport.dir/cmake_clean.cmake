file(REMOVE_RECURSE
  "CMakeFiles/it_transport.dir/cities.cpp.o"
  "CMakeFiles/it_transport.dir/cities.cpp.o.d"
  "CMakeFiles/it_transport.dir/network.cpp.o"
  "CMakeFiles/it_transport.dir/network.cpp.o.d"
  "CMakeFiles/it_transport.dir/row.cpp.o"
  "CMakeFiles/it_transport.dir/row.cpp.o.d"
  "CMakeFiles/it_transport.dir/undersea.cpp.o"
  "CMakeFiles/it_transport.dir/undersea.cpp.o.d"
  "libit_transport.a"
  "libit_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
