# Empty dependencies file for it_transport.
# This may be replaced when dependencies are built.
