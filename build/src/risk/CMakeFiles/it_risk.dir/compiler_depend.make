# Empty compiler generated dependencies file for it_risk.
# This may be replaced when dependencies are built.
