file(REMOVE_RECURSE
  "libit_risk.a"
)
