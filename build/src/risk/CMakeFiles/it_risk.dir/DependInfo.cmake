
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/risk/cuts.cpp" "src/risk/CMakeFiles/it_risk.dir/cuts.cpp.o" "gcc" "src/risk/CMakeFiles/it_risk.dir/cuts.cpp.o.d"
  "/root/repo/src/risk/geo_hazard.cpp" "src/risk/CMakeFiles/it_risk.dir/geo_hazard.cpp.o" "gcc" "src/risk/CMakeFiles/it_risk.dir/geo_hazard.cpp.o.d"
  "/root/repo/src/risk/risk_matrix.cpp" "src/risk/CMakeFiles/it_risk.dir/risk_matrix.cpp.o" "gcc" "src/risk/CMakeFiles/it_risk.dir/risk_matrix.cpp.o.d"
  "/root/repo/src/risk/traffic_weighted.cpp" "src/risk/CMakeFiles/it_risk.dir/traffic_weighted.cpp.o" "gcc" "src/risk/CMakeFiles/it_risk.dir/traffic_weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/it_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/it_util.dir/DependInfo.cmake"
  "/root/repo/build/src/records/CMakeFiles/it_records.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/it_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/it_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/it_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
