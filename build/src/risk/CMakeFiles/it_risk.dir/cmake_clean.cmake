file(REMOVE_RECURSE
  "CMakeFiles/it_risk.dir/cuts.cpp.o"
  "CMakeFiles/it_risk.dir/cuts.cpp.o.d"
  "CMakeFiles/it_risk.dir/geo_hazard.cpp.o"
  "CMakeFiles/it_risk.dir/geo_hazard.cpp.o.d"
  "CMakeFiles/it_risk.dir/risk_matrix.cpp.o"
  "CMakeFiles/it_risk.dir/risk_matrix.cpp.o.d"
  "CMakeFiles/it_risk.dir/traffic_weighted.cpp.o"
  "CMakeFiles/it_risk.dir/traffic_weighted.cpp.o.d"
  "libit_risk.a"
  "libit_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
