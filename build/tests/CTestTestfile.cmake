# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(intertubes_tests "/root/repo/build/tests/intertubes_tests")
set_tests_properties(intertubes_tests PROPERTIES  TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;56;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/examples/intertubes_cli")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;60;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/examples/intertubes_cli" "stats")
set_tests_properties(cli_stats PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_risk "/root/repo/build/examples/intertubes_cli" "risk")
set_tests_properties(cli_risk PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;62;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/examples/intertubes_cli" "plan" "--isp" "Sprint" "--k" "3")
set_tests_properties(cli_plan PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;63;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_build "/root/repo/build/examples/intertubes_cli" "build" "--out" "cli_test_dataset.tsv")
set_tests_properties(cli_build PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;64;add_test;/root/repo/tests/CMakeLists.txt;0;")
