
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/dataset_diff_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/core/dataset_diff_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/core/dataset_diff_test.cpp.o.d"
  "/root/repo/tests/core/dataset_io_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/core/dataset_io_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/core/dataset_io_test.cpp.o.d"
  "/root/repo/tests/core/exporter_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/core/exporter_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/core/exporter_test.cpp.o.d"
  "/root/repo/tests/core/fiber_map_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/core/fiber_map_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/core/fiber_map_test.cpp.o.d"
  "/root/repo/tests/core/longhaul_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/core/longhaul_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/core/longhaul_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/scenario_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/core/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/core/scenario_test.cpp.o.d"
  "/root/repo/tests/geo/colocation_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/geo/colocation_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/geo/colocation_test.cpp.o.d"
  "/root/repo/tests/geo/geo_point_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/geo/geo_point_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/geo/geo_point_test.cpp.o.d"
  "/root/repo/tests/geo/geojson_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/geo/geojson_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/geo/geojson_test.cpp.o.d"
  "/root/repo/tests/geo/latency_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/geo/latency_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/geo/latency_test.cpp.o.d"
  "/root/repo/tests/geo/polyline_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/geo/polyline_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/geo/polyline_test.cpp.o.d"
  "/root/repo/tests/geo/spatial_index_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/geo/spatial_index_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/geo/spatial_index_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/noise_injection_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/integration/noise_injection_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/integration/noise_injection_test.cpp.o.d"
  "/root/repo/tests/integration/property_sweeps_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/integration/property_sweeps_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/integration/property_sweeps_test.cpp.o.d"
  "/root/repo/tests/integration/seed_sweep_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/integration/seed_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/integration/seed_sweep_test.cpp.o.d"
  "/root/repo/tests/isp/ground_truth_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/isp/ground_truth_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/isp/ground_truth_test.cpp.o.d"
  "/root/repo/tests/isp/profiles_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/isp/profiles_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/isp/profiles_test.cpp.o.d"
  "/root/repo/tests/isp/published_maps_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/isp/published_maps_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/isp/published_maps_test.cpp.o.d"
  "/root/repo/tests/optical/economics_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/optical/economics_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/optical/economics_test.cpp.o.d"
  "/root/repo/tests/optical/plant_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/optical/plant_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/optical/plant_test.cpp.o.d"
  "/root/repo/tests/optimize/expansion_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/optimize/expansion_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/optimize/expansion_test.cpp.o.d"
  "/root/repo/tests/optimize/latency_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/optimize/latency_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/optimize/latency_test.cpp.o.d"
  "/root/repo/tests/optimize/robustness_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/optimize/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/optimize/robustness_test.cpp.o.d"
  "/root/repo/tests/records/corpus_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/records/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/records/corpus_test.cpp.o.d"
  "/root/repo/tests/records/inference_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/records/inference_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/records/inference_test.cpp.o.d"
  "/root/repo/tests/records/search_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/records/search_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/records/search_test.cpp.o.d"
  "/root/repo/tests/risk/cuts_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/risk/cuts_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/risk/cuts_test.cpp.o.d"
  "/root/repo/tests/risk/geo_hazard_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/risk/geo_hazard_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/risk/geo_hazard_test.cpp.o.d"
  "/root/repo/tests/risk/risk_matrix_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/risk/risk_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/risk/risk_matrix_test.cpp.o.d"
  "/root/repo/tests/risk/traffic_weighted_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/risk/traffic_weighted_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/risk/traffic_weighted_test.cpp.o.d"
  "/root/repo/tests/test_main.cpp" "tests/CMakeFiles/intertubes_tests.dir/test_main.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/test_main.cpp.o.d"
  "/root/repo/tests/traceroute/campaign_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/traceroute/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/traceroute/campaign_test.cpp.o.d"
  "/root/repo/tests/traceroute/l3_topology_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/traceroute/l3_topology_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/traceroute/l3_topology_test.cpp.o.d"
  "/root/repo/tests/traceroute/naming_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/traceroute/naming_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/traceroute/naming_test.cpp.o.d"
  "/root/repo/tests/traceroute/overlay_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/traceroute/overlay_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/traceroute/overlay_test.cpp.o.d"
  "/root/repo/tests/transport/cities_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/transport/cities_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/transport/cities_test.cpp.o.d"
  "/root/repo/tests/transport/network_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/transport/network_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/transport/network_test.cpp.o.d"
  "/root/repo/tests/transport/row_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/transport/row_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/transport/row_test.cpp.o.d"
  "/root/repo/tests/transport/undersea_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/transport/undersea_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/transport/undersea_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/strings_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/util/strings_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/util/strings_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/intertubes_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/intertubes_tests.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optical/CMakeFiles/it_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/optimize/CMakeFiles/it_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/traceroute/CMakeFiles/it_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/risk/CMakeFiles/it_risk.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/it_core.dir/DependInfo.cmake"
  "/root/repo/build/src/records/CMakeFiles/it_records.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/it_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/it_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/it_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/it_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
