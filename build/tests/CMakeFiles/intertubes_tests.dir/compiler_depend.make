# Empty compiler generated dependencies file for intertubes_tests.
# This may be replaced when dependencies are built.
