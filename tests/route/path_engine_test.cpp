#include "route/path_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "optimize/expansion.hpp"
#include "optimize/latency.hpp"
#include "optimize/robustness.hpp"
#include "risk/risk_matrix.hpp"
#include "route/cache.hpp"
#include "sim/executor.hpp"
#include "test_support.hpp"
#include "transport/network.hpp"
#include "transport/row.hpp"

namespace intertubes::route {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Diamond with a decoy: 0-1 direct (heavy), 0-2-1 (cheap), 0-3-1 (dear).
PathEngine diamond(std::uint64_t epoch = 0) {
  return PathEngine(4,
                    {{0, 1, 10.0},   // e0
                     {0, 2, 4.0},    // e1
                     {2, 1, 4.0},    // e2
                     {0, 3, 5.0},    // e3
                     {3, 1, 5.0}},   // e4
                    epoch);
}

TEST(PathEngine, ShortestPathPicksCheapDetour) {
  const auto engine = diamond();
  const auto path = engine.shortest_path(0, 1);
  ASSERT_TRUE(path.reachable);
  EXPECT_DOUBLE_EQ(path.cost, 8.0);
  EXPECT_EQ(path.edges, (std::vector<EdgeId>{1, 2}));
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{0, 2, 1}));
}

TEST(PathEngine, FromEqualsToIsEmptyReachablePath) {
  const auto engine = diamond();
  const auto path = engine.shortest_path(2, 2);
  ASSERT_TRUE(path.reachable);
  EXPECT_EQ(path.cost, 0.0);
  EXPECT_TRUE(path.edges.empty());
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{2}));
}

TEST(PathEngine, UnreachableReportsInfiniteCost) {
  const PathEngine engine(3, {{0, 1, 1.0}});  // node 2 isolated
  const auto path = engine.shortest_path(0, 2);
  EXPECT_FALSE(path.reachable);
  EXPECT_EQ(path.cost, kInf);
  EXPECT_TRUE(path.edges.empty());
  EXPECT_TRUE(path.nodes.empty());
}

TEST(PathEngine, TieBreakingPrefersLowestEdgeId) {
  // Two parallel edges, same weight: the lower id must win.
  const PathEngine parallel(2, {{0, 1, 5.0}, {0, 1, 5.0}});
  EXPECT_EQ(parallel.shortest_path(0, 1).edges, (std::vector<EdgeId>{0}));

  // Two equal-cost two-hop routes: the canonical winner is the one whose
  // final relaxing edge has the lower id (e2 over e4 here), regardless of
  // insertion order games.
  const PathEngine twin(4, {{0, 1, 99.0}, {0, 2, 5.0}, {2, 1, 5.0}, {0, 3, 5.0}, {3, 1, 5.0}});
  EXPECT_EQ(twin.shortest_path(0, 1).edges, (std::vector<EdgeId>{1, 2}));
}

TEST(PathEngine, EdgeMaskExcludesAndUnmasksBetweenQueries) {
  const auto engine = diamond();
  const std::vector<EdgeId> mask{1};  // sever the cheap detour's first leg
  Query query;
  query.masked = &mask;
  PathEngine::Workspace ws;
  const auto masked = engine.shortest_path(0, 1, query, ws);
  ASSERT_TRUE(masked.reachable);
  EXPECT_EQ(masked.edges, (std::vector<EdgeId>{0}));  // 0-3-1 costs 10 too; e0 wins the tie
  // Same workspace, no mask: the stamp from the previous query must not
  // leak (generation bump, not memset).
  const auto unmasked = engine.shortest_path(0, 1, {}, ws);
  EXPECT_EQ(unmasked.edges, (std::vector<EdgeId>{1, 2}));
}

TEST(PathEngine, MaskingEveryRouteMakesTargetUnreachable) {
  const auto engine = diamond();
  const std::vector<EdgeId> mask{0, 1, 3};  // cut every edge out of node 0
  Query query;
  query.masked = &mask;
  EXPECT_FALSE(engine.shortest_path(0, 1, query).reachable);
}

TEST(PathEngine, OverlayEdgeGetsIdBeyondBaseRange) {
  const auto engine = diamond();
  const std::vector<EdgeSpec> overlay{{0, 1, 1.0}};
  Query query;
  query.overlay = &overlay;
  const auto path = engine.shortest_path(0, 1, query);
  ASSERT_TRUE(path.reachable);
  EXPECT_DOUBLE_EQ(path.cost, 1.0);
  EXPECT_EQ(path.edges, (std::vector<EdgeId>{static_cast<EdgeId>(engine.num_edges())}));
  // The overlay is per-query: without it the base graph is unchanged.
  EXPECT_DOUBLE_EQ(engine.shortest_path(0, 1).cost, 8.0);
}

TEST(PathEngine, WeightOverrideForbidsWithInfinity) {
  const auto engine = diamond();
  const std::function<double(EdgeId)> forbid_detours = [](EdgeId id) {
    return id == 0 ? 10.0 : kInf;
  };
  Query query;
  query.weight_override = &forbid_detours;
  const auto path = engine.shortest_path(0, 1, query);
  ASSERT_TRUE(path.reachable);
  EXPECT_EQ(path.edges, (std::vector<EdgeId>{0}));
  EXPECT_DOUBLE_EQ(path.cost, 10.0);
}

TEST(PathEngine, DistancesFromMatchPerPairQueries) {
  const auto engine = diamond();
  const auto dist = engine.distances_from(0);
  ASSERT_EQ(dist.size(), engine.num_nodes());
  EXPECT_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[2], 4.0);
  EXPECT_DOUBLE_EQ(dist[3], 5.0);
  EXPECT_DOUBLE_EQ(dist[1], 8.0);
}

TEST(PathEngine, WorkspaceReuseIsStateless) {
  const auto engine = diamond();
  PathEngine::Workspace ws;
  const auto first = engine.shortest_path(0, 1, {}, ws);
  for (int i = 0; i < 100; ++i) {
    const auto again = engine.shortest_path(0, 1, {}, ws);
    ASSERT_EQ(again.edges, first.edges);
    ASSERT_EQ(again.cost, first.cost);
  }
}

TEST(RouteCache, SecondLookupHits) {
  const auto engine = diamond();
  MemoizedRouter router;
  const auto first = router.route(engine, 0, 1);
  const auto second = router.route(engine, 0, 1);
  EXPECT_EQ(first.get(), second.get());  // same shared immutable path
  const auto stats = router.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(RouteCache, MaskIsPartOfTheKey) {
  const auto engine = diamond();
  MemoizedRouter router;
  const auto plain = router.route(engine, 0, 1);
  const auto masked = router.route(engine, 0, 1, {1});
  EXPECT_NE(plain->cost, masked->cost);
  EXPECT_EQ(router.stats().misses, 2u);
  // Repeating each hits.
  router.route(engine, 0, 1);
  router.route(engine, 0, 1, {1});
  EXPECT_EQ(router.stats().hits, 2u);
}

TEST(RouteCache, EpochChangeInvalidatesImplicitly) {
  MemoizedRouter router;
  const auto before = router.route(diamond(0), 0, 1);
  EXPECT_DOUBLE_EQ(before->cost, 8.0);
  // Rebuilt world: same topology, the detour got expensive, new epoch.
  const PathEngine rebuilt(4, {{0, 1, 10.0}, {0, 2, 40.0}, {2, 1, 40.0}, {0, 3, 50.0}, {3, 1, 50.0}},
                           1);
  const auto after = router.route(rebuilt, 0, 1);
  EXPECT_DOUBLE_EQ(after->cost, 10.0);  // a hit on the stale key would say 8
  EXPECT_EQ(router.stats().misses, 2u);
  EXPECT_EQ(router.size(), 2u);
  EXPECT_EQ(router.purge_stale(1), 1u);
  EXPECT_EQ(router.size(), 1u);
}

TEST(RouteCache, EvictsLeastRecentlyUsed) {
  PathCache cache(/*capacity=*/2, /*num_shards=*/1);
  const auto path = std::make_shared<const Path>();
  cache.put({0, 0, 1, 0}, path);
  cache.put({0, 0, 2, 0}, path);
  ASSERT_TRUE(cache.get({0, 0, 1, 0}).has_value());  // refresh key 1
  cache.put({0, 0, 3, 0}, path);                     // evicts key 2
  EXPECT_TRUE(cache.get({0, 0, 1, 0}).has_value());
  EXPECT_FALSE(cache.get({0, 0, 2, 0}).has_value());
  EXPECT_TRUE(cache.get({0, 0, 3, 0}).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// ---- determinism at scenario scale ----

TEST(RouteParallel, SummariesBitIdenticalAcrossThreadCounts) {
  const auto& map = testing::shared_scenario().map();
  const auto matrix = risk::RiskMatrix::from_map(map);
  const auto targets = matrix.most_shared_conduits(12);
  const optimize::RobustnessPlanner planner(map, matrix);

  const auto serial = planner.summarize_robustness(targets);
  sim::Executor one(1);
  sim::Executor four(4);
  const auto par1 = planner.summarize_robustness(targets, one);
  const auto par4 = planner.summarize_robustness(targets, four);
  ASSERT_EQ(serial.size(), par1.size());
  ASSERT_EQ(serial.size(), par4.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (const auto* other : {&par1[i], &par4[i]}) {
      EXPECT_EQ(serial[i].isp, other->isp);
      EXPECT_EQ(serial[i].targets_using, other->targets_using);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(serial[i].pi_min, other->pi_min);
      EXPECT_EQ(serial[i].pi_max, other->pi_max);
      EXPECT_EQ(serial[i].pi_avg, other->pi_avg);
      EXPECT_EQ(serial[i].srr_min, other->srr_min);
      EXPECT_EQ(serial[i].srr_max, other->srr_max);
      EXPECT_EQ(serial[i].srr_avg, other->srr_avg);
    }
  }
}

TEST(RouteParallel, NetworkWideGainBitIdenticalAcrossThreadCounts) {
  const auto& map = testing::shared_scenario().map();
  const auto matrix = risk::RiskMatrix::from_map(map);
  const optimize::RobustnessPlanner planner(map, matrix);
  const auto serial = planner.network_wide_gain(12);
  sim::Executor four(4);
  const auto parallel = planner.network_wide_gain(12, four);
  EXPECT_EQ(serial.conduits_evaluated, parallel.conduits_evaluated);
  EXPECT_EQ(serial.already_optimal, parallel.already_optimal);
  EXPECT_EQ(serial.unreachable, parallel.unreachable);
  EXPECT_EQ(serial.avg_srr_top, parallel.avg_srr_top);
  EXPECT_EQ(serial.avg_srr_rest, parallel.avg_srr_rest);
}

TEST(RouteParallel, RowRegistryPathsUnchangedByEngineRewiring) {
  // The ROW registry now routes through the shared engine; spot-check the
  // structural contract on real data.
  const auto& row = testing::shared_scenario().row();
  const auto path = row.shortest_path(0, 1);
  if (!path.empty()) {
    EXPECT_EQ(path.cities.size(), path.corridors.size() + 1);
    EXPECT_EQ(path.cities.front(), 0u);
    EXPECT_EQ(path.cities.back(), 1u);
    double km = 0.0;
    for (auto cid : path.corridors) km += row.corridor(cid).length_km;
    EXPECT_DOUBLE_EQ(path.length_km, km);
  }
  const auto dist = row.distances_from(0);
  EXPECT_EQ(dist.size(), row.num_cities());
  EXPECT_EQ(dist[0], 0.0);
}

// ---- regression tests for the mitigation-layer fixes ----

// Corridor fixtures come from prop/generators — the shared builder used
// across the unit suites.
using prop::make_corridor;

TEST(RouteRegression, NetworkWideGainSeparatesBridgesFromOptimal) {
  // One bridge conduit (no alternative at all) and one genuinely optimal
  // pair of parallel conduits.  The bridge must land in `unreachable`, not
  // `already_optimal`.
  core::FiberMap map(3);
  const auto bridge =
      map.ensure_conduit(make_corridor(0, 0, 1, 100.0), core::Provenance::GeocodedMap);
  const auto twin_a =
      map.ensure_conduit(make_corridor(1, 1, 2, 80.0), core::Provenance::GeocodedMap);
  const auto twin_b =
      map.ensure_conduit(make_corridor(2, 1, 2, 90.0), core::Provenance::GeocodedMap);
  map.add_link(0, 0, 1, {bridge}, true);
  map.add_link(1, 0, 1, {bridge}, true);
  map.add_link(0, 1, 2, {twin_a}, true);
  map.add_link(1, 1, 2, {twin_b}, true);
  const auto matrix = risk::RiskMatrix::from_map(map);
  const auto gain = optimize::network_wide_gain(map, matrix, 1);
  EXPECT_EQ(gain.conduits_evaluated, 3u);
  EXPECT_EQ(gain.unreachable, 1u);  // the bridge
  // twin_a's alternative is twin_b (sharing 1 each, SRR 0) and vice versa:
  // genuinely already optimal.
  EXPECT_EQ(gain.already_optimal, 2u);
}

TEST(RouteRegression, NetworkWideGainScenarioAccounting) {
  const auto& map = testing::shared_scenario().map();
  const auto matrix = risk::RiskMatrix::from_map(map);
  const auto gain = optimize::network_wide_gain(map, matrix, 12);
  EXPECT_EQ(gain.conduits_evaluated, map.conduits().size());
  // Bridges exist in the seed world and must no longer masquerade as
  // optimal placements.
  EXPECT_GT(gain.unreachable, 0u);
  EXPECT_GT(gain.already_optimal, 0u);
  EXPECT_LT(gain.already_optimal + gain.unreachable, gain.conduits_evaluated);
}

TEST(RouteRegression, LatencyStudyExcludesRowUnreachablePairs) {
  // Two ROW islands: {0,1} and {2,3}.  A mapped link inside an island has
  // a ROW comparison; a link across islands does not and must be counted,
  // not folded into the fraction as "best is ROW".
  std::vector<transport::City> cities;
  for (int i = 0; i < 4; ++i) {
    transport::City city;
    city.name = "C" + std::to_string(i);
    city.state = "XX";
    city.location = {35.0 + i, -100.0 + i};
    city.population = 100000;
    cities.push_back(city);
  }
  const transport::CityDatabase db(cities);

  auto make_edge = [](transport::EdgeId id, transport::CityId a, transport::CityId b) {
    transport::TransportEdge e;
    e.id = id;
    e.a = a;
    e.b = b;
    e.mode = transport::TransportMode::Road;
    e.path = geo::Polyline::straight({35.0 + a, -100.0 + a}, {35.0 + b, -100.0 + b});
    e.length_km = e.path.length_km();
    return e;
  };
  transport::TransportBundle bundle{
      transport::TransportNetwork(transport::TransportMode::Road,
                                  {make_edge(0, 0, 1), make_edge(1, 2, 3)}, 4),
      transport::TransportNetwork(transport::TransportMode::Rail, {}, 4),
      transport::TransportNetwork(transport::TransportMode::Pipeline, {}, 4)};
  const transport::RightOfWayRegistry row(bundle);

  core::FiberMap map(2);
  const auto in_island =
      map.ensure_conduit(make_corridor(10, 0, 1, 120.0), core::Provenance::GeocodedMap);
  const auto cross =
      map.ensure_conduit(make_corridor(11, 0, 2, 150.0), core::Provenance::GeocodedMap);
  map.add_link(0, 0, 1, {in_island}, true);
  map.add_link(1, 0, 2, {cross}, true);

  const auto study = optimize::latency_study(map, db, row, 0.05);
  ASSERT_EQ(study.pairs.size(), 2u);
  EXPECT_EQ(study.row_unreachable, 1u);
  std::size_t reachable = 0;
  for (const auto& pair : study.pairs) {
    if (pair.row_reachable) {
      ++reachable;
    } else {
      EXPECT_EQ(pair.a, 0u);
      EXPECT_EQ(pair.b, 2u);
    }
  }
  EXPECT_EQ(reachable, 1u);
  // The fraction is over the single comparable pair only.  Its best path
  // rides the only corridor, so best == ROW there.
  EXPECT_DOUBLE_EQ(study.fraction_best_is_row, 1.0);
}

TEST(RouteRegression, ExpansionSurfacesUnreachableDemands) {
  // ISP 0 has one routable demand (0-1) and one demand whose endpoint
  // touches no conduit at all (0-5).  The old average silently dropped the
  // dead demand; now it must be reported and stay visible per step.
  core::FiberMap map(2);
  const auto spine =
      map.ensure_conduit(make_corridor(0, 0, 1, 100.0), core::Provenance::GeocodedMap);
  map.add_link(0, 0, 1, {spine}, true);
  map.add_link(1, 0, 1, {spine}, true);
  map.add_link(0, 0, 5, {spine}, true);  // fabricated dead demand

  transport::TransportBundle bundle{
      transport::TransportNetwork(transport::TransportMode::Road, {}, 6),
      transport::TransportNetwork(transport::TransportMode::Rail, {}, 6),
      transport::TransportNetwork(transport::TransportMode::Pipeline, {}, 6)};
  const transport::RightOfWayRegistry row(bundle);

  const auto result = optimize::optimize_expansion(map, row, 0, 3);
  EXPECT_EQ(result.unreachable_demands, 1u);
  ASSERT_EQ(result.steps.size(), 3u);
  for (const auto& step : result.steps) {
    // Adding conduits can only reconnect, never disconnect.
    EXPECT_LE(step.unreachable_demands, result.unreachable_demands);
  }
  // The reachable demand still averages over the spine it rides.
  EXPECT_DOUBLE_EQ(result.baseline_avg_shared_risk, 2.0);
}

}  // namespace
}  // namespace intertubes::route
