// Stress coverage for route::PathCache: LRU eviction accounting under
// capacity pressure, and purge_stale racing concurrent epoch bumps — the
// serve/ rebuild pattern, where reader threads keep routing against a
// sequence of rebuilt engines while a janitor reclaims stale entries.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "prop/generators.hpp"
#include "route/cache.hpp"
#include "route/path_engine.hpp"

namespace intertubes::route {
namespace {

TEST(RouteCacheStress, EvictionKeepsSizeBoundedAndCounted) {
  PathCache cache(/*capacity=*/16, /*num_shards=*/4);
  const auto path = std::make_shared<const Path>();
  const std::size_t inserted = 400;
  for (std::size_t i = 0; i < inserted; ++i) {
    cache.put({1, static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 0}, path);
  }
  // Sharding rounds capacity up per shard; the bound is per-shard capacity
  // times shard count, never the raw insert count.
  EXPECT_LE(cache.size(), 16u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, inserted - cache.size());
}

TEST(RouteCacheStress, PurgeStaleDropsExactlyTheStaleEntries) {
  MemoizedRouter router;
  // Two engines over the same barbell conduit graph, different epochs.
  std::vector<EdgeSpec> edges;
  const auto map = prop::barbell_map();
  for (const auto& conduit : map.conduits()) {
    edges.push_back({conduit.a, conduit.b, conduit.length_km});
  }
  const PathEngine v1(5, edges, 1);
  const PathEngine v2(5, edges, 2);
  for (const auto& conduit : map.conduits()) router.route(v1, conduit.a, conduit.b);
  const std::size_t v1_entries = router.size();
  EXPECT_GT(v1_entries, 0u);
  router.route(v2, 0, 2);
  router.route(v2, 2, 4);
  EXPECT_EQ(router.purge_stale(v2.epoch()), v1_entries);
  EXPECT_EQ(router.size(), 2u);
  EXPECT_EQ(router.purge_stale(v2.epoch()), 0u);  // idempotent once clean
  EXPECT_EQ(router.stats().invalidations, v1_entries);
}

TEST(RouteCacheStress, PurgeStaleUnderConcurrentEpochBumps) {
  // Epoch e gets weights scaled by (1 + e): a stale hit is not just a
  // bookkeeping error, it returns a visibly wrong cost.  Worker threads
  // route against a rolling window of rebuilt engines while a janitor
  // purges against the latest epoch; every answer must match the cold
  // engine of its own epoch.
  constexpr std::size_t kEpochs = 8;
  constexpr std::size_t kWorkers = 4;
  const auto map = prop::barbell_map();
  std::vector<std::unique_ptr<PathEngine>> engines;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    std::vector<EdgeSpec> edges;
    for (const auto& conduit : map.conduits()) {
      edges.push_back({conduit.a, conduit.b, conduit.length_km * static_cast<double>(1 + e)});
    }
    engines.push_back(std::make_unique<PathEngine>(5, std::move(edges), e + 1));
  }

  MemoizedRouter router(/*capacity=*/64, /*num_shards=*/4);
  std::atomic<std::uint64_t> latest_epoch{1};
  std::atomic<bool> done{false};
  std::atomic<std::size_t> mismatches{0};

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t round = 0; round < 50; ++round) {
        for (std::size_t e = 0; e < kEpochs; ++e) {
          const PathEngine& engine = *engines[e];
          latest_epoch.store(engine.epoch(), std::memory_order_relaxed);
          for (const auto& conduit : map.conduits()) {
            const NodeId from = (w % 2 == 0) ? conduit.a : conduit.b;
            const NodeId to = (w % 2 == 0) ? conduit.b : conduit.a;
            const auto warm = router.route(engine, from, to);
            const auto cold = engine.shortest_path(from, to);
            if (warm->cost != cold.cost || warm->edges != cold.edges) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  std::thread janitor([&] {
    while (!done.load(std::memory_order_relaxed)) {
      router.purge_stale(latest_epoch.load(std::memory_order_relaxed));
      std::this_thread::yield();
    }
  });
  for (auto& t : workers) t.join();
  done.store(true, std::memory_order_relaxed);
  janitor.join();

  EXPECT_EQ(mismatches.load(), 0u) << "a stale or cross-epoch cache hit leaked a wrong path";
  // A final purge against the last epoch leaves only that epoch's entries;
  // purging again finds nothing.
  router.purge_stale(kEpochs);
  EXPECT_EQ(router.purge_stale(kEpochs), 0u);
  EXPECT_LE(router.size(), 64u);
  const auto stats = router.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace intertubes::route
