// Regression tests for the PathEngine's capped workspace pool (the
// unbounded-growth bug: the old grow-only pool retained one Workspace per
// peak concurrent caller forever).  Registered in the `ctest -L alloc`
// suite alongside the zero-allocation guards.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "route/path_engine.hpp"
#include "sim/executor.hpp"
#include "util/alloc.hpp"

namespace intertubes::route {
namespace {

/// A ladder graph: 2n nodes, rails + rungs, everything reachable.
PathEngine ladder(NodeId n) {
  std::vector<EdgeSpec> edges;
  for (NodeId i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, 1.0});
    edges.push_back({n + i, n + i + 1, 1.0});
  }
  for (NodeId i = 0; i < n; ++i) edges.push_back({i, n + i, 2.0});
  return PathEngine(2 * n, std::move(edges));
}

TEST(RouteWorkspacePool, IdleRetentionNeverExceedsCap) {
  const auto engine = ladder(16);
  const std::size_t cap = engine.workspace_pool_cap();
  ASSERT_GT(cap, 0u);
  {
    // Burst: hold strictly more leases than the cap at once.
    std::vector<util::LeasePool<PathEngine::Workspace>::Lease> burst;
    for (std::size_t i = 0; i < cap + 7; ++i) burst.push_back(engine.lease_workspace());
    EXPECT_EQ(engine.workspaces_created(), cap + 7);
    EXPECT_EQ(engine.workspace_pool_idle(), 0u);
  }  // every lease released here
  EXPECT_EQ(engine.workspace_pool_idle(), cap);
  EXPECT_EQ(engine.workspaces_dropped(), 7u);
  // Accounting closes: everything created is either retained or destroyed.
  EXPECT_EQ(engine.workspaces_created(),
            engine.workspace_pool_idle() + engine.workspaces_dropped());
}

TEST(RouteWorkspacePool, ExecutorHammerStaysCappedAndCorrect) {
  const auto engine = ladder(32);
  sim::Executor executor(4);
  const auto reference = engine.shortest_path(0, 63);
  ASSERT_TRUE(reference.reachable);

  std::atomic<std::size_t> mismatches{0};
  // 512 convenience-overload queries fanned over the pool's worker
  // threads, each leasing a workspace for its duration.
  executor.parallel_for(0, 512, [&](std::size_t) {
    const auto path = engine.shortest_path(0, 63);
    if (!path.reachable || path.cost != reference.cost || path.edges != reference.edges) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(engine.workspace_pool_idle(), engine.workspace_pool_cap());
  // Steady-state reuse: the pool warmed to at most one workspace per
  // executor thread, not one per query.
  EXPECT_LE(engine.workspaces_created(), executor.num_threads());
  EXPECT_EQ(engine.workspaces_created(),
            engine.workspace_pool_idle() + engine.workspaces_dropped());
}

TEST(RouteWorkspacePool, WarmedWorkspaceServesQueriesWithoutAllocating) {
  if (!util::alloc_counting_active()) GTEST_SKIP() << "alloc hooks not linked";
  const auto engine = ladder(32);
  PathEngine::Workspace ws;
  engine.warm_workspace(ws);
  Path out;
  engine.shortest_path(0, 63, {}, ws, out);  // sizes out's vectors once
  ASSERT_TRUE(out.reachable);

  util::ZeroAllocGuard guard;
  for (NodeId to = 1; to < 64; ++to) {
    engine.shortest_path(0, to, {}, ws, out);
  }
  const auto allocations = guard.allocations();
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(guard.frees(), 0u);
}

}  // namespace
}  // namespace intertubes::route
