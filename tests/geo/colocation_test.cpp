#include "geo/colocation.hpp"

#include <gtest/gtest.h>

namespace intertubes::geo {
namespace {

ReferenceNetwork make_reference(const std::string& name,
                                const std::vector<Polyline>& routes) {
  ReferenceNetwork net(name);
  for (const auto& r : routes) net.add_route(r);
  return net;
}

TEST(ReferenceNetwork, CoversNearbyPoint) {
  const auto net = make_reference("road", {Polyline({{40.0, -100.0}, {40.0, -98.0}})});
  EXPECT_TRUE(net.covers({40.01, -99.0}, 3.0));
  EXPECT_FALSE(net.covers({41.0, -99.0}, 3.0));
  EXPECT_EQ(net.name(), "road");
  EXPECT_EQ(net.segment_count(), 1u);
}

TEST(ColocationFractions, FullyColocated) {
  const Polyline route({{40.0, -100.0}, {40.0, -98.0}});
  const auto road = make_reference("road", {route});
  const auto result = colocation_fractions(route, {&road}, 2.0, 5.0);
  EXPECT_NEAR(result.fraction[0], 1.0, 1e-9);
  EXPECT_NEAR(result.fraction_any, 1.0, 1e-9);
}

TEST(ColocationFractions, DisjointIsZero) {
  const Polyline route({{30.0, -90.0}, {30.0, -89.0}});
  const auto road = make_reference("road", {Polyline({{45.0, -120.0}, {45.0, -119.0}})});
  const auto result = colocation_fractions(route, {&road}, 2.0, 5.0);
  EXPECT_DOUBLE_EQ(result.fraction[0], 0.0);
  EXPECT_DOUBLE_EQ(result.fraction_any, 0.0);
}

TEST(ColocationFractions, UnionOfTwoReferences) {
  // Route's west half follows the "road", east half the "rail".
  const Polyline route({{40.0, -100.0}, {40.0, -96.0}});
  const auto road = make_reference("road", {Polyline({{40.0, -100.0}, {40.0, -98.0}})});
  const auto rail = make_reference("rail", {Polyline({{40.0, -98.0}, {40.0, -96.0}})});
  const auto result = colocation_fractions(route, {&road, &rail}, 2.0, 5.0);
  EXPECT_GT(result.fraction[0], 0.4);
  EXPECT_LT(result.fraction[0], 0.62);
  EXPECT_GT(result.fraction[1], 0.4);
  EXPECT_LT(result.fraction[1], 0.62);
  EXPECT_NEAR(result.fraction_any, 1.0, 0.02);
  // Union dominates each component.
  EXPECT_GE(result.fraction_any, result.fraction[0]);
  EXPECT_GE(result.fraction_any, result.fraction[1]);
}

TEST(ColocationFractions, RequiresReferences) {
  const Polyline route({{40.0, -100.0}, {40.0, -99.0}});
  EXPECT_THROW(colocation_fractions(route, {}, 2.0), std::logic_error);
  const auto road = make_reference("road", {route});
  EXPECT_THROW(colocation_fractions(route, {&road}, 0.0), std::logic_error);
}

TEST(ColocationHistogram, SeriesNamesAndNormalization) {
  const auto road = make_reference("road", {Polyline({{40.0, -100.0}, {40.0, -98.0}})});
  const auto rail = make_reference("rail", {Polyline({{41.0, -100.0}, {41.0, -98.0}})});
  std::vector<Polyline> routes{
      Polyline({{40.0, -100.0}, {40.0, -98.0}}),   // on the road
      Polyline({{41.0, -100.0}, {41.0, -98.0}}),   // on the rail
      Polyline({{45.0, -100.0}, {45.0, -98.0}}),   // on neither
  };
  const auto hist = colocation_histogram(routes, {&road, &rail}, 2.0, 5.0, 10);
  ASSERT_EQ(hist.series_names.size(), 3u);
  EXPECT_EQ(hist.series_names[0], "road");
  EXPECT_EQ(hist.series_names[1], "rail");
  EXPECT_EQ(hist.series_names[2], "any");
  for (const auto& series : hist.rel_freq) {
    double sum = 0.0;
    for (double f : series) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // One route fully on road, two not: road histogram should have mass at
  // both extremes.
  EXPECT_NEAR(hist.rel_freq[0].front(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(hist.rel_freq[0].back(), 1.0 / 3.0, 1e-9);
  // Mean co-location with "any" exceeds (or ties) each single reference.
  EXPECT_GE(hist.mean_fraction[2] + 1e-12, hist.mean_fraction[0]);
  EXPECT_GE(hist.mean_fraction[2] + 1e-12, hist.mean_fraction[1]);
}

TEST(ColocationHistogram, RejectsEmptyRouteSet) {
  const auto road = make_reference("road", {Polyline({{40.0, -100.0}, {40.0, -98.0}})});
  EXPECT_THROW(colocation_histogram({}, {&road}, 2.0), std::logic_error);
}

}  // namespace
}  // namespace intertubes::geo
