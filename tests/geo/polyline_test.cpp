#include "geo/polyline.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace intertubes::geo {
namespace {

Polyline sample_line() {
  return Polyline({{40.0, -100.0}, {40.0, -99.0}, {40.5, -98.0}, {41.0, -97.0}});
}

TEST(Polyline, RequiresTwoPoints) {
  EXPECT_THROW(Polyline(std::vector<GeoPoint>{}), std::logic_error);
  EXPECT_THROW(Polyline(std::vector<GeoPoint>{{40.0, -100.0}}), std::logic_error);
  EXPECT_NO_THROW(Polyline::straight({40.0, -100.0}, {41.0, -100.0}));
}

TEST(Polyline, LengthMatchesSegmentSum) {
  const auto line = sample_line();
  double expected = 0.0;
  const auto& pts = line.points();
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    expected += distance_km(pts[i], pts[i + 1]);
  }
  EXPECT_NEAR(line.length_km(), expected, 1e-9);
}

TEST(Polyline, StraightLineLength) {
  const GeoPoint a{40.0, -100.0};
  const GeoPoint b{41.0, -100.0};
  EXPECT_NEAR(Polyline::straight(a, b).length_km(), distance_km(a, b), 1e-9);
}

TEST(Polyline, PointAtKmEndpoints) {
  const auto line = sample_line();
  EXPECT_EQ(line.point_at_km(0.0), line.front());
  EXPECT_EQ(line.point_at_km(line.length_km() + 10.0), line.back());
  EXPECT_EQ(line.point_at_km(-5.0), line.front());
}

TEST(Polyline, PointAtKmMonotoneAlongLine) {
  const auto line = sample_line();
  double prev = 0.0;
  for (double d = 0.0; d <= line.length_km(); d += line.length_km() / 20.0) {
    const GeoPoint p = line.point_at_km(d);
    const double from_start = distance_km(line.front(), p);
    EXPECT_GE(from_start, prev - 1.0);  // generous: line curves
    prev = from_start;
  }
}

TEST(Polyline, PointAtFraction) {
  const auto line = sample_line();
  EXPECT_EQ(line.point_at_fraction(0.0), line.front());
  EXPECT_EQ(line.point_at_fraction(1.0), line.back());
  const GeoPoint mid = line.point_at_fraction(0.5);
  // distance_to_km uses a local projection; allow its small error.
  EXPECT_NEAR(line.distance_to_km(mid), 0.0, 0.6);
}

TEST(Polyline, SampleEveryKmIncludesEndpoints) {
  const auto line = sample_line();
  const auto samples = line.sample_every_km(10.0);
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples.front(), line.front());
  EXPECT_EQ(samples.back(), line.back());
  // Expected count: floor(length/10) + 1 interior starts + final endpoint.
  const auto expected = static_cast<std::size_t>(line.length_km() / 10.0) + 2;
  EXPECT_EQ(samples.size(), expected);
}

TEST(Polyline, SampleSpacingRespected) {
  const auto line = sample_line();
  const auto samples = line.sample_every_km(25.0);
  for (std::size_t i = 0; i + 2 < samples.size(); ++i) {
    // Consecutive interior samples are ≈ 25 km apart along the line; the
    // chord is at most that.
    EXPECT_LE(distance_km(samples[i], samples[i + 1]), 25.0 + 0.5);
  }
}

TEST(Polyline, SampleRejectsNonPositiveSpacing) {
  EXPECT_THROW(sample_line().sample_every_km(0.0), std::logic_error);
}

TEST(Polyline, DistanceToOnAndOff) {
  const auto line = sample_line();
  EXPECT_NEAR(line.distance_to_km(line.points()[1]), 0.0, 1e-6);
  const GeoPoint far{45.0, -98.5};
  EXPECT_GT(line.distance_to_km(far), 400.0);
}

TEST(Polyline, ReversedPreservesLength) {
  const auto line = sample_line();
  const auto rev = line.reversed();
  EXPECT_NEAR(rev.length_km(), line.length_km(), 1e-9);
  EXPECT_EQ(rev.front(), line.back());
  EXPECT_EQ(rev.back(), line.front());
}

TEST(Polyline, JoinedWithSharedEndpoint) {
  const Polyline first({{40.0, -100.0}, {40.0, -99.0}});
  const Polyline second({{40.0, -99.0}, {40.0, -98.0}});
  const auto joined = first.joined_with(second);
  EXPECT_EQ(joined.size(), 3u);
  EXPECT_NEAR(joined.length_km(), first.length_km() + second.length_km(), 1e-9);
}

TEST(Polyline, JoinedRejectsGap) {
  const Polyline first({{40.0, -100.0}, {40.0, -99.0}});
  const Polyline gapped({{42.0, -99.0}, {42.0, -98.0}});
  EXPECT_THROW(first.joined_with(gapped), std::logic_error);
}

TEST(Polyline, BoundsContainAllPoints) {
  const auto line = sample_line();
  const auto box = line.bounds();
  for (const auto& p : line.points()) {
    EXPECT_TRUE(box.contains(p));
  }
  EXPECT_FALSE(box.contains({50.0, -100.0}));
}

TEST(BoundingBox, ExpansionGrows) {
  const auto line = sample_line();
  const auto box = line.bounds();
  const auto grown = box.expanded_km(100.0);
  EXPECT_LT(grown.min_lat, box.min_lat);
  EXPECT_GT(grown.max_lat, box.max_lat);
  EXPECT_LT(grown.min_lon, box.min_lon);
  EXPECT_GT(grown.max_lon, box.max_lon);
}

TEST(BoundingBox, IntersectsSemantics) {
  const BoundingBox a{0.0, 10.0, 0.0, 10.0};
  const BoundingBox b{5.0, 15.0, 5.0, 15.0};
  const BoundingBox c{11.0, 12.0, 0.0, 10.0};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.intersects(a));
}

TEST(FractionWithinBuffer, IdenticalLinesFullyCovered) {
  const auto line = sample_line();
  EXPECT_NEAR(fraction_within_buffer(line, line, 1.0, 5.0), 1.0, 1e-9);
}

TEST(FractionWithinBuffer, DisjointLinesZero) {
  const Polyline a({{40.0, -100.0}, {40.0, -99.0}});
  const Polyline b({{30.0, -80.0}, {30.0, -79.0}});
  EXPECT_DOUBLE_EQ(fraction_within_buffer(a, b, 5.0, 5.0), 0.0);
}

TEST(FractionWithinBuffer, PartialOverlap) {
  // b covers only the western half of a.
  const Polyline a({{40.0, -100.0}, {40.0, -98.0}});
  const Polyline b({{40.0, -100.0}, {40.0, -99.0}});
  const double frac = fraction_within_buffer(a, b, 2.0, 2.0);
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.65);
}

TEST(RouteSimilarity, SymmetricAndBounded) {
  const Polyline a({{40.0, -100.0}, {40.0, -98.0}});
  const Polyline b({{40.02, -100.0}, {40.02, -98.0}});  // ~2 km north
  const double s1 = route_similarity(a, b, 5.0, 5.0);
  const double s2 = route_similarity(b, a, 5.0, 5.0);
  EXPECT_NEAR(s1, s2, 1e-9);
  EXPECT_GT(s1, 0.9);
  EXPECT_LE(s1, 1.0);
}

TEST(RouteSimilarity, FarApartShortCircuitsToZero) {
  const Polyline a({{40.0, -100.0}, {40.0, -99.0}});
  const Polyline b({{25.0, -80.0}, {25.0, -79.0}});
  EXPECT_DOUBLE_EQ(route_similarity(a, b, 5.0, 5.0), 0.0);
}

/// Property: walking a random polyline by point_at_km covers its length.
class PolylineWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolylineWalk, CumulativeWalkConsistent) {
  Rng rng(GetParam());
  std::vector<GeoPoint> pts;
  GeoPoint cur{rng.uniform(30.0, 45.0), rng.uniform(-120.0, -75.0)};
  pts.push_back(cur);
  for (int i = 0; i < 8; ++i) {
    cur = destination(cur, rng.uniform(0.0, 360.0), rng.uniform(20.0, 150.0));
    pts.push_back(cur);
  }
  const Polyline line(std::move(pts));
  // Sum of chord distances between successive point_at_km samples ≈ length.
  double walked = 0.0;
  const double step = line.length_km() / 2000.0;
  GeoPoint prev = line.front();
  for (double d = step; d <= line.length_km() + 1e-9; d += step) {
    const GeoPoint p = line.point_at_km(std::min(d, line.length_km()));
    walked += distance_km(prev, p);
    prev = p;
  }
  // Chords cut corners at sharp vertices; dense sampling keeps the error
  // small but nonzero.
  EXPECT_NEAR(walked, line.length_km(), line.length_km() * 0.012);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolylineWalk, ::testing::Values(5ULL, 23ULL, 0xabcULL, 777ULL));

}  // namespace
}  // namespace intertubes::geo
