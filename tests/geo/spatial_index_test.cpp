#include "geo/spatial_index.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace intertubes::geo {
namespace {

TEST(SegmentIndex, EmptyIndexFindsNothing) {
  SegmentIndex index;
  const auto result = index.nearest({40.0, -100.0}, 100.0);
  EXPECT_TRUE(std::isinf(result.distance_km));
  EXPECT_FALSE(index.anything_within({40.0, -100.0}, 1000.0));
  EXPECT_TRUE(index.owners_within({40.0, -100.0}, 1000.0).empty());
}

TEST(SegmentIndex, FindsRegisteredSegment) {
  SegmentIndex index;
  index.add_polyline(Polyline({{40.0, -100.0}, {40.0, -99.0}}), 7);
  const auto result = index.nearest({40.05, -99.5}, 50.0);
  EXPECT_LT(result.distance_km, 10.0);
  EXPECT_EQ(result.owner_id, 7u);
}

TEST(SegmentIndex, RespectsMaxRadius) {
  SegmentIndex index;
  index.add_polyline(Polyline({{40.0, -100.0}, {40.0, -99.0}}), 1);
  // Point ~111 km north; search radius 50 km must come back empty.
  const auto result = index.nearest({41.0, -99.5}, 50.0);
  EXPECT_TRUE(std::isinf(result.distance_km));
  EXPECT_TRUE(index.anything_within({41.0, -99.5}, 150.0));
}

TEST(SegmentIndex, SegmentCountAccumulates) {
  SegmentIndex index;
  index.add_polyline(Polyline({{40.0, -100.0}, {40.0, -99.0}, {40.0, -98.0}}), 0);
  index.add_polyline(Polyline({{41.0, -100.0}, {41.0, -99.0}}), 1);
  EXPECT_EQ(index.segment_count(), 3u);
}

TEST(SegmentIndex, OwnersWithinDeduplicates) {
  SegmentIndex index;
  // Two polylines of the same owner, one of another, all near the query.
  index.add_polyline(Polyline({{40.0, -100.0}, {40.0, -99.0}}), 5);
  index.add_polyline(Polyline({{40.01, -100.0}, {40.01, -99.0}}), 5);
  index.add_polyline(Polyline({{40.02, -100.0}, {40.02, -99.0}}), 9);
  const auto owners = index.owners_within({40.01, -99.5}, 20.0);
  EXPECT_EQ(owners, (std::vector<std::uint32_t>{5, 9}));
}

TEST(SegmentIndex, LongSegmentIndexedAcrossCells) {
  SegmentIndex index(50.0);
  // A 10° (~850 km) segment spans many 50 km cells; queries near its
  // middle must still hit it.
  index.add_polyline(Polyline({{40.0, -105.0}, {40.0, -95.0}}), 3);
  const auto result = index.nearest({40.2, -100.0}, 60.0);
  EXPECT_EQ(result.owner_id, 3u);
  EXPECT_NEAR(result.distance_km, 22.2, 3.0);
}

TEST(SegmentIndex, RejectsBadCellSize) {
  EXPECT_THROW(SegmentIndex(0.0), std::logic_error);
  EXPECT_THROW(SegmentIndex(-1.0), std::logic_error);
}

/// Property: the index's nearest() agrees with brute force over the
/// registered polylines.
class IndexVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexVsBruteForce, NearestMatches) {
  Rng rng(GetParam());
  SegmentIndex index(40.0);
  std::vector<Polyline> lines;
  for (int i = 0; i < 12; ++i) {
    const GeoPoint a{rng.uniform(32.0, 45.0), rng.uniform(-115.0, -80.0)};
    const GeoPoint b = destination(a, rng.uniform(0.0, 360.0), rng.uniform(30.0, 300.0));
    lines.push_back(Polyline::straight(a, b));
    index.add_polyline(lines.back(), static_cast<std::uint32_t>(i));
  }
  for (int q = 0; q < 60; ++q) {
    const GeoPoint p{rng.uniform(32.0, 45.0), rng.uniform(-115.0, -80.0)};
    double brute = std::numeric_limits<double>::infinity();
    for (const auto& line : lines) brute = std::min(brute, line.distance_to_km(p));
    const auto result = index.nearest(p, 2000.0);
    if (std::isinf(result.distance_km)) {
      EXPECT_GT(brute, 2000.0);
    } else {
      EXPECT_NEAR(result.distance_km, brute, 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexVsBruteForce,
                         ::testing::Values(11ULL, 29ULL, 0x5eedULL, 4242ULL));

}  // namespace
}  // namespace intertubes::geo
