#include "geo/spatial_index.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace intertubes::geo {
namespace {

TEST(SegmentIndex, EmptyIndexFindsNothing) {
  SegmentIndex index;
  const auto result = index.nearest({40.0, -100.0}, 100.0);
  EXPECT_TRUE(std::isinf(result.distance_km));
  EXPECT_FALSE(index.anything_within({40.0, -100.0}, 1000.0));
  EXPECT_TRUE(index.owners_within({40.0, -100.0}, 1000.0).empty());
}

TEST(SegmentIndex, FindsRegisteredSegment) {
  SegmentIndex index;
  index.add_polyline(Polyline({{40.0, -100.0}, {40.0, -99.0}}), 7);
  const auto result = index.nearest({40.05, -99.5}, 50.0);
  EXPECT_LT(result.distance_km, 10.0);
  EXPECT_EQ(result.owner_id, 7u);
}

TEST(SegmentIndex, RespectsMaxRadius) {
  SegmentIndex index;
  index.add_polyline(Polyline({{40.0, -100.0}, {40.0, -99.0}}), 1);
  // Point ~111 km north; search radius 50 km must come back empty.
  const auto result = index.nearest({41.0, -99.5}, 50.0);
  EXPECT_TRUE(std::isinf(result.distance_km));
  EXPECT_TRUE(index.anything_within({41.0, -99.5}, 150.0));
}

TEST(SegmentIndex, SegmentCountAccumulates) {
  SegmentIndex index;
  index.add_polyline(Polyline({{40.0, -100.0}, {40.0, -99.0}, {40.0, -98.0}}), 0);
  index.add_polyline(Polyline({{41.0, -100.0}, {41.0, -99.0}}), 1);
  EXPECT_EQ(index.segment_count(), 3u);
}

TEST(SegmentIndex, OwnersWithinDeduplicates) {
  SegmentIndex index;
  // Two polylines of the same owner, one of another, all near the query.
  index.add_polyline(Polyline({{40.0, -100.0}, {40.0, -99.0}}), 5);
  index.add_polyline(Polyline({{40.01, -100.0}, {40.01, -99.0}}), 5);
  index.add_polyline(Polyline({{40.02, -100.0}, {40.02, -99.0}}), 9);
  const auto owners = index.owners_within({40.01, -99.5}, 20.0);
  EXPECT_EQ(owners, (std::vector<std::uint32_t>{5, 9}));
}

TEST(SegmentIndex, LongSegmentIndexedAcrossCells) {
  SegmentIndex index(50.0);
  // A 10° (~850 km) segment spans many 50 km cells; queries near its
  // middle must still hit it.
  index.add_polyline(Polyline({{40.0, -105.0}, {40.0, -95.0}}), 3);
  const auto result = index.nearest({40.2, -100.0}, 60.0);
  EXPECT_EQ(result.owner_id, 3u);
  EXPECT_NEAR(result.distance_km, 22.2, 3.0);
}

TEST(SegmentIndex, RejectsBadCellSize) {
  EXPECT_THROW(SegmentIndex(0.0), std::logic_error);
  EXPECT_THROW(SegmentIndex(-1.0), std::logic_error);
}

// The documented const-query thread-safety contract: after building, any
// number of threads may query concurrently.  Each thread checks its
// answers against a single-threaded baseline computed up front; run under
// TSAN this certifies the absence of hidden mutable state.
TEST(SegmentIndex, ConcurrentConstQueriesAreSafeAndConsistent) {
  Rng rng(0x9e3779b9ULL);
  SegmentIndex index(40.0);
  for (int i = 0; i < 24; ++i) {
    const GeoPoint a{rng.uniform(32.0, 45.0), rng.uniform(-115.0, -80.0)};
    const GeoPoint b = destination(a, rng.uniform(0.0, 360.0), rng.uniform(30.0, 300.0));
    index.add_polyline(Polyline::straight(a, b), static_cast<std::uint32_t>(i));
  }
  std::vector<GeoPoint> queries;
  std::vector<SegmentIndex::NearestResult> baseline;
  for (int q = 0; q < 50; ++q) {
    queries.push_back({rng.uniform(32.0, 45.0), rng.uniform(-115.0, -80.0)});
    baseline.push_back(index.nearest(queries.back(), 1500.0));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 20; ++rep) {
        for (std::size_t q = 0; q < queries.size(); ++q) {
          const auto result = index.nearest(queries[q], 1500.0);
          EXPECT_EQ(result.owner_id, baseline[q].owner_id);
          EXPECT_EQ(result.distance_km, baseline[q].distance_km);
          EXPECT_EQ(index.anything_within(queries[q], 1500.0),
                    !std::isinf(baseline[q].distance_km));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

/// Property: the index's nearest() agrees with brute force over the
/// registered polylines.
class IndexVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexVsBruteForce, NearestMatches) {
  Rng rng(GetParam());
  SegmentIndex index(40.0);
  std::vector<Polyline> lines;
  for (int i = 0; i < 12; ++i) {
    const GeoPoint a{rng.uniform(32.0, 45.0), rng.uniform(-115.0, -80.0)};
    const GeoPoint b = destination(a, rng.uniform(0.0, 360.0), rng.uniform(30.0, 300.0));
    lines.push_back(Polyline::straight(a, b));
    index.add_polyline(lines.back(), static_cast<std::uint32_t>(i));
  }
  for (int q = 0; q < 60; ++q) {
    const GeoPoint p{rng.uniform(32.0, 45.0), rng.uniform(-115.0, -80.0)};
    double brute = std::numeric_limits<double>::infinity();
    for (const auto& line : lines) brute = std::min(brute, line.distance_to_km(p));
    const auto result = index.nearest(p, 2000.0);
    if (std::isinf(result.distance_km)) {
      EXPECT_GT(brute, 2000.0);
    } else {
      EXPECT_NEAR(result.distance_km, brute, 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexVsBruteForce,
                         ::testing::Values(11ULL, 29ULL, 0x5eedULL, 4242ULL));

}  // namespace
}  // namespace intertubes::geo
