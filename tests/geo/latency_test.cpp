#include "geo/latency.hpp"

#include <gtest/gtest.h>

#include "geo/geo_point.hpp"

namespace intertubes::geo {
namespace {

TEST(FiberLatency, SpeedConstant) {
  // Light in fiber ≈ 204 km/ms.
  EXPECT_NEAR(kFiberKmPerMs, 204.2, 0.5);
}

TEST(FiberLatency, KnownDistances) {
  // The paper's correspondences: ~20 km ≈ 100 µs, ~100 km ≈ 500 µs,
  // ~400 km ≈ 2 ms.
  EXPECT_NEAR(fiber_delay_ms(20.0), 0.1, 0.005);
  EXPECT_NEAR(fiber_delay_ms(100.0), 0.5, 0.02);
  EXPECT_NEAR(fiber_delay_ms(400.0), 2.0, 0.05);
}

TEST(FiberLatency, RoundTrip) {
  for (double km : {1.0, 50.0, 1234.5}) {
    EXPECT_NEAR(fiber_km_for_ms(fiber_delay_ms(km)), km, 1e-9);
  }
}

TEST(FiberLatency, ZeroAndLinearity) {
  EXPECT_DOUBLE_EQ(fiber_delay_ms(0.0), 0.0);
  EXPECT_NEAR(fiber_delay_ms(200.0), 2.0 * fiber_delay_ms(100.0), 1e-12);
}

TEST(LosDelay, MatchesFiberDelayOfGreatCircle) {
  const GeoPoint a{40.71, -74.01};  // NYC
  const GeoPoint b{41.88, -87.63};  // Chicago
  const double km = distance_km(a, b);
  EXPECT_DOUBLE_EQ(los_delay_ms(km), fiber_delay_ms(km));
  // NYC–Chicago one-way LOS ≈ 5.6 ms.
  EXPECT_NEAR(los_delay_ms(km), 5.6, 0.2);
}

}  // namespace
}  // namespace intertubes::geo
