#include "geo/geo_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace intertubes::geo {
namespace {

// Reference city coordinates for known-distance checks.
const GeoPoint kNewYork{40.71, -74.01};
const GeoPoint kLosAngeles{34.05, -118.24};
const GeoPoint kChicago{41.88, -87.63};
const GeoPoint kDenver{39.74, -104.99};

TEST(DistanceKm, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(distance_km(kChicago, kChicago), 0.0);
}

TEST(DistanceKm, KnownCityPairs) {
  // Great-circle NYC–LA ≈ 3940 km; NYC–Chicago ≈ 1145 km.
  EXPECT_NEAR(distance_km(kNewYork, kLosAngeles), 3940.0, 40.0);
  EXPECT_NEAR(distance_km(kNewYork, kChicago), 1145.0, 20.0);
}

TEST(DistanceKm, Symmetry) {
  EXPECT_DOUBLE_EQ(distance_km(kNewYork, kDenver), distance_km(kDenver, kNewYork));
}

TEST(DistanceKm, TriangleInequality) {
  const double direct = distance_km(kNewYork, kLosAngeles);
  const double via = distance_km(kNewYork, kDenver) + distance_km(kDenver, kLosAngeles);
  EXPECT_LE(direct, via + 1e-9);
}

TEST(InitialBearing, CardinalDirections) {
  const GeoPoint origin{40.0, -100.0};
  EXPECT_NEAR(initial_bearing_deg(origin, {41.0, -100.0}), 0.0, 0.5);    // north
  EXPECT_NEAR(initial_bearing_deg(origin, {39.0, -100.0}), 180.0, 0.5);  // south
  EXPECT_NEAR(initial_bearing_deg(origin, {40.0, -99.0}), 90.0, 1.0);    // east
  EXPECT_NEAR(initial_bearing_deg(origin, {40.0, -101.0}), 270.0, 1.0);  // west
}

TEST(Destination, RoundTripDistance) {
  const GeoPoint start{39.0, -95.0};
  const GeoPoint end = destination(start, 73.0, 500.0);
  EXPECT_NEAR(distance_km(start, end), 500.0, 0.5);
}

TEST(Destination, ZeroDistanceIsIdentity) {
  const GeoPoint p{33.0, -112.0};
  const GeoPoint q = destination(p, 123.0, 0.0);
  EXPECT_NEAR(q.lat_deg, p.lat_deg, 1e-9);
  EXPECT_NEAR(q.lon_deg, p.lon_deg, 1e-9);
}

TEST(Destination, LongitudeNormalized) {
  const GeoPoint near_dateline{40.0, 179.5};
  const GeoPoint q = destination(near_dateline, 90.0, 200.0);
  EXPECT_LE(q.lon_deg, 180.0);
  EXPECT_GE(q.lon_deg, -180.0);
}

TEST(Interpolate, EndpointsExact) {
  const GeoPoint a = kNewYork;
  const GeoPoint b = kDenver;
  EXPECT_EQ(interpolate(a, b, 0.0), a);
  EXPECT_EQ(interpolate(a, b, 1.0), b);
  EXPECT_EQ(interpolate(a, b, -0.5), a);
  EXPECT_EQ(interpolate(a, b, 1.5), b);
}

TEST(Interpolate, MidpointEquidistant) {
  const GeoPoint mid = interpolate(kNewYork, kLosAngeles, 0.5);
  EXPECT_NEAR(distance_km(kNewYork, mid), distance_km(mid, kLosAngeles), 0.5);
}

TEST(Interpolate, ProportionalArc) {
  const double total = distance_km(kNewYork, kLosAngeles);
  const GeoPoint quarter = interpolate(kNewYork, kLosAngeles, 0.25);
  EXPECT_NEAR(distance_km(kNewYork, quarter), total / 4.0, 1.0);
}

TEST(Interpolate, DegenerateSegment) {
  const GeoPoint p{40.0, -100.0};
  const GeoPoint q = interpolate(p, p, 0.5);
  EXPECT_NEAR(q.lat_deg, p.lat_deg, 1e-9);
  EXPECT_NEAR(q.lon_deg, p.lon_deg, 1e-9);
}

TEST(Midpoint, MatchesHalfInterpolation) {
  const GeoPoint m1 = midpoint(kChicago, kDenver);
  const GeoPoint m2 = interpolate(kChicago, kDenver, 0.5);
  EXPECT_NEAR(m1.lat_deg, m2.lat_deg, 1e-12);
  EXPECT_NEAR(m1.lon_deg, m2.lon_deg, 1e-12);
}

TEST(PointToSegment, PointOnSegmentIsZero) {
  const GeoPoint a{40.0, -100.0};
  const GeoPoint b{40.0, -98.0};
  const GeoPoint on = interpolate(a, b, 0.5);
  EXPECT_NEAR(point_to_segment_km(on, a, b), 0.0, 0.5);
}

TEST(PointToSegment, PerpendicularOffset) {
  const GeoPoint a{40.0, -100.0};
  const GeoPoint b{40.0, -98.0};
  // A point ~55 km north of the segment's midpoint (0.5° latitude).
  const GeoPoint p{40.5, -99.0};
  EXPECT_NEAR(point_to_segment_km(p, a, b), 55.6, 2.0);
}

TEST(PointToSegment, BeyondEndpointClamps) {
  const GeoPoint a{40.0, -100.0};
  const GeoPoint b{40.0, -99.0};
  const GeoPoint p{40.0, -103.0};  // west of a
  EXPECT_NEAR(point_to_segment_km(p, a, b), distance_km(p, a), 3.0);
}

TEST(PointToSegment, DegenerateSegmentIsPointDistance) {
  const GeoPoint a{40.0, -100.0};
  const GeoPoint p{41.0, -100.0};
  EXPECT_NEAR(point_to_segment_km(p, a, a), distance_km(p, a), 1.0);
}

TEST(ToString, Format) {
  EXPECT_EQ(to_string(GeoPoint{41.884, -87.632}), "(41.8840, -87.6320)");
}

TEST(DegRadConversions, RoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(123.456)), 123.456, 1e-12);
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
}

/// Property sweep: destination/distance round trips across random points.
class GeoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeoRoundTrip, DestinationDistanceConsistency) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const GeoPoint start{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
    const double bearing = rng.uniform(0.0, 360.0);
    const double dist = rng.uniform(1.0, 2000.0);
    const GeoPoint end = destination(start, bearing, dist);
    EXPECT_NEAR(distance_km(start, end), dist, dist * 0.001 + 0.01);
  }
}

TEST_P(GeoRoundTrip, InterpolationStaysBetween) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const GeoPoint a{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
    const GeoPoint b{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
    const double total = distance_km(a, b);
    const double t = rng.next_double();
    const GeoPoint m = interpolate(a, b, t);
    EXPECT_LE(distance_km(a, m), total + 0.01);
    EXPECT_LE(distance_km(m, b), total + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoRoundTrip, ::testing::Values(3ULL, 17ULL, 0x1257ULL));

}  // namespace
}  // namespace intertubes::geo
