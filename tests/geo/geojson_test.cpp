#include "geo/geojson.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace intertubes::geo {
namespace {

TEST(JsonEscape, SpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(GeoJsonWriter, EmptyCollection) {
  GeoJsonWriter writer;
  EXPECT_EQ(writer.to_string(), "{\"type\":\"FeatureCollection\",\"features\":[]}");
  EXPECT_EQ(writer.feature_count(), 0u);
}

TEST(GeoJsonWriter, PointFeature) {
  GeoJsonWriter writer;
  writer.add_point({41.88, -87.63}, {GeoProperty::str("name", "Chicago, IL"),
                                     GeoProperty::num("population", 2700000)});
  const auto json = writer.to_string();
  EXPECT_TRUE(contains(json, "\"type\":\"Point\""));
  // GeoJSON is lon,lat order.
  EXPECT_TRUE(contains(json, "[-87.630000,41.880000]"));
  EXPECT_TRUE(contains(json, "\"name\":\"Chicago, IL\""));
  EXPECT_TRUE(contains(json, "\"population\":2.7e+06"));
}

TEST(GeoJsonWriter, LineStringFeature) {
  GeoJsonWriter writer;
  writer.add_linestring(Polyline({{40.0, -100.0}, {41.0, -99.0}}),
                        {GeoProperty::num("tenants", 7)});
  const auto json = writer.to_string();
  EXPECT_TRUE(contains(json, "\"type\":\"LineString\""));
  EXPECT_TRUE(contains(json, "[-100.000000,40.000000],[-99.000000,41.000000]"));
  EXPECT_TRUE(contains(json, "\"tenants\":7"));
}

TEST(GeoJsonWriter, MultipleFeaturesCommaSeparated) {
  GeoJsonWriter writer;
  writer.add_point({40.0, -100.0});
  writer.add_point({41.0, -101.0});
  const auto json = writer.to_string();
  EXPECT_EQ(writer.feature_count(), 2u);
  EXPECT_TRUE(contains(json, "}},{\"type\":\"Feature\""));
}

TEST(GeoJsonWriter, PropertiesEscaped) {
  GeoJsonWriter writer;
  writer.add_point({40.0, -100.0}, {GeoProperty::str("note", "say \"tube\"")});
  EXPECT_TRUE(contains(writer.to_string(), "\\\"tube\\\""));
}

TEST(GeoJsonWriter, BalancedBracesAndBrackets) {
  GeoJsonWriter writer;
  writer.add_linestring(Polyline({{40.0, -100.0}, {41.0, -99.0}, {42.0, -98.0}}),
                        {GeoProperty::str("a", "b"), GeoProperty::num("c", 1.0)});
  writer.add_point({40.0, -100.0});
  const auto json = writer.to_string();
  std::ptrdiff_t braces = 0;
  std::ptrdiff_t brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace intertubes::geo
