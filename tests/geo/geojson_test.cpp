#include "geo/geojson.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace intertubes::geo {
namespace {

TEST(JsonEscape, SpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(GeoJsonWriter, EmptyCollection) {
  GeoJsonWriter writer;
  EXPECT_EQ(writer.to_string(), "{\"type\":\"FeatureCollection\",\"features\":[]}");
  EXPECT_EQ(writer.feature_count(), 0u);
}

TEST(GeoJsonWriter, PointFeature) {
  GeoJsonWriter writer;
  writer.add_point({41.88, -87.63}, {GeoProperty::str("name", "Chicago, IL"),
                                     GeoProperty::num("population", 2700000)});
  const auto json = writer.to_string();
  EXPECT_TRUE(contains(json, "\"type\":\"Point\""));
  // GeoJSON is lon,lat order.
  EXPECT_TRUE(contains(json, "[-87.630000,41.880000]"));
  EXPECT_TRUE(contains(json, "\"name\":\"Chicago, IL\""));
  EXPECT_TRUE(contains(json, "\"population\":2.7e+06"));
}

TEST(GeoJsonWriter, LineStringFeature) {
  GeoJsonWriter writer;
  writer.add_linestring(Polyline({{40.0, -100.0}, {41.0, -99.0}}),
                        {GeoProperty::num("tenants", 7)});
  const auto json = writer.to_string();
  EXPECT_TRUE(contains(json, "\"type\":\"LineString\""));
  EXPECT_TRUE(contains(json, "[-100.000000,40.000000],[-99.000000,41.000000]"));
  EXPECT_TRUE(contains(json, "\"tenants\":7"));
}

TEST(GeoJsonWriter, MultipleFeaturesCommaSeparated) {
  GeoJsonWriter writer;
  writer.add_point({40.0, -100.0});
  writer.add_point({41.0, -101.0});
  const auto json = writer.to_string();
  EXPECT_EQ(writer.feature_count(), 2u);
  EXPECT_TRUE(contains(json, "}},{\"type\":\"Feature\""));
}

TEST(GeoJsonWriter, PropertiesEscaped) {
  GeoJsonWriter writer;
  writer.add_point({40.0, -100.0}, {GeoProperty::str("note", "say \"tube\"")});
  EXPECT_TRUE(contains(writer.to_string(), "\\\"tube\\\""));
}

TEST(GeoJsonWriter, BalancedBracesAndBrackets) {
  GeoJsonWriter writer;
  writer.add_linestring(Polyline({{40.0, -100.0}, {41.0, -99.0}, {42.0, -98.0}}),
                        {GeoProperty::str("a", "b"), GeoProperty::num("c", 1.0)});
  writer.add_point({40.0, -100.0});
  const auto json = writer.to_string();
  std::ptrdiff_t braces = 0;
  std::ptrdiff_t brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(GeoJsonReader, RoundTripsWriterOutput) {
  GeoJsonWriter writer;
  writer.add_point({41.88, -87.63}, {GeoProperty::str("name", "Chicago, IL"),
                                     GeoProperty::num("population", 2700000)});
  writer.add_linestring(Polyline({{40.0, -100.0}, {41.0, -99.0}, {42.0, -98.0}}),
                        {GeoProperty::str("mode", "rail")});
  DiagnosticSink sink(ParsePolicy::Strict);
  const auto features = parse_geojson(writer.to_string(), sink, "roundtrip");
  EXPECT_TRUE(sink.ok());
  ASSERT_EQ(features.size(), 2u);
  EXPECT_EQ(features[0].kind, GeoFeature::Kind::Point);
  ASSERT_EQ(features[0].points.size(), 1u);
  EXPECT_NEAR(features[0].points[0].lat_deg, 41.88, 1e-6);
  EXPECT_NEAR(features[0].points[0].lon_deg, -87.63, 1e-6);
  ASSERT_EQ(features[0].properties.size(), 2u);
  EXPECT_EQ(features[0].properties[0].key, "name");
  EXPECT_EQ(features[0].properties[0].string_value, "Chicago, IL");
  EXPECT_TRUE(features[0].properties[1].is_number);
  EXPECT_NEAR(features[0].properties[1].number_value, 2700000.0, 1e-3);
  EXPECT_EQ(features[1].kind, GeoFeature::Kind::LineString);
  ASSERT_EQ(features[1].points.size(), 3u);
  EXPECT_NEAR(features[1].points[2].lon_deg, -98.0, 1e-6);
}

TEST(GeoJsonReader, ReportsLineNumbersOfDefects) {
  const std::string text =
      "{\"type\": \"FeatureCollection\",\n"
      " \"features\": [\n"
      "  {\"type\": \"Feature\",\n"
      "   \"geometry\": {\"type\": \"Polygon\", \"coordinates\": []},\n"
      "   \"properties\": {}}\n"
      "]}";
  DiagnosticSink sink(ParsePolicy::Lenient);
  const auto features = parse_geojson(text, sink, "bad.geojson");
  EXPECT_TRUE(features.empty());
  ASSERT_EQ(sink.error_count(), 1u);
  const auto d = sink.diagnostics().front();
  EXPECT_EQ(d.line, 3u);  // the feature object starts on line 3
  EXPECT_TRUE(contains(d.message, "Polygon")) << d.message;
}

}  // namespace
}  // namespace intertubes::geo
