#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace intertubes::sim {
namespace {

TEST(SimExecutor, NumThreads) {
  EXPECT_EQ(Executor(1).num_threads(), 1u);
  EXPECT_EQ(Executor(4).num_threads(), 4u);
  EXPECT_GE(Executor(0).num_threads(), 1u);  // hardware default
}

TEST(SimExecutor, EmptyRangeNeverInvokesBody) {
  Executor executor(4);
  std::atomic<int> calls{0};
  executor.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  executor.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  const auto empty = executor.parallel_map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(empty.empty());
}

TEST(SimExecutor, ParallelForCoversEveryIndexExactlyOnce) {
  Executor executor(4);
  std::vector<std::atomic<int>> hits(257);
  executor.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SimExecutor, ChunkSizingPartitionsTheRange) {
  Executor executor(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  executor.for_each_chunk(10, 60, 7, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 8u);  // ceil(50 / 7)
  std::size_t expect_begin = 10;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_EQ((b - 10) % 7, 0u);  // aligned to the chunk grid
    EXPECT_LE(e - b, 7u);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 60u);
}

TEST(SimExecutor, ResolveChunkDefaultsDependOnlyOnRange) {
  EXPECT_EQ(Executor::resolve_chunk(100, 7), 7u);  // explicit chunk wins
  EXPECT_GE(Executor::resolve_chunk(0, 0), 1u);
  EXPECT_GE(Executor::resolve_chunk(1, 0), 1u);
  // Default chunking is a pure function of the range size.
  EXPECT_EQ(Executor::resolve_chunk(1000, 0), Executor::resolve_chunk(1000, 0));
}

TEST(SimExecutor, MapIsBitIdenticalAcrossThreadCounts) {
  auto compute = [](std::size_t threads) {
    Executor executor(threads);
    return executor.parallel_map<std::uint64_t>(
        500, [](std::size_t i) { return substream_rng(0x1257, i).next_u64(); });
  };
  const auto serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(8));
}

TEST(SimExecutor, ReduceIsIdenticalAcrossThreadCounts) {
  auto total = [](std::size_t threads, std::size_t chunk) {
    Executor executor(threads);
    return executor.parallel_reduce<double>(
        1000, 0.0, [](std::size_t i) { return 1.0 / static_cast<double>(i + 1); },
        [](double a, double b) { return a + b; }, chunk);
  };
  const double serial = total(1, 16);
  EXPECT_EQ(serial, total(2, 16));
  EXPECT_EQ(serial, total(8, 16));
  EXPECT_NEAR(serial, total(1, 0), 1e-9);  // default chunking, same value ± association
}

TEST(SimExecutor, ExceptionsPropagateAndPoolSurvives) {
  Executor executor(4);
  EXPECT_THROW(
      executor.parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
  // The pool is still usable after a failed region.
  std::atomic<int> ok{0};
  executor.parallel_for(0, 10, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(SimExecutor, NestedParallelismCompletes) {
  Executor executor(4);
  std::atomic<int> total{0};
  executor.parallel_for(0, 8, [&](std::size_t) {
    executor.parallel_for(0, 8, [&](std::size_t) { ++total; }, 1);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(SimExecutor, PostRunsTasksAsynchronously) {
  Executor executor(4);
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 64; ++i) {
    executor.post([&] {
      if (ran.fetch_add(1) + 1 == 64) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ran.load() == 64; });
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(executor.queued_tasks(), 0u);
}

TEST(SimExecutor, PostOnSerialExecutorRunsInline) {
  Executor executor(1);  // no worker threads
  int ran = 0;
  executor.post([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // executed synchronously, not queued
  EXPECT_EQ(executor.queued_tasks(), 0u);
}

TEST(SimExecutor, PostedTasksCoexistWithParallelRegions) {
  Executor executor(4);
  std::atomic<int> posted{0};
  std::atomic<int> region{0};
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 16; ++i) executor.post([&] { ++posted; });
    executor.parallel_for(0, 100, [&](std::size_t) { ++region; });
  }
  // parallel_for is a barrier for region work but not for posted tasks;
  // drain by destroying a scoped pool instead.
  while (posted.load() < 8 * 16) std::this_thread::yield();
  EXPECT_EQ(region.load(), 800);
  EXPECT_EQ(posted.load(), 128);
}

TEST(SimExecutor, DestructionDrainsPostedTasks) {
  std::atomic<int> ran{0};
  {
    Executor executor(3);
    for (int i = 0; i < 200; ++i) executor.post([&] { ++ran; });
  }
  // ~Executor must not drop queued tasks on the floor.
  EXPECT_EQ(ran.load(), 200);
}

TEST(SimExecutor, DefaultExecutorWorks) {
  const auto squares =
      default_executor().parallel_map<std::size_t>(32, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 32u);
  EXPECT_EQ(squares[7], 49u);
}

TEST(SimExecutor, CoreAffinityPinsWorkersWhenTheOsAllows) {
  // pin_current_thread is advisory: it fails under restricted cpusets and
  // on non-Linux.  Probe from the test thread first — only when the OS
  // grants affinity here do we require the workers to have pinned too
  // (they run the same call).  Probing mutates this thread's mask, which
  // is harmless: gtest runs tests sequentially on one thread whose mask
  // no other test inspects.
  const bool pinnable = Executor::pin_current_thread(0);

  Executor executor(ExecutorOptions{.num_threads = 3, .pin_first_core = 0});
  // Two dedicated workers (the caller is counted as the third thread).
  ASSERT_EQ(executor.num_threads(), 3u);
  // Run real work so both workers have certainly started their loops
  // (pinning happens at loop entry, before the first task).
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) executor.post([&] { ++ran; });
  while (ran.load() < 64) std::this_thread::yield();

  if (pinnable) {
    // One eager worker may have drained the whole queue before the other
    // was ever scheduled; give the laggard a moment to enter its loop.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (executor.pinned_workers() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_EQ(executor.pinned_workers(), 2u);
  }
  EXPECT_LE(executor.pinned_workers(), 2u);
}

TEST(SimExecutor, AffinityIsOffByDefaultAndHarmlessWhenOn) {
  Executor plain(3);
  EXPECT_EQ(plain.pinned_workers(), 0u);

  // A pin base beyond the machine's core count wraps modulo the hardware
  // concurrency rather than failing construction — results stay correct.
  Executor wrapped(ExecutorOptions{.num_threads = 3, .pin_first_core = 1 << 20});
  const auto squares =
      wrapped.parallel_map<std::size_t>(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 64u);
  EXPECT_EQ(squares[9], 81u);
}

}  // namespace
}  // namespace intertubes::sim
