#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include "risk/cuts.hpp"
#include "sim/report.hpp"
#include "test_support.hpp"

namespace intertubes::sim {
namespace {

// The canonical 5-city barbell fixture (path 0-1-2 plus cycle 2-3-4-2)
// lives in prop/generators — the shared source for test-world builders.
using prop::barbell_map;

core::FiberMap barbell() { return barbell_map(); }

TEST(SimCampaign, BaselineStepIsIntact) {
  const auto map = barbell();
  const CampaignEngine engine(map);
  CampaignConfig config;
  config.stressor = Stressor::random_cuts(3);
  config.trials = 4;
  Executor executor(1);
  const auto report = engine.run(config, executor);
  ASSERT_EQ(report.connectivity.points.size(), 4u);
  EXPECT_DOUBLE_EQ(report.connectivity.points[0].mean, 1.0);
  EXPECT_DOUBLE_EQ(report.conduits_down.points[0].mean, 0.0);
  EXPECT_DOUBLE_EQ(report.links_hit.points[0].mean, 0.0);
  EXPECT_DOUBLE_EQ(report.components.points[0].mean, 1.0);
}

TEST(SimCampaign, AllConduitsCutMeansIsolation) {
  const auto map = barbell();
  const CampaignEngine engine(map);
  CampaignConfig config;
  config.stressor = Stressor::random_cuts(500);  // clamped to the conduit count
  config.trials = 3;
  Executor executor(2);
  const auto report = engine.run(config, executor);
  EXPECT_EQ(report.steps, map.conduits().size());
  EXPECT_DOUBLE_EQ(report.connectivity.points.back().mean, 0.0);
  EXPECT_DOUBLE_EQ(report.components.points.back().mean, 5.0);
  EXPECT_DOUBLE_EQ(report.weight_lost.points.back().mean, 1.0);
  // Both ISPs eventually lose every link.
  ASSERT_EQ(report.isp_impact.size(), 2u);
}

TEST(SimCampaign, ReportIsByteIdenticalAcrossThreadCounts) {
  const auto& scenario = testing::shared_scenario();
  const CampaignEngine engine(scenario.map());
  for (const auto stressor :
       {Stressor::random_cuts(12), Stressor::targeted_cuts(12)}) {
    CampaignConfig config;
    config.stressor = stressor;
    config.trials = 10;
    config.seed = 0xfee1dead;
    Executor serial(1);
    Executor two(2);
    Executor eight(8);
    const auto r1 = engine.run(config, serial);
    const auto r2 = engine.run(config, two);
    const auto r8 = engine.run(config, eight);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(r1, r8);
    // Rendered artifacts match byte for byte as well.
    const auto& profiles = scenario.truth().profiles();
    EXPECT_EQ(render_report(r1, &profiles), render_report(r8, &profiles));
    EXPECT_EQ(report_curves_csv(r1), report_curves_csv(r8));
  }
}

TEST(SimCampaign, HazardCampaignDeterministicAcrossThreadCounts) {
  const auto& scenario = testing::shared_scenario();
  const CampaignEngine engine(scenario.map(), &core::Scenario::cities(), &scenario.row());
  CampaignConfig config;
  config.stressor = Stressor::correlated_hazards(3, 150.0);
  config.trials = 6;
  config.seed = 0x1257;
  Executor serial(1);
  Executor eight(8);
  const auto r1 = engine.run(config, serial);
  const auto r8 = engine.run(config, eight);
  EXPECT_EQ(r1, r8);
  // Disasters only degrade the map.
  for (std::size_t step = 1; step < r1.connectivity.points.size(); ++step) {
    EXPECT_LE(r1.connectivity.points[step].mean, r1.connectivity.points[step - 1].mean + 1e-12);
    EXPECT_GE(r1.links_hit.points[step].mean, r1.links_hit.points[step - 1].mean - 1e-12);
  }
}

TEST(SimCampaign, HazardWithoutGeographyThrows) {
  const auto map = barbell();
  const CampaignEngine engine(map);
  CampaignConfig config;
  config.stressor = Stressor::correlated_hazards(2, 100.0);
  config.trials = 2;
  Executor executor(2);
  EXPECT_THROW(engine.run(config, executor), std::logic_error);
}

TEST(SimCampaign, TargetedBeatsRandomEarly) {
  const auto& scenario = testing::shared_scenario();
  const CampaignEngine engine(scenario.map());
  Executor executor(2);
  CampaignConfig random;
  random.stressor = Stressor::random_cuts(8);
  random.trials = 8;
  CampaignConfig targeted;
  targeted.stressor = Stressor::targeted_cuts(8);
  targeted.trials = 1;  // deterministic stressor
  const auto r = engine.run(random, executor);
  const auto t = engine.run(targeted, executor);
  EXPECT_GT(t.links_hit.points[5].mean, 1.5 * r.links_hit.points[5].mean);
  EXPECT_GT(t.weight_lost.points[5].mean, r.weight_lost.points[5].mean);
}

TEST(SimCampaign, TrafficWeightsReorderWeightLost) {
  const auto map = barbell();
  // All probe volume on conduit 0: cutting it must dominate weight_lost.
  std::vector<std::uint64_t> probes(map.conduits().size(), 0);
  probes[0] = 1 << 20;
  const CampaignEngine engine(map, nullptr, nullptr, probes);
  CampaignConfig config;
  config.stressor = Stressor::targeted_cuts(map.conduits().size());
  config.trials = 1;
  Executor executor(1);
  const auto report = engine.run(config, executor);
  EXPECT_DOUBLE_EQ(report.weight_lost.points.back().mean, 1.0);
}

TEST(SimCampaign, MatchesLegacyFailureCurveShape) {
  // The campaign's connectivity curve and risk::failure_curve answer the
  // same question; on the deterministic targeted stressor they agree.
  const auto& map = testing::shared_scenario().map();
  const CampaignEngine engine(map);
  CampaignConfig config;
  config.stressor = Stressor::targeted_cuts(10);
  config.trials = 1;
  Executor executor(2);
  const auto report = engine.run(config, executor);
  const auto curve =
      risk::failure_curve(map, risk::FailureStrategy::MostSharedFirst, 10, 1, 0x1257);
  ASSERT_EQ(report.connectivity.points.size(), curve.size());
  for (std::size_t f = 0; f < curve.size(); ++f) {
    EXPECT_DOUBLE_EQ(report.connectivity.points[f].mean, curve[f].connected_pair_fraction);
    EXPECT_DOUBLE_EQ(report.components.points[f].mean, curve[f].components);
  }
}

}  // namespace
}  // namespace intertubes::sim
