// The +inf hardening of the report aggregators: cascade mean-stretch
// curves carry infinity sentinels ("nothing deliverable this trial"), and
// the fold must either exclude them honestly or saturate them explicitly —
// never let one poisoned trial silently flatten a mean.
#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace intertubes::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SimReport, FiniteSamplesAggregatePlainly) {
  const auto point = aggregate_samples({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(point.mean, 2.5);
  EXPECT_EQ(point.samples, 4u);
  EXPECT_LE(point.p5, point.p50);
  EXPECT_LE(point.p50, point.p95);
}

TEST(SimReport, ExcludeDropsNonFiniteAndCountsSurvivors) {
  // One finite survivor: every percentile collapses onto it, and samples
  // records that only one value entered the aggregate.
  const auto point = aggregate_samples({kInf, 7.0, -kInf});
  EXPECT_DOUBLE_EQ(point.mean, 7.0);
  EXPECT_DOUBLE_EQ(point.p5, 7.0);
  EXPECT_DOUBLE_EQ(point.p50, 7.0);
  EXPECT_DOUBLE_EQ(point.p95, 7.0);
  EXPECT_EQ(point.samples, 1u);
}

TEST(SimReport, ExcludeTreatsNanAsNonFinite) {
  const auto point = aggregate_samples({std::nan(""), 2.0});
  EXPECT_DOUBLE_EQ(point.mean, 2.0);
  EXPECT_EQ(point.samples, 1u);
}

TEST(SimReport, AllExcludedStaysHonestlyInfinite) {
  // A step where no trial delivered anything must read as +inf with zero
  // samples — not as an alias of some large finite value.
  const auto point = aggregate_samples({kInf, kInf});
  EXPECT_TRUE(std::isinf(point.mean));
  EXPECT_TRUE(std::isinf(point.p50));
  EXPECT_EQ(point.samples, 0u);
}

TEST(SimReport, SaturateReplacesNonFiniteWithCap) {
  const auto point = aggregate_samples({1.0, kInf, 3.0}, InfPolicy::Saturate, 8.0);
  EXPECT_DOUBLE_EQ(point.mean, 4.0);  // (1 + 8 + 3) / 3
  EXPECT_EQ(point.samples, 3u);
  EXPECT_GT(point.p95, 3.0);
  EXPECT_LE(point.p95, 8.0);
}

TEST(SimReport, SaturateKeepsAllInfTrialsInTheDistribution) {
  const auto point = aggregate_samples({kInf}, InfPolicy::Saturate, 5.0);
  EXPECT_DOUBLE_EQ(point.mean, 5.0);
  EXPECT_DOUBLE_EQ(point.p95, 5.0);
  EXPECT_EQ(point.samples, 1u);
}

TEST(SimReport, SeriesExcludesPerStepIndependently) {
  // Step 0 is fully finite, step 1 fully poisoned: exclusion is a per-step
  // decision, so the finite step keeps every trial.
  const auto curve = aggregate_series({{1.0, kInf}, {3.0, kInf}}, "stretch");
  EXPECT_EQ(curve.name, "stretch");
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.points[0].mean, 2.0);
  EXPECT_EQ(curve.points[0].samples, 2u);
  EXPECT_TRUE(std::isinf(curve.points[1].mean));
  EXPECT_EQ(curve.points[1].samples, 0u);
}

TEST(SimReport, SeriesLengthMismatchThrows) {
  EXPECT_THROW(aggregate_series({{1.0, 2.0}, {1.0}}, "ragged"), std::logic_error);
}

TEST(SimReport, IspImpactSkipsUndamagedAndSortsByMean) {
  // ISP 0 never loses a link and must be absent; ISPs 1 and 2 sort
  // descending by mean loss.
  const auto impact = aggregate_isp_impact({{0, 1, 5}, {0, 3, 5}}, 3);
  ASSERT_EQ(impact.size(), 2u);
  EXPECT_EQ(impact[0].isp, 2u);
  EXPECT_DOUBLE_EQ(impact[0].mean_links_lost, 5.0);
  EXPECT_DOUBLE_EQ(impact[0].max_links_lost, 5.0);
  EXPECT_EQ(impact[1].isp, 1u);
  EXPECT_DOUBLE_EQ(impact[1].mean_links_lost, 2.0);
  EXPECT_DOUBLE_EQ(impact[1].max_links_lost, 3.0);
}

}  // namespace
}  // namespace intertubes::sim
