#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace intertubes {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextInDegenerateRange) {
  Rng rng(19);
  EXPECT_EQ(rng.next_in(5, 5), 5);
  EXPECT_EQ(rng.next_in(5, 4), 5);  // hi < lo collapses to lo
}

TEST(Rng, UniformRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(29);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.3));
    EXPECT_TRUE(rng.chance(1.7));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 3.0), 3.0);
  }
}

TEST(Rng, ZipfRange) {
  Rng rng(53);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.zipf(100, 1.1), 100u);
  }
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(59);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(50, 1.2)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49] * 5);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(61);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Rng, WeightedPickRespectsZeros) {
  Rng rng(67);
  const std::vector<double> w{0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) {
    const auto pick = rng.weighted_pick(w);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Rng, WeightedPickProportional) {
  Rng rng(71);
  const std::vector<double> w{1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.weighted_pick(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Rng, WeightedPickAllZeroFallsBackToFirst) {
  Rng rng(73);
  const std::vector<double> w{0.0, 0.0};
  EXPECT_EQ(rng.weighted_pick(w), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(79);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(83);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(89);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(97);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(101);
  EXPECT_THROW(rng.sample_indices(5, 6), std::logic_error);
}

TEST(Rng, ForkDecouplesStreams) {
  Rng parent(103);
  Rng child = parent.fork();
  // Child stream should not mirror the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Mix64, DeterministicAndSpread) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(1), mix64(2));
  // Low bits should not be constant across consecutive inputs.
  std::set<std::uint64_t> lows;
  for (std::uint64_t i = 0; i < 64; ++i) lows.insert(mix64(i) & 0xff);
  EXPECT_GT(lows.size(), 32u);
}

/// Property sweep: statistical invariants hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMoments) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, BernoulliConsistency) {
  Rng rng(GetParam());
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.5) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.5, 0.025);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ULL, 2ULL, 0x1257ULL, 0xdeadbeefULL, 987654321ULL));

}  // namespace
}  // namespace intertubes
