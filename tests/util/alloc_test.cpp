#include "util/alloc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace intertubes::util {
namespace {

TEST(AllocCounting, HooksAreLinkedIntoTheTestBinary) {
  // The test binary links util/alloc_hooks.cpp precisely so the
  // ZeroAlloc* suites can assert on real counter deltas.
  EXPECT_TRUE(alloc_counting_active());
}

TEST(AllocCounting, CountersAdvanceOnHeapTraffic) {
  if (!alloc_counting_active()) GTEST_SKIP() << "alloc hooks not linked";
  ZeroAllocGuard guard;
  auto* p = new std::uint64_t(42);
  EXPECT_GE(guard.allocations(), 1u);
  EXPECT_GE(guard.bytes(), sizeof(std::uint64_t));
  delete p;
  EXPECT_GE(guard.frees(), 1u);
}

TEST(AllocCounting, GuardSeesZeroAcrossAllocationFreeWork) {
  if (!alloc_counting_active()) GTEST_SKIP() << "alloc hooks not linked";
  std::vector<std::uint64_t> buffer(1024, 1);
  ZeroAllocGuard guard;
  std::uint64_t sum = 0;
  for (const std::uint64_t v : buffer) sum += v;
  EXPECT_EQ(sum, 1024u);
  EXPECT_EQ(guard.allocations(), 0u);
  EXPECT_EQ(guard.frees(), 0u);
}

TEST(AllocCounting, CountersAreThreadLocal) {
  if (!alloc_counting_active()) GTEST_SKIP() << "alloc hooks not linked";
  ZeroAllocGuard guard;
  std::thread other([] {
    std::vector<std::uint64_t> churn(4096);
    (void)churn;
  });
  other.join();
  // The other thread's traffic must not leak into this thread's window.
  // (std::thread construction itself allocates on this thread, so assert
  // on the churn delta being absent rather than an absolute zero.)
  EXPECT_LT(guard.bytes(), 4096 * sizeof(std::uint64_t));
}

TEST(BumpArena, BumpsResetsAndTracksHighWater) {
  BumpArena arena(1024);
  void* a = arena.allocate(100);
  void* b = arena.allocate(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.used(), 200u);
  const std::size_t peak = arena.used();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.high_water(), peak);
  // After reset the same storage is handed out again.
  EXPECT_EQ(arena.allocate(100), a);
}

TEST(BumpArena, ExhaustionReturnsNullNeverHeap) {
  BumpArena arena(128);
  EXPECT_NE(arena.allocate(100), nullptr);
  EXPECT_EQ(arena.allocate(100), nullptr);  // would overflow: refused
  EXPECT_LE(arena.used(), arena.capacity());
}

TEST(BumpArena, TypedArraysAreAligned) {
  BumpArena arena(1024);
  (void)arena.allocate(1);  // misalign the cursor
  double* row = arena.allocate_array<double>(8);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(row) % alignof(double), 0u);
  for (int i = 0; i < 8; ++i) row[i] = i;
  EXPECT_EQ(row[7], 7.0);
}

TEST(FixedPool, AcquireReleaseCyclesThroughSlots) {
  FixedPool<std::vector<int>> pool(2);
  EXPECT_EQ(pool.capacity(), 2u);
  auto* first = pool.acquire();
  auto* second = pool.acquire();
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first, second);
  EXPECT_EQ(pool.acquire(), nullptr);  // exhausted, no heap fallback
  EXPECT_EQ(pool.in_use(), 2u);
  pool.release(second);
  EXPECT_EQ(pool.acquire(), second);  // LIFO reuse
}

TEST(FixedPool, SlotsRetainStateAcrossReuse) {
  FixedPool<std::vector<int>> pool(1);
  auto* slot = pool.acquire();
  slot->assign(16, 7);
  pool.release(slot);
  auto* again = pool.acquire();
  ASSERT_EQ(again, slot);
  // Reused as-is: the capacity (and here the contents) survive, which is
  // exactly why pooled scratch queries are allocation-free.
  EXPECT_EQ(again->size(), 16u);
}

TEST(LeasePool, LeasesReturnToThePool) {
  LeasePool<std::vector<int>> pool(4);
  {
    const auto lease = pool.acquire();
    lease->assign(8, 1);
    EXPECT_EQ(pool.idle(), 0u);
  }
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(pool.created(), 1u);
  const auto again = pool.acquire();
  EXPECT_EQ(pool.created(), 1u);  // reused, not re-made
  EXPECT_EQ(again->size(), 8u);
}

TEST(LeasePool, ReleaseBeyondCapDestroysInsteadOfRetaining) {
  LeasePool<std::vector<int>> pool(2);
  {
    std::vector<LeasePool<std::vector<int>>::Lease> burst;
    for (int i = 0; i < 5; ++i) burst.push_back(pool.acquire());
    EXPECT_EQ(pool.created(), 5u);
  }  // all five released at once; only cap() may be retained
  EXPECT_EQ(pool.idle(), 2u);
  EXPECT_EQ(pool.dropped(), 3u);
}

TEST(LeasePool, MovedFromLeaseReleasesNothing) {
  LeasePool<std::vector<int>> pool(4);
  auto lease = pool.acquire();
  auto moved = std::move(lease);
  EXPECT_FALSE(static_cast<bool>(lease));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_EQ(pool.idle(), 0u);
  moved = LeasePool<std::vector<int>>::Lease{};
  EXPECT_EQ(pool.idle(), 1u);
}

}  // namespace
}  // namespace intertubes::util
