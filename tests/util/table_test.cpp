#include "util/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace intertubes {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.start_row();
  t.add_cell("alpha");
  t.add_cell(42);
  const auto out = t.render();
  EXPECT_TRUE(contains(out, "name"));
  EXPECT_TRUE(contains(out, "value"));
  EXPECT_TRUE(contains(out, "alpha"));
  EXPECT_TRUE(contains(out, "42"));
  EXPECT_TRUE(contains(out, "---"));
}

TEST(TextTable, TitleIsFirstLine) {
  TextTable t({"a"});
  const auto out = t.render("My Title");
  EXPECT_TRUE(starts_with(out, "My Title\n"));
}

TEST(TextTable, ColumnAlignment) {
  TextTable t({"x", "y"});
  t.start_row();
  t.add_cell("longvalue");
  t.add_cell("1");
  t.start_row();
  t.add_cell("s");
  t.add_cell("2");
  const auto lines = split(t.render(), "\n");
  // "y" column starts at the same offset in both data rows.
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(TextTable, DoubleFormatting) {
  TextTable t({"v"});
  t.start_row();
  t.add_cell(3.14159, 2);
  EXPECT_TRUE(contains(t.render(), "3.14"));
}

TEST(TextTable, AddRowAtOnce) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, MisuseThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_cell("no row started"), std::logic_error);
  t.start_row();
  t.add_cell("ok");
  EXPECT_THROW(t.add_cell("too many"), std::logic_error);
  EXPECT_THROW(TextTable({}), std::logic_error);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"name", "note"});
  t.start_row();
  t.add_cell("Dallas, TX");
  t.add_cell("says \"hi\"");
  const auto csv = t.to_csv();
  EXPECT_TRUE(contains(csv, "\"Dallas, TX\""));
  EXPECT_TRUE(contains(csv, "\"says \"\"hi\"\"\""));
}

TEST(TextTable, CsvPlainValuesUnquoted) {
  TextTable t({"a", "b"});
  t.start_row();
  t.add_cell("x");
  t.add_cell("y");
  EXPECT_EQ(t.to_csv(), "a,b\nx,y\n");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.25, 2), "-1.25");
}

TEST(WriteFile, RoundTripAndFailure) {
  const std::string path = ::testing::TempDir() + "/it_table_test.txt";
  write_file(path, "hello");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello");
  EXPECT_THROW(write_file("/nonexistent-dir-xyz/file.txt", "x"), std::runtime_error);
}

}  // namespace
}  // namespace intertubes
