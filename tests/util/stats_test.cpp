#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace intertubes {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.standard_error(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.standard_error(), std::sqrt(32.0 / 7.0) / std::sqrt(8.0), 1e-12);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 200.0);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, Interpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 10.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 90.0), 42.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::logic_error);
  EXPECT_THROW(percentile({1.0}, -1.0), std::logic_error);
  EXPECT_THROW(percentile({1.0}, 101.0), std::logic_error);
}

TEST(Percentile, QuartileWrappers) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quartile25(v), 2.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(quartile75(v), 4.0);
}

TEST(EmpiricalCdf, BasicShape) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].f, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].f, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].x, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].f, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(EmpiricalCdf, EvaluationSemantics) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInverse) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 0.26), 2.0);
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 1.0), 4.0);
  EXPECT_THROW(cdf_quantile(cdf, 0.0), std::logic_error);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(15.0);   // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 2.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
}

TEST(Histogram, RelativeFrequenciesSumToOne) {
  Histogram h(0.0, 1.0, 4);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.add(rng.next_double());
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.relative(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, WeightedMass) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5, 3.0);
  h.add(1.5, 1.0);
  EXPECT_DOUBLE_EQ(h.relative(0), 0.75);
  EXPECT_DOUBLE_EQ(h.relative(1), 0.25);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, EmptyRelativeIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.relative(0), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Pearson, RejectsMismatchedOrTiny) {
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), std::logic_error);
  EXPECT_THROW(pearson({1.0}, {1.0}), std::logic_error);
}

/// Property: percentile(v, p) is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(rng.uniform(-100.0, 100.0));
  double prev = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Values(1ULL, 7ULL, 99ULL, 12345ULL));

}  // namespace
}  // namespace intertubes
