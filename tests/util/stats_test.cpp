#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace intertubes {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.standard_error(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.standard_error(), std::sqrt(32.0 / 7.0) / std::sqrt(8.0), 1e-12);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 200.0);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, Interpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 10.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 90.0), 42.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::logic_error);
  EXPECT_THROW(percentile({1.0}, -1.0), std::logic_error);
  EXPECT_THROW(percentile({1.0}, 101.0), std::logic_error);
}

TEST(Percentile, QuartileWrappers) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quartile25(v), 2.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(quartile75(v), 4.0);
}

TEST(EmpiricalCdf, BasicShape) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].f, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].f, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].x, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].f, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(EmpiricalCdf, EvaluationSemantics) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInverse) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 0.26), 2.0);
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 1.0), 4.0);
  EXPECT_THROW(cdf_quantile(cdf, 0.0), std::logic_error);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(15.0);   // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 2.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
}

TEST(Histogram, RelativeFrequenciesSumToOne) {
  Histogram h(0.0, 1.0, 4);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.add(rng.next_double());
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.relative(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, WeightedMass) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5, 3.0);
  h.add(1.5, 1.0);
  EXPECT_DOUBLE_EQ(h.relative(0), 0.75);
  EXPECT_DOUBLE_EQ(h.relative(1), 0.25);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, EmptyRelativeIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.relative(0), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Pearson, RejectsMismatchedOrTiny) {
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), std::logic_error);
  EXPECT_THROW(pearson({1.0}, {1.0}), std::logic_error);
}

/// Property: percentile(v, p) is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(rng.uniform(-100.0, 100.0));
  double prev = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Values(1ULL, 7ULL, 99ULL, 12345ULL));

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(LatencyHistogram, BucketEdgesAreLogSpaced) {
  LatencyHistogram h(1.0, 1000.0, 3);  // decades: [1,10) [10,100) [100,1000)
  EXPECT_NEAR(h.bucket_lo(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bucket_hi(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bucket_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bucket_hi(2), 1000.0, 1e-9);
}

TEST(LatencyHistogram, ClampsOutOfRangeIntoEdgeBuckets) {
  LatencyHistogram h(1.0, 1000.0, 3);
  h.add(0.001);    // below lo → first bucket
  h.add(5000.0);   // at/above hi → last bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 2u);
  // Exact extremes survive clamping.
  EXPECT_EQ(h.min(), 0.001);
  EXPECT_EQ(h.max(), 5000.0);
}

TEST(LatencyHistogram, ExactSideStatistics) {
  LatencyHistogram h;
  for (double x : {3.0, 9.0, 27.0, 81.0}) h.add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 120.0);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_EQ(h.min(), 3.0);
  EXPECT_EQ(h.max(), 81.0);
}

TEST(LatencyHistogram, PercentileEstimateWithinBucketResolution) {
  // Uniform sample on [10, 1000): the estimated percentile must land
  // within one bucket width of the exact order statistic.
  LatencyHistogram h(1.0, 1e6, 120);
  std::vector<double> exact;
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(10.0, 1000.0);
    h.add(x);
    exact.push_back(x);
  }
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double truth = percentile(exact, p);
    const double est = h.percentile(p);
    // One log-spaced bucket spans a factor of 10^(6/120) ≈ 1.122.
    EXPECT_GT(est, truth / 1.13) << "p" << p;
    EXPECT_LT(est, truth * 1.13) << "p" << p;
  }
}

TEST(LatencyHistogram, PercentileMonotoneAndClampedToObservedRange) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform(2.0, 50000.0));
  double prev = h.percentile(0.0);
  EXPECT_GE(prev, h.min());
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = h.percentile(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_LE(prev, h.max());
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max());
}

TEST(LatencyHistogram, MergeMatchesSingleHistogram) {
  LatencyHistogram a(1.0, 1e6, 60);
  LatencyHistogram b(1.0, 1e6, 60);
  LatencyHistogram all(1.0, 1e6, 60);
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(1.0, 100000.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (std::size_t i = 0; i < a.buckets(); ++i) {
    EXPECT_EQ(a.bucket_count(i), all.bucket_count(i));
  }
  for (double p : {25.0, 50.0, 95.0}) EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p));
}

TEST(LatencyHistogram, MergeEmptyIsNoop) {
  LatencyHistogram a;
  a.add(10.0);
  LatencyHistogram b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 10.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.max(), 10.0);
}

TEST(LatencyHistogram, RejectsBadConstructionAndMismatchedMerge) {
  EXPECT_THROW(LatencyHistogram(0.0, 10.0, 4), std::logic_error);
  EXPECT_THROW(LatencyHistogram(10.0, 10.0, 4), std::logic_error);
  EXPECT_THROW(LatencyHistogram(1.0, 10.0, 0), std::logic_error);
  LatencyHistogram a(1.0, 1000.0, 3);
  LatencyHistogram b(1.0, 1000.0, 4);
  EXPECT_FALSE(a.same_geometry(b));
  EXPECT_THROW(a.merge(b), std::logic_error);
}

}  // namespace
}  // namespace intertubes
