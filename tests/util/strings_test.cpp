#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace intertubes {
namespace {

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("Hello World"), "hello world");
  EXPECT_EQ(to_lower("AT&T"), "at&t");
  EXPECT_EQ(to_lower(""), "");
  EXPECT_EQ(to_lower("123-abc"), "123-abc");
}

TEST(Split, DefaultWhitespace) {
  const auto parts = split("  one two\tthree\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[1], "two");
  EXPECT_EQ(parts[2], "three");
}

TEST(Split, CustomDelims) {
  const auto parts = split("a,b,,c", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptyInput) { EXPECT_TRUE(split("").empty()); }

TEST(Split, NoDelimiter) {
  const auto parts = split("solo", ",");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "solo");
}

TEST(Join, RoundTrip) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Trim, AllCases) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\na b\r"), "a b");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foobar", "bar"));
  EXPECT_TRUE(starts_with("foo", ""));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("foobar", "foo"));
  EXPECT_TRUE(ends_with("foo", ""));
}

TEST(Contains, Basic) {
  EXPECT_TRUE(contains("the fiber conduit", "fiber"));
  EXPECT_FALSE(contains("the fiber conduit", "copper"));
  EXPECT_TRUE(contains("x", ""));
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
  EXPECT_EQ(replace_all("grow", "o", "oo"), "groow");
}

TEST(ReplaceAll, EmptyFromIsNoop) { EXPECT_EQ(replace_all("abc", "", "x"), "abc"); }

TEST(TokenizeWords, LowercasesAndSplitsOnNonAlnum) {
  const auto tokens = tokenize_words("Salt Lake City, UT — to Denver (CO)!");
  const std::vector<std::string> expected{"salt", "lake", "city", "ut", "to", "denver", "co"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeWords, KeepsDigits) {
  const auto tokens = tokenize_words("Level 3 owns 19,000 miles");
  const std::vector<std::string> expected{"level", "3", "owns", "19", "000", "miles"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeWords, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(tokenize_words("").empty());
  EXPECT_TRUE(tokenize_words("... --- !!!").empty());
}

TEST(TokenizeWords, AgreesWithQueryConvention) {
  // The corpus indexer and query parser must tokenize identically; "AT&T"
  // must always become {"at", "t"} on both sides.
  EXPECT_EQ(tokenize_words("AT&T"), tokenize_words("at t"));
}

}  // namespace
}  // namespace intertubes
