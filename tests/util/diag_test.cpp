#include "util/diag.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/strings.hpp"

namespace intertubes {
namespace {

TEST(DiagSink, DiagnosticFormatting) {
  const Diagnostic d{Severity::Error, "maps.tsv", 42, "unknown city"};
  EXPECT_EQ(d.location(), "maps.tsv:42");
  EXPECT_EQ(d.to_string(), "error: maps.tsv:42: unknown city");
  const Diagnostic whole{Severity::Warning, "maps.tsv", 0, "empty input"};
  EXPECT_EQ(whole.location(), "maps.tsv");
}

TEST(DiagSink, LenientRecordsAndContinues) {
  DiagnosticSink sink(ParsePolicy::Lenient);
  sink.report(Severity::Error, "a.tsv", 3, "bad record");
  sink.report(Severity::Warning, "a.tsv", 4, "odd but usable");
  sink.report(Severity::Error, "b.tsv", 1, "bad header");
  EXPECT_EQ(sink.error_count(), 2u);
  EXPECT_EQ(sink.warning_count(), 1u);
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_FALSE(sink.ok());
}

TEST(DiagSink, StrictThrowsOnFirstErrorWithLocation) {
  DiagnosticSink sink(ParsePolicy::Strict);
  sink.report(Severity::Warning, "a.tsv", 1, "warnings never throw");
  try {
    sink.report(Severity::Error, "a.tsv", 7, "truncated record");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_TRUE(contains(e.what(), "a.tsv:7")) << e.what();
    EXPECT_TRUE(contains(e.what(), "truncated record")) << e.what();
  }
  // Recorded before the throw: the sink keeps the full history.
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.total(), 2u);
}

TEST(DiagSink, ParseErrorIsRuntimeErrorNotLogicError) {
  // Callers must be able to distinguish bad input (recoverable) from
  // programmer bugs (IT_CHECK's std::logic_error).
  DiagnosticSink sink(ParsePolicy::Strict);
  EXPECT_THROW(sink.report(Severity::Error, "x", 1, "boom"), std::runtime_error);
  DiagnosticSink sink2(ParsePolicy::Strict);
  try {
    sink2.report(Severity::Error, "x", 1, "boom");
  } catch (const std::logic_error&) {
    FAIL() << "ParseError must not be a logic_error";
  } catch (const std::exception&) {
  }
}

TEST(DiagSink, ErrorBudgetBoundsLenientDamage) {
  DiagnosticSink sink(ParsePolicy::Lenient, /*error_budget=*/3);
  sink.report(Severity::Error, "f", 1, "e1");
  sink.report(Severity::Error, "f", 2, "e2");
  sink.report(Severity::Error, "f", 3, "e3");
  EXPECT_THROW(sink.report(Severity::Error, "f", 4, "e4"), ParseError);
  // The over-budget error is still recorded.
  EXPECT_EQ(sink.error_count(), 4u);
}

TEST(DiagSink, SnapshotPreservesOrder) {
  DiagnosticSink sink(ParsePolicy::Lenient);
  sink.report(Severity::Warning, "s", 1, "first");
  sink.report(Severity::Error, "s", 2, "second");
  const auto diags = sink.diagnostics();
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].message, "first");
  EXPECT_EQ(diags[1].message, "second");
}

TEST(DiagSink, RenderSummarizesPerSource) {
  DiagnosticSink sink(ParsePolicy::Lenient);
  EXPECT_TRUE(sink.render().empty());
  sink.report(Severity::Error, "maps.tsv", 5, "unknown city \"Atlantis, XX\"");
  sink.report(Severity::Error, "maps.tsv", 9, "bad flag");
  sink.report(Severity::Warning, "corpus.tsv", 2, "odd title");
  const std::string out = sink.render();
  EXPECT_TRUE(contains(out, "maps.tsv")) << out;
  EXPECT_TRUE(contains(out, "corpus.tsv")) << out;
  EXPECT_TRUE(contains(out, "maps.tsv:5")) << out;
  EXPECT_TRUE(contains(out, "Atlantis")) << out;
}

TEST(DiagSink, ThreadSafeUnderConcurrentReports) {
  // Parse boundaries may run on worker threads (the sim executor); the
  // sink must count exactly under contention.
  DiagnosticSink sink(ParsePolicy::Lenient, /*error_budget=*/100000);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.report(t % 2 == 0 ? Severity::Warning : Severity::Error,
                    "thread" + std::to_string(t), static_cast<std::size_t>(i + 1), "m");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sink.total(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.error_count(), static_cast<std::size_t>(kThreads / 2 * kPerThread));
  EXPECT_EQ(sink.warning_count(), static_cast<std::size_t>(kThreads / 2 * kPerThread));
}

}  // namespace
}  // namespace intertubes
