// Unit suites for worldgen/: structural invariants of generated worlds,
// statistical agreement with the paper world at 1x, determinism, and the
// downstream-consumer smoke path (snapshot -> cascade -> dissect).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cascade/cascade.hpp"
#include "core/dataset_io.hpp"
#include "dissect/dissector.hpp"
#include "serve/snapshot.hpp"
#include "sim/executor.hpp"
#include "test_support.hpp"
#include "worldgen/worldgen.hpp"

namespace intertubes::testing {
namespace {

worldgen::WorldSpec small_spec() {
  worldgen::WorldSpec spec;
  spec.scale = 1.0;
  spec.continents = 2;  // force a submarine adjacency at paper size
  spec.seed = 0x1257;
  return spec;
}

const worldgen::World& small_world() {
  static const worldgen::World w = worldgen::generate_world(small_spec());
  return w;
}

TEST(Worldgen, GeneratedWorldPassesValidation) {
  const auto violations = worldgen::validate(small_world());
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(Worldgen, ContinentsPartitionTheCitySet) {
  const auto& world = small_world();
  ASSERT_EQ(world.continents().size(), 2u);
  transport::CityId next = 0;
  for (const auto& continent : world.continents()) {
    EXPECT_EQ(continent.city_begin, next);
    EXPECT_GT(continent.city_end, continent.city_begin);
    next = continent.city_end;
  }
  EXPECT_EQ(next, static_cast<transport::CityId>(world.cities().size()));
  EXPECT_EQ(world.continent_of(0), 0u);
  EXPECT_EQ(world.continent_of(next - 1), world.continents().size() - 1);
}

TEST(Worldgen, CablesAreSharedSubmarineCorridors) {
  const auto& world = small_world();
  ASSERT_FALSE(world.cables().empty());
  for (const auto& cable : world.cables()) {
    EXPECT_GE(cable.tenants.size(), world.spec().min_cable_tenants);
    EXPECT_TRUE(std::is_sorted(cable.tenants.begin(), cable.tenants.end()));
    const auto& corridor = world.row().corridor(cable.corridor);
    EXPECT_EQ(corridor.mode, transport::TransportMode::Submarine);
    EXPECT_NE(world.continent_of(cable.landing_a), world.continent_of(cable.landing_b));
    EXPECT_GT(cable.length_km, 0.0);
  }
}

TEST(Worldgen, SubmarineConduitsCrossContinentsLandConduitsDoNot) {
  const auto& world = small_world();
  std::size_t submarine = 0;
  for (const auto& conduit : world.map().conduits()) {
    const bool crosses = world.continent_of(conduit.a) != world.continent_of(conduit.b);
    const bool is_submarine =
        world.row().corridor(conduit.corridor).mode == transport::TransportMode::Submarine;
    EXPECT_EQ(crosses, is_submarine) << "conduit " << conduit.a << "-" << conduit.b;
    submarine += is_submarine ? 1 : 0;
  }
  EXPECT_EQ(submarine, world.cables().size());
}

TEST(Worldgen, PaperScaleWorldMatchesScenarioEnvelope) {
  // A 1x single-continent world must land in the paper world's
  // statistical envelope: same city count and ISP roster size, and the
  // same order of magnitude in density/sharing (the generator reuses the
  // §3 construction, not its exact corridor draw).
  worldgen::WorldSpec spec;
  spec.continents = 1;
  const auto world = worldgen::generate_world(spec);
  const auto summary = worldgen::summarize(world);
  const auto& scenario = shared_scenario();
  const auto stats = core::compute_stats(scenario.map());

  EXPECT_EQ(summary.cities, scenario.row().num_cities());
  EXPECT_EQ(summary.isps, scenario.truth().profiles().size());
  EXPECT_EQ(summary.continents, 1u);
  EXPECT_EQ(summary.submarine_conduits, 0u);

  const auto ratio = [](double a, double b) { return a / b; };
  const double conduit_ratio =
      ratio(static_cast<double>(summary.conduits), static_cast<double>(stats.conduits));
  const double link_ratio =
      ratio(static_cast<double>(summary.links), static_cast<double>(stats.links));
  EXPECT_GT(conduit_ratio, 0.5);
  EXPECT_LT(conduit_ratio, 2.0);
  EXPECT_GT(link_ratio, 0.5);
  EXPECT_LT(link_ratio, 2.0);
  EXPECT_GT(summary.mean_tenants, 1.0);
  EXPECT_GT(summary.mean_degree, 2.0);
}

TEST(Worldgen, GenerationIsDeterministicAndSeedSensitive) {
  const auto again = worldgen::generate_world(small_spec());
  EXPECT_EQ(small_world().dataset(), again.dataset());

  const auto other = worldgen::generate_world(small_spec().with_seed(0x9e37));
  EXPECT_NE(small_world().dataset(), other.dataset());
}

TEST(Worldgen, DatasetRoundTripsStrictly) {
  const auto& world = small_world();
  const std::string text = world.dataset();
  // Strict parse throws on any defect; re-serialization is a fixed point.
  const auto reparsed =
      core::parse_dataset(text, world.cities(), world.row(), world.truth().profiles());
  EXPECT_EQ(core::serialize_dataset(reparsed, world.cities(), world.row(),
                                    world.truth().profiles()),
            text);
}

TEST(Worldgen, SnapshotCascadeAndDissectRunOnGeneratedWorlds) {
  const auto& world = small_world();
  const auto snapshot = serve::Snapshot::build(world.view(), {0, "worldgen test"});
  EXPECT_EQ(&snapshot->cities(), &world.cities());
  EXPECT_EQ(snapshot->map().links().size(), world.map().links().size());

  cascade::CascadeConfig config;
  config.stressor = sim::Stressor::random_cuts(3);
  config.trials = 4;
  const auto report = snapshot->cascade_engine().run(config);
  EXPECT_EQ(report.trials, 4u);
  EXPECT_GT(report.demand_delivered.points.back().mean, 0.0);

  sim::Executor executor(2);
  dissect::LatencyDissector dissector(snapshot->shared_path_engine(),
                                      snapshot->map().nodes(), world.cities(), world.row());
  const auto study = dissector.dissect(&executor, {});
  EXPECT_GT(study.pairs.size(), study.fiber_unreachable);
}

}  // namespace
}  // namespace intertubes::testing
