#include "transport/undersea.hpp"

#include <gtest/gtest.h>

#include "risk/cuts.hpp"
#include "test_support.hpp"

namespace intertubes::transport {
namespace {

const CityDatabase& db() { return CityDatabase::us_default(); }

const std::vector<UnderseaCable>& festoons() {
  static const std::vector<UnderseaCable> cables = default_us_festoons(db());
  return cables;
}

TEST(Undersea, CoversBothCoastsAndGulf) {
  ASSERT_GE(festoons().size(), 8u);
  bool pacific = false;
  bool atlantic = false;
  bool gulf = false;
  for (const auto& cable : festoons()) {
    if (cable.name.find("Pacific") != std::string::npos) pacific = true;
    if (cable.name.find("Atlantic") != std::string::npos) atlantic = true;
    if (cable.name.find("Gulf") != std::string::npos) gulf = true;
  }
  EXPECT_TRUE(pacific);
  EXPECT_TRUE(atlantic);
  EXPECT_TRUE(gulf);
}

TEST(Undersea, RoutesLandAtTheirCities) {
  for (const auto& cable : festoons()) {
    EXPECT_EQ(cable.route.front(), db().city(cable.landing_a).location) << cable.name;
    EXPECT_EQ(cable.route.back(), db().city(cable.landing_b).location) << cable.name;
    EXPECT_GT(cable.length_km, geo::distance_km(db().city(cable.landing_a).location,
                                                db().city(cable.landing_b).location))
        << cable.name << " must bulge offshore";
  }
}

TEST(Undersea, OffshoreMidpointIsAwayFromBothLandings) {
  for (const auto& cable : festoons()) {
    const auto mid = cable.route.point_at_fraction(0.5);
    EXPECT_GT(geo::distance_km(mid, db().city(cable.landing_a).location), 30.0) << cable.name;
    EXPECT_GT(geo::distance_km(mid, db().city(cable.landing_b).location), 30.0) << cable.name;
  }
}

TEST(Undersea, FestoonsFormCoastalChains) {
  // Pacific: Seattle reachable from San Diego via cable landings alone.
  std::map<CityId, std::vector<CityId>> adjacency;
  for (const auto& cable : festoons()) {
    adjacency[cable.landing_a].push_back(cable.landing_b);
    adjacency[cable.landing_b].push_back(cable.landing_a);
  }
  const auto seattle = db().find("Seattle, WA");
  const auto san_diego = db().find("San Diego, CA");
  ASSERT_TRUE(seattle && san_diego);
  std::set<CityId> visited{*seattle};
  std::vector<CityId> stack{*seattle};
  while (!stack.empty()) {
    const CityId u = stack.back();
    stack.pop_back();
    for (CityId v : adjacency[u]) {
      if (visited.insert(v).second) stack.push_back(v);
    }
  }
  EXPECT_TRUE(visited.count(*san_diego));
}

TEST(Undersea, MinCutNeverDecreasesAndUsuallyGrows) {
  const auto& map = testing::shared_scenario().map();
  const auto sf = db().find("San Francisco, CA");
  const auto nyc = db().find("New York, NY");
  const auto seattle = db().find("Seattle, WA");
  const auto miami = db().find("Miami, FL");
  ASSERT_TRUE(sf && nyc && seattle && miami);

  const auto base_sf_nyc = risk::min_conduit_cut(map, *sf, *nyc);
  const auto with_sf_nyc = risk::min_conduit_cut_with_undersea(map, festoons(), *sf, *nyc);
  EXPECT_GE(with_sf_nyc, base_sf_nyc);

  // Footnote 8's claim: coastal pairs gain disjoint paths via the sea.
  const auto base_coastal = risk::min_conduit_cut(map, *seattle, *miami);
  const auto with_coastal =
      risk::min_conduit_cut_with_undersea(map, festoons(), *seattle, *miami);
  EXPECT_GT(with_coastal, base_coastal);
}

TEST(Undersea, EmptyCableSetMatchesPlainCut) {
  const auto& map = testing::shared_scenario().map();
  const auto sf = db().find("San Francisco, CA");
  const auto nyc = db().find("New York, NY");
  EXPECT_EQ(risk::min_conduit_cut_with_undersea(map, {}, *sf, *nyc),
            risk::min_conduit_cut(map, *sf, *nyc));
}

}  // namespace
}  // namespace intertubes::transport
