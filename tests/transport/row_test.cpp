#include "transport/row.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace intertubes::transport {
namespace {

const CityDatabase& db() { return CityDatabase::us_default(); }

const RightOfWayRegistry& registry() {
  static const TransportBundle bundle = generate_bundle(db(), NetworkGenParams{});
  static const RightOfWayRegistry row(bundle);
  return row;
}

TEST(RightOfWay, CorridorCountIsUnionOfModes) {
  static const TransportBundle bundle = generate_bundle(db(), NetworkGenParams{});
  const RightOfWayRegistry row(bundle);
  EXPECT_EQ(row.corridors().size(), bundle.road.edges().size() + bundle.rail.edges().size() +
                                        bundle.pipeline.edges().size());
  EXPECT_EQ(row.num_cities(), db().size());
}

TEST(RightOfWay, CorridorIdsAreIndices) {
  for (std::size_t i = 0; i < registry().corridors().size(); ++i) {
    EXPECT_EQ(registry().corridors()[i].id, i);
  }
}

TEST(RightOfWay, AdjacencyConsistent) {
  for (CityId c = 0; c < db().size(); ++c) {
    for (CorridorId cid : registry().corridors_at(c)) {
      const auto& corridor = registry().corridor(cid);
      EXPECT_TRUE(corridor.a == c || corridor.b == c);
    }
  }
}

TEST(RightOfWay, DirectLookup) {
  const auto& corridor = registry().corridors().front();
  const auto direct = registry().direct(corridor.a, corridor.b);
  ASSERT_TRUE(direct.has_value());
  const auto& found = registry().corridor(*direct);
  EXPECT_TRUE((found.a == corridor.a && found.b == corridor.b) ||
              (found.a == corridor.b && found.b == corridor.a));
  // Mode-filtered lookup returns that mode.
  const auto road_only = registry().direct(corridor.a, corridor.b, corridor.mode);
  ASSERT_TRUE(road_only.has_value());
  EXPECT_EQ(registry().corridor(*road_only).mode, corridor.mode);
}

TEST(RightOfWay, DirectMissReturnsNullopt) {
  // NYC and LA are far beyond any single corridor.
  const auto nyc = db().find("New York, NY");
  const auto la = db().find("Los Angeles, CA");
  ASSERT_TRUE(nyc && la);
  EXPECT_FALSE(registry().direct(*nyc, *la).has_value());
}

TEST(RightOfWay, ShortestPathCrossCountry) {
  const auto nyc = db().find("New York, NY");
  const auto la = db().find("Los Angeles, CA");
  ASSERT_TRUE(nyc && la);
  const auto path = registry().shortest_path(*nyc, *la);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.cities.front(), *nyc);
  EXPECT_EQ(path.cities.back(), *la);
  EXPECT_EQ(path.cities.size(), path.corridors.size() + 1);
  // Coast to coast is ≈ 3940 km LOS; the ROW path must be at least that and
  // within a reasonable detour factor.
  const double los = geo::distance_km(db().city(*nyc).location, db().city(*la).location);
  EXPECT_GE(path.length_km, los);
  EXPECT_LE(path.length_km, los * 1.5);
}

TEST(RightOfWay, ShortestPathCorridorChainIsConnected) {
  const auto a = db().find("Seattle, WA");
  const auto b = db().find("Miami, FL");
  ASSERT_TRUE(a && b);
  const auto path = registry().shortest_path(*a, *b);
  ASSERT_FALSE(path.empty());
  for (std::size_t i = 0; i < path.corridors.size(); ++i) {
    const auto& c = registry().corridor(path.corridors[i]);
    const CityId from = path.cities[i];
    const CityId to = path.cities[i + 1];
    EXPECT_TRUE((c.a == from && c.b == to) || (c.a == to && c.b == from));
  }
}

TEST(RightOfWay, ShortestPathToSelfIsEmptyButPresent) {
  const auto path = registry().shortest_path(3, 3);
  EXPECT_TRUE(path.corridors.empty());
  // A self-path reports the single city and zero length.
  EXPECT_EQ(path.length_km, 0.0);
}

TEST(RightOfWay, WeightFunctionCanForbid) {
  const auto& corridor = registry().corridors().front();
  // Forbid every corridor: no path can exist.
  const auto blocked = registry().shortest_path(
      corridor.a, corridor.b,
      [](const Corridor&) { return std::numeric_limits<double>::infinity(); });
  EXPECT_TRUE(blocked.empty());
}

TEST(RightOfWay, WeightFunctionSteersModeChoice) {
  // Making roads free and everything else forbidden yields road-only paths.
  const auto a = db().find("Denver, CO");
  const auto b = db().find("Chicago, IL");
  ASSERT_TRUE(a && b);
  const auto path = registry().shortest_path(*a, *b, [](const Corridor& c) {
    return c.mode == TransportMode::Road ? c.length_km
                                         : std::numeric_limits<double>::infinity();
  });
  ASSERT_FALSE(path.empty());
  for (CorridorId cid : path.corridors) {
    EXPECT_EQ(registry().corridor(cid).mode, TransportMode::Road);
  }
}

TEST(RightOfWay, DefaultWeightIsShortestLength) {
  const auto a = db().find("Dallas, TX");
  const auto b = db().find("Atlanta, GA");
  ASSERT_TRUE(a && b);
  const auto best = registry().shortest_path(*a, *b);
  // Doubling cost of one corridor on the path must not produce a shorter
  // alternative (sanity of optimality).
  ASSERT_FALSE(best.empty());
  const CorridorId bumped = best.corridors.front();
  const auto alt = registry().shortest_path(*a, *b, [&](const Corridor& c) {
    return c.length_km * (c.id == bumped ? 2.0 : 1.0);
  });
  ASSERT_FALSE(alt.empty());
  EXPECT_GE(alt.length_km + 1e-9, best.length_km);
}

TEST(RightOfWay, DistancesFromMatchesShortestPath) {
  const auto a = db().find("Phoenix, AZ");
  const auto b = db().find("Boston, MA");
  ASSERT_TRUE(a && b);
  const auto dists = registry().distances_from(*a);
  const auto path = registry().shortest_path(*a, *b);
  ASSERT_FALSE(path.empty());
  EXPECT_NEAR(dists[*b], path.length_km, 1e-6);
  EXPECT_DOUBLE_EQ(dists[*a], 0.0);
}

TEST(RightOfWay, AllCitiesReachable) {
  const auto dists = registry().distances_from(0);
  for (CityId c = 0; c < db().size(); ++c) {
    EXPECT_TRUE(std::isfinite(dists[c])) << db().city(c).display_name();
  }
}

TEST(RightOfWay, PathGeometryContinuous) {
  const auto a = db().find("Salt Lake City, UT");
  const auto b = db().find("Kansas City, MO");
  ASSERT_TRUE(a && b);
  const auto path = registry().shortest_path(*a, *b);
  ASSERT_FALSE(path.empty());
  const auto geometry = registry().path_geometry(path);
  EXPECT_EQ(geometry.front(), db().city(*a).location);
  EXPECT_EQ(geometry.back(), db().city(*b).location);
  EXPECT_NEAR(geometry.length_km(), path.length_km, 1.0);
  // No jumps between consecutive vertices.
  const auto& pts = geometry.points();
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    EXPECT_LT(geo::distance_km(pts[i], pts[i + 1]), 300.0);
  }
}

TEST(RightOfWay, PathGeometryRejectsEmptyPath) {
  RowPath empty;
  EXPECT_THROW(registry().path_geometry(empty), std::logic_error);
}

}  // namespace
}  // namespace intertubes::transport
