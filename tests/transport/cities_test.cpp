#include "transport/cities.hpp"

#include <gtest/gtest.h>

#include <set>

namespace intertubes::transport {
namespace {

const CityDatabase& db() { return CityDatabase::us_default(); }

TEST(CityDatabase, HasSubstantialCoverage) {
  EXPECT_GE(db().size(), 120u);
  EXPECT_GT(db().total_population(), 40'000'000ULL);
}

TEST(CityDatabase, FindByNameAndState) {
  const auto nyc = db().find("New York, NY");
  ASSERT_TRUE(nyc.has_value());
  EXPECT_EQ(db().city(*nyc).state, "NY");

  const auto bare = db().find("chicago");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(db().city(*bare).name, "Chicago");
}

TEST(CityDatabase, FindDisambiguatesByState) {
  const auto or_portland = db().find("Portland, OR");
  const auto me_portland = db().find("Portland, ME");
  ASSERT_TRUE(or_portland.has_value());
  ASSERT_TRUE(me_portland.has_value());
  EXPECT_NE(*or_portland, *me_portland);
  EXPECT_LT(db().city(*or_portland).location.lon_deg, -120.0);
  EXPECT_GT(db().city(*me_portland).location.lon_deg, -75.0);
}

TEST(CityDatabase, FindMissReturnsNullopt) {
  EXPECT_FALSE(db().find("Atlantis, XX").has_value());
  EXPECT_FALSE(db().find("").has_value());
}

TEST(CityDatabase, ContainsPaperTableCities) {
  // Every endpoint city of the paper's Tables 2/3 must be present.
  for (const char* name :
       {"Trenton, NJ", "Edison, NJ", "Kalamazoo, MI", "Battle Creek, MI", "Dallas, TX",
        "Fort Worth, TX", "Baltimore, MD", "Towson, MD", "Baton Rouge, LA", "New Orleans, LA",
        "Livonia, MI", "Southfield, MI", "Topeka, KS", "Lincoln, NE", "Spokane, WA", "Boise, ID",
        "Atlanta, GA", "Bryan, TX", "Shreveport, LA", "Wichita Falls, TX", "San Luis Obispo, CA",
        "Lompoc, CA", "San Francisco, CA", "Las Vegas, NV", "Wichita, KS", "Salt Lake City, UT",
        "Lansing, MI", "South Bend, IN", "Philadelphia, PA", "Allentown, PA",
        "West Palm Beach, FL", "Boca Raton, FL", "Lynchburg, VA", "Charlottesville, VA",
        "Sedona, AZ", "Camp Verde, AZ", "Bozeman, MT", "Billings, MT", "Casper, WY",
        "Cheyenne, WY", "White Plains, NY", "Stamford, CT", "Amarillo, TX", "Eugene, OR",
        "Chico, CA", "Phoenix, AZ", "Provo, UT", "Los Angeles, CA", "Oklahoma City, OK",
        "Seattle, WA", "Portland, OR", "Eau Claire, WI", "Madison, WI", "Bakersfield, CA",
        "Hillsboro, OR", "Santa Barbara, CA"}) {
    EXPECT_TRUE(db().find(name).has_value()) << name;
  }
}

TEST(CityDatabase, CoordinatesInContinentalUs) {
  for (const auto& c : db().all()) {
    EXPECT_GT(c.location.lat_deg, 24.0) << c.display_name();
    EXPECT_LT(c.location.lat_deg, 50.0) << c.display_name();
    EXPECT_GT(c.location.lon_deg, -125.0) << c.display_name();
    EXPECT_LT(c.location.lon_deg, -66.0) << c.display_name();
  }
}

TEST(CityDatabase, NearestFindsSelf) {
  for (CityId id = 0; id < db().size(); id += 13) {
    EXPECT_EQ(db().nearest(db().city(id).location), id);
  }
}

TEST(CityDatabase, NearestOffsetPoint) {
  const auto denver = db().find("Denver, CO");
  ASSERT_TRUE(denver.has_value());
  // 30 km east of Denver is still closest to Denver.
  const auto p = geo::destination(db().city(*denver).location, 90.0, 30.0);
  EXPECT_EQ(db().nearest(p), *denver);
}

TEST(CityDatabase, WithinRadiusSortedByDistance) {
  const auto nyc = db().find("New York, NY");
  ASSERT_TRUE(nyc.has_value());
  const auto hits = db().within_radius(db().city(*nyc).location, 120.0);
  ASSERT_GE(hits.size(), 3u);  // NYC metro: Newark, Edison, Trenton, ...
  EXPECT_EQ(hits.front(), *nyc);
  double prev = -1.0;
  for (CityId id : hits) {
    const double d = geo::distance_km(db().city(*nyc).location, db().city(id).location);
    EXPECT_GE(d, prev);
    EXPECT_LE(d, 120.0);
    prev = d;
  }
}

TEST(CityDatabase, MajorCitiesDescendingPopulation) {
  const auto majors = db().major_cities(500000);
  ASSERT_GE(majors.size(), 10u);
  for (std::size_t i = 0; i + 1 < majors.size(); ++i) {
    EXPECT_GE(db().city(majors[i]).population, db().city(majors[i + 1]).population);
  }
  EXPECT_EQ(db().city(majors.front()).name, "New York");
  for (CityId id : majors) EXPECT_GE(db().city(id).population, 500000u);
}

TEST(CityDatabase, RegionsAssigned) {
  std::set<Region> seen;
  for (const auto& c : db().all()) seen.insert(c.region);
  EXPECT_EQ(seen.size(), 5u);

  EXPECT_EQ(db().city(*db().find("Seattle, WA")).region, Region::West);
  EXPECT_EQ(db().city(*db().find("Denver, CO")).region, Region::Mountain);
  EXPECT_EQ(db().city(*db().find("Chicago, IL")).region, Region::Central);
  EXPECT_EQ(db().city(*db().find("Atlanta, GA")).region, Region::South);
  EXPECT_EQ(db().city(*db().find("Boston, MA")).region, Region::East);
}

TEST(CityDatabase, RegionNames) {
  EXPECT_EQ(region_name(Region::West), "West");
  EXPECT_EQ(region_name(Region::East), "East");
}

TEST(CityDatabase, DisplayName) {
  const auto slc = db().find("Salt Lake City, UT");
  ASSERT_TRUE(slc.has_value());
  EXPECT_EQ(db().city(*slc).display_name(), "Salt Lake City, UT");
}

TEST(CityDatabase, CityIdBoundsChecked) {
  EXPECT_THROW(db().city(static_cast<CityId>(db().size())), std::logic_error);
}

TEST(CityDatabase, CustomDatabaseRejectsEmpty) {
  EXPECT_THROW(CityDatabase(std::vector<City>{}), std::logic_error);
}

TEST(CityDatabase, NoDuplicateNameStatePairs) {
  std::set<std::string> seen;
  for (const auto& c : db().all()) {
    EXPECT_TRUE(seen.insert(c.display_name()).second) << "duplicate " << c.display_name();
  }
}

}  // namespace
}  // namespace intertubes::transport
