#include "transport/network.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>

namespace intertubes::transport {
namespace {

const CityDatabase& db() { return CityDatabase::us_default(); }

NetworkGenParams params() {
  NetworkGenParams p;
  p.seed = 0x1257;
  return p;
}

// Generated once; networks are immutable.
const TransportBundle& bundle() {
  static const TransportBundle b = generate_bundle(db(), params());
  return b;
}

TEST(GabrielGraph, NoBlockedEdges) {
  const auto edges = gabriel_graph(db());
  ASSERT_FALSE(edges.empty());
  // Spot-check the Gabriel property on a sample of edges.
  std::size_t checked = 0;
  for (std::size_t e = 0; e < edges.size(); e += 17) {
    const auto [a, b] = edges[e];
    const auto mid = geo::midpoint(db().city(a).location, db().city(b).location);
    const double radius = geo::distance_km(db().city(a).location, db().city(b).location) / 2.0;
    for (CityId c = 0; c < db().size(); ++c) {
      if (c == a || c == b) continue;
      EXPECT_GE(geo::distance_km(mid, db().city(c).location), radius - 1e-6);
    }
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(GabrielGraph, EdgesNormalized) {
  for (const auto& [a, b] : gabriel_graph(db())) {
    EXPECT_LT(a, b);
    EXPECT_LT(b, db().size());
  }
}

TEST(CurvedPath, EndpointsExact) {
  const auto line = curved_path(db(), 0, 1, TransportMode::Road, params());
  EXPECT_EQ(line.front(), db().city(0).location);
  EXPECT_EQ(line.back(), db().city(1).location);
}

TEST(CurvedPath, DeterministicPerCorridor) {
  const auto l1 = curved_path(db(), 3, 9, TransportMode::Rail, params());
  const auto l2 = curved_path(db(), 3, 9, TransportMode::Rail, params());
  EXPECT_EQ(l1.points(), l2.points());
}

TEST(CurvedPath, OrientationIndependentGeometry) {
  const auto fwd = curved_path(db(), 3, 9, TransportMode::Road, params());
  const auto rev = curved_path(db(), 9, 3, TransportMode::Road, params());
  // Same corridor: same geometry (reversed).
  ASSERT_EQ(fwd.size(), rev.size());
  EXPECT_EQ(fwd.front(), rev.back());
  EXPECT_NEAR(fwd.length_km(), rev.length_km(), 1e-9);
}

TEST(CurvedPath, ModestDetourFactor) {
  // Curvature adds a few percent, never doubling the distance.
  for (CityId b : {1u, 5u, 20u, 50u}) {
    const auto line = curved_path(db(), 0, b, TransportMode::Rail, params());
    const double straight = geo::distance_km(db().city(0).location, db().city(b).location);
    EXPECT_GE(line.length_km(), straight - 1e-9);
    EXPECT_LE(line.length_km(), straight * 1.35);
  }
}

TEST(CurvedPath, DifferentModesDifferentGeometry) {
  const auto road = curved_path(db(), 2, 7, TransportMode::Road, params());
  const auto rail = curved_path(db(), 2, 7, TransportMode::Rail, params());
  EXPECT_NE(road.points(), rail.points());
}

TEST(CurvedPath, RejectsSelfLoop) {
  EXPECT_THROW(curved_path(db(), 4, 4, TransportMode::Road, params()), std::logic_error);
}

TEST(GenerateNetwork, RoadDensestPipelineSparsest) {
  EXPECT_GT(bundle().road.edges().size(), bundle().rail.edges().size());
  EXPECT_GT(bundle().rail.edges().size(), bundle().pipeline.edges().size());
}

TEST(GenerateNetwork, ModesTagged) {
  EXPECT_EQ(bundle().road.mode(), TransportMode::Road);
  EXPECT_EQ(bundle().rail.mode(), TransportMode::Rail);
  EXPECT_EQ(bundle().pipeline.mode(), TransportMode::Pipeline);
  for (const auto& e : bundle().rail.edges()) EXPECT_EQ(e.mode, TransportMode::Rail);
}

TEST(GenerateNetwork, EdgeInvariants) {
  for (const auto& net : {&bundle().road, &bundle().rail, &bundle().pipeline}) {
    for (const auto& e : net->edges()) {
      EXPECT_NE(e.a, e.b);
      EXPECT_LT(e.a, db().size());
      EXPECT_LT(e.b, db().size());
      EXPECT_GT(e.length_km, 0.0);
      EXPECT_NEAR(e.length_km, e.path.length_km(), 1e-9);
      EXPECT_EQ(e.path.front(), db().city(e.a).location);
      EXPECT_EQ(e.path.back(), db().city(e.b).location);
    }
  }
}

TEST(GenerateNetwork, EdgeIdsAreIndices) {
  for (std::size_t i = 0; i < bundle().road.edges().size(); ++i) {
    EXPECT_EQ(bundle().road.edges()[i].id, i);
  }
}

TEST(GenerateNetwork, AdjacencyConsistent) {
  const auto& net = bundle().road;
  for (CityId c = 0; c < db().size(); ++c) {
    for (EdgeId eid : net.edges_at(c)) {
      const auto& e = net.edges()[eid];
      EXPECT_TRUE(e.a == c || e.b == c);
    }
  }
}

TEST(GenerateNetwork, ConnectsLookup) {
  const auto& net = bundle().road;
  ASSERT_FALSE(net.edges().empty());
  const auto& e = net.edges().front();
  EXPECT_TRUE(net.connects(e.a, e.b));
  EXPECT_TRUE(net.connects(e.b, e.a));
}

TEST(GenerateNetwork, RoadAndRailConnected) {
  // Both major networks must span all cities (conduits can reach anywhere).
  for (const auto* net : {&bundle().road, &bundle().rail}) {
    std::vector<char> visited(db().size(), 0);
    std::vector<CityId> stack{0};
    visited[0] = 1;
    std::size_t count = 1;
    while (!stack.empty()) {
      const CityId u = stack.back();
      stack.pop_back();
      for (EdgeId eid : net->edges_at(u)) {
        const auto& e = net->edges()[eid];
        const CityId v = (e.a == u) ? e.b : e.a;
        if (!visited[v]) {
          visited[v] = 1;
          ++count;
          stack.push_back(v);
        }
      }
    }
    EXPECT_EQ(count, db().size()) << mode_name(net->mode());
  }
}

TEST(GenerateNetwork, DeterministicAcrossCalls) {
  const auto again = generate_network(db(), TransportMode::Rail, params());
  ASSERT_EQ(again.edges().size(), bundle().rail.edges().size());
  for (std::size_t i = 0; i < again.edges().size(); ++i) {
    EXPECT_EQ(again.edges()[i].a, bundle().rail.edges()[i].a);
    EXPECT_EQ(again.edges()[i].b, bundle().rail.edges()[i].b);
    EXPECT_EQ(again.edges()[i].path.points(), bundle().rail.edges()[i].path.points());
  }
}

TEST(GenerateNetwork, SeedChangesRailSelection) {
  auto p2 = params();
  p2.seed = 0x9999;
  const auto other = generate_network(db(), TransportMode::Rail, p2);
  std::set<std::pair<CityId, CityId>> base_edges;
  for (const auto& e : bundle().rail.edges()) base_edges.insert({e.a, e.b});
  std::size_t differing = 0;
  for (const auto& e : other.edges()) {
    if (!base_edges.count({e.a, e.b})) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(GenerateNetwork, TotalLengthAccumulates) {
  double sum = 0.0;
  for (const auto& e : bundle().road.edges()) sum += e.length_km;
  EXPECT_NEAR(bundle().road.total_length_km(), sum, 1e-6);
}

TEST(ModeName, AllNamed) {
  EXPECT_EQ(mode_name(TransportMode::Road), "road");
  EXPECT_EQ(mode_name(TransportMode::Rail), "rail");
  EXPECT_EQ(mode_name(TransportMode::Pipeline), "pipeline");
}

}  // namespace
}  // namespace intertubes::transport
